// Metrics registry: counters, gauges and log-bucketed histograms keyed by a
// cheap interned label set.
//
// A metric *family* is registered once by name (cold path) and returns a
// small integer id; every observation then carries a packed 64-bit
// `LabelSet` (server id, tier, region, op, client — each field optional), so
// the hot enabled path hashes one integer instead of strings.  Registries
// are single-threaded by design — one per Simulator/replica — and
// `merge()` combines them deterministically afterwards, which is how the
// parallel harness aggregates per-replica metrics without locks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/stats.hpp"
#include "src/obs/sketch.hpp"

namespace harl::obs {

/// Packed label set.  Fields default to "absent"; setters are chainable:
/// `LabelSet{}.server(3).tier(0).op(IoOp::kRead)`.
///
/// The primary word packs {server, tier, region, client, op} and is full; the
/// namespace dimensions (file, tenant) live in a second extension word that
/// is all-absent by default, so single-file workloads — which never set them
/// — key, merge and serialize exactly as before the namespace refactor.
class LabelSet {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFu;
  static constexpr std::uint32_t kNoneRegion = 0xFFFFFu;

  LabelSet() = default;

  LabelSet& server(std::uint32_t v) { return set(bits_, 0, 16, v); }
  LabelSet& tier(std::uint32_t v) { return set(bits_, 16, 8, v); }
  LabelSet& region(std::uint32_t v) { return set(bits_, 24, 20, v); }
  LabelSet& client(std::uint32_t v) { return set(bits_, 44, 16, v); }
  LabelSet& op(IoOp o) { return set(bits_, 60, 4, o == IoOp::kRead ? 0u : 1u); }
  LabelSet& file(std::uint32_t v) { return set(ext_bits_, 0, 16, v); }
  LabelSet& tenant(std::uint32_t v) { return set(ext_bits_, 16, 16, v); }

  std::uint32_t server_value() const { return get(bits_, 0, 16); }
  std::uint32_t tier_value() const { return get(bits_, 16, 8); }
  std::uint32_t region_value() const { return get(bits_, 24, 20); }
  std::uint32_t client_value() const { return get(bits_, 44, 16); }
  bool has_op() const { return get(bits_, 60, 4) != 0xFu; }
  IoOp op_value() const {
    return get(bits_, 60, 4) == 0 ? IoOp::kRead : IoOp::kWrite;
  }
  std::uint32_t file_value() const { return get(ext_bits_, 0, 16); }
  std::uint32_t tenant_value() const { return get(ext_bits_, 16, 16); }

  std::uint64_t bits() const { return bits_; }
  std::uint64_t ext_bits() const { return ext_bits_; }

  /// Rebuilds a label set from `bits()` (the pack is transparent).
  static LabelSet from_bits(std::uint64_t bits,
                            std::uint64_t ext = ~std::uint64_t{0}) {
    LabelSet l;
    l.bits_ = bits;
    l.ext_bits_ = ext;
    return l;
  }

  friend bool operator==(const LabelSet&, const LabelSet&) = default;

 private:
  LabelSet& set(std::uint64_t& word, unsigned shift, unsigned width,
                std::uint32_t v) {
    const std::uint64_t mask = ((std::uint64_t{1} << width) - 1) << shift;
    word = (word & ~mask) | ((static_cast<std::uint64_t>(v) << shift) & mask);
    return *this;
  }
  static std::uint32_t get(std::uint64_t word, unsigned shift,
                           unsigned width) {
    return static_cast<std::uint32_t>((word >> shift) &
                                      ((std::uint64_t{1} << width) - 1));
  }

  std::uint64_t bits_ = ~std::uint64_t{0};      // all fields absent
  std::uint64_t ext_bits_ = ~std::uint64_t{0};  // file/tenant absent
};

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram, kSketch };

  using FamilyId = std::uint32_t;

  /// Registers (or finds) the family `name`; the kind must match on reuse.
  FamilyId family(std::string_view name, Kind kind);

  /// counter += delta.
  void add(FamilyId family, LabelSet labels, double delta);
  /// gauge = value (last write wins).
  void set(FamilyId family, LabelSet labels, double value);
  /// gauge = max(gauge, value).
  void set_max(FamilyId family, LabelSet labels, double value);
  /// histogram or sketch <- value (dispatches on the family's kind).
  void observe(FamilyId family, LabelSet labels, double value);

  /// Reads back a scalar (counter/gauge); 0 when the series doesn't exist.
  double value(std::string_view name, LabelSet labels = {}) const;
  /// Reads back a histogram series; nullptr when it doesn't exist.
  const LogHistogram* histogram(std::string_view name,
                                LabelSet labels = {}) const;
  /// Reads back a quantile-sketch series; nullptr when it doesn't exist.
  const QuantileSketch* sketch(std::string_view name,
                               LabelSet labels = {}) const;

  /// Merges `other` into this registry: counters add, gauges take the max
  /// (they are high-water marks across replicas), histograms and sketches
  /// merge exactly.  Families are matched by name, so merge order never
  /// changes the result.
  void merge(const MetricsRegistry& other);

  /// Deterministic JSON dump: families sorted by name, series by label bits.
  /// Emits one object per series with decoded labels.
  void write_json(std::ostream& out, int indent = 0) const;

  std::size_t family_count() const { return families_.size(); }

 private:
  /// 128-bit series key: the packed primary word plus the file/tenant
  /// extension word (all-absent for legacy series, so they hash and sort
  /// exactly as their pre-namespace 64-bit keys did).
  struct SeriesKey {
    std::uint64_t bits = 0;
    std::uint64_t ext = 0;
    friend bool operator==(const SeriesKey&, const SeriesKey&) = default;
    friend bool operator<(const SeriesKey& a, const SeriesKey& b) {
      return a.bits != b.bits ? a.bits < b.bits : a.ext < b.ext;
    }
  };
  struct SeriesKeyHash {
    std::size_t operator()(const SeriesKey& k) const {
      return static_cast<std::size_t>(
          (k.bits * 0x9E3779B97F4A7C15ull) ^ k.ext);
    }
  };

  struct Family {
    std::string name;
    Kind kind = Kind::kCounter;
    // label words -> index into scalars/histograms/sketches
    std::unordered_map<SeriesKey, std::size_t, SeriesKeyHash> series;
    std::vector<double> scalars;
    std::vector<LogHistogram> histograms;
    std::vector<QuantileSketch> sketches;
  };

  Family* find(std::string_view name);
  const Family* find(std::string_view name) const;
  std::size_t series_index(Family& f, LabelSet labels);

  std::vector<Family> families_;
  std::unordered_map<std::string, FamilyId> by_name_;
};

}  // namespace harl::obs
