// Flight recorder: the standard observability sink.
//
// Combines three instruments over one simulated run:
//   * a MetricsRegistry (counters/gauges/log-histograms keyed by interned
//     labels) fed by the server/client hooks;
//   * a span-based trace in *simulated* time — one track per server disk,
//     server NIC, client NIC and client — exported as Chrome trace-event /
//     Perfetto-compatible JSON ("X" spans for FIFO service, async "b"/"e"
//     spans for queue waits so concurrent waiters never break nesting,
//     instant events for region-boundary crossings).  A ring-buffer mode
//     (Options::max_trace_events) keeps long runs bounded: the newest events
//     win and the drop count is reported;
//   * per-request attribution that measures the paper's Section III-D
//     decomposition — network transfer T_X, startup T_S, storage transfer
//     T_T — per sub-request, and reconciles each completed request against a
//     caller-supplied cost-model predictor (model-error histogram per
//     region, the distribution behind bench_micro_model_accuracy's number).
//
// Per-track utilization and queue-depth timelines use self-scaling buckets:
// a fixed bucket count whose width doubles (adjacent buckets coalescing) as
// simulated time grows, so memory stays bounded without choosing a horizon
// up front.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"

namespace harl::obs {

/// Additive or max-sampled time series with a bounded bucket count: when an
/// event lands past the last bucket, adjacent buckets coalesce (width
/// doubles) until it fits.
class Timeline {
 public:
  Timeline(Seconds initial_width, std::size_t max_buckets, bool take_max);

  /// Adds the overlap of [t0, t1) to every bucket it crosses (additive
  /// mode: busy-seconds accumulation).
  void add_span(Seconds t0, Seconds t1);
  /// Raises the bucket containing `t` to at least `v` (max mode).
  void sample_max(Seconds t, double v);

  Seconds bucket_width() const { return width_; }
  const std::vector<double>& values() const { return values_; }

 private:
  void fit(Seconds t);

  Seconds width_;
  std::size_t max_buckets_;
  bool take_max_;
  std::vector<double> values_;
};

class Recorder final : public Sink {
 public:
  struct Options {
    /// Record span/instant trace events (metrics are always collected).
    bool trace = true;
    /// Ring-buffer capacity for trace events; 0 = unbounded.
    std::size_t max_trace_events = 0;
    /// Completed request samples kept for inspection (ring; attribution
    /// histograms see every request regardless).
    std::size_t max_request_samples = 16384;
    /// Buckets per utilization/queue-depth timeline (width self-scales).
    std::size_t timeline_buckets = 256;
    Seconds timeline_initial_width = 1e-3;
  };

  Recorder();
  explicit Recorder(Options options);

  // --- Sink ---------------------------------------------------------------
  std::uint32_t track(std::string_view name, TrackKind kind,
                      std::uint32_t entity) override;
  std::uint32_t register_server(std::uint32_t server, std::uint32_t tier,
                                std::string_view name, bool is_ssd) override;
  std::uint32_t register_client(std::uint32_t client) override;
  void resource_event(std::uint32_t track, Seconds arrival, Seconds start,
                      Seconds finish) override;
  void server_access(std::uint32_t server, IoOp op, std::uint32_t region,
                     Bytes bytes, Bytes pieces, Seconds now) override;
  std::uint32_t begin_request(std::uint32_t client, IoOp op, Bytes offset,
                              Bytes size, Seconds now,
                              std::uint32_t file = kNoId) override;
  std::uint32_t begin_sub(std::uint32_t request, std::uint32_t server,
                          std::uint32_t region, Bytes bytes,
                          Seconds now) override;
  void sub_storage(std::uint32_t sub, Seconds arrival, Seconds start,
                   Seconds startup, Seconds service) override;
  void sub_net_done(std::uint32_t sub, Seconds now) override;
  void end_request(std::uint32_t request, Seconds now) override;
  void adaptive_event(AdaptiveEvent event, std::uint32_t epoch, Bytes bytes,
                      Seconds now) override;
  void health_event(HealthEvent event, std::uint32_t server, double score,
                    Seconds now) override;

  // --- attribution --------------------------------------------------------

  /// Cost-model prediction hook: given (op, offset, size) returns the
  /// analytic request cost.  When set, every completed request records its
  /// relative model error into the per-region "model.rel_error" histogram.
  using Predictor = std::function<Seconds(IoOp, Bytes, Bytes)>;
  void set_predictor(Predictor predictor) { predictor_ = std::move(predictor); }

  /// Namespace tenant mapping: tenant_of[file] labels per-file series with
  /// their tenant.  Files beyond the vector (and the legacy kNoId path) get
  /// no tenant label.
  void set_tenant_of(std::vector<std::uint32_t> tenant_of) {
    tenant_of_ = std::move(tenant_of);
  }

  /// Measured decomposition of one sub-request (all in simulated seconds).
  struct SubSample {
    std::uint32_t server = 0;
    std::uint32_t tier = 0;
    std::uint32_t region = 0;
    Bytes bytes = 0;
    Seconds issue = 0.0;  ///< client issued the sub-request
    Seconds wait = 0.0;   ///< storage queue wait
    Seconds t_s = 0.0;    ///< measured startup (paper T_S)
    Seconds t_t = 0.0;    ///< measured storage transfer incl. per-stripe cost
    Seconds t_x = 0.0;    ///< measured network transfer (paper T_X)
    Seconds done = 0.0;   ///< sub-request completion time
  };

  struct RequestSample {
    std::uint32_t client = 0;
    IoOp op = IoOp::kRead;
    Bytes offset = 0;
    Bytes size = 0;
    std::uint32_t region = 0;     ///< region of the first sub-request
    std::uint32_t file = kNoId;   ///< namespace FileId (kNoId = single-file)
    Seconds issue = 0.0;
    Seconds done = 0.0;
    Seconds predicted = -1.0;     ///< model cost; < 0 when no predictor set
    std::vector<SubSample> subs;  ///< completion order

    Seconds latency() const { return done - issue; }
  };

  /// Completed requests, oldest first (bounded by max_request_samples).
  const std::vector<RequestSample>& requests() const { return samples_; }
  std::uint64_t requests_completed() const { return requests_completed_; }

  // --- summaries ----------------------------------------------------------

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  struct ResourceSummary {
    std::string name;
    TrackKind kind = TrackKind::kOther;
    std::uint32_t entity = kNoId;  ///< server/client index within the kind
    std::uint32_t tier = kNoId;
    bool is_ssd = false;
    Seconds busy = 0.0;
    Seconds queue_delay = 0.0;
    std::uint64_t jobs = 0;
    std::uint64_t depth_max = 0;
    const LogHistogram* wait = nullptr;     ///< per-job queue wait
    const LogHistogram* service = nullptr;  ///< per-job service time
    const Timeline* busy_timeline = nullptr;
    const Timeline* depth_timeline = nullptr;
  };
  /// One summary per registered track, in track order.
  std::vector<ResourceSummary> resource_summaries() const;

  /// Latest simulated timestamp seen by any hook (the observed horizon).
  Seconds last_time() const { return last_time_; }
  std::uint64_t trace_events_recorded() const { return events_recorded_; }
  std::uint64_t trace_events_dropped() const { return events_dropped_; }

  // --- export -------------------------------------------------------------

  /// Complete Chrome trace-event JSON object for this recorder alone.
  void write_trace_json(std::ostream& out,
                        std::string_view process_name = "harl") const;

  /// Appends this recorder's trace events (plus its process/thread metadata)
  /// to an already-open traceEvents array; `first` tracks comma placement
  /// across recorders so several runs can share one file, one pid each.
  void append_trace_events(std::ostream& out, std::uint32_t pid,
                           std::string_view process_name, bool& first) const;

  /// Structured metrics JSON for this run: per-resource summaries with
  /// utilization/queue-depth timelines, request attribution histograms and
  /// the raw registry dump.  `indent` is the base indentation.
  void write_metrics_json(std::ostream& out, int indent = 0) const;

 private:
  // Trace event storage: one compact POD per logical span/instant; async
  // begin/end pairs are expanded at export time.
  enum class EventType : std::uint8_t { kService, kWait, kInstant, kRequest };
  struct TraceEvent {
    Seconds ts = 0.0;
    Seconds dur = 0.0;
    std::uint32_t track = 0;
    EventType type = EventType::kService;
    std::uint8_t op = 0xFF;
    std::uint64_t id = 0;   ///< async-pair id
    std::uint64_t arg = 0;  ///< region / bytes
  };

  struct TrackState {
    std::string name;
    TrackKind kind = TrackKind::kOther;
    std::uint32_t entity = kNoId;
    std::uint32_t tier = kNoId;
    bool is_ssd = false;
    /// MDS queue track: resource events additionally feed the
    /// "pfs.mds.time" resident-time sketch (satellite: open-storm
    /// contention must be visible next to the pfs.server.time sketches).
    bool is_mds = false;
    Seconds busy = 0.0;
    Seconds queue_delay = 0.0;
    std::uint64_t jobs = 0;
    std::uint64_t depth_max = 0;
    LogHistogram wait;
    LogHistogram service;
    Timeline busy_timeline;
    Timeline depth_timeline;
    /// Outstanding job finish times (min-heap): exact in-flight count at
    /// each arrival, because per-track arrivals are monotone in a DES.
    std::priority_queue<Seconds, std::vector<Seconds>, std::greater<>> inflight;

    TrackState(std::string name_, TrackKind kind_, std::uint32_t entity_,
               const Options& opts);
  };

  struct ActiveSub {
    std::uint32_t request = kNoId;
    std::uint32_t server = 0;
    std::uint32_t region = 0;
    Bytes bytes = 0;
    Seconds issue = 0.0;
    Seconds arrival = -1.0;
    Seconds start = -1.0;
    Seconds startup = 0.0;
    Seconds service = 0.0;
  };

  struct ActiveRequest {
    std::uint32_t client = 0;
    IoOp op = IoOp::kRead;
    Bytes offset = 0;
    Bytes size = 0;
    std::uint32_t region = kNoId;
    std::uint32_t file = kNoId;
    Seconds issue = 0.0;
    std::vector<SubSample> subs;
  };

  struct ServerMeta {
    std::uint32_t track = kNoId;
    std::uint32_t tier = kNoId;
    std::uint32_t last_region = kNoId;
    bool is_ssd = false;
  };

  void push_event(const TraceEvent& event);
  void note_time(Seconds t) { last_time_ = std::max(last_time_, t); }
  void finalize_sub(std::uint32_t sub, Seconds t_x, Seconds done);
  /// {file, tenant} labels for a namespace file (no-op labels for kNoId).
  LabelSet file_labels(std::uint32_t file) const;

  Options options_;
  MetricsRegistry metrics_;
  Predictor predictor_;

  std::vector<TrackState> tracks_;
  std::vector<ServerMeta> servers_;        // by global server index
  std::vector<std::uint32_t> client_tracks_;  // by client index
  std::uint32_t adaptive_track_ = kNoId;   // lazily created on first event
  std::uint32_t health_track_ = kNoId;     // lazily created on first event

  std::vector<TraceEvent> events_;  // ring when max_trace_events > 0
  std::size_t ring_next_ = 0;
  std::uint64_t events_recorded_ = 0;
  std::uint64_t events_dropped_ = 0;
  std::uint64_t next_async_id_ = 0;

  std::vector<ActiveRequest> req_slots_;
  std::vector<std::uint32_t> req_free_;
  std::vector<ActiveSub> sub_slots_;
  std::vector<std::uint32_t> sub_free_;

  std::vector<RequestSample> samples_;
  std::size_t samples_next_ = 0;
  std::uint64_t requests_completed_ = 0;

  Seconds last_time_ = 0.0;

  // Pre-registered metric families (hot-path observations index these).
  MetricsRegistry::FamilyId m_bytes_;
  MetricsRegistry::FamilyId m_accesses_;
  MetricsRegistry::FamilyId m_pieces_;
  MetricsRegistry::FamilyId m_region_switches_;
  MetricsRegistry::FamilyId m_latency_;
  MetricsRegistry::FamilyId m_wait_;
  MetricsRegistry::FamilyId m_ts_;
  MetricsRegistry::FamilyId m_tt_;
  MetricsRegistry::FamilyId m_tx_;
  MetricsRegistry::FamilyId m_rel_error_;
  MetricsRegistry::FamilyId m_server_time_;
  MetricsRegistry::FamilyId m_mds_time_;
  MetricsRegistry::FamilyId m_file_bytes_;
  MetricsRegistry::FamilyId m_file_latency_;

  std::vector<std::uint32_t> tenant_of_;  // by FileId; empty = no tenants
};

}  // namespace harl::obs
