#include "src/obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace harl::obs {

namespace {

/// Minimal JSON string escaping (metric names are plain identifiers, but a
/// malformed name must not produce malformed JSON).
void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

void write_labels(std::ostream& out, const LabelSet& labels) {
  bool first = true;
  auto field = [&](const char* key, bool present, auto&& value) {
    if (!present) return;
    out << (first ? "" : ", ");
    first = false;
    out << '"' << key << "\": " << value;
  };
  out << '{';
  field("server", labels.server_value() != LabelSet::kNone,
        labels.server_value());
  field("tier", labels.tier_value() != 0xFFu, labels.tier_value());
  field("region", labels.region_value() != LabelSet::kNoneRegion,
        labels.region_value());
  field("client", labels.client_value() != LabelSet::kNone,
        labels.client_value());
  field("file", labels.file_value() != LabelSet::kNone, labels.file_value());
  field("tenant", labels.tenant_value() != LabelSet::kNone,
        labels.tenant_value());
  if (labels.has_op()) {
    out << (first ? "" : ", ");
    first = false;
    out << "\"op\": \"" << to_string(labels.op_value()) << '"';
  }
  out << '}';
}

void write_histogram(std::ostream& out, const LogHistogram& h) {
  out << "\"count\": " << h.count() << ", \"sum\": " << h.sum()
      << ", \"min\": " << h.min() << ", \"max\": " << h.max()
      << ", \"mean\": " << h.mean() << ", \"p50\": " << h.percentile(50.0)
      << ", \"p95\": " << h.percentile(95.0)
      << ", \"p99\": " << h.percentile(99.0) << ", \"buckets\": [";
  bool first = true;
  for (const auto& b : h.buckets()) {
    if (!first) out << ", ";
    first = false;
    out << '[' << b.lo << ", " << b.hi << ", " << b.count << ']';
  }
  out << ']';
}

void write_sketch(std::ostream& out, const QuantileSketch& s) {
  out << "\"count\": " << s.count() << ", \"sum\": " << s.sum()
      << ", \"min\": " << s.min() << ", \"max\": " << s.max()
      << ", \"mean\": " << s.mean() << ", \"p50\": " << s.percentile(50.0)
      << ", \"p95\": " << s.percentile(95.0)
      << ", \"p99\": " << s.percentile(99.0)
      << ", \"p999\": " << s.quantile(0.999) << ", \"buckets\": [";
  bool first = true;
  for (const auto& b : s.buckets()) {
    if (!first) out << ", ";
    first = false;
    out << '[' << b.lo << ", " << b.hi << ", " << b.count << ']';
  }
  out << ']';
}

}  // namespace

MetricsRegistry::FamilyId MetricsRegistry::family(std::string_view name,
                                                  Kind kind) {
  if (auto it = by_name_.find(std::string(name)); it != by_name_.end()) {
    if (families_[it->second].kind != kind) {
      throw std::invalid_argument("metric family kind mismatch: " +
                                  std::string(name));
    }
    return it->second;
  }
  const auto id = static_cast<FamilyId>(families_.size());
  Family f;
  f.name = std::string(name);
  f.kind = kind;
  families_.push_back(std::move(f));
  by_name_.emplace(std::string(name), id);
  return id;
}

std::size_t MetricsRegistry::series_index(Family& f, LabelSet labels) {
  auto [it, inserted] =
      f.series.try_emplace(SeriesKey{labels.bits(), labels.ext_bits()}, 0);
  if (inserted) {
    if (f.kind == Kind::kHistogram) {
      it->second = f.histograms.size();
      f.histograms.emplace_back();
    } else if (f.kind == Kind::kSketch) {
      it->second = f.sketches.size();
      f.sketches.emplace_back();
    } else {
      it->second = f.scalars.size();
      f.scalars.push_back(0.0);
    }
  }
  return it->second;
}

void MetricsRegistry::add(FamilyId family, LabelSet labels, double delta) {
  Family& f = families_.at(family);
  f.scalars[series_index(f, labels)] += delta;
}

void MetricsRegistry::set(FamilyId family, LabelSet labels, double value) {
  Family& f = families_.at(family);
  f.scalars[series_index(f, labels)] = value;
}

void MetricsRegistry::set_max(FamilyId family, LabelSet labels, double value) {
  Family& f = families_.at(family);
  double& slot = f.scalars[series_index(f, labels)];
  slot = std::max(slot, value);
}

void MetricsRegistry::observe(FamilyId family, LabelSet labels, double value) {
  Family& f = families_.at(family);
  if (f.kind == Kind::kSketch) {
    f.sketches[series_index(f, labels)].add(value);
  } else {
    f.histograms[series_index(f, labels)].add(value);
  }
}

MetricsRegistry::Family* MetricsRegistry::find(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : &families_[it->second];
}

const MetricsRegistry::Family* MetricsRegistry::find(
    std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : &families_[it->second];
}

double MetricsRegistry::value(std::string_view name, LabelSet labels) const {
  const Family* f = find(name);
  if (f == nullptr) return 0.0;
  auto it = f->series.find(SeriesKey{labels.bits(), labels.ext_bits()});
  if (it == f->series.end() ||
      (f->kind != Kind::kCounter && f->kind != Kind::kGauge)) {
    return 0.0;
  }
  return f->scalars[it->second];
}

const LogHistogram* MetricsRegistry::histogram(std::string_view name,
                                               LabelSet labels) const {
  const Family* f = find(name);
  if (f == nullptr || f->kind != Kind::kHistogram) return nullptr;
  auto it = f->series.find(SeriesKey{labels.bits(), labels.ext_bits()});
  return it == f->series.end() ? nullptr : &f->histograms[it->second];
}

const QuantileSketch* MetricsRegistry::sketch(std::string_view name,
                                              LabelSet labels) const {
  const Family* f = find(name);
  if (f == nullptr || f->kind != Kind::kSketch) return nullptr;
  auto it = f->series.find(SeriesKey{labels.bits(), labels.ext_bits()});
  return it == f->series.end() ? nullptr : &f->sketches[it->second];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const Family& of : other.families_) {
    const FamilyId id = family(of.name, of.kind);
    Family& f = families_[id];
    // Deterministic order: sort the other side's series by label bits so the
    // merged registry's series insertion order never depends on hash layout.
    std::vector<std::pair<SeriesKey, std::size_t>> entries(of.series.begin(),
                                                           of.series.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, idx] : entries) {
      const std::size_t mine =
          series_index(f, LabelSet::from_bits(key.bits, key.ext));
      switch (f.kind) {
        case Kind::kCounter:
          f.scalars[mine] += of.scalars[idx];
          break;
        case Kind::kGauge:
          f.scalars[mine] = std::max(f.scalars[mine], of.scalars[idx]);
          break;
        case Kind::kHistogram:
          f.histograms[mine].merge(of.histograms[idx]);
          break;
        case Kind::kSketch:
          f.sketches[mine].merge(of.sketches[idx]);
          break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  out.precision(17);  // round-trip doubles: 6 digits would corrupt merges
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::vector<std::size_t> order(families_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return families_[a].name < families_[b].name;
  });

  out << "[";
  bool first_series = true;
  for (std::size_t fi : order) {
    const Family& f = families_[fi];
    std::vector<std::pair<SeriesKey, std::size_t>> entries(f.series.begin(),
                                                           f.series.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, idx] : entries) {
      if (!first_series) out << ",";
      first_series = false;
      out << "\n" << pad << "  {\"name\": ";
      write_escaped(out, f.name);
      out << ", \"type\": \""
          << (f.kind == Kind::kCounter
                  ? "counter"
                  : f.kind == Kind::kGauge
                        ? "gauge"
                        : f.kind == Kind::kSketch ? "sketch" : "histogram")
          << "\", \"labels\": ";
      write_labels(out, LabelSet::from_bits(key.bits, key.ext));
      out << ", ";
      if (f.kind == Kind::kHistogram) {
        write_histogram(out, f.histograms[idx]);
      } else if (f.kind == Kind::kSketch) {
        write_sketch(out, f.sketches[idx]);
      } else {
        out << "\"value\": " << f.scalars[idx];
      }
      out << '}';
    }
  }
  out << "\n" << pad << "]";
}

}  // namespace harl::obs
