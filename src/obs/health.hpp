// Straggler/SLO health monitor (DESIGN.md §15).
//
// A HealthMonitor sits on the observer seat as a transparent obs::Sink
// forwarder (the AdaptiveLayoutManager pattern), placed *behind* the
// ObsSequencer so PDES replay feeds it the same deterministic call order the
// serial engine would.  It owns the run's TimeSeries: every server storage
// queue job (resource_event on a registered server-disk track) becomes a
// latency/busy/depth sample, and cache_event feeds the fleet hit-rate
// timeline.
//
// When a window closes (the monotone time watermark passes its end), each
// server with enough jobs is scored as
//     score = window mean latency / fleet median of window means,
// and a flag/recover hysteresis turns scores into discrete straggler state:
// `flag_windows` consecutive windows at score >= flag_threshold flag the
// server (health.straggler_flagged counter + a trace instant through the
// downstream sink); `recover_windows` consecutive windows at
// score <= recover_threshold clear it.  Idle windows leave streaks unchanged.
// An optional per-request SLO deadline is tracked at two levels: whole
// requests (latency <= slo, per op) and storage sub-requests (server-resident
// time <= slo, per server) — the per-server view is what localizes an SLO
// regression to an injected straggler.
//
// All counters/gauges live in the monitor's own MetricsRegistry and merge
// order-independently into the run recorder's registry afterwards.  The
// future straggler-aware scheduler consumes `server_score()` /
// `is_flagged()` mid-run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <queue>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"
#include "src/obs/timeseries.hpp"

namespace harl::obs {

class HealthMonitor final : public Sink {
 public:
  struct Options {
    Seconds interval = 1.0;         ///< scoring window width (sim seconds)
    std::size_t window_capacity = 4096;  ///< TimeSeries ring capacity
    Seconds slo = 0.0;              ///< request deadline; 0 disables SLO
    double flag_threshold = 2.0;    ///< score at/above => slow window
    double recover_threshold = 1.25;  ///< score at/below => healthy window
    std::size_t flag_windows = 2;   ///< consecutive slow windows to flag
    std::size_t recover_windows = 2;  ///< consecutive healthy to recover
    std::uint64_t min_window_jobs = 1;  ///< jobs needed to score a window
  };

  /// `downstream` (optional, not owned) receives every Sink call unchanged
  /// plus the health_event instants this monitor originates.
  explicit HealthMonitor(Options options, Sink* downstream = nullptr);

  /// Namespace tenant mapping: tenant_of[file] attributes whole-request SLO
  /// attainment to tenants (files beyond the vector, and the legacy kNoId
  /// path, stay unattributed — single-file output is unchanged).
  void set_tenant_of(std::vector<std::uint32_t> tenant_of) {
    tenant_of_ = std::move(tenant_of);
  }

  // --- obs::Sink: forward everything, harvest telemetry --------------------
  std::uint32_t track(std::string_view name, TrackKind kind,
                      std::uint32_t entity) override;
  std::uint32_t register_server(std::uint32_t server, std::uint32_t tier,
                                std::string_view name, bool is_ssd) override;
  std::uint32_t register_client(std::uint32_t client) override;
  void resource_event(std::uint32_t track, Seconds arrival, Seconds start,
                      Seconds finish) override;
  void server_access(std::uint32_t server, IoOp op, std::uint32_t region,
                     Bytes bytes, Bytes pieces, Seconds now) override;
  std::uint32_t begin_request(std::uint32_t client, IoOp op, Bytes offset,
                              Bytes size, Seconds now,
                              std::uint32_t file = kNoId) override;
  std::uint32_t begin_sub(std::uint32_t request, std::uint32_t server,
                          std::uint32_t region, Bytes bytes,
                          Seconds now) override;
  void sub_storage(std::uint32_t sub, Seconds arrival, Seconds start,
                   Seconds startup, Seconds service) override;
  void sub_net_done(std::uint32_t sub, Seconds now) override;
  void end_request(std::uint32_t request, Seconds now) override;
  void adaptive_event(AdaptiveEvent event, std::uint32_t epoch, Bytes bytes,
                      Seconds now) override;
  void cache_event(Bytes hit_bytes, Bytes miss_bytes, Seconds now) override;
  void health_event(HealthEvent event, std::uint32_t server, double score,
                    Seconds now) override;

  // --- results -------------------------------------------------------------

  /// Scores every window up to the newest one holding data (the run's tail
  /// windows never see their end pass otherwise).  Idempotent.
  void finalize();

  /// Latest slowness score of `server` (mean / fleet median); 0 before the
  /// server's first scored window.  The straggler scheduler's input.
  double server_score(std::uint32_t server) const;
  bool is_flagged(std::uint32_t server) const;

  /// Per-tenant whole-request SLO attainment in [0, 1]; 1.0 when the tenant
  /// completed no SLO-checked requests.  Requires an SLO and set_tenant_of.
  double tenant_slo_attainment(std::uint32_t tenant) const;

  const TimeSeries& timeseries() const { return ts_; }
  const Options& options() const { return options_; }

  /// health.* metric families; merge into the run recorder's registry after
  /// the run, e.g. recorder.metrics().merge(monitor.metrics()).
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Deterministic per-server health summary JSON: final score, flagged
  /// state, flag/recover counts and SLO attainment (per server + per op).
  void write_json(std::ostream& out, int indent = 0) const;

 private:
  struct Track {
    std::uint32_t down = kNoId;    ///< downstream track id
    std::uint32_t server = kNoId;  ///< global server index (disk tracks)
    bool is_server_disk = false;
  };
  struct ServerState {
    double score = 0.0;
    bool scored = false;
    bool flagged = false;
    std::uint32_t flag_streak = 0;
    std::uint32_t recover_streak = 0;
    std::uint64_t flag_count = 0;
    std::uint64_t recover_count = 0;
    std::uint64_t slo_total = 0;  ///< storage subs checked against the SLO
    std::uint64_t slo_met = 0;
    /// Finish times of in-flight storage jobs (queue-depth tracking).
    std::priority_queue<double, std::vector<double>, std::greater<>> inflight;
  };
  struct PendingReq {
    std::uint32_t down = kNoId;
    IoOp op = IoOp::kRead;
    std::uint32_t file = kNoId;
    Seconds issue = 0.0;
    bool live = false;
  };
  struct PendingSub {
    std::uint32_t down = kNoId;
    std::uint32_t server = kNoId;
    IoOp op = IoOp::kRead;
    bool live = false;
  };

  /// Advances the window watermark to `t`'s window, scoring every window
  /// that closed.  Every sink call's earliest timestamp is nondecreasing in
  /// dispatch/replay order (events are emitted at sim.now()), so a closed
  /// window can never receive data afterwards.
  void advance(Seconds t);
  void score_window(std::int64_t w);
  void free_sub(std::uint32_t sub);

  Options options_;
  Sink* downstream_;
  TimeSeries ts_;

  std::vector<Track> tracks_;
  std::map<std::uint32_t, ServerState> servers_;

  std::vector<PendingReq> reqs_;
  std::vector<std::uint32_t> req_free_;
  std::vector<PendingSub> subs_;
  std::vector<std::uint32_t> sub_free_;

  bool started_ = false;
  bool finalized_ = false;
  std::int64_t next_to_score_ = 0;

  /// Whole-request SLO attainment, indexed by op (0 read, 1 write).
  std::uint64_t req_total_[2] = {0, 0};
  std::uint64_t req_met_[2] = {0, 0};

  /// Per-tenant whole-request SLO attainment (namespace runs only).
  struct TenantSlo {
    std::uint64_t total = 0;
    std::uint64_t met = 0;
  };
  std::map<std::uint32_t, TenantSlo> tenant_slo_;
  std::vector<std::uint32_t> tenant_of_;  // by FileId; empty = no tenants

  MetricsRegistry metrics_;
  MetricsRegistry::FamilyId m_windows_scored_;
  MetricsRegistry::FamilyId m_flagged_;
  MetricsRegistry::FamilyId m_recovered_;
  MetricsRegistry::FamilyId m_score_;
  MetricsRegistry::FamilyId m_slo_req_total_;
  MetricsRegistry::FamilyId m_slo_req_met_;
  MetricsRegistry::FamilyId m_slo_sub_total_;
  MetricsRegistry::FamilyId m_slo_sub_met_;
  MetricsRegistry::FamilyId m_slo_tenant_total_;
  MetricsRegistry::FamilyId m_slo_tenant_met_;
};

}  // namespace harl::obs
