#include "src/obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>
#include <stdexcept>

namespace harl::obs {

TimeSeries::TimeSeries(Options options)
    : interval_(options.interval), capacity_(options.capacity) {
  if (!(interval_ > 0.0)) {
    throw std::invalid_argument("TimeSeries interval must be > 0");
  }
  if (capacity_ == 0) capacity_ = 1;
}

std::int64_t TimeSeries::window_of(Seconds t) const {
  return static_cast<std::int64_t>(std::floor(t / interval_));
}

TimeSeries::Window& TimeSeries::window(std::int64_t index) {
  auto it = std::lower_bound(
      windows_.begin(), windows_.end(), index,
      [](const Window& w, std::int64_t i) { return w.index < i; });
  if (it == windows_.end() || it->index != index) {
    Window w;
    w.index = index;
    it = windows_.insert(it, std::move(w));
    if (windows_.size() > capacity_) {
      windows_.erase(windows_.begin());
      ++dropped_;
      it = std::lower_bound(
          windows_.begin(), windows_.end(), index,
          [](const Window& w2, std::int64_t i) { return w2.index < i; });
    }
  }
  return *it;
}

TimeSeries::ServerCell& TimeSeries::cell(std::int64_t index,
                                         std::uint32_t server) {
  return window(index).servers[server];
}

const TimeSeries::Window* TimeSeries::find_window(std::int64_t index) const {
  auto it = std::lower_bound(
      windows_.begin(), windows_.end(), index,
      [](const Window& w, std::int64_t i) { return w.index < i; });
  return (it == windows_.end() || it->index != index) ? nullptr : &*it;
}

void TimeSeries::record_span(std::uint32_t server, Seconds arrival,
                             Seconds start, Seconds finish) {
  const std::int64_t wa = window_of(arrival);
  if (dropped_ == 0 || windows_.empty() || wa >= windows_.front().index) {
    ServerCell& c = cell(wa, server);
    const double lat = finish - arrival;
    ++c.jobs;
    c.lat_sum += lat;
    c.lat.add(lat);
  }
  // Busy time is clipped per overlapped window so utilization is exact even
  // for services that straddle a boundary.
  const std::int64_t w0 = window_of(start);
  const std::int64_t w1 = window_of(finish);
  for (std::int64_t w = w0; w <= w1; ++w) {
    const double lo = std::max(start, static_cast<double>(w) * interval_);
    const double hi =
        std::min(finish, static_cast<double>(w + 1) * interval_);
    if (hi <= lo) continue;
    if (dropped_ > 0 && !windows_.empty() && w < windows_.front().index) {
      continue;
    }
    cell(w, server).busy += hi - lo;
  }
}

void TimeSeries::record_depth(std::uint32_t server, Seconds now,
                              std::uint64_t depth) {
  const std::int64_t w = window_of(now);
  if (dropped_ > 0 && !windows_.empty() && w < windows_.front().index) return;
  ServerCell& c = cell(w, server);
  c.depth_max = std::max(c.depth_max, depth);
}

void TimeSeries::record_cache(Bytes hit_bytes, Bytes miss_bytes, Seconds now) {
  const std::int64_t w = window_of(now);
  if (dropped_ > 0 && !windows_.empty() && w < windows_.front().index) return;
  Window& win = window(w);
  win.cache_hit += hit_bytes;
  win.cache_miss += miss_bytes;
}

double TimeSeries::window_latency_mean(std::int64_t w,
                                       std::uint32_t server) const {
  const Window* win = find_window(w);
  if (win == nullptr) return 0.0;
  auto it = win->servers.find(server);
  if (it == win->servers.end() || it->second.jobs == 0) return 0.0;
  return it->second.lat_sum / static_cast<double>(it->second.jobs);
}

std::uint64_t TimeSeries::window_jobs(std::int64_t w,
                                      std::uint32_t server) const {
  const Window* win = find_window(w);
  if (win == nullptr) return 0;
  auto it = win->servers.find(server);
  return it == win->servers.end() ? 0 : it->second.jobs;
}

std::vector<TimeSeries::WindowServerStat> TimeSeries::window_stats(
    std::int64_t w) const {
  std::vector<WindowServerStat> out;
  const Window* win = find_window(w);
  if (win == nullptr) return out;
  for (const auto& [id, c] : win->servers) {
    WindowServerStat s;
    s.server = id;
    s.jobs = c.jobs;
    s.lat_mean =
        c.jobs > 0 ? c.lat_sum / static_cast<double>(c.jobs) : 0.0;
    out.push_back(s);
  }
  return out;
}

void TimeSeries::write_json(std::ostream& out, int indent) const {
  out.precision(17);
  const std::string pad(static_cast<std::size_t>(indent), ' ');

  std::set<std::uint32_t> server_ids;
  for (const Window& w : windows_) {
    for (const auto& [id, c] : w.servers) server_ids.insert(id);
  }

  out << "{\n" << pad << "  \"interval_s\": " << interval_ << ",\n"
      << pad << "  \"windows\": " << windows_.size() << ",\n"
      << pad << "  \"first_window\": "
      << (windows_.empty() ? 0 : windows_.front().index) << ",\n"
      << pad << "  \"dropped_windows\": " << dropped_ << ",\n"
      << pad << "  \"window_index\": [";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    out << (i == 0 ? "" : ", ") << windows_[i].index;
  }
  out << "],\n" << pad << "  \"cache\": {\"hit_bytes\": [";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    out << (i == 0 ? "" : ", ") << windows_[i].cache_hit;
  }
  out << "], \"miss_bytes\": [";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    out << (i == 0 ? "" : ", ") << windows_[i].cache_miss;
  }
  out << "]},\n" << pad << "  \"servers\": [";

  bool first_server = true;
  for (std::uint32_t id : server_ids) {
    if (!first_server) out << ",";
    first_server = false;
    out << "\n" << pad << "    {\"server\": " << id;
    auto column = [&](const char* name, auto&& value) {
      out << ", \"" << name << "\": [";
      for (std::size_t i = 0; i < windows_.size(); ++i) {
        auto it = windows_[i].servers.find(id);
        const ServerCell* c =
            it == windows_[i].servers.end() ? nullptr : &it->second;
        out << (i == 0 ? "" : ", ");
        value(c);
      }
      out << ']';
    };
    column("jobs", [&](const ServerCell* c) { out << (c ? c->jobs : 0); });
    column("busy_s",
           [&](const ServerCell* c) { out << (c ? c->busy : 0.0); });
    column("utilization", [&](const ServerCell* c) {
      out << (c ? c->busy / interval_ : 0.0);
    });
    column("depth_max",
           [&](const ServerCell* c) { out << (c ? c->depth_max : 0); });
    column("lat_mean_s", [&](const ServerCell* c) {
      out << (c != nullptr && c->jobs > 0
                  ? c->lat_sum / static_cast<double>(c->jobs)
                  : 0.0);
    });
    column("lat_p50_s", [&](const ServerCell* c) {
      out << (c ? c->lat.percentile(50.0) : 0.0);
    });
    column("lat_p95_s", [&](const ServerCell* c) {
      out << (c ? c->lat.percentile(95.0) : 0.0);
    });
    column("lat_p99_s", [&](const ServerCell* c) {
      out << (c ? c->lat.percentile(99.0) : 0.0);
    });
    out << '}';
  }
  out << "\n" << pad << "  ]\n" << pad << '}';
}

}  // namespace harl::obs
