// Observability sink interface.
//
// Every instrumented component (FIFO resources, data servers, PFS clients)
// reports to an abstract `Sink` reached through the owning Simulator's
// observer pointer.  The default is no observer: the disabled path is one
// pointer load and branch per instrumentation point, the dispatch loop of
// the event engine itself is untouched, and nothing is allocated — the CI
// overhead guard (tools/bench_sim_report.py, obs_guard_* fields of
// bench/bench_sim_baseline.json) pins that property.  `obs::Recorder` is the
// standard implementation: a metrics registry plus a simulated-time flight
// recorder; tests may substitute their own sinks.
//
// All timestamps are *simulated* seconds (sim::Time == Seconds): the trace
// shows where simulated time goes, which is the quantity the paper's Fig. 1a
// and Section III-D decomposition reason about.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/common/io.hpp"
#include "src/common/units.hpp"

namespace harl::obs {

/// Invalid id for tracks, requests and sub-requests.
inline constexpr std::uint32_t kNoId = 0xFFFFFFFFu;

/// What a trace track represents (one track per server/client/NIC).
enum class TrackKind : std::uint8_t {
  kServerDisk,   ///< data server storage queue
  kServerNic,    ///< server network link
  kClientNic,    ///< client (compute node) network link
  kClient,       ///< per-client request track (request-lifetime spans)
  kOther,        ///< anything else (MDS queue, ad-hoc resources)
};

class Sink {
 public:
  virtual ~Sink() = default;

  // --- registration (cold path, once per entity) ---------------------------

  /// Registers a trace track; returns its id.  `entity` is the component
  /// index within its kind (server index, client index, ...), kNoId if none.
  virtual std::uint32_t track(std::string_view name, TrackKind kind,
                              std::uint32_t entity) = 0;

  /// Registers data server `server` (global index) of tier `tier` and
  /// returns the id of its storage track.
  virtual std::uint32_t register_server(std::uint32_t server,
                                        std::uint32_t tier,
                                        std::string_view name,
                                        bool is_ssd) = 0;

  /// Registers client `client` and returns the id of its request track.
  virtual std::uint32_t register_client(std::uint32_t client) = 0;

  // --- flight recorder (hot path, POD arguments only) ----------------------

  /// One FIFO resource job: arrived at `arrival`, started service at
  /// `start` (== arrival when the resource was idle), finished at `finish`.
  /// Produces the queue-wait vs service spans and feeds the per-track
  /// utilization/queue-depth timelines.
  virtual void resource_event(std::uint32_t track, Seconds arrival, Seconds start,
                              Seconds finish) = 0;

  /// One server-local access: op/region/bytes accounting per server, plus
  /// the region-boundary-crossing instant event when `region` differs from
  /// the server's previous access.
  virtual void server_access(std::uint32_t server, IoOp op,
                             std::uint32_t region, Bytes bytes, Bytes pieces,
                             Seconds now) = 0;

  // --- per-request attribution (paper Section III-D: T_X, T_S, T_T) --------

  /// Starts attribution of one client file request; returns a request id.
  /// `file` is the namespace FileId the request addresses (kNoId for the
  /// legacy single-file path — labels and per-file accounting are then
  /// suppressed, keeping single-file telemetry byte-identical).
  virtual std::uint32_t begin_request(std::uint32_t client, IoOp op,
                                      Bytes offset, Bytes size, Seconds now,
                                      std::uint32_t file = kNoId) = 0;

  /// Starts one sub-request of `request` on global server `server`
  /// addressing `region`; returns a sub-request id.
  virtual std::uint32_t begin_sub(std::uint32_t request, std::uint32_t server,
                                  std::uint32_t region, Bytes bytes,
                                  Seconds now) = 0;

  /// Storage stage of a sub-request, reported at submission (FIFO service
  /// times are fixed then): queue arrival/start, the device's startup
  /// component (measured T_S) and the total service time (T_S + T_T).
  /// For writes this is the final stage (the sub-request completes at
  /// start + service).
  virtual void sub_storage(std::uint32_t sub, Seconds arrival, Seconds start,
                           Seconds startup, Seconds service) = 0;

  /// Final network stage of a read sub-request (last byte reached the
  /// client NIC): measured T_X is `now` minus the storage finish time.
  virtual void sub_net_done(std::uint32_t sub, Seconds now) = 0;

  /// All sub-requests of `request` completed at `now`.
  virtual void end_request(std::uint32_t request, Seconds now) = 0;

  // --- adaptive layout (cold path, optional) -------------------------------

  /// Adaptive-layout lifecycle instants (epoch swaps and migration phases),
  /// emitted by the middleware AdaptiveLayoutManager.
  enum class AdaptiveEvent : std::uint8_t {
    kEpochInstalled,     ///< a new epoch became the planning target
    kMigrationStarted,   ///< background copy toward `epoch` began
    kMigrationFinished,  ///< background copy toward `epoch` completed
  };

  /// One adaptive-layout instant: `epoch` is the epoch id, `bytes` the
  /// event's payload (affected extent / bytes scheduled / bytes migrated).
  /// Defaulted to a no-op so existing sinks are unaffected.
  virtual void adaptive_event(AdaptiveEvent event, std::uint32_t epoch,
                              Bytes bytes, Seconds now) {
    (void)event;
    (void)epoch;
    (void)bytes;
    (void)now;
  }

  // --- telemetry plane (DESIGN.md §15, optional) ---------------------------

  /// Cache read outcome for one client call: `hit_bytes` were served from the
  /// read cache, `miss_bytes` went to the backing layout.  Emitted by the
  /// CacheManager; feeds the TimeSeries hit-rate timeline.  Defaulted to a
  /// no-op so existing sinks are unaffected.  Forwarding sinks that sit in
  /// front of the ObsSequencer (e.g. AdaptiveLayoutManager) must override and
  /// forward, or the event is swallowed.
  virtual void cache_event(Bytes hit_bytes, Bytes miss_bytes, Seconds now) {
    (void)hit_bytes;
    (void)miss_bytes;
    (void)now;
  }

  /// Health-monitor lifecycle instants, emitted by obs::HealthMonitor when a
  /// server's rolling slowness score crosses the flag/recover hysteresis.
  enum class HealthEvent : std::uint8_t {
    kStragglerFlagged,    ///< score stayed above the flag threshold
    kStragglerRecovered,  ///< score dropped back below the recover threshold
  };

  /// One health instant for `server` with the triggering slowness `score`.
  /// Defaulted to a no-op so existing sinks are unaffected.
  virtual void health_event(HealthEvent event, std::uint32_t server,
                            double score, Seconds now) {
    (void)event;
    (void)server;
    (void)score;
    (void)now;
  }
};

}  // namespace harl::obs
