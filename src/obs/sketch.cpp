#include "src/obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace harl::obs {

QuantileSketch::QuantileSketch(unsigned sub_bits) : sub_bits_(sub_bits) {
  if (sub_bits > 12) {
    throw std::invalid_argument("QuantileSketch sub_bits must be <= 12");
  }
}

std::int32_t QuantileSketch::bucket_index(double x) const {
  // x = m * 2^e with m in [0.5, 1); split [2^(e-1), 2^e) into 2^sub_bits
  // equal cells — the same geometry as LogHistogram, so the two agree on
  // every bucket boundary.
  int e = 0;
  const double m = std::frexp(x, &e);
  const auto sub = static_cast<std::int32_t>(1u << sub_bits_);
  auto cell =
      static_cast<std::int32_t>((m * 2.0 - 1.0) * static_cast<double>(sub));
  cell = std::min(std::max(cell, std::int32_t{0}), sub - 1);
  return static_cast<std::int32_t>(e) * sub + cell;
}

double QuantileSketch::bucket_low(std::int32_t index) const {
  const auto sub = static_cast<std::int32_t>(1u << sub_bits_);
  std::int32_t e = index / sub;
  std::int32_t cell = index % sub;
  if (cell < 0) {
    cell += sub;
    --e;
  }
  return std::ldexp(1.0 + static_cast<double>(cell) / static_cast<double>(sub),
                    e - 1);
}

std::uint64_t& QuantileSketch::slot(std::int32_t index) {
  if (counts_.empty()) {
    base_ = index;
    counts_.push_back(0);
    return counts_.front();
  }
  if (index < base_) {
    // Exact front growth: the dense range stays a pure function of the
    // touched index extremes (the equality/merge-determinism contract).
    counts_.insert(counts_.begin(), static_cast<std::size_t>(base_ - index),
                   0);
    base_ = index;
  } else if (const auto off = static_cast<std::size_t>(index - base_);
             off >= counts_.size()) {
    counts_.resize(off + 1, 0);
  }
  return counts_[static_cast<std::size_t>(index - base_)];
}

void QuantileSketch::add(double x) {
  if (!(x > 0.0)) {  // zero, negative, NaN
    ++non_positive_;
    ++count_;
    if (count_ == 1) {
      min_ = max_ = 0.0;
    } else {
      min_ = std::min(min_, 0.0);
      max_ = std::max(max_, 0.0);
    }
    return;
  }
  if (std::isinf(x)) x = std::numeric_limits<double>::max();
  ++slot(bucket_index(x));
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (other.sub_bits_ != sub_bits_) {
    throw std::invalid_argument("QuantileSketch merge requires equal sub_bits");
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    slot(other.base_ + static_cast<std::int32_t>(i)) += other.counts_[i];
  }
  non_positive_ += other.non_positive_;
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

void QuantileSketch::reset() { *this = QuantileSketch{sub_bits_}; }

double QuantileSketch::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double QuantileSketch::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile q out of [0,1]");
  }
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  double seen = static_cast<double>(non_positive_);
  // Non-positive samples sit below every bucket at the value 0; an
  // all-positive sketch must fall through to its first bucket (clamped to
  // min), not report 0 at q = 0.
  if (non_positive_ > 0 && rank <= seen) return std::min(0.0, min_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i];
    if (n == 0) continue;
    const double next = seen + static_cast<double>(n);
    if (rank <= next) {
      const std::int32_t index = base_ + static_cast<std::int32_t>(i);
      const double lo = bucket_low(index);
      const double hi = bucket_low(index + 1);
      const double frac = (rank - seen) / static_cast<double>(n);
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, min_), max_);
    }
    seen = next;
  }
  return max_;
}

std::vector<QuantileSketch::Bucket> QuantileSketch::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::int32_t index = base_ + static_cast<std::int32_t>(i);
    out.push_back(Bucket{bucket_low(index), bucket_low(index + 1), counts_[i]});
  }
  return out;
}

}  // namespace harl::obs
