#include "src/obs/recorder.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace harl::obs {

namespace {

void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

double to_us(Seconds t) { return t * 1e6; }

const char* kind_name(TrackKind k) {
  switch (k) {
    case TrackKind::kServerDisk: return "server_disk";
    case TrackKind::kServerNic: return "server_nic";
    case TrackKind::kClientNic: return "client_nic";
    case TrackKind::kClient: return "client";
    case TrackKind::kOther: return "other";
  }
  return "other";
}

}  // namespace

// --- Timeline ---------------------------------------------------------------

Timeline::Timeline(Seconds initial_width, std::size_t max_buckets,
                   bool take_max)
    : width_(initial_width), max_buckets_(max_buckets), take_max_(take_max) {
  if (!(initial_width > 0.0) || max_buckets < 2) {
    throw std::invalid_argument("Timeline requires width > 0 and >= 2 buckets");
  }
}

void Timeline::fit(Seconds t) {
  while (t >= width_ * static_cast<double>(max_buckets_)) {
    // Coalesce adjacent pairs; the bucket width doubles.
    const std::size_t half = (values_.size() + 1) / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const double a = values_[2 * i];
      const double b = 2 * i + 1 < values_.size() ? values_[2 * i + 1] : 0.0;
      values_[i] = take_max_ ? std::max(a, b) : a + b;
    }
    values_.resize(half);
    width_ *= 2.0;
  }
}

void Timeline::add_span(Seconds t0, Seconds t1) {
  if (!(t1 > t0)) return;
  fit(t1);
  auto first = static_cast<std::size_t>(t0 / width_);
  auto last = static_cast<std::size_t>(t1 / width_);
  last = std::min(last, max_buckets_ - 1);
  if (last >= values_.size()) values_.resize(last + 1, 0.0);
  for (std::size_t i = first; i <= last; ++i) {
    const Seconds lo = std::max(t0, width_ * static_cast<double>(i));
    const Seconds hi = std::min(t1, width_ * static_cast<double>(i + 1));
    if (hi > lo) values_[i] += hi - lo;
  }
}

void Timeline::sample_max(Seconds t, double v) {
  if (t < 0.0) return;
  fit(t);
  auto idx = static_cast<std::size_t>(t / width_);
  idx = std::min(idx, max_buckets_ - 1);
  if (idx >= values_.size()) values_.resize(idx + 1, 0.0);
  values_[idx] = std::max(values_[idx], v);
}

// --- Recorder ---------------------------------------------------------------

Recorder::TrackState::TrackState(std::string name_, TrackKind kind_,
                                 std::uint32_t entity_, const Options& opts)
    : name(std::move(name_)),
      kind(kind_),
      entity(entity_),
      busy_timeline(opts.timeline_initial_width, opts.timeline_buckets, false),
      depth_timeline(opts.timeline_initial_width, opts.timeline_buckets, true) {}

Recorder::Recorder() : Recorder(Options{}) {}

Recorder::Recorder(Options options) : options_(options) {
  using Kind = MetricsRegistry::Kind;
  m_bytes_ = metrics_.family("pfs.server.bytes", Kind::kCounter);
  m_accesses_ = metrics_.family("pfs.server.accesses", Kind::kCounter);
  m_pieces_ = metrics_.family("pfs.server.pieces", Kind::kCounter);
  m_region_switches_ =
      metrics_.family("pfs.server.region_switches", Kind::kCounter);
  m_latency_ = metrics_.family("client.request.latency", Kind::kHistogram);
  m_wait_ = metrics_.family("request.queue_wait", Kind::kHistogram);
  m_ts_ = metrics_.family("request.t_s", Kind::kHistogram);
  m_tt_ = metrics_.family("request.t_t", Kind::kHistogram);
  m_tx_ = metrics_.family("request.t_x", Kind::kHistogram);
  m_rel_error_ = metrics_.family("model.rel_error", Kind::kHistogram);
  m_server_time_ = metrics_.family("pfs.server.time", Kind::kSketch);
  m_mds_time_ = metrics_.family("pfs.mds.time", Kind::kSketch);
  m_file_bytes_ = metrics_.family("pfs.file.bytes", Kind::kCounter);
  m_file_latency_ = metrics_.family("pfs.file.latency", Kind::kHistogram);
  if (options_.max_trace_events > 0) {
    events_.reserve(options_.max_trace_events);
  }
}

std::uint32_t Recorder::track(std::string_view name, TrackKind kind,
                              std::uint32_t entity) {
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.emplace_back(std::string(name), kind, entity, options_);
  tracks_.back().is_mds = kind == TrackKind::kOther && name == "mds";
  return id;
}

std::uint32_t Recorder::register_server(std::uint32_t server,
                                        std::uint32_t tier,
                                        std::string_view name, bool is_ssd) {
  const std::uint32_t id = track(name, TrackKind::kServerDisk, server);
  tracks_[id].tier = tier;
  tracks_[id].is_ssd = is_ssd;
  if (server >= servers_.size()) servers_.resize(server + 1);
  servers_[server] = ServerMeta{id, tier, kNoId, is_ssd};
  return id;
}

std::uint32_t Recorder::register_client(std::uint32_t client) {
  const std::uint32_t id =
      track("client " + std::to_string(client), TrackKind::kClient, client);
  if (client >= client_tracks_.size()) {
    client_tracks_.resize(client + 1, kNoId);
  }
  client_tracks_[client] = id;
  return id;
}

void Recorder::push_event(const TraceEvent& event) {
  ++events_recorded_;
  if (options_.max_trace_events == 0) {
    events_.push_back(event);
    return;
  }
  if (events_.size() < options_.max_trace_events) {
    events_.push_back(event);
    return;
  }
  events_[ring_next_] = event;
  ring_next_ = (ring_next_ + 1) % events_.size();
  ++events_dropped_;
}

void Recorder::resource_event(std::uint32_t track, Seconds arrival,
                              Seconds start, Seconds finish) {
  if (track >= tracks_.size()) return;
  TrackState& t = tracks_[track];
  note_time(finish);
  const Seconds wait = start - arrival;
  const Seconds service = finish - start;
  ++t.jobs;
  t.busy += service;
  t.queue_delay += wait;
  t.wait.add(wait);
  t.service.add(service);
  t.busy_timeline.add_span(start, finish);
  // Per-track arrivals are monotone (instrumentation fires at submission in
  // event order), so popping finished jobs gives the exact in-flight count.
  while (!t.inflight.empty() && t.inflight.top() <= arrival) t.inflight.pop();
  t.inflight.push(finish);
  const auto depth = static_cast<std::uint64_t>(t.inflight.size());
  t.depth_max = std::max(t.depth_max, depth);
  t.depth_timeline.sample_max(arrival, static_cast<double>(depth));
  if (t.is_mds) {
    // MDS resident time (queue wait + lookup service): contention across
    // colliding opens shows up in this sketch's tail exactly as the
    // per-server pfs.server.time sketches expose storage stragglers.
    metrics_.observe(m_mds_time_, LabelSet{}, finish - arrival);
  }
  if (options_.trace) {
    push_event(TraceEvent{start, service, track, EventType::kService, 0xFF,
                          0, 0});
    if (wait > 0.0) {
      push_event(TraceEvent{arrival, wait, track, EventType::kWait, 0xFF,
                            next_async_id_++, 0});
    }
  }
}

void Recorder::server_access(std::uint32_t server, IoOp op,
                             std::uint32_t region, Bytes bytes, Bytes pieces,
                             Seconds now) {
  note_time(now);
  if (server >= servers_.size()) servers_.resize(server + 1);
  ServerMeta& meta = servers_[server];
  const LabelSet labels = LabelSet{}.server(server).tier(meta.tier).op(op);
  metrics_.add(m_accesses_, labels, 1.0);
  metrics_.add(m_bytes_, labels, static_cast<double>(bytes));
  metrics_.add(m_pieces_, labels, static_cast<double>(pieces));
  if (meta.last_region != region) {
    if (meta.last_region != kNoId) {
      metrics_.add(m_region_switches_,
                   LabelSet{}.server(server).tier(meta.tier), 1.0);
      if (options_.trace && meta.track != kNoId) {
        push_event(TraceEvent{now, 0.0, meta.track, EventType::kInstant, 0xFF,
                              0, region});
      }
    }
    meta.last_region = region;
  }
}

std::uint32_t Recorder::begin_request(std::uint32_t client, IoOp op,
                                      Bytes offset, Bytes size, Seconds now,
                                      std::uint32_t file) {
  note_time(now);
  std::uint32_t id;
  if (!req_free_.empty()) {
    id = req_free_.back();
    req_free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(req_slots_.size());
    req_slots_.emplace_back();
  }
  ActiveRequest& r = req_slots_[id];
  r = ActiveRequest{};
  r.client = client;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.file = file;
  r.issue = now;
  return id;
}

std::uint32_t Recorder::begin_sub(std::uint32_t request, std::uint32_t server,
                                  std::uint32_t region, Bytes bytes,
                                  Seconds now) {
  note_time(now);
  if (request >= req_slots_.size()) return kNoId;
  ActiveRequest& r = req_slots_[request];
  if (r.region == kNoId) r.region = region;
  std::uint32_t id;
  if (!sub_free_.empty()) {
    id = sub_free_.back();
    sub_free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(sub_slots_.size());
    sub_slots_.emplace_back();
  }
  ActiveSub& s = sub_slots_[id];
  s = ActiveSub{};
  s.request = request;
  s.server = server;
  s.region = region;
  s.bytes = bytes;
  s.issue = now;
  return id;
}

void Recorder::sub_storage(std::uint32_t sub, Seconds arrival, Seconds start,
                           Seconds startup, Seconds service) {
  if (sub >= sub_slots_.size()) return;
  ActiveSub& s = sub_slots_[sub];
  s.arrival = arrival;
  s.start = start;
  s.startup = startup;
  s.service = service;
  note_time(start + service);
  if (s.request < req_slots_.size() &&
      req_slots_[s.request].op == IoOp::kWrite) {
    // The disk is a write's final stage: T_X is the client -> server
    // delivery time and the sub-request completes when service does.
    finalize_sub(sub, arrival - s.issue, start + service);
  }
}

void Recorder::sub_net_done(std::uint32_t sub, Seconds now) {
  if (sub >= sub_slots_.size()) return;
  const ActiveSub& s = sub_slots_[sub];
  // T_X for a read: time from storage completion to the last byte landing
  // at the client NIC.
  finalize_sub(sub, now - (s.start + s.service), now);
}

void Recorder::finalize_sub(std::uint32_t sub, Seconds t_x, Seconds done) {
  ActiveSub& s = sub_slots_[sub];
  note_time(done);
  const std::uint32_t tier =
      s.server < servers_.size() ? servers_[s.server].tier : kNoId;
  SubSample sample;
  sample.server = s.server;
  sample.tier = tier;
  sample.region = s.region;
  sample.bytes = s.bytes;
  sample.issue = s.issue;
  sample.wait = s.start - s.arrival;
  sample.t_s = s.startup;
  sample.t_t = s.service - s.startup;
  sample.t_x = t_x;
  sample.done = done;
  if (s.request < req_slots_.size()) {
    ActiveRequest& r = req_slots_[s.request];
    r.subs.push_back(sample);
    const LabelSet labels = LabelSet{}.tier(tier).op(r.op);
    metrics_.observe(m_wait_, labels, sample.wait);
    metrics_.observe(m_ts_, labels, sample.t_s);
    metrics_.observe(m_tt_, labels, sample.t_t);
    metrics_.observe(m_tx_, labels, sample.t_x);
    // Server-resident time per {server,tier,op}: the straggler scheduler's
    // per-server tail input (p50/p95/p99/p999 via the sketch family).
    metrics_.observe(m_server_time_,
                     LabelSet{}.server(s.server).tier(tier).op(r.op),
                     sample.wait + sample.t_s + sample.t_t);
  }
  sub_free_.push_back(sub);
}

void Recorder::end_request(std::uint32_t request, Seconds now) {
  if (request >= req_slots_.size()) return;
  note_time(now);
  ActiveRequest& r = req_slots_[request];
  ++requests_completed_;

  RequestSample sample;
  sample.client = r.client;
  sample.op = r.op;
  sample.offset = r.offset;
  sample.size = r.size;
  sample.region = r.region;
  sample.file = r.file;
  sample.issue = r.issue;
  sample.done = now;
  sample.subs = std::move(r.subs);

  metrics_.observe(m_latency_, LabelSet{}.op(r.op), now - r.issue);
  if (r.file != kNoId) {
    const LabelSet fl = file_labels(r.file);
    metrics_.add(m_file_bytes_, LabelSet{fl}.op(r.op),
                 static_cast<double>(r.size));
    metrics_.observe(m_file_latency_, LabelSet{fl}.op(r.op), now - r.issue);
  }
  if (predictor_) {
    sample.predicted = predictor_(r.op, r.offset, r.size);
    if (sample.predicted > 0.0 && now > r.issue) {
      const double rel =
          std::abs(sample.predicted - (now - r.issue)) / (now - r.issue);
      metrics_.observe(m_rel_error_, LabelSet{}.region(r.region).op(r.op),
                       rel);
    }
  }

  if (options_.trace && r.client < client_tracks_.size() &&
      client_tracks_[r.client] != kNoId) {
    push_event(TraceEvent{r.issue, now - r.issue, client_tracks_[r.client],
                          EventType::kRequest,
                          static_cast<std::uint8_t>(r.op == IoOp::kRead ? 0 : 1),
                          next_async_id_++, r.size});
  }

  if (options_.max_request_samples > 0) {
    if (samples_.size() < options_.max_request_samples) {
      samples_.push_back(std::move(sample));
    } else {
      samples_[samples_next_] = std::move(sample);
      samples_next_ = (samples_next_ + 1) % samples_.size();
    }
  }
  req_free_.push_back(request);
}

LabelSet Recorder::file_labels(std::uint32_t file) const {
  LabelSet l;
  if (file == kNoId) return l;
  l.file(file);
  if (file < tenant_of_.size()) l.tenant(tenant_of_[file]);
  return l;
}

void Recorder::adaptive_event(AdaptiveEvent event, std::uint32_t epoch,
                              Bytes bytes, Seconds now) {
  note_time(now);
  if (!options_.trace) return;
  if (adaptive_track_ == kNoId) {
    adaptive_track_ = track("adaptive layout", TrackKind::kOther, kNoId);
  }
  // Instants on the adaptive track reuse the op byte as the event kind
  // (region-switch instants keep the 0xFF sentinel), epoch in `id`, bytes
  // in `arg`.
  push_event(TraceEvent{now, 0.0, adaptive_track_, EventType::kInstant,
                        static_cast<std::uint8_t>(event), epoch, bytes});
}

void Recorder::health_event(HealthEvent event, std::uint32_t server,
                            double score, Seconds now) {
  note_time(now);
  if (!options_.trace) return;
  if (health_track_ == kNoId) {
    health_track_ = track("health", TrackKind::kOther, kNoId);
  }
  // Health instants share the adaptive op-byte scheme with bit 7 set so the
  // exporter can tell them apart; server in `id`, score (micro-units) in
  // `arg`.
  push_event(TraceEvent{
      now, 0.0, health_track_, EventType::kInstant,
      static_cast<std::uint8_t>(0x80u | static_cast<std::uint8_t>(event)),
      server, static_cast<std::uint64_t>(score * 1e6)});
}

std::vector<Recorder::ResourceSummary> Recorder::resource_summaries() const {
  std::vector<ResourceSummary> out;
  out.reserve(tracks_.size());
  for (const TrackState& t : tracks_) {
    ResourceSummary s;
    s.name = t.name;
    s.kind = t.kind;
    s.entity = t.entity;
    s.tier = t.tier;
    s.is_ssd = t.is_ssd;
    s.busy = t.busy;
    s.queue_delay = t.queue_delay;
    s.jobs = t.jobs;
    s.depth_max = t.depth_max;
    s.wait = &t.wait;
    s.service = &t.service;
    s.busy_timeline = &t.busy_timeline;
    s.depth_timeline = &t.depth_timeline;
    out.push_back(std::move(s));
  }
  return out;
}

// --- export -----------------------------------------------------------------

void Recorder::append_trace_events(std::ostream& out, std::uint32_t pid,
                                   std::string_view process_name,
                                   bool& first) const {
  // Round-trip precision: the default 6 significant digits would round
  // microsecond timestamps enough to make adjacent spans appear to overlap.
  out.precision(17);
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
  };

  sep();
  out << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << pid
      << ", \"tid\": 0, \"args\": {\"name\": ";
  write_escaped(out, process_name);
  out << "}}";
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    sep();
    out << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << pid
        << ", \"tid\": " << i + 1 << ", \"args\": {\"name\": ";
    write_escaped(out, tracks_[i].name);
    out << "}}";
    sep();
    out << "{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": " << pid
        << ", \"tid\": " << i + 1 << ", \"args\": {\"sort_index\": " << i
        << "}}";
  }

  // Ring mode stores events out of order once wrapped; export oldest-first.
  const std::size_t n = events_.size();
  const std::size_t begin =
      options_.max_trace_events > 0 && n == options_.max_trace_events
          ? ring_next_
          : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const TraceEvent& e = events_[(begin + k) % n];
    const std::uint32_t tid = e.track + 1;
    switch (e.type) {
      case EventType::kService:
        sep();
        out << "{\"ph\": \"X\", \"name\": \"service\", \"cat\": \"resource\", "
               "\"pid\": "
            << pid << ", \"tid\": " << tid << ", \"ts\": " << to_us(e.ts)
            << ", \"dur\": " << to_us(e.dur) << "}";
        break;
      case EventType::kWait:
      case EventType::kRequest: {
        const bool is_wait = e.type == EventType::kWait;
        const char* name = is_wait ? "wait"
                           : e.op == 0 ? "read" : "write";
        const char* cat = is_wait ? "queue" : "request";
        sep();
        out << "{\"ph\": \"b\", \"name\": \"" << name << "\", \"cat\": \""
            << cat << "\", \"id\": " << e.id << ", \"pid\": " << pid
            << ", \"tid\": " << tid << ", \"ts\": " << to_us(e.ts);
        if (!is_wait) out << ", \"args\": {\"bytes\": " << e.arg << "}";
        out << "}";
        sep();
        out << "{\"ph\": \"e\", \"name\": \"" << name << "\", \"cat\": \""
            << cat << "\", \"id\": " << e.id << ", \"pid\": " << pid
            << ", \"tid\": " << tid << ", \"ts\": " << to_us(e.ts + e.dur)
            << "}";
        break;
      }
      case EventType::kInstant:
        sep();
        if (e.op == 0xFF) {
          out << "{\"ph\": \"i\", \"name\": \"region_switch\", \"cat\": "
                 "\"region\", \"s\": \"t\", \"pid\": "
              << pid << ", \"tid\": " << tid << ", \"ts\": " << to_us(e.ts)
              << ", \"args\": {\"region\": " << e.arg << "}}";
        } else if ((e.op & 0x80u) != 0) {
          const char* name =
              (e.op & 0x7Fu) ==
                      static_cast<std::uint8_t>(HealthEvent::kStragglerFlagged)
                  ? "straggler_flagged"
                  : "straggler_recovered";
          out << "{\"ph\": \"i\", \"name\": \"" << name
              << "\", \"cat\": \"health\", \"s\": \"t\", \"pid\": " << pid
              << ", \"tid\": " << tid << ", \"ts\": " << to_us(e.ts)
              << ", \"args\": {\"server\": " << e.id
              << ", \"score\": " << static_cast<double>(e.arg) / 1e6 << "}}";
        } else {
          const char* name =
              e.op == static_cast<std::uint8_t>(AdaptiveEvent::kEpochInstalled)
                  ? "epoch_install"
              : e.op ==
                      static_cast<std::uint8_t>(AdaptiveEvent::kMigrationStarted)
                  ? "migration_start"
                  : "migration_done";
          out << "{\"ph\": \"i\", \"name\": \"" << name
              << "\", \"cat\": \"adaptive\", \"s\": \"t\", \"pid\": " << pid
              << ", \"tid\": " << tid << ", \"ts\": " << to_us(e.ts)
              << ", \"args\": {\"epoch\": " << e.id << ", \"bytes\": " << e.arg
              << "}}";
        }
        break;
    }
  }
}

void Recorder::write_trace_json(std::ostream& out,
                                std::string_view process_name) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  append_trace_events(out, 1, process_name, first);
  out << "\n]}\n";
}

void Recorder::write_metrics_json(std::ostream& out, int indent) const {
  out.precision(17);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const Seconds horizon = last_time_;
  out << "{\n";
  out << pad << "  \"horizon_s\": " << horizon << ",\n";
  out << pad << "  \"requests_completed\": " << requests_completed_ << ",\n";
  out << pad << "  \"trace_events_recorded\": " << events_recorded_ << ",\n";
  out << pad << "  \"trace_events_dropped\": " << events_dropped_ << ",\n";
  out << pad << "  \"resources\": [";
  bool first = true;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const TrackState& t = tracks_[i];
    if (!first) out << ",";
    first = false;
    out << "\n" << pad << "    {\"track\": " << i << ", \"name\": ";
    write_escaped(out, t.name);
    out << ", \"kind\": \"" << kind_name(t.kind) << "\"";
    if (t.entity != kNoId) out << ", \"entity\": " << t.entity;
    if (t.tier != kNoId) {
      out << ", \"tier\": " << t.tier
          << ", \"is_ssd\": " << (t.is_ssd ? "true" : "false");
    }
    out << ", \"jobs\": " << t.jobs << ", \"busy_s\": " << t.busy
        << ", \"queue_delay_s\": " << t.queue_delay
        << ", \"utilization\": " << (horizon > 0.0 ? t.busy / horizon : 0.0)
        << ", \"depth_max\": " << t.depth_max
        << ", \"wait_p99_s\": " << t.wait.percentile(99.0)
        << ", \"service_p99_s\": " << t.service.percentile(99.0);
    out << ", \"busy_timeline\": {\"bucket_s\": "
        << t.busy_timeline.bucket_width() << ", \"busy_s\": [";
    bool f2 = true;
    for (double v : t.busy_timeline.values()) {
      if (!f2) out << ", ";
      f2 = false;
      out << v;
    }
    out << "]}, \"depth_timeline\": {\"bucket_s\": "
        << t.depth_timeline.bucket_width() << ", \"depth_max\": [";
    f2 = true;
    for (double v : t.depth_timeline.values()) {
      if (!f2) out << ", ";
      f2 = false;
      out << v;
    }
    out << "]}}";
  }
  out << "\n" << pad << "  ],\n";
  out << pad << "  \"metrics\": ";
  metrics_.write_json(out, indent + 2);
  out << "\n" << pad << "}";
}

}  // namespace harl::obs
