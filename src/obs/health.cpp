#include "src/obs/health.hpp"

#include <algorithm>
#include <ostream>
#include <string>

namespace harl::obs {

HealthMonitor::HealthMonitor(Options options, Sink* downstream)
    : options_(options),
      downstream_(downstream),
      ts_(TimeSeries::Options{options.interval, options.window_capacity}),
      m_windows_scored_(
          metrics_.family("health.windows_scored",
                          MetricsRegistry::Kind::kCounter)),
      m_flagged_(metrics_.family("health.straggler_flagged",
                                 MetricsRegistry::Kind::kCounter)),
      m_recovered_(metrics_.family("health.recovered",
                                   MetricsRegistry::Kind::kCounter)),
      m_score_(metrics_.family("health.score",
                               MetricsRegistry::Kind::kGauge)),
      m_slo_req_total_(metrics_.family("health.slo.requests_total",
                                       MetricsRegistry::Kind::kCounter)),
      m_slo_req_met_(metrics_.family("health.slo.requests_met",
                                     MetricsRegistry::Kind::kCounter)),
      m_slo_sub_total_(metrics_.family("health.slo.subs_total",
                                       MetricsRegistry::Kind::kCounter)),
      m_slo_sub_met_(metrics_.family("health.slo.subs_met",
                                     MetricsRegistry::Kind::kCounter)),
      m_slo_tenant_total_(metrics_.family("health.slo.tenant_total",
                                          MetricsRegistry::Kind::kCounter)),
      m_slo_tenant_met_(metrics_.family("health.slo.tenant_met",
                                        MetricsRegistry::Kind::kCounter)) {}

// --- registration (own track ids so server attribution survives a null
// downstream) ----------------------------------------------------------------

std::uint32_t HealthMonitor::track(std::string_view name, TrackKind kind,
                                   std::uint32_t entity) {
  Track t;
  t.down = downstream_ != nullptr ? downstream_->track(name, kind, entity)
                                  : kNoId;
  tracks_.push_back(t);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::uint32_t HealthMonitor::register_server(std::uint32_t server,
                                             std::uint32_t tier,
                                             std::string_view name,
                                             bool is_ssd) {
  Track t;
  t.down = downstream_ != nullptr
               ? downstream_->register_server(server, tier, name, is_ssd)
               : kNoId;
  t.server = server;
  t.is_server_disk = true;
  tracks_.push_back(t);
  servers_[server];  // materialize state so an idle server still reports
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::uint32_t HealthMonitor::register_client(std::uint32_t client) {
  Track t;
  t.down = downstream_ != nullptr ? downstream_->register_client(client)
                                  : kNoId;
  tracks_.push_back(t);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

// --- hot path ----------------------------------------------------------------

void HealthMonitor::resource_event(std::uint32_t track, Seconds arrival,
                                   Seconds start, Seconds finish) {
  advance(arrival);
  if (track < tracks_.size() && tracks_[track].is_server_disk) {
    const std::uint32_t server = tracks_[track].server;
    ServerState& s = servers_[server];
    while (!s.inflight.empty() && s.inflight.top() <= arrival) {
      s.inflight.pop();
    }
    s.inflight.push(finish);
    ts_.record_depth(server, arrival, s.inflight.size());
    ts_.record_span(server, arrival, start, finish);
  }
  if (downstream_ != nullptr && track < tracks_.size() &&
      tracks_[track].down != kNoId) {
    downstream_->resource_event(tracks_[track].down, arrival, start, finish);
  }
}

void HealthMonitor::server_access(std::uint32_t server, IoOp op,
                                  std::uint32_t region, Bytes bytes,
                                  Bytes pieces, Seconds now) {
  advance(now);
  if (downstream_ != nullptr) {
    downstream_->server_access(server, op, region, bytes, pieces, now);
  }
}

std::uint32_t HealthMonitor::begin_request(std::uint32_t client, IoOp op,
                                           Bytes offset, Bytes size,
                                           Seconds now, std::uint32_t file) {
  advance(now);
  std::uint32_t id;
  if (!req_free_.empty()) {
    id = req_free_.back();
    req_free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(reqs_.size());
    reqs_.emplace_back();
  }
  PendingReq& r = reqs_[id];
  r.down = downstream_ != nullptr
               ? downstream_->begin_request(client, op, offset, size, now, file)
               : kNoId;
  r.op = op;
  r.file = file;
  r.issue = now;
  r.live = true;
  return id;
}

std::uint32_t HealthMonitor::begin_sub(std::uint32_t request,
                                       std::uint32_t server,
                                       std::uint32_t region, Bytes bytes,
                                       Seconds now) {
  advance(now);
  const PendingReq* req =
      request < reqs_.size() && reqs_[request].live ? &reqs_[request]
                                                    : nullptr;
  std::uint32_t id;
  if (!sub_free_.empty()) {
    id = sub_free_.back();
    sub_free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(subs_.size());
    subs_.emplace_back();
  }
  PendingSub& s = subs_[id];
  s.down = downstream_ != nullptr && req != nullptr && req->down != kNoId
               ? downstream_->begin_sub(req->down, server, region, bytes, now)
               : kNoId;
  s.server = server;
  s.op = req != nullptr ? req->op : IoOp::kRead;
  s.live = true;
  return id;
}

void HealthMonitor::sub_storage(std::uint32_t sub, Seconds arrival,
                                Seconds start, Seconds startup,
                                Seconds service) {
  advance(arrival);
  if (sub < subs_.size() && subs_[sub].live) {
    PendingSub& s = subs_[sub];
    if (options_.slo > 0.0 && s.server != kNoId) {
      // Server-resident time: queue wait plus the full storage service.
      const Seconds resident = (start - arrival) + service;
      ServerState& st = servers_[s.server];
      ++st.slo_total;
      const LabelSet labels = LabelSet{}.server(s.server);
      metrics_.add(m_slo_sub_total_, labels, 1.0);
      if (resident <= options_.slo) {
        ++st.slo_met;
        metrics_.add(m_slo_sub_met_, labels, 1.0);
      }
    }
    if (downstream_ != nullptr && s.down != kNoId) {
      downstream_->sub_storage(s.down, arrival, start, startup, service);
    }
    // Writes complete at the storage stage; reads stay live until the final
    // network event.
    if (s.op == IoOp::kWrite) free_sub(sub);
  }
}

void HealthMonitor::sub_net_done(std::uint32_t sub, Seconds now) {
  advance(now);
  if (sub < subs_.size() && subs_[sub].live) {
    if (downstream_ != nullptr && subs_[sub].down != kNoId) {
      downstream_->sub_net_done(subs_[sub].down, now);
    }
    free_sub(sub);
  }
}

void HealthMonitor::end_request(std::uint32_t request, Seconds now) {
  advance(now);
  if (request < reqs_.size() && reqs_[request].live) {
    PendingReq& r = reqs_[request];
    if (options_.slo > 0.0) {
      const std::size_t op = r.op == IoOp::kRead ? 0 : 1;
      ++req_total_[op];
      const LabelSet labels = LabelSet{}.op(r.op);
      metrics_.add(m_slo_req_total_, labels, 1.0);
      const bool met = now - r.issue <= options_.slo;
      if (met) {
        ++req_met_[op];
        metrics_.add(m_slo_req_met_, labels, 1.0);
      }
      if (r.file != kNoId && r.file < tenant_of_.size()) {
        const std::uint32_t tenant = tenant_of_[r.file];
        TenantSlo& ts = tenant_slo_[tenant];
        ++ts.total;
        const LabelSet tl = LabelSet{}.tenant(tenant);
        metrics_.add(m_slo_tenant_total_, tl, 1.0);
        if (met) {
          ++ts.met;
          metrics_.add(m_slo_tenant_met_, tl, 1.0);
        }
      }
    }
    if (downstream_ != nullptr && r.down != kNoId) {
      downstream_->end_request(r.down, now);
    }
    r.live = false;
    req_free_.push_back(request);
  }
}

void HealthMonitor::adaptive_event(AdaptiveEvent event, std::uint32_t epoch,
                                   Bytes bytes, Seconds now) {
  advance(now);
  if (downstream_ != nullptr) {
    downstream_->adaptive_event(event, epoch, bytes, now);
  }
}

void HealthMonitor::cache_event(Bytes hit_bytes, Bytes miss_bytes,
                                Seconds now) {
  advance(now);
  ts_.record_cache(hit_bytes, miss_bytes, now);
  if (downstream_ != nullptr) {
    downstream_->cache_event(hit_bytes, miss_bytes, now);
  }
}

void HealthMonitor::health_event(HealthEvent event, std::uint32_t server,
                                 double score, Seconds now) {
  if (downstream_ != nullptr) {
    downstream_->health_event(event, server, score, now);
  }
}

void HealthMonitor::free_sub(std::uint32_t sub) {
  subs_[sub].live = false;
  sub_free_.push_back(sub);
}

// --- scoring -----------------------------------------------------------------

void HealthMonitor::advance(Seconds t) {
  const std::int64_t w = ts_.window_of(t);
  if (!started_) {
    started_ = true;
    next_to_score_ = w;
    return;
  }
  while (next_to_score_ < w) {
    score_window(next_to_score_);
    ++next_to_score_;
  }
}

void HealthMonitor::score_window(std::int64_t w) {
  const auto stats = ts_.window_stats(w);
  std::vector<double> means;
  for (const auto& s : stats) {
    if (s.jobs >= options_.min_window_jobs) means.push_back(s.lat_mean);
  }
  if (means.empty()) return;  // idle window: streaks unchanged
  std::sort(means.begin(), means.end());
  const std::size_t n = means.size();
  const double median = n % 2 == 1
                            ? means[n / 2]
                            : 0.5 * (means[n / 2 - 1] + means[n / 2]);
  if (!(median > 0.0)) return;
  metrics_.add(m_windows_scored_, LabelSet{}, 1.0);
  const Seconds window_end =
      static_cast<double>(w + 1) * options_.interval;
  for (const auto& s : stats) {
    if (s.jobs < options_.min_window_jobs) continue;
    const double score = s.lat_mean / median;
    ServerState& st = servers_[s.server];
    st.score = score;
    st.scored = true;
    metrics_.set(m_score_, LabelSet{}.server(s.server), score);
    if (score >= options_.flag_threshold) {
      ++st.flag_streak;
      st.recover_streak = 0;
      if (!st.flagged && st.flag_streak >= options_.flag_windows) {
        st.flagged = true;
        ++st.flag_count;
        metrics_.add(m_flagged_, LabelSet{}.server(s.server), 1.0);
        if (downstream_ != nullptr) {
          downstream_->health_event(HealthEvent::kStragglerFlagged, s.server,
                                    score, window_end);
        }
      }
    } else if (score <= options_.recover_threshold) {
      ++st.recover_streak;
      st.flag_streak = 0;
      if (st.flagged && st.recover_streak >= options_.recover_windows) {
        st.flagged = false;
        ++st.recover_count;
        metrics_.add(m_recovered_, LabelSet{}.server(s.server), 1.0);
        if (downstream_ != nullptr) {
          downstream_->health_event(HealthEvent::kStragglerRecovered,
                                    s.server, score, window_end);
        }
      }
    } else {
      // Hysteresis dead band: neither streak advances.
      st.flag_streak = 0;
      st.recover_streak = 0;
    }
  }
}

void HealthMonitor::finalize() {
  if (finalized_ || !started_) {
    finalized_ = true;
    return;
  }
  finalized_ = true;
  if (ts_.empty()) return;
  const std::int64_t last = ts_.last_window();
  while (next_to_score_ <= last) {
    score_window(next_to_score_);
    ++next_to_score_;
  }
}

// --- results -----------------------------------------------------------------

double HealthMonitor::server_score(std::uint32_t server) const {
  auto it = servers_.find(server);
  return it == servers_.end() ? 0.0 : it->second.score;
}

bool HealthMonitor::is_flagged(std::uint32_t server) const {
  auto it = servers_.find(server);
  return it != servers_.end() && it->second.flagged;
}

double HealthMonitor::tenant_slo_attainment(std::uint32_t tenant) const {
  auto it = tenant_slo_.find(tenant);
  if (it == tenant_slo_.end() || it->second.total == 0) return 1.0;
  return static_cast<double>(it->second.met) /
         static_cast<double>(it->second.total);
}

void HealthMonitor::write_json(std::ostream& out, int indent) const {
  out.precision(17);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << "{\n" << pad << "  \"interval_s\": " << options_.interval << ",\n"
      << pad << "  \"slo_s\": " << options_.slo << ",\n"
      << pad << "  \"flag_threshold\": " << options_.flag_threshold << ",\n"
      << pad << "  \"recover_threshold\": " << options_.recover_threshold
      << ",\n"
      << pad << "  \"requests\": {\"read_total\": " << req_total_[0]
      << ", \"read_met\": " << req_met_[0]
      << ", \"write_total\": " << req_total_[1]
      << ", \"write_met\": " << req_met_[1] << "},\n";
  if (!tenant_slo_.empty()) {
    out << pad << "  \"tenants\": [";
    bool tf = true;
    for (const auto& [tenant, s] : tenant_slo_) {
      if (!tf) out << ",";
      tf = false;
      out << "\n" << pad << "    {\"tenant\": " << tenant
          << ", \"total\": " << s.total << ", \"met\": " << s.met
          << ", \"attainment\": "
          << (s.total > 0
                  ? static_cast<double>(s.met) / static_cast<double>(s.total)
                  : 1.0)
          << '}';
    }
    out << "\n" << pad << "  ],\n";
  }
  out << pad << "  \"servers\": [";
  bool first = true;
  for (const auto& [id, s] : servers_) {
    if (!first) out << ",";
    first = false;
    out << "\n" << pad << "    {\"server\": " << id
        << ", \"score\": " << s.score
        << ", \"flagged\": " << (s.flagged ? "true" : "false")
        << ", \"flag_count\": " << s.flag_count
        << ", \"recover_count\": " << s.recover_count
        << ", \"slo_subs_total\": " << s.slo_total
        << ", \"slo_subs_met\": " << s.slo_met << '}';
  }
  out << "\n" << pad << "  ]\n" << pad << '}';
}

}  // namespace harl::obs
