// Mergeable log-bucket quantile sketch (the telemetry plane's distribution
// type, DESIGN.md §15).
//
// Same bucket geometry as common LogHistogram — each power of two split into
// 2^sub_bits equal-width cells, bounding any quantile's relative error by
// 1/2^sub_bits — but stored as a *dense* contiguous count array over the
// observed index range, so the hot-path insert is one subtract + bounds check
// + increment instead of a map lookup.  The dense range always spans exactly
// the touched buckets (growth is by need, never speculative), which makes the
// representation a pure function of the multiset of samples: two sketches fed
// the same samples in any order compare equal member-by-member, and merge()
// is exact — merging per-replica sketches yields bit-identical state to one
// sketch fed the combined stream.  That is the property that lets the
// MetricsRegistry treat sketch families like counters: order-independent
// parallel aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harl::obs {

class QuantileSketch {
 public:
  /// Relative-error knob: quantiles are exact to 1/2^sub_bits (default 6:
  /// 1.6%, tight enough that a p999 is meaningfully above a p99).
  explicit QuantileSketch(unsigned sub_bits = 6);

  void add(double x);
  /// Exact merge; requires equal sub_bits (throws std::invalid_argument).
  void merge(const QuantileSketch& other);
  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t non_positive() const { return non_positive_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const;

  /// Quantile estimate, q in [0, 1]: linear interpolation inside the
  /// containing bucket, clamped to the exact [min, max] envelope.
  /// Non-positive samples count as the value 0.  Returns 0 when empty.
  double quantile(double q) const;
  /// Percentile convenience, p in [0, 100] (p999 == quantile(0.999)).
  double percentile(double p) const { return quantile(p / 100.0); }

  unsigned sub_bits() const { return sub_bits_; }

  /// Non-empty buckets in ascending value order (excludes non-positives).
  struct Bucket {
    double lo = 0.0;   ///< inclusive lower bound
    double hi = 0.0;   ///< exclusive upper bound
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets() const;

  /// Member-wise equality is sample-set equality (see file comment): the
  /// dense range spans exactly the touched buckets, so identical sample
  /// multisets produce identical state regardless of insertion order.
  friend bool operator==(const QuantileSketch&, const QuantileSketch&) =
      default;

 private:
  std::int32_t bucket_index(double x) const;
  double bucket_low(std::int32_t index) const;
  /// Grows counts_ to cover `index` exactly (front or back, by need).
  std::uint64_t& slot(std::int32_t index);

  unsigned sub_bits_ = 6;
  std::int32_t base_ = 0;              ///< bucket index of counts_[0]
  std::vector<std::uint64_t> counts_;  ///< dense [base_, base_ + size())
  std::uint64_t count_ = 0;
  std::uint64_t non_positive_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace harl::obs
