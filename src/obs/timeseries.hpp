// Windowed per-server telemetry rollups in simulated time (DESIGN.md §15).
//
// A TimeSeries slices the simulated timeline into fixed-width windows and
// accumulates, per window and per server: job count, latency sum and a
// QuantileSketch of per-job latency (arrival -> finish), busy seconds
// (service span clipped to the window for utilization), and the maximum
// concurrent queue depth.  A fleet-level cache hit/miss byte pair rides in
// the same windows.  Windows live in a bounded ring: when more than
// `capacity` windows are produced the oldest are dropped and counted, never
// silently lost.
//
// Determinism: the owner (obs::HealthMonitor) feeds spans in dispatch/replay
// order, which the ObsSequencer already makes identical across PDES widths,
// and every accumulation here is order-independent within a window (sums,
// max, sketch adds into log buckets).  The JSON dump is therefore
// byte-identical across sim-threads 0/1/2/4.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "src/common/units.hpp"
#include "src/obs/sketch.hpp"

namespace harl::obs {

class TimeSeries {
 public:
  struct Options {
    Seconds interval = 1.0;        ///< window width in simulated seconds
    std::size_t capacity = 4096;   ///< max retained windows (ring)
  };

  explicit TimeSeries(Options options);

  /// One completed job on `server`: queued at `arrival`, serviced over
  /// [start, finish).  Latency (finish - arrival) lands in the window of
  /// `arrival`; busy time is clipped to each overlapped window.
  void record_span(std::uint32_t server, Seconds arrival, Seconds start,
                   Seconds finish);

  /// Queue-depth sample for `server` at time `now` (window max is kept).
  void record_depth(std::uint32_t server, Seconds now, std::uint64_t depth);

  /// Fleet-level cache outcome at time `now`.
  void record_cache(Bytes hit_bytes, Bytes miss_bytes, Seconds now);

  Seconds interval() const { return interval_; }
  std::size_t window_count() const { return windows_.size(); }
  std::uint64_t dropped_windows() const { return dropped_; }

  /// Index of the window containing `t` (floor(t / interval)).
  std::int64_t window_of(Seconds t) const;

  /// Mean per-job latency of `server` inside window `w`; 0 when idle.
  double window_latency_mean(std::int64_t w, std::uint32_t server) const;
  /// Jobs recorded for `server` inside window `w`.
  std::uint64_t window_jobs(std::int64_t w, std::uint32_t server) const;

  /// Per-server rollup of one window, servers in ascending id order; empty
  /// when the window holds no data (the HealthMonitor's scoring input).
  struct WindowServerStat {
    std::uint32_t server = 0;
    std::uint64_t jobs = 0;
    double lat_mean = 0.0;
  };
  std::vector<WindowServerStat> window_stats(std::int64_t w) const;

  bool empty() const { return windows_.empty(); }
  /// Index of the newest retained window; empty() must be false.
  std::int64_t last_window() const { return windows_.back().index; }

  /// Columnar JSON dump: one array per column, servers sorted by id,
  /// windows oldest-first.  Deterministic (see file comment).
  void write_json(std::ostream& out, int indent = 0) const;

 private:
  struct ServerCell {
    std::uint64_t jobs = 0;
    double lat_sum = 0.0;
    double busy = 0.0;
    std::uint64_t depth_max = 0;
    QuantileSketch lat;
  };
  struct Window {
    std::int64_t index = 0;  ///< window_of() value
    // server id -> cell; std::map keeps server iteration order sorted.
    std::map<std::uint32_t, ServerCell> servers;
    Bytes cache_hit = 0;
    Bytes cache_miss = 0;
  };

  Window& window(std::int64_t index);
  ServerCell& cell(std::int64_t index, std::uint32_t server);
  const Window* find_window(std::int64_t index) const;

  Seconds interval_ = 1.0;
  std::size_t capacity_ = 4096;
  std::vector<Window> windows_;  ///< ascending by index; bounded ring
  std::uint64_t dropped_ = 0;
};

}  // namespace harl::obs
