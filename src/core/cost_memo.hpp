// Per-candidate request-cost memoization (request-class coalescing).
//
// The cost model is a pure function of (op, size, offset mod S) for a fixed
// stripe candidate, where S is the candidate's striping period (M*h + N*s,
// or sum count_j * stripe_j for the k-tier model): every quantity the
// geometry derives — l_b, l_e and the full-period count — depends on the
// offset only through its residue mod S.  Algorithm 2 therefore wastes most
// of its time re-deriving identical costs: an IOR-style region issues
// thousands of same-sized requests whose offsets fall into a handful of
// residue classes per candidate.
//
// CostMemo caches the cost per (op, size, residue) class in a flat
// open-addressing table that is logically cleared (generation counter, no
// memset) for each new candidate.  The scorer still walks the sampled
// requests *in their original order*, adding the per-request cost exactly
// as the brute-force loop would and only skipping the recomputation on a
// class hit.  Because the cached value is
// bit-identical to what request_cost would return (same pure function, same
// arguments modulo the period), the accumulated totals — and therefore the
// chosen stripes, tie-breaks included — are bit-identical to the
// brute-force path.  That is what lets coalescing be on by default and lets
// tests assert exact plan equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"

namespace harl::core {

class CostMemo {
 public:
  /// Starts a new candidate: logically clears the table.  `expected_keys`
  /// sizes the table (typically the sampled request count); capacity is
  /// kept across candidates so steady-state reset is O(1).  `context`
  /// extends the class key beyond (op, size, residue) — the device-aware
  /// optimizer passes a hash of the candidate's member-device selection so
  /// two candidates with equal periods but different member sets never
  /// coalesce.  The default 0 preserves the pre-device behaviour exactly.
  void reset(std::size_t expected_keys, std::uint64_t context = 0) {
    context_ = context;
    const std::size_t want = table_size_for(expected_keys);
    if (slots_.size() < want) {
      slots_.assign(want, Slot{});
      mask_ = want - 1;
      generation_ = 1;
      return;
    }
    if (++generation_ == 0) {  // wrapped: hard-clear once every 2^32 resets
      slots_.assign(slots_.size(), Slot{});
      generation_ = 1;
    }
  }

  /// Returns the cached cost of class (op, size, residue), computing it via
  /// `compute` on the first encounter.  `compute` receives the residue and
  /// must be deterministic.
  template <typename Fn>
  Seconds cost(IoOp op, Bytes size, Bytes residue, Fn&& compute) {
    const std::uint64_t hash = mix(op, size, residue) ^ context_;
    std::size_t idx = static_cast<std::size_t>(hash) & mask_;
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.generation != generation_) {  // empty in this candidate
        slot.generation = generation_;
        slot.residue = residue;
        slot.size = size;
        slot.op = op;
        slot.cost = compute(residue);
        ++misses_;
        return slot.cost;
      }
      if (slot.residue == residue && slot.size == size && slot.op == op) {
        ++hits_;
        return slot.cost;
      }
      idx = (idx + 1) & mask_;  // linear probe; load factor <= 1/2
    }
  }

  /// Classes scored (one request_cost evaluation each).
  std::uint64_t misses() const { return misses_; }
  /// Requests served from the cache (evaluations saved vs brute force).
  std::uint64_t hits() const { return hits_; }

 private:
  struct Slot {
    Bytes residue = 0;
    Bytes size = 0;
    Seconds cost = 0.0;
    std::uint32_t generation = 0;  // 0 = never used
    IoOp op = IoOp::kRead;
  };

  static std::size_t table_size_for(std::size_t keys) {
    std::size_t size = 16;
    while (size < 2 * keys) size *= 2;  // load factor <= 1/2
    return size;
  }

  static std::uint64_t mix(IoOp op, Bytes size, Bytes residue) {
    std::uint64_t h = residue * 0x9E3779B97F4A7C15ULL;
    h ^= size * 0xC2B2AE3D27D4EB4FULL;
    h ^= h >> 29;
    h += op == IoOp::kWrite ? 0x165667B19E3779F9ULL : 0;
    return h ^ (h >> 32);
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint64_t context_ = 0;
  std::uint32_t generation_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace harl::core
