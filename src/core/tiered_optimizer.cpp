#include "src/core/tiered_optimizer.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>

#include "src/core/cost_memo.hpp"

namespace harl::core {

namespace {

std::size_t sample_stride(std::size_t n, std::size_t max_requests) {
  if (max_requests == 0 || n <= max_requests) return 1;
  return (n + max_requests - 1) / max_requests;
}

Bytes round_up(Bytes value, Bytes step) {
  return (value + step - 1) / step * step;
}

struct Candidate {
  Seconds cost = std::numeric_limits<Seconds>::infinity();
  std::vector<Bytes> stripes;

  bool better_than(const Candidate& other) const {
    if (cost != other.cost) return cost < other.cost;
    if (stripes.size() != other.stripes.size()) {
      return stripes.size() > other.stripes.size();  // beats the empty sentinel
    }
    // Ties prefer larger stripes (fewer stripe units for the same per-server
    // byte distribution); lexicographic from the last (fastest) tier.
    for (std::size_t i = stripes.size(); i-- > 0;) {
      if (stripes[i] != other.stripes[i]) {
        return stripes[i] > other.stripes[i];
      }
    }
    return false;
  }
};

/// Recursively enumerates stripe vectors; calls `visit` on each.
void enumerate(std::vector<Bytes>& stripes, std::size_t tier, Bytes R,
               Bytes step, bool monotone,
               const std::function<void(const std::vector<Bytes>&)>& visit) {
  if (tier == stripes.size()) {
    for (Bytes s : stripes) {
      if (s > 0) {
        visit(stripes);
        return;
      }
    }
    return;  // all-zero is not a layout
  }
  const Bytes lo = monotone && tier > 0 ? stripes[tier - 1] : 0;
  // Candidate sizes for this tier: lo, then grid points up to R (a zero
  // lower bound admits 0 itself, i.e. "skip this tier").
  for (Bytes s = lo; s <= R; s = (s == 0 ? step : s + step)) {
    stripes[tier] = s;
    enumerate(stripes, tier + 1, R, step, monotone, visit);
  }
  stripes[tier] = 0;
}

}  // namespace

Seconds tiered_region_cost(const TieredCostParams& params,
                           std::span<const FileRequest> requests,
                           std::span<const Bytes> stripes,
                           std::size_t max_requests) {
  const std::size_t stride = sample_stride(requests.size(), max_requests);
  Seconds total = 0.0;
  std::size_t scored = 0;
  for (std::size_t i = 0; i < requests.size(); i += stride) {
    total += tiered_request_cost(params, requests[i].op, requests[i].offset,
                                 requests[i].size, stripes);
    ++scored;
  }
  if (scored == 0) return 0.0;
  return total * static_cast<double>(requests.size()) /
         static_cast<double>(scored);
}

TieredRegionStripes optimize_region_tiered(
    const TieredCostParams& params, std::span<const FileRequest> requests,
    double avg_request_size, const TieredOptimizerOptions& options) {
  if (requests.empty()) {
    throw std::invalid_argument("optimizer needs at least one request");
  }
  if (options.step == 0) throw std::invalid_argument("step must be > 0");
  if (avg_request_size <= 0.0) {
    throw std::invalid_argument("average request size must be positive");
  }
  std::size_t total_servers = 0;
  for (const auto& t : params.tiers) total_servers += t.count;
  if (total_servers == 0) {
    throw std::invalid_argument("no servers in tiered params");
  }

  const Bytes step = options.step;
  const Bytes R =
      std::max(step, round_up(static_cast<Bytes>(avg_request_size), step));
  const std::size_t k = params.tiers.size();

  // Materialize the candidate list up front so scoring can be sharded.
  std::vector<std::vector<Bytes>> candidates;
  {
    std::vector<Bytes> stripes(k, 0);
    enumerate(stripes, 0, R, step, options.monotone,
              [&candidates](const std::vector<Bytes>& s) {
                candidates.push_back(s);
              });
  }
  if (candidates.empty()) throw std::logic_error("no tiered candidates");

  const std::size_t stride =
      sample_stride(requests.size(), options.max_requests);
  const std::size_t sampled = (requests.size() + stride - 1) / stride;
  auto score = [&](const std::vector<Bytes>& stripes, CostMemo* memo) {
    Seconds total = 0.0;
    if (memo != nullptr) {
      Bytes S = 0;
      for (std::size_t j = 0; j < stripes.size(); ++j) {
        S += static_cast<Bytes>(params.tiers[j].count) * stripes[j];
      }
      memo->reset(sampled);
      for (std::size_t i = 0; i < requests.size(); i += stride) {
        const FileRequest& req = requests[i];
        total += memo->cost(req.op, req.size, req.offset % S,
                            [&](Bytes residue) {
                              return tiered_request_cost(params, req.op,
                                                         residue, req.size,
                                                         stripes);
                            });
      }
    } else {
      for (std::size_t i = 0; i < requests.size(); i += stride) {
        total += tiered_request_cost(params, requests[i].op,
                                     requests[i].offset, requests[i].size,
                                     stripes);
      }
    }
    return total * static_cast<double>(requests.size()) /
           static_cast<double>(sampled);
  };

  Candidate best;
  std::uint64_t cost_evals = 0;
  std::uint64_t cost_evals_saved = 0;
  if (options.pool != nullptr && candidates.size() > 1) {
    const std::size_t shards =
        std::min(options.pool->thread_count() * 4, candidates.size());
    std::vector<Candidate> shard_best(shards);
    std::vector<std::uint64_t> shard_evals(shards, 0);
    std::vector<std::uint64_t> shard_saved(shards, 0);
    options.pool->parallel_for(shards, [&](std::size_t shard) {
      Candidate local;
      CostMemo memo;
      for (std::size_t i = shard; i < candidates.size(); i += shards) {
        Candidate c{score(candidates[i], options.coalesce ? &memo : nullptr),
                    candidates[i]};
        if (c.better_than(local)) local = c;
      }
      shard_best[shard] = local;
      shard_evals[shard] = options.coalesce
                               ? memo.misses()
                               : (candidates.size() / shards +
                                  (shard < candidates.size() % shards)) *
                                     sampled;
      shard_saved[shard] = memo.hits();
    });
    for (std::size_t shard = 0; shard < shards; ++shard) {
      if (shard_best[shard].better_than(best)) {
        best = std::move(shard_best[shard]);
      }
      cost_evals += shard_evals[shard];
      cost_evals_saved += shard_saved[shard];
    }
  } else {
    CostMemo memo;
    for (const auto& stripes : candidates) {
      Candidate c{score(stripes, options.coalesce ? &memo : nullptr), stripes};
      if (c.better_than(best)) best = std::move(c);
    }
    cost_evals = options.coalesce ? memo.misses()
                                  : candidates.size() * sampled;
    cost_evals_saved = memo.hits();
  }

  TieredRegionStripes result;
  result.stripes = std::move(best.stripes);
  result.model_cost = best.cost;
  result.candidates_evaluated = candidates.size();
  result.cost_evals = cost_evals;
  result.cost_evals_saved = cost_evals_saved;
  return result;
}

}  // namespace harl::core
