#include "src/core/cost_model.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/common/interval.hpp"
#include "src/core/closed_form.hpp"
#include "src/core/tiered_cost_model.hpp"

namespace harl::core {

CostParams make_cost_params(std::size_t M, std::size_t N,
                            const storage::TierProfile& hserver,
                            const storage::TierProfile& sserver, Seconds t) {
  CostParams p;
  p.M = M;
  p.N = N;
  p.t = t;
  p.hserver_read = hserver.read;
  p.hserver_write = hserver.write;
  p.sserver_read = sserver.read;
  p.sserver_write = sserver.write;
  return p;
}

TieredCostParams to_tiered(const CostParams& params) {
  TieredCostParams out;
  out.tiers.resize(2);
  out.tiers[0].count = params.M;
  out.tiers[0].profile.name = "hserver";
  out.tiers[0].profile.read = params.hserver_read;
  out.tiers[0].profile.write = params.hserver_write;
  out.tiers[1].count = params.N;
  out.tiers[1].profile.name = "sserver";
  out.tiers[1].profile.read = params.sserver_read;
  out.tiers[1].profile.write = params.sserver_write;
  // A factor vector only travels when it matches the tier's census; CARL
  // builds half-params with M = 0 or N = 0 where the other tier's factors
  // would otherwise dangle against a zero count.
  if (params.hserver_factors.size() == params.M) {
    out.tiers[0].device_factors = params.hserver_factors;
  }
  if (params.sserver_factors.size() == params.N) {
    out.tiers[1].device_factors = params.sserver_factors;
  }
  out.t = params.t;
  out.net_latency = params.net_latency;
  out.net_hops = params.net_hops;
  out.per_stripe_overhead = params.per_stripe_overhead;
  return out;
}

std::uint64_t params_fingerprint(const CostParams& params) {
  return params_fingerprint(to_tiered(params));
}

namespace {

/// Profiles for `op`, in tier order (HServers then SServers).
inline void select_profiles(const CostParams& params, IoOp op,
                            const storage::OpProfile* (&profs)[2]) {
  profs[0] = op == IoOp::kRead ? &params.hserver_read : &params.hserver_write;
  profs[1] = op == IoOp::kRead ? &params.sserver_read : &params.sserver_write;
}

}  // namespace

SubreqGeometry request_geometry(Bytes o, Bytes r, StripePair hs, std::size_t M,
                                std::size_t N) {
  const std::size_t counts[2] = {M, N};
  const Bytes stripes[2] = {hs.h, hs.s};
  TierGeometry out[2];
  tiered_geometry_into(o, r, counts, stripes, out);
  return SubreqGeometry{out[0].max_bytes, out[1].max_bytes, out[0].touched,
                        out[1].touched};
}

SubreqGeometry request_geometry_reference(Bytes o, Bytes r, StripePair hs,
                                          std::size_t M, std::size_t N) {
  const Bytes S = static_cast<Bytes>(M) * hs.h + static_cast<Bytes>(N) * hs.s;
  if (S == 0) throw std::invalid_argument("zero striping period");
  std::vector<Bytes> per_server(M + N, 0);
  Bytes pos = o;
  const Bytes end = o + r;
  while (pos < end) {
    const Bytes within = pos % S;
    // Find the server cell containing `within` by linear scan.
    Bytes cell_base = 0;
    std::size_t server = 0;
    for (std::size_t i = 0; i < M + N; ++i) {
      const Bytes st = i < M ? hs.h : hs.s;
      if (within < cell_base + st) {
        server = i;
        break;
      }
      cell_base += st;
    }
    const Bytes st = server < M ? hs.h : hs.s;
    const Bytes take = std::min(end - pos, cell_base + st - within);
    per_server[server] += take;
    pos += take;
  }
  SubreqGeometry g;
  for (std::size_t i = 0; i < M + N; ++i) {
    if (per_server[i] == 0) continue;
    if (i < M) {
      ++g.m;
      g.s_m = std::max(g.s_m, per_server[i]);
    } else {
      ++g.n;
      g.s_n = std::max(g.s_n, per_server[i]);
    }
  }
  return g;
}

SubreqGeometry fig5_case_a_geometry(Bytes o, Bytes r, StripePair hs,
                                    std::size_t M, std::size_t N) {
  const Bytes h = hs.h;
  const Bytes s = hs.s;
  if (h == 0 || s == 0 || M == 0 || r == 0) {
    throw std::domain_error("fig5 case (a) needs nonzero stripes and M > 0");
  }
  const Bytes S = static_cast<Bytes>(M) * h + static_cast<Bytes>(N) * s;
  const Bytes r_b = o / S;
  const Bytes r_e = (o + r) / S;
  const Bytes l_b = o - r_b * S;
  const Bytes l_e = (o + r) - r_e * S;
  if (l_b >= M * h || l_e >= M * h) {
    throw std::domain_error("request does not begin and end on HServers");
  }
  const Bytes n_b = l_b / h;
  const Bytes n_e = l_e / h;
  // Fragment sizes (the paper prints l_e where l_b is meant in s_b; and we
  // take s_e as the bytes *into* the ending stripe, which is what makes the
  // dr >= 1 rows exact).
  const Bytes s_b = h - l_b % h;
  const Bytes s_e = l_e % h;
  const std::int64_t dr = static_cast<std::int64_t>(r_e) - static_cast<std::int64_t>(r_b);
  const std::int64_t dc = static_cast<std::int64_t>(n_e) - static_cast<std::int64_t>(n_b);

  SubreqGeometry g;
  if (dr == 0) {
    g.s_n = 0;
    g.n = 0;
    g.m = static_cast<std::size_t>(dc + 1);
    if (dc == 0) {
      g.s_m = s_b;  // paper's value; exact is r (upper bound, see header)
    } else if (dc == 1) {
      g.s_m = std::max(s_b, s_e);
    } else {
      g.s_m = h;
    }
  } else {
    const Bytes drb = static_cast<Bytes>(dr);
    g.s_n = drb * s;
    g.n = N;
    if (dc == 0) {
      g.s_m = std::max(drb * h - h + s_b + s_e, drb * h);
      g.m = M;
    } else if (n_b + 1 == M && n_e == 0) {
      g.s_m = std::max(drb * h - h + s_b, drb * h - h + s_e);
      g.m = dr == 1 ? 2 : M;
    } else {
      g.s_m = drb * h;
      g.m = dc < -1 ? static_cast<std::size_t>(static_cast<std::int64_t>(M) + 1 + dc)
                    : M;
    }
  }
  return g;
}

CostBreakdown request_cost_breakdown(const CostParams& params, IoOp op,
                                     Bytes offset, Bytes size, StripePair hs) {
  // Diagnostic decomposition; the term expressions mirror tiered_cost_kernel
  // exactly so total always equals request_cost.
  CostBreakdown out;
  out.geometry = request_geometry(offset, size, hs, params.M, params.N);
  const SubreqGeometry& g = out.geometry;

  const storage::OpProfile* profs[2];
  select_profiles(params, op, profs);

  const Bytes max_bytes = std::max(g.s_m, g.s_n);
  out.network = params.net_latency + static_cast<double>(params.net_hops) *
                                         params.t *
                                         static_cast<double>(max_bytes);
  out.startup = std::max(startup_expected_max(*profs[0], g.m),
                         startup_expected_max(*profs[1], g.n));
  out.transfer = std::max(static_cast<double>(g.s_m) * profs[0]->per_byte,
                          static_cast<double>(g.s_n) * profs[1]->per_byte);
  if (params.per_stripe_overhead > 0.0) {
    Bytes max_pieces = 0;
    if (hs.h > 0 && g.s_m > 0) {
      max_pieces = std::max(max_pieces, (g.s_m + hs.h - 1) / hs.h);
    }
    if (hs.s > 0 && g.s_n > 0) {
      max_pieces = std::max(max_pieces, (g.s_n + hs.s - 1) / hs.s);
    }
    out.transfer +=
        params.per_stripe_overhead * static_cast<double>(max_pieces);
  }
  out.total = out.network + out.startup + out.transfer;
  return out;
}

Seconds request_cost(const CostParams& params, IoOp op, Bytes offset,
                     Bytes size, StripePair hs) {
  const std::size_t counts[2] = {params.M, params.N};
  const Bytes stripes[2] = {hs.h, hs.s};
  const storage::OpProfile* profs[2];
  select_profiles(params, op, profs);
  TierGeometry scratch[2];
  return tiered_cost_kernel(counts, profs, params.t, params.net_latency,
                            params.net_hops, params.per_stripe_overhead,
                            offset, size, stripes, scratch);
}

}  // namespace harl::core
