#include "src/core/cost_model.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/common/interval.hpp"
#include "src/core/closed_form.hpp"

namespace harl::core {

CostParams make_cost_params(std::size_t M, std::size_t N,
                            const storage::TierProfile& hserver,
                            const storage::TierProfile& sserver, Seconds t) {
  CostParams p;
  p.M = M;
  p.N = N;
  p.t = t;
  p.hserver_read = hserver.read;
  p.hserver_write = hserver.write;
  p.sserver_read = sserver.read;
  p.sserver_write = sserver.write;
  return p;
}

namespace {

/// Accumulates max-bytes/touched over one tier's cells without allocating.
/// `tier_base` is the tier's first cell offset within the period.
void tier_geometry_inline(Bytes l_b, Bytes l_e, Bytes S, Bytes full_periods,
                          Bytes tier_base, std::size_t count, Bytes stripe,
                          Bytes& max_bytes, std::size_t& touched) {
  if (stripe == 0 || count == 0) return;
  Bytes cell_base = tier_base;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteInterval cell{cell_base, cell_base + stripe};
    Bytes bytes = 0;
    if (full_periods == ~static_cast<Bytes>(0)) {
      // Single-period request: [l_b, l_e) within one period.
      bytes = intersect({l_b, l_e}, cell).length();
    } else {
      bytes = intersect({l_b, S}, cell).length() + full_periods * stripe +
              intersect({0, l_e}, cell).length();
    }
    if (bytes > 0) {
      ++touched;
      max_bytes = std::max(max_bytes, bytes);
    }
    cell_base += stripe;
  }
}

}  // namespace

SubreqGeometry request_geometry(Bytes o, Bytes r, StripePair hs, std::size_t M,
                                std::size_t N) {
  const Bytes S = static_cast<Bytes>(M) * hs.h + static_cast<Bytes>(N) * hs.s;
  if (S == 0) throw std::invalid_argument("zero striping period");
  SubreqGeometry g;
  if (r == 0) return g;

  // Fast path: the completed Fig. 4/5 closed forms are O(1) and exact when
  // both tiers are present (closed_form_test.cpp pins the equivalence).
  // Algorithm 2 evaluates this millions of times per region.
  if (hs.h > 0 && hs.s > 0 && M > 0 && N > 0) {
    return closed_form_geometry(o, r, hs, M, N);
  }

  const Bytes end = o + r;
  const Bytes period_first = o / S;
  const Bytes period_last = end / S;
  const Bytes l_b = o - period_first * S;
  const Bytes l_e = end - period_last * S;
  // Sentinel ~0 marks the single-period case for tier_geometry_inline.
  const Bytes full_periods = period_last == period_first
                                 ? ~static_cast<Bytes>(0)
                                 : period_last - period_first - 1;

  tier_geometry_inline(l_b, l_e, S, full_periods, 0, M, hs.h, g.s_m, g.m);
  tier_geometry_inline(l_b, l_e, S, full_periods,
                       static_cast<Bytes>(M) * hs.h, N, hs.s, g.s_n, g.n);
  return g;
}

SubreqGeometry request_geometry_reference(Bytes o, Bytes r, StripePair hs,
                                          std::size_t M, std::size_t N) {
  const Bytes S = static_cast<Bytes>(M) * hs.h + static_cast<Bytes>(N) * hs.s;
  if (S == 0) throw std::invalid_argument("zero striping period");
  std::vector<Bytes> per_server(M + N, 0);
  Bytes pos = o;
  const Bytes end = o + r;
  while (pos < end) {
    const Bytes within = pos % S;
    // Find the server cell containing `within` by linear scan.
    Bytes cell_base = 0;
    std::size_t server = 0;
    for (std::size_t i = 0; i < M + N; ++i) {
      const Bytes st = i < M ? hs.h : hs.s;
      if (within < cell_base + st) {
        server = i;
        break;
      }
      cell_base += st;
    }
    const Bytes st = server < M ? hs.h : hs.s;
    const Bytes take = std::min(end - pos, cell_base + st - within);
    per_server[server] += take;
    pos += take;
  }
  SubreqGeometry g;
  for (std::size_t i = 0; i < M + N; ++i) {
    if (per_server[i] == 0) continue;
    if (i < M) {
      ++g.m;
      g.s_m = std::max(g.s_m, per_server[i]);
    } else {
      ++g.n;
      g.s_n = std::max(g.s_n, per_server[i]);
    }
  }
  return g;
}

SubreqGeometry fig5_case_a_geometry(Bytes o, Bytes r, StripePair hs,
                                    std::size_t M, std::size_t N) {
  const Bytes h = hs.h;
  const Bytes s = hs.s;
  if (h == 0 || s == 0 || M == 0 || r == 0) {
    throw std::domain_error("fig5 case (a) needs nonzero stripes and M > 0");
  }
  const Bytes S = static_cast<Bytes>(M) * h + static_cast<Bytes>(N) * s;
  const Bytes r_b = o / S;
  const Bytes r_e = (o + r) / S;
  const Bytes l_b = o - r_b * S;
  const Bytes l_e = (o + r) - r_e * S;
  if (l_b >= M * h || l_e >= M * h) {
    throw std::domain_error("request does not begin and end on HServers");
  }
  const Bytes n_b = l_b / h;
  const Bytes n_e = l_e / h;
  // Fragment sizes (the paper prints l_e where l_b is meant in s_b; and we
  // take s_e as the bytes *into* the ending stripe, which is what makes the
  // dr >= 1 rows exact).
  const Bytes s_b = h - l_b % h;
  const Bytes s_e = l_e % h;
  const std::int64_t dr = static_cast<std::int64_t>(r_e) - static_cast<std::int64_t>(r_b);
  const std::int64_t dc = static_cast<std::int64_t>(n_e) - static_cast<std::int64_t>(n_b);

  SubreqGeometry g;
  if (dr == 0) {
    g.s_n = 0;
    g.n = 0;
    g.m = static_cast<std::size_t>(dc + 1);
    if (dc == 0) {
      g.s_m = s_b;  // paper's value; exact is r (upper bound, see header)
    } else if (dc == 1) {
      g.s_m = std::max(s_b, s_e);
    } else {
      g.s_m = h;
    }
  } else {
    const Bytes drb = static_cast<Bytes>(dr);
    g.s_n = drb * s;
    g.n = N;
    if (dc == 0) {
      g.s_m = std::max(drb * h - h + s_b + s_e, drb * h);
      g.m = M;
    } else if (n_b + 1 == M && n_e == 0) {
      g.s_m = std::max(drb * h - h + s_b, drb * h - h + s_e);
      g.m = dr == 1 ? 2 : M;
    } else {
      g.s_m = drb * h;
      g.m = dc < -1 ? static_cast<std::size_t>(static_cast<std::int64_t>(M) + 1 + dc)
                    : M;
    }
  }
  return g;
}

Seconds startup_expected_max(const storage::OpProfile& p, std::size_t k) {
  if (k == 0) return 0.0;
  const double frac = static_cast<double>(k) / static_cast<double>(k + 1);
  return p.startup_min + frac * (p.startup_max - p.startup_min);
}

namespace {

/// Per-stripe processing of the slowest sub-request: stripe units in the
/// maximal per-server extent, per tier, costed at the calibrated overhead.
Seconds stripe_processing(const CostParams& params, const SubreqGeometry& g,
                          StripePair hs) {
  if (params.per_stripe_overhead <= 0.0) return 0.0;
  Bytes max_pieces = 0;
  if (hs.h > 0 && g.s_m > 0) {
    max_pieces = std::max(max_pieces, (g.s_m + hs.h - 1) / hs.h);
  }
  if (hs.s > 0 && g.s_n > 0) {
    max_pieces = std::max(max_pieces, (g.s_n + hs.s - 1) / hs.s);
  }
  return params.per_stripe_overhead * static_cast<double>(max_pieces);
}

}  // namespace

CostBreakdown request_cost_breakdown(const CostParams& params, IoOp op,
                                     Bytes offset, Bytes size, StripePair hs) {
  CostBreakdown out;
  out.geometry = request_geometry(offset, size, hs, params.M, params.N);
  const SubreqGeometry& g = out.geometry;

  const storage::OpProfile& hp =
      op == IoOp::kRead ? params.hserver_read : params.hserver_write;
  const storage::OpProfile& sp =
      op == IoOp::kRead ? params.sserver_read : params.sserver_write;

  const Bytes max_bytes = std::max(g.s_m, g.s_n);
  out.network = params.net_latency + static_cast<double>(params.net_hops) *
                                         params.t *
                                         static_cast<double>(max_bytes);
  out.startup = std::max(startup_expected_max(hp, g.m),
                         startup_expected_max(sp, g.n));
  out.transfer = std::max(static_cast<double>(g.s_m) * hp.per_byte,
                          static_cast<double>(g.s_n) * sp.per_byte) +
                 stripe_processing(params, g, hs);
  out.total = out.network + out.startup + out.transfer;
  return out;
}

Seconds request_cost(const CostParams& params, IoOp op, Bytes offset,
                     Bytes size, StripePair hs) {
  // Inlined hot path of request_cost_breakdown (the optimizer calls this
  // millions of times).
  const SubreqGeometry g = request_geometry(offset, size, hs, params.M, params.N);
  const storage::OpProfile& hp =
      op == IoOp::kRead ? params.hserver_read : params.hserver_write;
  const storage::OpProfile& sp =
      op == IoOp::kRead ? params.sserver_read : params.sserver_write;
  const Bytes max_bytes = std::max(g.s_m, g.s_n);
  const Seconds network = params.net_latency +
                          static_cast<double>(params.net_hops) * params.t *
                              static_cast<double>(max_bytes);
  const Seconds startup = std::max(startup_expected_max(hp, g.m),
                                   startup_expected_max(sp, g.n));
  const Seconds transfer = std::max(static_cast<double>(g.s_m) * hp.per_byte,
                                    static_cast<double>(g.s_n) * sp.per_byte) +
                           stripe_processing(params, g, hs);
  return network + startup + transfer;
}

}  // namespace harl::core
