// Region stripe-size determination (paper Section III-E, Algorithm 2).
//
// For one region, grid-search stripe pairs (h, s) in `step` increments:
// h in {0, step, ..., R} and s in {h + step, ..., R} where R is the region's
// average request size — s starts above h because SServers are faster and
// should carry more bytes per period (load balance), and h may be 0 so a
// region can live entirely on SServers ({0K, 64K} in paper Section IV-B.3).
// Each candidate is scored by the summed cost-model time of the region's
// requests (reads via Eq. 7, writes via Eq. 8); the minimum wins.
//
// The search is exact, embarrassingly parallel (sharded over h), and runs
// offline; `max_requests` caps the per-candidate scoring work by sampling
// the region's requests with a deterministic stride when the trace is huge.
#pragma once

#include <span>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/cost_model.hpp"

namespace harl::core {

struct OptimizerOptions {
  Bytes step = 4 * KiB;          ///< the paper's 4 KB grid step
  std::size_t max_requests = 4096;  ///< request-sampling cap (0 = no cap)
  ThreadPool* pool = nullptr;    ///< optional: shard the h-axis over a pool
  /// Space-aware constraint (PSA, the authors' companion work [33], and the
  /// paper's Discussion): bound the fraction of each region's bytes stored
  /// on SServers to N*s / (M*h + N*s) <= max_sserver_share.  1.0 = no bound
  /// (paper-pure Algorithm 2).  If no candidate satisfies the bound, the
  /// feasible candidate with the smallest SServer share wins instead.
  double max_sserver_share = 1.0;
};

/// Result of optimizing one region.
struct RegionStripes {
  StripePair stripes;       ///< the winning (H, S)
  Seconds model_cost = 0.0; ///< summed model cost of the scored requests
  std::size_t candidates_evaluated = 0;
};

/// Runs Algorithm 2.  `requests` are the region's file requests (any order);
/// `avg_request_size` is the region's A value from Algorithm 1.
/// Requires at least one request, M + N > 0, and avg_request_size > 0.
RegionStripes optimize_region(const CostParams& params,
                              std::span<const FileRequest> requests,
                              double avg_request_size,
                              const OptimizerOptions& options = {});

/// Baseline for the segment-level ablation: best *homogeneous* stripe
/// (h == s) for the region, searched over the same grid.
RegionStripes optimize_region_homogeneous(const CostParams& params,
                                          std::span<const FileRequest> requests,
                                          double avg_request_size,
                                          const OptimizerOptions& options = {});

/// Scores one candidate: summed model cost over (sampled) requests.
Seconds region_cost(const CostParams& params,
                    std::span<const FileRequest> requests, StripePair hs,
                    std::size_t max_requests = 0);

}  // namespace harl::core
