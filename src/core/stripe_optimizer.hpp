// Region stripe-size determination (paper Section III-E, Algorithm 2), for
// any number of storage tiers.
//
// Since the tier-vector refactor this is the ONE grid search: a region's
// candidate layout is a per-tier stripe vector (s_0, ..., s_{k-1}) with
// striping period S = sum_j count_j * s_j, and a single sharded engine
// scores every candidate by the summed cost-model time of the region's
// requests (reads via Eq. 7, writes via Eq. 8); the minimum wins.  The
// two-tier API below is a k = 2 front end over that engine and reproduces
// the dedicated two-tier optimizer bit-for-bit (pinned by optimizer_test).
//
// Two-tier candidate grid (the paper's Algorithm 2): pairs (h, s) in `step`
// increments, h in {0, step, ..., R} and s in {h + step, ..., R} where R is
// the region's average request size — s starts above h because SServers are
// faster and should carry more bytes per period (load balance), and h may
// be 0 so a region can live entirely on SServers ({0K, 64K} in paper
// Section IV-B.3).
//
// k-tier candidate grid (the paper's stated future work): stripe vectors on
// the same grid subject to the monotonicity constraint s_0 <= ... <= s_{k-1}
// when tiers are ordered slowest-first — the k-tier analogue of "s starts
// from a size larger than h".  Not all stripes may be zero.
//
// Device-aware search: when a tier carries per-member speed factors
// (TierSpec::device_factors), every stripe candidate is additionally crossed
// with *member-prefix* choices — stripe over only the d fastest devices of a
// tier, for each d at a factor-group boundary of the canonical (ascending)
// factor vector.  The cost of a restricted candidate charges the worst
// factor among its selected members, so the search can trade width against
// excluding an aged straggler.  Homogeneous tiers contribute the single
// full-membership choice, leaving the candidate grid (and every output bit)
// unchanged.
//
// The search is exact, embarrassingly parallel (sharded over the candidate
// grid), and runs offline; `max_requests` caps the per-candidate scoring
// work by sampling the region's requests with a deterministic stride when
// the trace is huge, and request-class coalescing (cost_memo.hpp) collapses
// same-class requests to one cost evaluation per candidate without changing
// a single output bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/cost_model.hpp"
#include "src/core/tiered_cost_model.hpp"

namespace harl::core {

class CostMemo;

struct OptimizerOptions {
  Bytes step = 4 * KiB;          ///< the paper's 4 KB grid step
  std::size_t max_requests = 4096;  ///< request-sampling cap (0 = no cap)
  ThreadPool* pool = nullptr;    ///< optional: shard the candidate grid
  /// Optional caller-owned memo reused across optimize calls (the serial
  /// scoring path only — the sharded path keeps per-shard memos).  Online
  /// consumers that re-optimize every window (OnlineAdvisor) thread one
  /// memo through so the hash table is sized once instead of reallocated
  /// per window; per-candidate logical clearing still happens via the
  /// generation counter, so results are bit-identical.  Single-threaded:
  /// never share one scratch memo across concurrent optimize calls.
  CostMemo* scratch = nullptr;
  /// Request-class coalescing: memoize the request cost per candidate keyed
  /// by (op, size, offset mod S) — the cost model is exactly periodic in the
  /// offset with the candidate's striping period S, so each class is scored
  /// once and reused.  Totals (and thus the chosen stripes, tie-breaks
  /// included) are bit-identical to the brute-force path because requests
  /// are still accumulated in their original order with identical values.
  /// Disable only for A/B verification against the brute-force scorer.
  bool coalesce = true;
  /// Space-aware constraint (PSA, the authors' companion work [33], and the
  /// paper's Discussion): bound the fraction of each region's bytes stored
  /// on SServers to N*s / (M*h + N*s) <= max_sserver_share.  1.0 = no bound
  /// (paper-pure Algorithm 2).  If no candidate satisfies the bound, the
  /// feasible candidate with the smallest SServer share wins instead.
  double max_sserver_share = 1.0;
};

/// Result of optimizing one region (two-tier view).
struct RegionStripes {
  StripePair stripes;       ///< the winning (H, S)
  /// Winning per-tier member counts: stripe over only the `members[j]`
  /// fastest devices of tier j.  Empty = full tier membership (always the
  /// case for homogeneous params; the device-aware search may shrink a tier
  /// to exclude aged members when that lowers the modeled cost).
  std::vector<std::size_t> members;
  Seconds model_cost = 0.0; ///< summed model cost of the scored requests
  std::size_t candidates_evaluated = 0;
  /// Cost-kernel evaluations actually performed across all candidates.
  std::uint64_t cost_evals = 0;
  /// Evaluations avoided by request-class coalescing (cache hits); 0 when
  /// coalescing is disabled.  cost_evals + cost_evals_saved == the work the
  /// brute-force scorer would have done.
  std::uint64_t cost_evals_saved = 0;
};

/// Runs Algorithm 2.  `requests` are the region's file requests (any order);
/// `avg_request_size` is the region's A value from Algorithm 1.
/// Requires at least one request, M + N > 0, and avg_request_size > 0.
RegionStripes optimize_region(const CostParams& params,
                              std::span<const FileRequest> requests,
                              double avg_request_size,
                              const OptimizerOptions& options = {});

/// Baseline for the segment-level ablation: best *homogeneous* stripe
/// (h == s) for the region, searched over the same grid.
RegionStripes optimize_region_homogeneous(const CostParams& params,
                                          std::span<const FileRequest> requests,
                                          double avg_request_size,
                                          const OptimizerOptions& options = {});

/// Scores one candidate: summed model cost over (sampled) requests.
/// `coalesce` memoizes per request class exactly as the search does; the
/// result is bit-identical either way (the default is the plain loop, kept
/// as the A/B reference).
Seconds region_cost(const CostParams& params,
                    std::span<const FileRequest> requests, StripePair hs,
                    std::size_t max_requests = 0, bool coalesce = false);

struct TieredOptimizerOptions {
  Bytes step = 4 * KiB;
  std::size_t max_requests = 4096;  ///< request-sampling cap (0 = no cap)
  ThreadPool* pool = nullptr;       ///< shard the candidate grid
  /// Require stripes to be non-decreasing across tiers (slowest-first
  /// ordering).  Disable for clusters whose tier order is not by speed.
  bool monotone = true;
  /// Request-class coalescing, as in OptimizerOptions: the k-tier cost is
  /// also exactly periodic in the offset (period = sum count_j * stripe_j),
  /// so per-candidate memoization is bit-identical to brute force.
  bool coalesce = true;
};

/// Result of optimizing one region (general tier-vector view).
struct TieredRegionStripes {
  std::vector<Bytes> stripes;   ///< winning per-tier sizes
  /// Winning per-tier member counts (see RegionStripes::members); empty =
  /// full membership.
  std::vector<std::size_t> members;
  Seconds model_cost = 0.0;
  std::size_t candidates_evaluated = 0;
  std::uint64_t cost_evals = 0;        ///< cost-kernel calls made
  std::uint64_t cost_evals_saved = 0;  ///< calls avoided by coalescing
};

/// Exhaustive grid search over per-tier stripes for one region.
/// Requires at least one request, at least one tier with servers, and
/// avg_request_size > 0.  Grid cost grows as (R/step)^k — use coarser
/// steps for k >= 3 (candidates are reported for tuning).
/// Tie-break: lower cost, then the lexicographically larger vector compared
/// from the last (fastest) tier.
TieredRegionStripes optimize_region_tiered(
    const TieredCostParams& params, std::span<const FileRequest> requests,
    double avg_request_size, const TieredOptimizerOptions& options = {});

/// Scores one candidate: summed tiered model cost over (sampled) requests.
Seconds tiered_region_cost(const TieredCostParams& params,
                           std::span<const FileRequest> requests,
                           std::span<const Bytes> stripes,
                           std::size_t max_requests = 0);

}  // namespace harl::core
