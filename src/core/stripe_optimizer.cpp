#include "src/core/stripe_optimizer.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/core/cost_memo.hpp"

namespace harl::core {

namespace {

/// Deterministic stride-sampled scoring indices: 0, k, 2k, ...
std::size_t sample_stride(std::size_t n, std::size_t max_requests) {
  if (max_requests == 0 || n <= max_requests) return 1;
  return (n + max_requests - 1) / max_requests;
}

Bytes round_up(Bytes value, Bytes step) {
  return (value + step - 1) / step * step;
}

/// One candidate layout: a per-tier stripe vector, optionally restricted to
/// the `members[j]` fastest devices of each tier (empty = full membership,
/// the only form the homogeneous search produces).
struct CandidateSpec {
  std::vector<Bytes> stripes;
  std::vector<std::size_t> members;
};

struct Candidate {
  Seconds cost = std::numeric_limits<Seconds>::infinity();
  std::vector<Bytes> stripes;  ///< empty = sentinel (loses to any real one)
  std::vector<std::size_t> members;  ///< empty = full membership

  /// Total order: lower cost wins; ties prefer *larger* stripes.  Round-robin
  /// aggregation makes many stripe vectors cost-equivalent under the model
  /// (e.g. every s <= r/N gives the same per-SServer bytes for aligned
  /// requests); the largest of them minimizes per-stripe overheads the model
  /// does not price, and matches the paper's reported optima ({0K, 64K} for
  /// 128 KiB requests rather than {0K, 4K}).  The order is deterministic, so
  /// results are independent of evaluation order and parallel sharding.
  /// `tie_from_front` selects the lexicographic scan direction: the two-tier
  /// API compares (h, s) from the front; the k-tier API compares from the
  /// last (fastest) tier.  Member counts break remaining ties in the same
  /// direction with larger (wider) membership winning — cost-equivalent
  /// layouts keep the most devices in play.
  bool better_than(const Candidate& other, bool tie_from_front) const {
    if (cost != other.cost) return cost < other.cost;
    if (stripes.size() != other.stripes.size()) {
      return stripes.size() > other.stripes.size();  // beats the empty sentinel
    }
    if (tie_from_front) {
      for (std::size_t i = 0; i < stripes.size(); ++i) {
        if (stripes[i] != other.stripes[i]) return stripes[i] > other.stripes[i];
      }
    } else {
      for (std::size_t i = stripes.size(); i-- > 0;) {
        if (stripes[i] != other.stripes[i]) return stripes[i] > other.stripes[i];
      }
    }
    if (members.size() != other.members.size()) {
      return members.size() > other.members.size();
    }
    if (tie_from_front) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i] != other.members[i]) return members[i] > other.members[i];
      }
    } else {
      for (std::size_t i = members.size(); i-- > 0;) {
        if (members[i] != other.members[i]) return members[i] > other.members[i];
      }
    }
    return false;
  }
};

/// Member-count choices for one tier: the distinct prefix lengths ending at
/// factor-group boundaries of the canonical (ascending) factor vector — e.g.
/// factors {1, 1, 4, 4} yield {2, 4} ("the two fresh devices" or "all
/// four"); intermediate prefixes are dominated because adding another member
/// of the same factor widens the stripe at no worst-factor cost.  A
/// homogeneous tier has the single full-membership choice.
std::vector<std::size_t> member_choices(const TierSpec& tier) {
  if (tier.device_factors.empty() || tier.count == 0) return {tier.count};
  std::vector<std::size_t> out;
  const std::vector<double>& f = tier.device_factors;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i + 1 == f.size() || f[i + 1] != f[i]) out.push_back(i + 1);
  }
  return out;
}

/// Crosses one stripe vector with every member-choice combination (tiers
/// with stripe 0 contribute the single choice 0) and appends the product to
/// `out`, last tier varying fastest.
void cross_member_choices(const TieredCostParams& params,
                          const std::vector<Bytes>& stripes,
                          std::vector<CandidateSpec>& out) {
  const std::size_t k = params.tiers.size();
  std::vector<std::vector<std::size_t>> per_tier(k);
  std::size_t total = 1;
  for (std::size_t j = 0; j < k; ++j) {
    per_tier[j] = stripes[j] == 0 ? std::vector<std::size_t>{0}
                                  : member_choices(params.tiers[j]);
    total *= per_tier[j].size();
  }
  for (std::size_t n = 0; n < total; ++n) {
    CandidateSpec c;
    c.stripes = stripes;
    c.members.resize(k);
    std::size_t rem = n;
    for (std::size_t j = k; j-- > 0;) {
      c.members[j] = per_tier[j][rem % per_tier[j].size()];
      rem /= per_tier[j].size();
    }
    out.push_back(std::move(c));
  }
}

/// FNV-1a over a member vector; 0 for the empty (full-membership) form so
/// the homogeneous memo context stays exactly 0.
std::uint64_t members_context(std::span<const std::size_t> members) {
  if (members.empty()) return 0;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t m : members) {
    h ^= static_cast<std::uint64_t>(m);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Recursively enumerates k-tier stripe vectors; calls `visit` on each.
void enumerate(std::vector<Bytes>& stripes, std::size_t tier, Bytes R,
               Bytes step, bool monotone,
               const std::function<void(const std::vector<Bytes>&)>& visit) {
  if (tier == stripes.size()) {
    for (Bytes s : stripes) {
      if (s > 0) {
        visit(stripes);
        return;
      }
    }
    return;  // all-zero is not a layout
  }
  const Bytes lo = monotone && tier > 0 ? stripes[tier - 1] : 0;
  // Candidate sizes for this tier: lo, then grid points up to R (a zero
  // lower bound admits 0 itself, i.e. "skip this tier").
  for (Bytes s = lo; s <= R; s = (s == 0 ? step : s + step)) {
    stripes[tier] = s;
    enumerate(stripes, tier + 1, R, step, monotone, visit);
  }
  stripes[tier] = 0;
}

struct EngineResult {
  std::vector<Bytes> stripes;
  std::vector<std::size_t> members;  ///< empty = full membership
  Seconds model_cost = 0.0;
  std::size_t candidates_evaluated = 0;
  std::uint64_t cost_evals = 0;
  std::uint64_t cost_evals_saved = 0;
};

/// The one search engine both public APIs feed: scores every candidate
/// stripe vector against the k-tier cost kernel, sharded over the candidate
/// list when a pool is provided.  Pre-selects per-op profile pointers once
/// so the hot loop pays no per-request branching beyond the op pick, and
/// reuses per-shard TierGeometry scratch so scoring never allocates.
/// Heterogeneous params route through the device-aware kernel with each
/// candidate's worst-member factors; homogeneous params take the original
/// kernel with the original memo keying, bit for bit.
EngineResult search_engine(const TieredCostParams& params,
                           std::span<const FileRequest> requests,
                           const std::vector<CandidateSpec>& candidates,
                           std::size_t max_requests, ThreadPool* pool,
                           bool coalesce, bool tie_from_front,
                           CostMemo* scratch = nullptr) {
  const std::size_t k = params.tiers.size();
  std::vector<std::size_t> counts(k);
  std::vector<const storage::OpProfile*> read_profiles(k);
  std::vector<const storage::OpProfile*> write_profiles(k);
  bool heterogeneous = false;
  for (std::size_t j = 0; j < k; ++j) {
    counts[j] = params.tiers[j].count;
    read_profiles[j] = &params.tiers[j].profile.read;
    write_profiles[j] = &params.tiers[j].profile.write;
    if (!params.tiers[j].device_factors.empty()) heterogeneous = true;
  }

  const std::size_t stride = sample_stride(requests.size(), max_requests);
  const std::size_t sampled = (requests.size() + stride - 1) / stride;

  // Scores one candidate.  With coalescing, `memo` caches the kernel per
  // (op, size, offset mod S) class; requests are still accumulated in their
  // original order with identical values, so the total is bit-identical to
  // the brute-force sum (see cost_memo.hpp).  The memo context carries the
  // candidate's member selection so equal-period candidates with different
  // member sets never share classes.  Scaled back to the full region so
  // reported costs are comparable regardless of sampling.
  auto score = [&](const CandidateSpec& cand, CostMemo* memo,
                   std::span<TierGeometry> scratch,
                   std::span<double> factors) {
    const std::span<const Bytes> stripes{cand.stripes};
    const std::span<const std::size_t> use =
        cand.members.empty() ? std::span<const std::size_t>{counts}
                             : std::span<const std::size_t>{cand.members};
    if (heterogeneous) {
      for (std::size_t j = 0; j < k; ++j) {
        factors[j] = storage::worst_device_factor(
            params.tiers[j].device_factors, use[j]);
      }
    }
    auto eval = [&](const FileRequest& req, Bytes offset) {
      const auto& profiles =
          req.op == IoOp::kRead ? read_profiles : write_profiles;
      if (heterogeneous) {
        return tiered_cost_kernel_devices(
            use, profiles, factors, params.t, params.net_latency,
            params.net_hops, params.per_stripe_overhead, offset, req.size,
            stripes, scratch);
      }
      return tiered_cost_kernel(use, profiles, params.t, params.net_latency,
                                params.net_hops, params.per_stripe_overhead,
                                offset, req.size, stripes, scratch);
    };
    Seconds total = 0.0;
    if (memo != nullptr) {
      Bytes S = 0;
      for (std::size_t j = 0; j < k; ++j) {
        S += static_cast<Bytes>(use[j]) * stripes[j];
      }
      memo->reset(sampled, members_context(cand.members));
      for (std::size_t i = 0; i < requests.size(); i += stride) {
        const FileRequest& req = requests[i];
        total += memo->cost(req.op, req.size, req.offset % S,
                            [&](Bytes residue) { return eval(req, residue); });
      }
    } else {
      for (std::size_t i = 0; i < requests.size(); i += stride) {
        const FileRequest& req = requests[i];
        total += eval(req, req.offset);
      }
    }
    return total * static_cast<double>(requests.size()) /
           static_cast<double>(sampled);
  };

  Candidate best;
  std::uint64_t cost_evals = 0;
  std::uint64_t cost_evals_saved = 0;
  if (pool != nullptr && candidates.size() > 1) {
    const std::size_t shards =
        std::min(pool->thread_count() * 4, candidates.size());
    std::vector<Candidate> shard_best(shards);
    std::vector<std::uint64_t> shard_evals(shards, 0);
    std::vector<std::uint64_t> shard_saved(shards, 0);
    pool->parallel_for(shards, [&](std::size_t shard) {
      Candidate local;
      CostMemo memo;  // per-shard scratch, reused across candidates
      std::vector<TierGeometry> scratch(k);
      std::vector<double> factors(k);
      for (std::size_t i = shard; i < candidates.size(); i += shards) {
        Candidate c{score(candidates[i], coalesce ? &memo : nullptr, scratch,
                          factors),
                    candidates[i].stripes, candidates[i].members};
        if (c.better_than(local, tie_from_front)) local = std::move(c);
      }
      shard_best[shard] = std::move(local);
      shard_evals[shard] = coalesce ? memo.misses()
                                    : (candidates.size() / shards +
                                       (shard < candidates.size() % shards)) *
                                          sampled;
      shard_saved[shard] = memo.hits();
    });
    for (std::size_t shard = 0; shard < shards; ++shard) {
      if (shard_best[shard].better_than(best, tie_from_front)) {
        best = std::move(shard_best[shard]);
      }
      cost_evals += shard_evals[shard];
      cost_evals_saved += shard_saved[shard];
    }
  } else {
    // A caller-provided scratch memo keeps its table capacity across calls;
    // its counters are cumulative, so report this call's work as deltas.
    CostMemo local;
    CostMemo& memo = scratch != nullptr ? *scratch : local;
    const std::uint64_t misses_before = memo.misses();
    const std::uint64_t hits_before = memo.hits();
    std::vector<TierGeometry> geometry(k);
    std::vector<double> factors(k);
    for (const auto& cand : candidates) {
      Candidate c{score(cand, coalesce ? &memo : nullptr, geometry, factors),
                  cand.stripes, cand.members};
      if (c.better_than(best, tie_from_front)) best = std::move(c);
    }
    cost_evals = coalesce ? memo.misses() - misses_before
                          : candidates.size() * sampled;
    cost_evals_saved = memo.hits() - hits_before;
  }

  EngineResult result;
  result.stripes = std::move(best.stripes);
  result.members = std::move(best.members);
  result.model_cost = best.cost;
  result.candidates_evaluated = candidates.size();
  result.cost_evals = cost_evals;
  result.cost_evals_saved = cost_evals_saved;
  return result;
}

/// Two-tier front end: the legacy (h, s) grid and space-aware filter, fed
/// through the shared engine with from-front tie-breaking.
RegionStripes search(const CostParams& params,
                     std::span<const FileRequest> requests,
                     double avg_request_size, const OptimizerOptions& options,
                     bool homogeneous) {
  if (requests.empty()) {
    throw std::invalid_argument("optimizer needs at least one request");
  }
  if (options.step == 0) throw std::invalid_argument("optimizer step must be > 0");
  if (avg_request_size <= 0.0) {
    throw std::invalid_argument("average request size must be positive");
  }
  if (params.M + params.N == 0) {
    throw std::invalid_argument("cost params describe no servers");
  }
  if (options.max_sserver_share <= 0.0 || options.max_sserver_share > 1.0) {
    throw std::invalid_argument("max_sserver_share must be in (0, 1]");
  }

  const Bytes step = options.step;
  const Bytes R = std::max(step, round_up(static_cast<Bytes>(avg_request_size), step));

  // Enumerate candidate pairs up front so the grid can be sharded.
  std::vector<StripePair> candidates;
  if (homogeneous) {
    for (Bytes v = step; v <= R; v += step) {
      candidates.push_back(StripePair{v, v});
    }
  } else {
    for (Bytes h = 0; h <= R; h += step) {
      if (params.M == 0 && h > 0) break;  // no HServers to stripe over
      Bytes first_s = h + step;
      // s exceeds h for load balance; when h == R the inner range would be
      // empty, so the single-HServer extreme keeps one candidate.
      for (Bytes s = first_s; s <= std::max(R, first_s); s += step) {
        if (params.N == 0 && s > 0) {
          if (h > 0) candidates.push_back(StripePair{h, 0});
          break;
        }
        candidates.push_back(StripePair{h, s});
      }
    }
  }
  if (candidates.empty()) {
    throw std::logic_error("optimizer produced no candidates");
  }

  // Space-aware filter: drop candidates whose SServer byte share exceeds
  // the bound.  If that empties the grid, fall back to the minimum-share
  // candidates so the search still returns the most space-frugal layout.
  if (options.max_sserver_share < 1.0) {
    auto share = [&](const StripePair& hs) {
      const double S = static_cast<double>(params.M) * hs.h +
                       static_cast<double>(params.N) * hs.s;
      return static_cast<double>(params.N) * hs.s / S;
    };
    std::vector<StripePair> feasible;
    double min_share = 2.0;
    for (const auto& hs : candidates) min_share = std::min(min_share, share(hs));
    const double bound =
        std::max(options.max_sserver_share, min_share + 1e-12);
    for (const auto& hs : candidates) {
      if (share(hs) <= bound) feasible.push_back(hs);
    }
    candidates = std::move(feasible);
  }

  const TieredCostParams tiered = to_tiered(params);
  const bool heterogeneous = !tiered.tiers[0].device_factors.empty() ||
                             !tiered.tiers[1].device_factors.empty();
  std::vector<CandidateSpec> vectors;
  vectors.reserve(candidates.size());
  for (const auto& hs : candidates) {
    if (heterogeneous) {
      cross_member_choices(tiered, {hs.h, hs.s}, vectors);
    } else {
      vectors.push_back(CandidateSpec{{hs.h, hs.s}, {}});
    }
  }
  EngineResult engine = search_engine(
      tiered, requests, vectors, options.max_requests, options.pool,
      options.coalesce, /*tie_from_front=*/true, options.scratch);

  RegionStripes result;
  result.stripes = StripePair{engine.stripes[0], engine.stripes[1]};
  result.members = std::move(engine.members);
  result.model_cost = engine.model_cost;
  result.candidates_evaluated = engine.candidates_evaluated;
  result.cost_evals = engine.cost_evals;
  result.cost_evals_saved = engine.cost_evals_saved;
  return result;
}

}  // namespace

RegionStripes optimize_region(const CostParams& params,
                              std::span<const FileRequest> requests,
                              double avg_request_size,
                              const OptimizerOptions& options) {
  return search(params, requests, avg_request_size, options, false);
}

RegionStripes optimize_region_homogeneous(const CostParams& params,
                                          std::span<const FileRequest> requests,
                                          double avg_request_size,
                                          const OptimizerOptions& options) {
  return search(params, requests, avg_request_size, options, true);
}

Seconds region_cost(const CostParams& params,
                    std::span<const FileRequest> requests, StripePair hs,
                    std::size_t max_requests, bool coalesce) {
  const std::size_t stride = sample_stride(requests.size(), max_requests);
  Seconds total = 0.0;
  std::size_t scored = 0;
  if (coalesce) {
    const Bytes S = static_cast<Bytes>(params.M) * hs.h +
                    static_cast<Bytes>(params.N) * hs.s;
    CostMemo memo;
    memo.reset((requests.size() + stride - 1) / stride);
    for (std::size_t i = 0; i < requests.size(); i += stride) {
      const FileRequest& req = requests[i];
      total += memo.cost(req.op, req.size, req.offset % S, [&](Bytes residue) {
        return request_cost(params, req.op, residue, req.size, hs);
      });
      ++scored;
    }
  } else {
    for (std::size_t i = 0; i < requests.size(); i += stride) {
      total += request_cost(params, requests[i].op, requests[i].offset,
                            requests[i].size, hs);
      ++scored;
    }
  }
  if (scored == 0) return 0.0;
  return total * static_cast<double>(requests.size()) /
         static_cast<double>(scored);
}

TieredRegionStripes optimize_region_tiered(
    const TieredCostParams& params, std::span<const FileRequest> requests,
    double avg_request_size, const TieredOptimizerOptions& options) {
  if (requests.empty()) {
    throw std::invalid_argument("optimizer needs at least one request");
  }
  if (options.step == 0) throw std::invalid_argument("step must be > 0");
  if (avg_request_size <= 0.0) {
    throw std::invalid_argument("average request size must be positive");
  }
  std::size_t total_servers = 0;
  for (const auto& t : params.tiers) total_servers += t.count;
  if (total_servers == 0) {
    throw std::invalid_argument("no servers in tiered params");
  }

  const Bytes step = options.step;
  const Bytes R =
      std::max(step, round_up(static_cast<Bytes>(avg_request_size), step));
  const std::size_t k = params.tiers.size();

  // Materialize the candidate list up front so scoring can be sharded.
  bool heterogeneous = false;
  for (const auto& t : params.tiers) {
    if (!t.device_factors.empty()) heterogeneous = true;
  }
  std::vector<CandidateSpec> candidates;
  {
    std::vector<Bytes> stripes(k, 0);
    enumerate(stripes, 0, R, step, options.monotone,
              [&](const std::vector<Bytes>& s) {
                if (heterogeneous) {
                  cross_member_choices(params, s, candidates);
                } else {
                  candidates.push_back(CandidateSpec{s, {}});
                }
              });
  }
  if (candidates.empty()) throw std::logic_error("no tiered candidates");

  EngineResult engine =
      search_engine(params, requests, candidates, options.max_requests,
                    options.pool, options.coalesce, /*tie_from_front=*/false);

  TieredRegionStripes result;
  result.stripes = std::move(engine.stripes);
  result.members = std::move(engine.members);
  result.model_cost = engine.model_cost;
  result.candidates_evaluated = engine.candidates_evaluated;
  result.cost_evals = engine.cost_evals;
  result.cost_evals_saved = engine.cost_evals_saved;
  return result;
}

Seconds tiered_region_cost(const TieredCostParams& params,
                           std::span<const FileRequest> requests,
                           std::span<const Bytes> stripes,
                           std::size_t max_requests) {
  const std::size_t stride = sample_stride(requests.size(), max_requests);
  Seconds total = 0.0;
  std::size_t scored = 0;
  for (std::size_t i = 0; i < requests.size(); i += stride) {
    total += tiered_request_cost(params, requests[i].op, requests[i].offset,
                                 requests[i].size, stripes);
    ++scored;
  }
  if (scored == 0) return 0.0;
  return total * static_cast<double>(requests.size()) /
         static_cast<double>(scored);
}

}  // namespace harl::core
