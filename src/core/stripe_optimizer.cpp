#include "src/core/stripe_optimizer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/core/cost_memo.hpp"

namespace harl::core {

namespace {

/// Deterministic stride-sampled scoring indices: 0, k, 2k, ...
std::size_t sample_stride(std::size_t n, std::size_t max_requests) {
  if (max_requests == 0 || n <= max_requests) return 1;
  return (n + max_requests - 1) / max_requests;
}

struct Candidate {
  Seconds cost = std::numeric_limits<Seconds>::infinity();
  StripePair stripes;

  /// Total order: lower cost wins; ties prefer *larger* (h, s).  Round-robin
  /// aggregation makes many stripe pairs cost-equivalent under the model
  /// (e.g. every s <= r/N gives the same per-SServer bytes for aligned
  /// requests); the largest of them minimizes per-stripe overheads the model
  /// does not price, and matches the paper's reported optima ({0K, 64K} for
  /// 128 KiB requests rather than {0K, 4K}).  The order is deterministic, so
  /// results are independent of evaluation order and parallel sharding.
  bool better_than(const Candidate& other) const {
    if (cost != other.cost) return cost < other.cost;
    if (stripes.h != other.stripes.h) return stripes.h > other.stripes.h;
    return stripes.s > other.stripes.s;
  }
};

Bytes round_up(Bytes value, Bytes step) {
  return (value + step - 1) / step * step;
}

RegionStripes search(const CostParams& params,
                     std::span<const FileRequest> requests,
                     double avg_request_size, const OptimizerOptions& options,
                     bool homogeneous) {
  if (requests.empty()) {
    throw std::invalid_argument("optimizer needs at least one request");
  }
  if (options.step == 0) throw std::invalid_argument("optimizer step must be > 0");
  if (avg_request_size <= 0.0) {
    throw std::invalid_argument("average request size must be positive");
  }
  if (params.M + params.N == 0) {
    throw std::invalid_argument("cost params describe no servers");
  }
  if (options.max_sserver_share <= 0.0 || options.max_sserver_share > 1.0) {
    throw std::invalid_argument("max_sserver_share must be in (0, 1]");
  }

  const Bytes step = options.step;
  const Bytes R = std::max(step, round_up(static_cast<Bytes>(avg_request_size), step));

  // Enumerate candidate pairs up front so the h-axis can be sharded.
  std::vector<StripePair> candidates;
  if (homogeneous) {
    for (Bytes v = step; v <= R; v += step) {
      candidates.push_back(StripePair{v, v});
    }
  } else {
    for (Bytes h = 0; h <= R; h += step) {
      if (params.M == 0 && h > 0) break;  // no HServers to stripe over
      Bytes first_s = h + step;
      // s exceeds h for load balance; when h == R the inner range would be
      // empty, so the single-HServer extreme keeps one candidate.
      for (Bytes s = first_s; s <= std::max(R, first_s); s += step) {
        if (params.N == 0 && s > 0) {
          if (h > 0) candidates.push_back(StripePair{h, 0});
          break;
        }
        candidates.push_back(StripePair{h, s});
      }
    }
  }
  if (candidates.empty()) {
    throw std::logic_error("optimizer produced no candidates");
  }

  // Space-aware filter: drop candidates whose SServer byte share exceeds
  // the bound.  If that empties the grid, fall back to the minimum-share
  // candidates so the search still returns the most space-frugal layout.
  if (options.max_sserver_share < 1.0) {
    auto share = [&](const StripePair& hs) {
      const double S = static_cast<double>(params.M) * hs.h +
                       static_cast<double>(params.N) * hs.s;
      return static_cast<double>(params.N) * hs.s / S;
    };
    std::vector<StripePair> feasible;
    double min_share = 2.0;
    for (const auto& hs : candidates) min_share = std::min(min_share, share(hs));
    const double bound =
        std::max(options.max_sserver_share, min_share + 1e-12);
    for (const auto& hs : candidates) {
      if (share(hs) <= bound) feasible.push_back(hs);
    }
    candidates = std::move(feasible);
  }

  const std::size_t stride = sample_stride(requests.size(), options.max_requests);
  const std::size_t sampled = (requests.size() + stride - 1) / stride;

  // Scores one candidate.  With coalescing, `memo` caches request_cost per
  // (op, size, offset mod S) class; requests are still accumulated in their
  // original order with identical values, so the total is bit-identical to
  // the brute-force sum (see cost_memo.hpp).  Scaled back to the full
  // region so reported costs are comparable regardless of sampling.
  auto score = [&](StripePair hs, CostMemo* memo) {
    Seconds total = 0.0;
    if (memo != nullptr) {
      const Bytes S = static_cast<Bytes>(params.M) * hs.h +
                      static_cast<Bytes>(params.N) * hs.s;
      memo->reset(sampled);
      for (std::size_t i = 0; i < requests.size(); i += stride) {
        const FileRequest& req = requests[i];
        total += memo->cost(req.op, req.size, req.offset % S,
                            [&](Bytes residue) {
                              return request_cost(params, req.op, residue,
                                                  req.size, hs);
                            });
      }
    } else {
      for (std::size_t i = 0; i < requests.size(); i += stride) {
        const FileRequest& req = requests[i];
        total += request_cost(params, req.op, req.offset, req.size, hs);
      }
    }
    return total * static_cast<double>(requests.size()) /
           static_cast<double>(sampled);
  };

  Candidate best;
  std::uint64_t cost_evals = 0;
  std::uint64_t cost_evals_saved = 0;
  if (options.pool != nullptr && candidates.size() > 1) {
    const std::size_t shards =
        std::min(options.pool->thread_count() * 4, candidates.size());
    std::vector<Candidate> shard_best(shards);
    std::vector<std::uint64_t> shard_evals(shards, 0);
    std::vector<std::uint64_t> shard_saved(shards, 0);
    options.pool->parallel_for(shards, [&](std::size_t shard) {
      Candidate local;
      CostMemo memo;  // per-shard scratch, reused across candidates
      for (std::size_t i = shard; i < candidates.size(); i += shards) {
        Candidate c{score(candidates[i], options.coalesce ? &memo : nullptr),
                    candidates[i]};
        if (c.better_than(local)) local = c;
      }
      shard_best[shard] = local;
      shard_evals[shard] = options.coalesce
                               ? memo.misses()
                               : (candidates.size() / shards +
                                  (shard < candidates.size() % shards)) *
                                     sampled;
      shard_saved[shard] = memo.hits();
    });
    for (std::size_t shard = 0; shard < shards; ++shard) {
      if (shard_best[shard].better_than(best)) best = shard_best[shard];
      cost_evals += shard_evals[shard];
      cost_evals_saved += shard_saved[shard];
    }
  } else {
    CostMemo memo;
    for (const auto& hs : candidates) {
      Candidate c{score(hs, options.coalesce ? &memo : nullptr), hs};
      if (c.better_than(best)) best = c;
    }
    cost_evals = options.coalesce ? memo.misses()
                                  : candidates.size() * sampled;
    cost_evals_saved = memo.hits();
  }

  RegionStripes result;
  result.stripes = best.stripes;
  result.model_cost = best.cost;
  result.candidates_evaluated = candidates.size();
  result.cost_evals = cost_evals;
  result.cost_evals_saved = cost_evals_saved;
  return result;
}

}  // namespace

RegionStripes optimize_region(const CostParams& params,
                              std::span<const FileRequest> requests,
                              double avg_request_size,
                              const OptimizerOptions& options) {
  return search(params, requests, avg_request_size, options, false);
}

RegionStripes optimize_region_homogeneous(const CostParams& params,
                                          std::span<const FileRequest> requests,
                                          double avg_request_size,
                                          const OptimizerOptions& options) {
  return search(params, requests, avg_request_size, options, true);
}

Seconds region_cost(const CostParams& params,
                    std::span<const FileRequest> requests, StripePair hs,
                    std::size_t max_requests, bool coalesce) {
  const std::size_t stride = sample_stride(requests.size(), max_requests);
  Seconds total = 0.0;
  std::size_t scored = 0;
  if (coalesce) {
    const Bytes S = static_cast<Bytes>(params.M) * hs.h +
                    static_cast<Bytes>(params.N) * hs.s;
    CostMemo memo;
    memo.reset((requests.size() + stride - 1) / stride);
    for (std::size_t i = 0; i < requests.size(); i += stride) {
      const FileRequest& req = requests[i];
      total += memo.cost(req.op, req.size, req.offset % S, [&](Bytes residue) {
        return request_cost(params, req.op, residue, req.size, hs);
      });
      ++scored;
    }
  } else {
    for (std::size_t i = 0; i < requests.size(); i += stride) {
      total += request_cost(params, requests[i].op, requests[i].offset,
                            requests[i].size, hs);
      ++scored;
    }
  }
  if (scored == 0) return 0.0;
  return total * static_cast<double>(requests.size()) /
         static_cast<double>(scored);
}

}  // namespace harl::core
