#include "src/core/planner.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace harl::core {

namespace {

/// Returns a view of `records` in ByOffset order.  Pre-sorted input (the
/// normal case: TraceCollector::sorted_by_offset() and the harness both
/// hand over sorted traces) is used in place; otherwise a sorted copy is
/// materialized in `storage`.
std::span<const trace::TraceRecord> ensure_sorted(
    std::span<const trace::TraceRecord> records,
    std::vector<trace::TraceRecord>& storage) {
  if (std::is_sorted(records.begin(), records.end(), trace::ByOffset{})) {
    return records;
  }
  storage.assign(records.begin(), records.end());
  std::sort(storage.begin(), storage.end(), trace::ByOffset{});
  return storage;
}

std::vector<FileRequest> region_requests(
    std::span<const trace::TraceRecord> sorted, const DividedRegion& region) {
  std::vector<FileRequest> reqs;
  reqs.reserve(region.request_count());
  for (std::size_t i = region.first_request; i < region.last_request; ++i) {
    reqs.push_back(FileRequest{sorted[i].op, sorted[i].offset, sorted[i].size});
  }
  return reqs;
}

/// Per-tier device factors of a calibration, for Plan::device_factors; the
/// outer vector collapses to empty when every tier is homogeneous so
/// pre-device plans and homogeneous plans share one canonical form.
std::vector<std::vector<double>> plan_device_factors(
    const TieredCostParams& params) {
  bool any = false;
  for (const auto& t : params.tiers) {
    if (!t.device_factors.empty()) any = true;
  }
  if (!any) return {};
  std::vector<std::vector<double>> out;
  out.reserve(params.tiers.size());
  for (const auto& t : params.tiers) out.push_back(t.device_factors);
  return out;
}

PlannedRegion planned_from(const DividedRegion& region,
                           const RegionStripes& opt) {
  PlannedRegion planned;
  planned.offset = region.offset;
  planned.end = region.end;
  planned.stripes = {opt.stripes.h, opt.stripes.s};
  planned.members = opt.members;
  planned.model_cost = opt.model_cost;
  planned.avg_request = region.avg_request;
  planned.request_count = region.request_count();
  planned.candidates_evaluated = opt.candidates_evaluated;
  planned.cost_evals = opt.cost_evals;
  planned.cost_evals_saved = opt.cost_evals_saved;
  return planned;
}

/// Runs `fn(i)` for each region index: concurrently on options.pool when
/// regions can use it, serially otherwise.  Callers store results by index,
/// so either path yields identical output.
void for_each_region(std::size_t count, const PlannerOptions& options,
                     const std::function<void(std::size_t)>& fn) {
  if (options.pool != nullptr && count > 1) {
    options.pool->parallel_for(count, fn);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

/// Per-region optimizer options for the region-parallel path: regions are
/// the parallel grain, so the nested candidate sharding is disabled — and a
/// caller-provided scratch memo (single-threaded by contract) must not be
/// shared across concurrently optimized regions.
OptimizerOptions region_grain_optimizer(const PlannerOptions& options,
                                        std::size_t region_count) {
  OptimizerOptions opt = options.optimizer;
  if (options.pool != nullptr && region_count > 1) {
    opt.pool = nullptr;
    opt.scratch = nullptr;
  }
  return opt;
}

Plan plan_from_division(std::span<const trace::TraceRecord> sorted,
                        const RegionDivision& division,
                        const CostParams& params,
                        const PlannerOptions& options, bool homogeneous) {
  Plan plan;
  plan.tier_counts = {params.M, params.N};
  plan.device_factors = plan_device_factors(to_tiered(params));
  plan.calibration_fingerprint = params_fingerprint(params);
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;

  const std::size_t count = division.regions.size();
  const OptimizerOptions opt_options = region_grain_optimizer(options, count);
  std::vector<RegionStripes> optimized(count);
  for_each_region(count, options, [&](std::size_t i) {
    const DividedRegion& region = division.regions[i];
    const auto reqs = region_requests(sorted, region);
    optimized[i] =
        homogeneous
            ? optimize_region_homogeneous(params, reqs, region.avg_request,
                                          opt_options)
            : optimize_region(params, reqs, region.avg_request, opt_options);
  });

  // Deterministic assembly in region order, independent of which thread
  // optimized which region.
  plan.regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    plan.regions.push_back(planned_from(division.regions[i], optimized[i]));
    plan.rst.add(division.regions[i].offset,
                 {optimized[i].stripes.h, optimized[i].stripes.s},
                 optimized[i].members);
  }

  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

}  // namespace

Seconds Plan::total_model_cost() const {
  return std::accumulate(regions.begin(), regions.end(), 0.0,
                         [](Seconds acc, const PlannedRegion& r) {
                           return acc + r.model_cost;
                         });
}

std::uint64_t Plan::total_cost_evals() const {
  return std::accumulate(regions.begin(), regions.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const PlannedRegion& r) {
                           return acc + r.cost_evals;
                         });
}

std::uint64_t Plan::total_cost_evals_saved() const {
  return std::accumulate(regions.begin(), regions.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const PlannedRegion& r) {
                           return acc + r.cost_evals_saved;
                         });
}

Plan analyze(std::span<const trace::TraceRecord> records,
             const CostParams& params, const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_cached(std::span<const trace::TraceRecord> records,
                    const CostParams& params, const CachePlannerOptions& cache,
                    const PlannerOptions& options) {
  // Disabled cache planning (or no SSD tier to reserve from) degenerates to
  // the plain Analysis Phase, bit for bit.
  if (!cache.enabled() || params.N == 0) {
    return analyze(records, params, options);
  }
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> sorted_storage;
  const auto sorted = ensure_sorted(records, sorted_storage);
  // Region division depends only on the trace, so the whole r-sweep shares
  // one division — and one per-region hit-rate estimate.
  const RegionDivision division = divide_regions(sorted, options.divider);
  const std::size_t count = division.regions.size();

  // --- Per-region read hit-rate estimate: one deterministic replay of the
  // trace in time order through the same CacheTier policy structure the
  // runtime drives, keyed by logical file chunk.  The estimate depends on
  // the budget/chunk/policy, not on how many devices the budget is spread
  // over, so it is shared across every r candidate.
  std::vector<double> hit_rate(count, 0.0);
  std::vector<std::uint64_t> lookups(count, 0);
  std::vector<std::uint64_t> hits(count, 0);
  std::uint64_t total_lookups = 0;
  std::uint64_t total_hits = 0;
  {
    std::vector<std::size_t> order(sorted.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return sorted[a].t_start < sorted[b].t_start;
                     });
    storage::CacheTier::Config cfg;
    cfg.capacity = cache.budget;
    cfg.chunk = cache.chunk;
    cfg.policy = cache.policy;
    storage::CacheTier replay(cfg);
    std::vector<std::uint64_t> evicted;
    auto region_of = [&](Bytes offset) {
      auto it = std::upper_bound(
          division.regions.begin(), division.regions.end(), offset,
          [](Bytes off, const DividedRegion& reg) { return off < reg.offset; });
      return it == division.regions.begin()
                 ? std::size_t{0}
                 : static_cast<std::size_t>(
                       std::distance(division.regions.begin(), it)) -
                       1;
    };
    for (std::size_t idx : order) {
      const trace::TraceRecord& rec = sorted[idx];
      if (rec.size == 0) continue;
      const Bytes first = rec.offset / cache.chunk;
      const Bytes last = (rec.offset + rec.size - 1) / cache.chunk;
      if (rec.op == IoOp::kWrite) {
        for (Bytes c = first; c <= last; ++c) replay.invalidate(c);
        continue;
      }
      const std::size_t reg = region_of(rec.offset);
      for (Bytes c = first; c <= last; ++c) {
        ++lookups[reg];
        ++total_lookups;
        if (replay.lookup(c) == storage::CacheTier::State::kResident) {
          ++hits[reg];
          ++total_hits;
        } else {
          // Offline replay: fills land instantly (the classic stack-distance
          // idealization; the runtime charges them over real servers).
          evicted.clear();
          if (replay.admit(c, evicted)) replay.fill_complete(c);
        }
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      hit_rate[i] = lookups[i] > 0 ? static_cast<double>(hits[i]) /
                                         static_cast<double>(lookups[i])
                                   : 0.0;
    }
  }

  // --- The r-sweep: reserve the fastest r SServers as cache vs stripe over
  // them.  Every candidate's objective is computed the same way (per-request
  // model cost with the hit-rate mix on reads), so candidates are directly
  // comparable; ties go to the smaller r, making r = 0 the exact analyze()
  // plan whenever caching cannot help.
  //
  // Each candidate is priced twice: with the cache live (hit mix on reads,
  // hit + fill traffic on the reserved devices) and with the reserved
  // devices idle (same reduced striping, no cache traffic).  The idle walls
  // form the *reserve-and-idle baseline*: withholding devices from striping
  // sometimes lowers the floor by itself (the latency-driven optimizer can
  // pile every region onto one fast member whose NIC then saturates), and
  // that gain belongs to striping, not caching.  A reservation is kept only
  // when its cached wall beats the best idle wall of every candidate —
  // otherwise the plain analyze() plan stands.
  const std::size_t r_max = std::min(cache.max_devices, params.N - 1);
  // Distinct issuing ranks: the latency sum divided by this is the
  // pipeline-parallel completion proxy the bandwidth floor is compared to.
  double processes = 1.0;
  {
    std::vector<std::uint32_t> ranks;
    ranks.reserve(sorted.size());
    for (const auto& rec : sorted) ranks.push_back(rec.rank);
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
    if (!ranks.empty()) processes = static_cast<double>(ranks.size());
  }
  // Prices one candidate layout under the shared objective.  Bottleneck-
  // bandwidth floor (the makespan bound): the latency sum prices each
  // request in isolation, which lets every region pile onto the same
  // fastest members for free.  The floor charges each server resource's
  // aggregate service time — disk: bytes x per-byte x mean member factor /
  // members; NIC: bytes x t / members (aging slows media, not NICs) — plus,
  // with the cache live, the reserved devices' hit and fill traffic, so
  // "reserve the fastest devices as cache" and "stripe over them" compete
  // under the same capacity story.  Tier byte shares use the steady-state
  // striping-period fractions (exact for whole-period traffic).  Fill
  // traffic (one read-around fill per modeled miss: a full chunk read on
  // the home layout, a full chunk write on the cache devices) is charged
  // for every live-cache candidate — including zero-hit-rate regions, where
  // the runtime still admits and fills every miss.
  struct CandidateEval {
    double wall = 0.0;
    std::vector<double> region_cost;
  };
  const auto evaluate = [&](const Plan& plan_r, const TieredCostParams& tiered,
                            std::size_t r, const CacheReadSpec& spec,
                            bool live_cache) {
    CandidateEval ev;
    ev.region_cost.assign(count, 0.0);
    double total = 0.0;
    double busy_cache = 0.0;
    double busy_cache_nic = 0.0;
    std::vector<double> busy(tiered.tiers.size(), 0.0);
    std::vector<double> busy_nic(tiered.tiers.size(), 0.0);
    const double cache_mean =
        live_cache ? storage::mean_device_factor(params.sserver_factors, r)
                   : 1.0;
    for (std::size_t i = 0; i < count; ++i) {
      const DividedRegion& region = division.regions[i];
      const PlannedRegion& planned = plan_r.regions[i];
      const double h = live_cache ? hit_rate[i] : 0.0;
      double cost = 0.0;
      double region_read = 0.0;
      double region_write = 0.0;
      for (std::size_t q = region.first_request; q < region.last_request; ++q) {
        const trace::TraceRecord& rec = sorted[q];
        if (rec.op == IoOp::kRead) {
          region_read += static_cast<double>(rec.size);
        } else {
          region_write += static_cast<double>(rec.size);
        }
        const Seconds home =
            planned.members.empty()
                ? tiered_request_cost(tiered, rec.op, rec.offset, rec.size,
                                      planned.stripes)
                : tiered_request_cost(tiered, rec.op, rec.offset, rec.size,
                                      planned.stripes, planned.members);
        if (rec.op == IoOp::kRead && h > 0.0) {
          cost += expected_read_cost(
              home, cached_read_cost(tiered, spec, rec.offset, rec.size), h);
        } else {
          cost += home;
        }
      }
      ev.region_cost[i] = cost;
      total += cost;

      const double fill_bytes =
          live_cache ? static_cast<double>(lookups[i] - hits[i]) *
                           static_cast<double>(cache.chunk)
                     : 0.0;
      Bytes period = 0;
      for (std::size_t j = 0; j < tiered.tiers.size(); ++j) {
        const std::size_t use = planned.members.empty()
                                    ? tiered.tiers[j].count
                                    : planned.members[j];
        period += static_cast<Bytes>(use) * planned.stripes[j];
      }
      if (period == 0) continue;
      for (std::size_t j = 0; j < tiered.tiers.size(); ++j) {
        const std::size_t use = planned.members.empty()
                                    ? tiered.tiers[j].count
                                    : planned.members[j];
        if (use == 0 || planned.stripes[j] == 0) continue;
        const double share =
            static_cast<double>(use) * static_cast<double>(planned.stripes[j]) /
            static_cast<double>(period);
        const double tier_reads = share * ((1.0 - h) * region_read + fill_bytes);
        const double tier_writes = share * region_write;
        // Device time = per-sub-request startup (seek/positioning, the term
        // that dominates small random access on HDDs) + streaming transfer.
        // Sub-requests land at stripe granularity in steady state.
        const double stripe = static_cast<double>(planned.stripes[j]);
        const storage::OpProfile& rd = tiered.tiers[j].profile.op(IoOp::kRead);
        const storage::OpProfile& wr = tiered.tiers[j].profile.op(IoOp::kWrite);
        busy[j] += (tier_reads * rd.per_byte + tier_writes * wr.per_byte +
                    (tier_reads / stripe) * rd.startup_mean() +
                    (tier_writes / stripe) * wr.startup_mean()) *
                   storage::mean_device_factor(tiered.tiers[j].device_factors,
                                               use) /
                   static_cast<double>(use);
        busy_nic[j] +=
            (tier_reads + tier_writes) * tiered.t / static_cast<double>(use);
      }
      if (live_cache) {
        const double cache_bytes = h * region_read + fill_bytes;
        const double chunkf = static_cast<double>(cache.chunk);
        busy_cache += (h * region_read * params.sserver_read.per_byte +
                       fill_bytes * params.sserver_write.per_byte +
                       (h * region_read / chunkf) *
                           params.sserver_read.startup_mean() +
                       (fill_bytes / chunkf) *
                           params.sserver_write.startup_mean()) *
                      cache_mean / static_cast<double>(r);
        busy_cache_nic += cache_bytes * tiered.t / static_cast<double>(r);
      }
    }
    double busy_max = std::max(busy_cache, busy_cache_nic);
    for (const double b : busy) busy_max = std::max(busy_max, b);
    for (const double b : busy_nic) busy_max = std::max(busy_max, b);
    ev.wall = std::max(total / processes, busy_max);
    return ev;
  };

  Plan base_plan;           // the exact analyze() plan (r = 0)
  Plan best_plan;           // best live-cache candidate (r > 0)
  std::vector<double> best_region_cost;
  double best_idle_wall = 0.0;  // reserve-and-idle baseline over all r
  double best_wall = 0.0;
  std::size_t best_r = 0;
  for (std::size_t r = 0; r <= r_max; ++r) {
    CostParams reduced = params;
    reduced.N = params.N - r;
    if (!reduced.sserver_factors.empty()) {
      // The reserved prefix is the canonical vector's fastest r members;
      // the remainder re-canonicalizes (it may collapse to homogeneous).
      reduced.sserver_factors.erase(
          reduced.sserver_factors.begin(),
          reduced.sserver_factors.begin() + static_cast<std::ptrdiff_t>(r));
      storage::canonicalize_device_factors(reduced.sserver_factors);
    }
    Plan plan_r = plan_from_division(sorted, division, reduced, options, false);

    const TieredCostParams tiered = to_tiered(reduced);
    CacheReadSpec spec;
    if (r > 0) {
      spec.devices = r;
      spec.chunk = cache.chunk;
      spec.profile = params.sserver_read;
      spec.worst_factor = storage::worst_device_factor(params.sserver_factors, r);
    }
    const CandidateEval idle = evaluate(plan_r, tiered, r, spec, false);
    if (r == 0) {
      best_idle_wall = idle.wall;
      base_plan = std::move(plan_r);
      continue;
    }
    best_idle_wall = std::min(best_idle_wall, idle.wall);
    CandidateEval live = evaluate(plan_r, tiered, r, spec, true);
    if (best_r == 0 || live.wall < best_wall) {
      best_plan = std::move(plan_r);
      best_region_cost = std::move(live.region_cost);
      best_wall = live.wall;
      best_r = r;
    }
  }

  // No reservation pays for itself: every live-cache candidate loses to
  // striping alone (including "stripe over fewer devices and idle the
  // rest", whose gain r = 0 can realize without a cache).  Return the plain
  // analyze() plan untouched so cache-aware analysis of a cache-hostile
  // trace is bit-identical to the cache-less pipeline.
  if (best_r == 0 || !(best_wall < best_idle_wall)) return base_plan;

  Plan plan = std::move(best_plan);
  // The plan describes the *physical* cluster: full tier counts, full device
  // table, and the fingerprint of the calibration in force.  The reduced
  // view it was optimized under is implied by the cache reservation.
  plan.tier_counts = {params.M, params.N};
  plan.device_factors = plan_device_factors(to_tiered(params));
  plan.calibration_fingerprint = params_fingerprint(params);
  for (std::size_t i = 0; i < count; ++i) {
    plan.regions[i].expected_hit_rate = hit_rate[i];
    plan.regions[i].model_cost = best_region_cost[i];
  }
  PlanCacheSpec cache_spec;
  cache_spec.tier = 1;
  cache_spec.devices = best_r;
  cache_spec.budget = cache.budget;
  cache_spec.chunk = cache.chunk;
  cache_spec.policy = cache.policy;
  cache_spec.expected_hit_rate =
      total_lookups > 0
          ? static_cast<double>(total_hits) / static_cast<double>(total_lookups)
          : 0.0;
  plan.cache = cache_spec;
  return plan;
}

Plan analyze_file_level(std::span<const trace::TraceRecord> records,
                        const CostParams& params,
                        const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);

  // One region spanning everything: the heterogeneity-aware but
  // region-oblivious ablation.
  RegionDivision division;
  DividedRegion whole;
  whole.offset = 0;
  whole.first_request = 0;
  whole.last_request = sorted.size();
  Bytes max_end = 0;
  double sum = 0.0;
  for (const auto& r : sorted) {
    max_end = std::max(max_end, r.offset + r.size);
    sum += static_cast<double>(r.size);
  }
  whole.end = max_end;
  whole.avg_request = sum / static_cast<double>(sorted.size());
  division.regions.push_back(whole);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_segment_level(std::span<const trace::TraceRecord> records,
                           const CostParams& params,
                           const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);
  return plan_from_division(sorted, division, params, options, true);
}

Plan analyze_fixed_regions(std::span<const trace::TraceRecord> records,
                           const CostParams& params, Bytes chunk_size,
                           const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions_fixed(sorted, chunk_size);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_carl(std::span<const trace::TraceRecord> records,
                  const CostParams& params, Bytes ssd_capacity,
                  const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);

  // Per region: best single-tier placements and their model costs.
  struct CarlRegion {
    DividedRegion region;
    RegionStripes hdd_only;
    RegionStripes ssd_only;
    Bytes extent = 0;       ///< bytes stored if placed on SServers
    double density = 0.0;   ///< cost savings per stored byte
  };
  const std::size_t count = division.regions.size();
  std::vector<CarlRegion> carl(count);

  // HServer-only: force s = 0 by restricting the search to N = 0;
  // SServer-only: force h = 0 via M = 0.
  CostParams hdd_params = params;
  hdd_params.N = 0;
  CostParams ssd_params = params;
  ssd_params.M = 0;

  // The two single-tier searches per region are independent of each other,
  // so the parallel grain is (region, tier): 2 * count tasks.
  const OptimizerOptions opt_options = region_grain_optimizer(options, 2 * count);
  auto optimize_half = [&](std::size_t task) {
    const std::size_t r = task / 2;
    const DividedRegion& region = division.regions[r];
    const auto reqs = region_requests(sorted, region);
    if (task % 2 == 0) {
      carl[r].hdd_only =
          optimize_region(hdd_params, reqs, region.avg_request, opt_options);
      carl[r].hdd_only.stripes.s = 0;
    } else {
      carl[r].ssd_only =
          optimize_region(ssd_params, reqs, region.avg_request, opt_options);
      carl[r].ssd_only.stripes.h = 0;
    }
  };
  if (options.pool != nullptr && count > 0) {
    options.pool->parallel_for(2 * count, optimize_half);
  } else {
    for (std::size_t task = 0; task < 2 * count; ++task) optimize_half(task);
  }

  for (std::size_t r = 0; r < count; ++r) {
    CarlRegion& c = carl[r];
    c.region = division.regions[r];
    c.extent = c.region.end - c.region.offset;
    c.density = c.extent > 0
                    ? (c.hdd_only.model_cost - c.ssd_only.model_cost) /
                          static_cast<double>(c.extent)
                    : 0.0;
  }

  // Greedy: highest savings density first, until the SSD budget is spent.
  std::vector<std::size_t> order(carl.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (carl[a].density != carl[b].density) {
      return carl[a].density > carl[b].density;
    }
    return a < b;
  });
  std::vector<bool> on_ssd(carl.size(), false);
  Bytes budget = ssd_capacity;
  for (std::size_t idx : order) {
    if (carl[idx].density <= 0.0) break;
    if (carl[idx].extent <= budget) {
      on_ssd[idx] = true;
      budget -= carl[idx].extent;
    }
  }

  Plan plan;
  plan.tier_counts = {params.M, params.N};
  plan.device_factors = plan_device_factors(to_tiered(params));
  plan.calibration_fingerprint = params_fingerprint(params);
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;
  for (std::size_t i = 0; i < carl.size(); ++i) {
    const RegionStripes& choice = on_ssd[i] ? carl[i].ssd_only : carl[i].hdd_only;
    PlannedRegion planned;
    planned.offset = carl[i].region.offset;
    planned.end = carl[i].region.end;
    planned.stripes = {choice.stripes.h, choice.stripes.s};
    planned.members = choice.members;
    planned.model_cost = choice.model_cost;
    planned.avg_request = carl[i].region.avg_request;
    planned.request_count = carl[i].region.request_count();
    // Both single-tier searches count toward the region's analysis effort.
    planned.candidates_evaluated = carl[i].hdd_only.candidates_evaluated +
                                   carl[i].ssd_only.candidates_evaluated;
    planned.cost_evals =
        carl[i].hdd_only.cost_evals + carl[i].ssd_only.cost_evals;
    planned.cost_evals_saved = carl[i].hdd_only.cost_evals_saved +
                               carl[i].ssd_only.cost_evals_saved;
    plan.regions.push_back(planned);
    plan.rst.add(planned.offset, planned.stripes, planned.members);
  }
  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

Plan analyze_tiered(std::span<const trace::TraceRecord> records,
                    const TieredCostParams& params,
                    const TieredPlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);

  Plan plan;
  plan.tier_counts.reserve(params.tiers.size());
  for (const auto& tier : params.tiers) plan.tier_counts.push_back(tier.count);
  plan.device_factors = plan_device_factors(params);
  plan.calibration_fingerprint = params_fingerprint(params);
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;

  const std::size_t count = division.regions.size();
  TieredOptimizerOptions opt_options = options.optimizer;
  if (options.pool != nullptr && count > 1) opt_options.pool = nullptr;
  std::vector<TieredRegionStripes> optimized(count);
  auto optimize_one = [&](std::size_t i) {
    const DividedRegion& region = division.regions[i];
    const auto reqs = region_requests(sorted, region);
    optimized[i] =
        optimize_region_tiered(params, reqs, region.avg_request, opt_options);
  };
  if (options.pool != nullptr && count > 1) {
    options.pool->parallel_for(count, optimize_one);
  } else {
    for (std::size_t i = 0; i < count; ++i) optimize_one(i);
  }

  plan.regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const DividedRegion& region = division.regions[i];
    PlannedRegion planned;
    planned.offset = region.offset;
    planned.end = region.end;
    planned.stripes = optimized[i].stripes;
    planned.members = optimized[i].members;
    planned.model_cost = optimized[i].model_cost;
    planned.avg_request = region.avg_request;
    planned.request_count = region.request_count();
    planned.candidates_evaluated = optimized[i].candidates_evaluated;
    planned.cost_evals = optimized[i].cost_evals;
    planned.cost_evals_saved = optimized[i].cost_evals_saved;
    plan.regions.push_back(std::move(planned));
    plan.rst.add(region.offset, optimized[i].stripes, optimized[i].members);
  }

  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

}  // namespace harl::core
