#include "src/core/planner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace harl::core {

namespace {

std::vector<trace::TraceRecord> sorted_copy(
    std::span<const trace::TraceRecord> records) {
  std::vector<trace::TraceRecord> sorted(records.begin(), records.end());
  std::sort(sorted.begin(), sorted.end(), trace::ByOffset{});
  return sorted;
}

std::vector<FileRequest> region_requests(
    std::span<const trace::TraceRecord> sorted, const DividedRegion& region) {
  std::vector<FileRequest> reqs;
  reqs.reserve(region.request_count());
  for (std::size_t i = region.first_request; i < region.last_request; ++i) {
    reqs.push_back(FileRequest{sorted[i].op, sorted[i].offset, sorted[i].size});
  }
  return reqs;
}

Plan plan_from_division(std::span<const trace::TraceRecord> sorted,
                        const RegionDivision& division,
                        const CostParams& params,
                        const PlannerOptions& options, bool homogeneous) {
  Plan plan;
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;

  for (const auto& region : division.regions) {
    auto reqs = region_requests(sorted, region);
    const RegionStripes opt =
        homogeneous
            ? optimize_region_homogeneous(params, reqs, region.avg_request,
                                          options.optimizer)
            : optimize_region(params, reqs, region.avg_request,
                              options.optimizer);
    PlannedRegion planned;
    planned.offset = region.offset;
    planned.end = region.end;
    planned.stripes = opt.stripes;
    planned.model_cost = opt.model_cost;
    planned.avg_request = region.avg_request;
    planned.request_count = region.request_count();
    plan.regions.push_back(planned);
    plan.rst.add(region.offset, opt.stripes);
  }

  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

}  // namespace

Seconds Plan::total_model_cost() const {
  return std::accumulate(regions.begin(), regions.end(), 0.0,
                         [](Seconds acc, const PlannedRegion& r) {
                           return acc + r.model_cost;
                         });
}

Plan analyze(std::span<const trace::TraceRecord> records,
             const CostParams& params, const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  const auto sorted = sorted_copy(records);
  const RegionDivision division = divide_regions(sorted, options.divider);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_file_level(std::span<const trace::TraceRecord> records,
                        const CostParams& params,
                        const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  const auto sorted = sorted_copy(records);

  // One region spanning everything: the heterogeneity-aware but
  // region-oblivious ablation.
  RegionDivision division;
  DividedRegion whole;
  whole.offset = 0;
  whole.first_request = 0;
  whole.last_request = sorted.size();
  Bytes max_end = 0;
  double sum = 0.0;
  for (const auto& r : sorted) {
    max_end = std::max(max_end, r.offset + r.size);
    sum += static_cast<double>(r.size);
  }
  whole.end = max_end;
  whole.avg_request = sum / static_cast<double>(sorted.size());
  division.regions.push_back(whole);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_segment_level(std::span<const trace::TraceRecord> records,
                           const CostParams& params,
                           const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  const auto sorted = sorted_copy(records);
  const RegionDivision division = divide_regions(sorted, options.divider);
  return plan_from_division(sorted, division, params, options, true);
}

Plan analyze_fixed_regions(std::span<const trace::TraceRecord> records,
                           const CostParams& params, Bytes chunk_size,
                           const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  const auto sorted = sorted_copy(records);
  const RegionDivision division = divide_regions_fixed(sorted, chunk_size);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_carl(std::span<const trace::TraceRecord> records,
                  const CostParams& params, Bytes ssd_capacity,
                  const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  const auto sorted = sorted_copy(records);
  const RegionDivision division = divide_regions(sorted, options.divider);

  // Per region: best single-tier placements and their model costs.
  struct CarlRegion {
    DividedRegion region;
    RegionStripes hdd_only;
    RegionStripes ssd_only;
    Bytes extent = 0;       ///< bytes stored if placed on SServers
    double density = 0.0;   ///< cost savings per stored byte
  };
  std::vector<CarlRegion> carl;
  carl.reserve(division.regions.size());
  for (const auto& region : division.regions) {
    auto reqs = region_requests(sorted, region);
    CarlRegion c;
    c.region = region;

    // HServer-only: force s = 0 by restricting the search to N = 0.
    CostParams hdd_params = params;
    hdd_params.N = 0;
    c.hdd_only =
        optimize_region(hdd_params, reqs, region.avg_request, options.optimizer);
    c.hdd_only.stripes.s = 0;

    // SServer-only: force h = 0 via M = 0.
    CostParams ssd_params = params;
    ssd_params.M = 0;
    c.ssd_only =
        optimize_region(ssd_params, reqs, region.avg_request, options.optimizer);
    c.ssd_only.stripes.h = 0;

    c.extent = region.end - region.offset;
    c.density = c.extent > 0
                    ? (c.hdd_only.model_cost - c.ssd_only.model_cost) /
                          static_cast<double>(c.extent)
                    : 0.0;
    carl.push_back(std::move(c));
  }

  // Greedy: highest savings density first, until the SSD budget is spent.
  std::vector<std::size_t> order(carl.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (carl[a].density != carl[b].density) {
      return carl[a].density > carl[b].density;
    }
    return a < b;
  });
  std::vector<bool> on_ssd(carl.size(), false);
  Bytes budget = ssd_capacity;
  for (std::size_t idx : order) {
    if (carl[idx].density <= 0.0) break;
    if (carl[idx].extent <= budget) {
      on_ssd[idx] = true;
      budget -= carl[idx].extent;
    }
  }

  Plan plan;
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;
  for (std::size_t i = 0; i < carl.size(); ++i) {
    const RegionStripes& choice = on_ssd[i] ? carl[i].ssd_only : carl[i].hdd_only;
    PlannedRegion planned;
    planned.offset = carl[i].region.offset;
    planned.end = carl[i].region.end;
    planned.stripes = choice.stripes;
    planned.model_cost = choice.model_cost;
    planned.avg_request = carl[i].region.avg_request;
    planned.request_count = carl[i].region.request_count();
    plan.regions.push_back(planned);
    plan.rst.add(planned.offset, planned.stripes);
  }
  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

}  // namespace harl::core
