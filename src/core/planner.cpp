#include "src/core/planner.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace harl::core {

namespace {

/// Returns a view of `records` in ByOffset order.  Pre-sorted input (the
/// normal case: TraceCollector::sorted_by_offset() and the harness both
/// hand over sorted traces) is used in place; otherwise a sorted copy is
/// materialized in `storage`.
std::span<const trace::TraceRecord> ensure_sorted(
    std::span<const trace::TraceRecord> records,
    std::vector<trace::TraceRecord>& storage) {
  if (std::is_sorted(records.begin(), records.end(), trace::ByOffset{})) {
    return records;
  }
  storage.assign(records.begin(), records.end());
  std::sort(storage.begin(), storage.end(), trace::ByOffset{});
  return storage;
}

std::vector<FileRequest> region_requests(
    std::span<const trace::TraceRecord> sorted, const DividedRegion& region) {
  std::vector<FileRequest> reqs;
  reqs.reserve(region.request_count());
  for (std::size_t i = region.first_request; i < region.last_request; ++i) {
    reqs.push_back(FileRequest{sorted[i].op, sorted[i].offset, sorted[i].size});
  }
  return reqs;
}

/// Per-tier device factors of a calibration, for Plan::device_factors; the
/// outer vector collapses to empty when every tier is homogeneous so
/// pre-device plans and homogeneous plans share one canonical form.
std::vector<std::vector<double>> plan_device_factors(
    const TieredCostParams& params) {
  bool any = false;
  for (const auto& t : params.tiers) {
    if (!t.device_factors.empty()) any = true;
  }
  if (!any) return {};
  std::vector<std::vector<double>> out;
  out.reserve(params.tiers.size());
  for (const auto& t : params.tiers) out.push_back(t.device_factors);
  return out;
}

PlannedRegion planned_from(const DividedRegion& region,
                           const RegionStripes& opt) {
  PlannedRegion planned;
  planned.offset = region.offset;
  planned.end = region.end;
  planned.stripes = {opt.stripes.h, opt.stripes.s};
  planned.members = opt.members;
  planned.model_cost = opt.model_cost;
  planned.avg_request = region.avg_request;
  planned.request_count = region.request_count();
  planned.candidates_evaluated = opt.candidates_evaluated;
  planned.cost_evals = opt.cost_evals;
  planned.cost_evals_saved = opt.cost_evals_saved;
  return planned;
}

/// Runs `fn(i)` for each region index: concurrently on options.pool when
/// regions can use it, serially otherwise.  Callers store results by index,
/// so either path yields identical output.
void for_each_region(std::size_t count, const PlannerOptions& options,
                     const std::function<void(std::size_t)>& fn) {
  if (options.pool != nullptr && count > 1) {
    options.pool->parallel_for(count, fn);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

/// Per-region optimizer options for the region-parallel path: regions are
/// the parallel grain, so the nested candidate sharding is disabled — and a
/// caller-provided scratch memo (single-threaded by contract) must not be
/// shared across concurrently optimized regions.
OptimizerOptions region_grain_optimizer(const PlannerOptions& options,
                                        std::size_t region_count) {
  OptimizerOptions opt = options.optimizer;
  if (options.pool != nullptr && region_count > 1) {
    opt.pool = nullptr;
    opt.scratch = nullptr;
  }
  return opt;
}

Plan plan_from_division(std::span<const trace::TraceRecord> sorted,
                        const RegionDivision& division,
                        const CostParams& params,
                        const PlannerOptions& options, bool homogeneous) {
  Plan plan;
  plan.tier_counts = {params.M, params.N};
  plan.device_factors = plan_device_factors(to_tiered(params));
  plan.calibration_fingerprint = params_fingerprint(params);
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;

  const std::size_t count = division.regions.size();
  const OptimizerOptions opt_options = region_grain_optimizer(options, count);
  std::vector<RegionStripes> optimized(count);
  for_each_region(count, options, [&](std::size_t i) {
    const DividedRegion& region = division.regions[i];
    const auto reqs = region_requests(sorted, region);
    optimized[i] =
        homogeneous
            ? optimize_region_homogeneous(params, reqs, region.avg_request,
                                          opt_options)
            : optimize_region(params, reqs, region.avg_request, opt_options);
  });

  // Deterministic assembly in region order, independent of which thread
  // optimized which region.
  plan.regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    plan.regions.push_back(planned_from(division.regions[i], optimized[i]));
    plan.rst.add(division.regions[i].offset,
                 {optimized[i].stripes.h, optimized[i].stripes.s},
                 optimized[i].members);
  }

  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

}  // namespace

Seconds Plan::total_model_cost() const {
  return std::accumulate(regions.begin(), regions.end(), 0.0,
                         [](Seconds acc, const PlannedRegion& r) {
                           return acc + r.model_cost;
                         });
}

std::uint64_t Plan::total_cost_evals() const {
  return std::accumulate(regions.begin(), regions.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const PlannedRegion& r) {
                           return acc + r.cost_evals;
                         });
}

std::uint64_t Plan::total_cost_evals_saved() const {
  return std::accumulate(regions.begin(), regions.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const PlannedRegion& r) {
                           return acc + r.cost_evals_saved;
                         });
}

Plan analyze(std::span<const trace::TraceRecord> records,
             const CostParams& params, const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_file_level(std::span<const trace::TraceRecord> records,
                        const CostParams& params,
                        const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);

  // One region spanning everything: the heterogeneity-aware but
  // region-oblivious ablation.
  RegionDivision division;
  DividedRegion whole;
  whole.offset = 0;
  whole.first_request = 0;
  whole.last_request = sorted.size();
  Bytes max_end = 0;
  double sum = 0.0;
  for (const auto& r : sorted) {
    max_end = std::max(max_end, r.offset + r.size);
    sum += static_cast<double>(r.size);
  }
  whole.end = max_end;
  whole.avg_request = sum / static_cast<double>(sorted.size());
  division.regions.push_back(whole);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_segment_level(std::span<const trace::TraceRecord> records,
                           const CostParams& params,
                           const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);
  return plan_from_division(sorted, division, params, options, true);
}

Plan analyze_fixed_regions(std::span<const trace::TraceRecord> records,
                           const CostParams& params, Bytes chunk_size,
                           const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions_fixed(sorted, chunk_size);
  return plan_from_division(sorted, division, params, options, false);
}

Plan analyze_carl(std::span<const trace::TraceRecord> records,
                  const CostParams& params, Bytes ssd_capacity,
                  const PlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);

  // Per region: best single-tier placements and their model costs.
  struct CarlRegion {
    DividedRegion region;
    RegionStripes hdd_only;
    RegionStripes ssd_only;
    Bytes extent = 0;       ///< bytes stored if placed on SServers
    double density = 0.0;   ///< cost savings per stored byte
  };
  const std::size_t count = division.regions.size();
  std::vector<CarlRegion> carl(count);

  // HServer-only: force s = 0 by restricting the search to N = 0;
  // SServer-only: force h = 0 via M = 0.
  CostParams hdd_params = params;
  hdd_params.N = 0;
  CostParams ssd_params = params;
  ssd_params.M = 0;

  // The two single-tier searches per region are independent of each other,
  // so the parallel grain is (region, tier): 2 * count tasks.
  const OptimizerOptions opt_options = region_grain_optimizer(options, 2 * count);
  auto optimize_half = [&](std::size_t task) {
    const std::size_t r = task / 2;
    const DividedRegion& region = division.regions[r];
    const auto reqs = region_requests(sorted, region);
    if (task % 2 == 0) {
      carl[r].hdd_only =
          optimize_region(hdd_params, reqs, region.avg_request, opt_options);
      carl[r].hdd_only.stripes.s = 0;
    } else {
      carl[r].ssd_only =
          optimize_region(ssd_params, reqs, region.avg_request, opt_options);
      carl[r].ssd_only.stripes.h = 0;
    }
  };
  if (options.pool != nullptr && count > 0) {
    options.pool->parallel_for(2 * count, optimize_half);
  } else {
    for (std::size_t task = 0; task < 2 * count; ++task) optimize_half(task);
  }

  for (std::size_t r = 0; r < count; ++r) {
    CarlRegion& c = carl[r];
    c.region = division.regions[r];
    c.extent = c.region.end - c.region.offset;
    c.density = c.extent > 0
                    ? (c.hdd_only.model_cost - c.ssd_only.model_cost) /
                          static_cast<double>(c.extent)
                    : 0.0;
  }

  // Greedy: highest savings density first, until the SSD budget is spent.
  std::vector<std::size_t> order(carl.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (carl[a].density != carl[b].density) {
      return carl[a].density > carl[b].density;
    }
    return a < b;
  });
  std::vector<bool> on_ssd(carl.size(), false);
  Bytes budget = ssd_capacity;
  for (std::size_t idx : order) {
    if (carl[idx].density <= 0.0) break;
    if (carl[idx].extent <= budget) {
      on_ssd[idx] = true;
      budget -= carl[idx].extent;
    }
  }

  Plan plan;
  plan.tier_counts = {params.M, params.N};
  plan.device_factors = plan_device_factors(to_tiered(params));
  plan.calibration_fingerprint = params_fingerprint(params);
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;
  for (std::size_t i = 0; i < carl.size(); ++i) {
    const RegionStripes& choice = on_ssd[i] ? carl[i].ssd_only : carl[i].hdd_only;
    PlannedRegion planned;
    planned.offset = carl[i].region.offset;
    planned.end = carl[i].region.end;
    planned.stripes = {choice.stripes.h, choice.stripes.s};
    planned.members = choice.members;
    planned.model_cost = choice.model_cost;
    planned.avg_request = carl[i].region.avg_request;
    planned.request_count = carl[i].region.request_count();
    // Both single-tier searches count toward the region's analysis effort.
    planned.candidates_evaluated = carl[i].hdd_only.candidates_evaluated +
                                   carl[i].ssd_only.candidates_evaluated;
    planned.cost_evals =
        carl[i].hdd_only.cost_evals + carl[i].ssd_only.cost_evals;
    planned.cost_evals_saved = carl[i].hdd_only.cost_evals_saved +
                               carl[i].ssd_only.cost_evals_saved;
    plan.regions.push_back(planned);
    plan.rst.add(planned.offset, planned.stripes, planned.members);
  }
  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

Plan analyze_tiered(std::span<const trace::TraceRecord> records,
                    const TieredCostParams& params,
                    const TieredPlannerOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot analyze empty trace");
  std::vector<trace::TraceRecord> storage;
  const auto sorted = ensure_sorted(records, storage);
  const RegionDivision division = divide_regions(sorted, options.divider);

  Plan plan;
  plan.tier_counts.reserve(params.tiers.size());
  for (const auto& tier : params.tiers) plan.tier_counts.push_back(tier.count);
  plan.device_factors = plan_device_factors(params);
  plan.calibration_fingerprint = params_fingerprint(params);
  plan.threshold_used = division.threshold_used;
  plan.tuning_rounds = division.tuning_rounds;

  const std::size_t count = division.regions.size();
  TieredOptimizerOptions opt_options = options.optimizer;
  if (options.pool != nullptr && count > 1) opt_options.pool = nullptr;
  std::vector<TieredRegionStripes> optimized(count);
  auto optimize_one = [&](std::size_t i) {
    const DividedRegion& region = division.regions[i];
    const auto reqs = region_requests(sorted, region);
    optimized[i] =
        optimize_region_tiered(params, reqs, region.avg_request, opt_options);
  };
  if (options.pool != nullptr && count > 1) {
    options.pool->parallel_for(count, optimize_one);
  } else {
    for (std::size_t i = 0; i < count; ++i) optimize_one(i);
  }

  plan.regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const DividedRegion& region = division.regions[i];
    PlannedRegion planned;
    planned.offset = region.offset;
    planned.end = region.end;
    planned.stripes = optimized[i].stripes;
    planned.members = optimized[i].members;
    planned.model_cost = optimized[i].model_cost;
    planned.avg_request = region.avg_request;
    planned.request_count = region.request_count();
    planned.candidates_evaluated = optimized[i].candidates_evaluated;
    planned.cost_evals = optimized[i].cost_evals;
    planned.cost_evals_saved = optimized[i].cost_evals_saved;
    plan.regions.push_back(std::move(planned));
    plan.rst.add(region.offset, optimized[i].stripes, optimized[i].members);
  }

  plan.regions_before_merge = plan.rst.size();
  if (options.merge_adjacent) plan.rst.merge_adjacent();
  plan.regions_after_merge = plan.rst.size();
  return plan;
}

}  // namespace harl::core
