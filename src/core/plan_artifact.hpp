// The serialized Plan artifact: HARL's hand-off from the Analysis Phase to
// the Placing Phase (paper Fig. 3), as one self-describing file.
//
// An artifact carries everything the Placing Phase needs to install a layout
// without re-running analysis: the per-tier server counts the plan was
// computed for, the calibration fingerprint (params_fingerprint) so a stale
// plan is detected, the Region Stripe Table, and (optionally) the R2F
// region-to-file names the middleware assigned.  Analysis and Placing can
// therefore run as separate processes: `harl_sim save-plan=` writes the
// artifact and `harl_sim load-plan=` installs it.
//
// Two encodings share one logical schema:
//  * binary — magic "HARLPLAN", little-endian, versioned; the compact form.
//  * CSV    — header "harl-plan-csv-v1"; the inspectable/diffable form.
// save_plan()/load_plan() pick by file extension (".csv") and magic sniffing
// respectively.
//
// Compatibility rule: the version is bumped only for incompatible schema
// changes; readers reject artifacts whose version (or magic/header) they do
// not know, rather than guessing.  Adding optional trailing sections is a
// compatible change and does not bump the version.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/core/planner.hpp"
#include "src/core/rst.hpp"

namespace harl::core {

/// Current binary schema version.  Version 1 is the pre-device-model
/// format; version 2 appends a per-tier device-factor table and a
/// per-region member section.  Writers emit version 1 byte-identically
/// whenever the plan carries no device information, so homogeneous plans
/// round-trip with version-1 readers; readers accept both versions (a v1
/// artifact loads with all factors defaulting to 1.0, i.e. empty).
inline constexpr std::uint32_t kPlanArtifactVersion = 2;

struct PlanArtifact {
  std::vector<std::size_t> tier_counts;   ///< servers per tier, in order
  std::uint64_t calibration_fingerprint = 0;
  /// Per-tier device speed factors the plan assumed (canonical ascending;
  /// empty inner vector = homogeneous tier; empty outer vector = no device
  /// model, the only form version-1 artifacts can express).  When non-empty
  /// the outer size must equal tier_counts.size() and each non-empty inner
  /// vector's size the tier's count.
  std::vector<std::vector<double>> device_factors;
  RegionStripeTable rst;
  /// R2F: physical file name per RST region (paper Fig. 6's Region-to-File
  /// table).  Either empty (not yet placed) or exactly rst.size() entries.
  std::vector<std::string> region_files;
  /// Cache reservation of a cache-aware plan (Plan::cache).  Serialized as
  /// an optional *trailing* section in both encodings, so cache-less
  /// artifacts stay byte-identical to the pre-cache formats and old readers
  /// reject nothing they used to accept.
  std::optional<PlanCacheSpec> cache;

  /// Snapshot of an Analysis Phase result (region_files left empty; the
  /// Placing Phase fills them when it installs the plan).
  static PlanArtifact from_plan(const Plan& plan);
};

/// Binary encoding.  Throws std::runtime_error on truncated or corrupt
/// input and on version mismatch.
void save_plan_binary(const PlanArtifact& artifact, std::ostream& os);
PlanArtifact load_plan_binary(std::istream& is);

/// CSV encoding (one "region,offset,s_0,...,s_{k-1}" row per RST entry).
void save_plan_csv(const PlanArtifact& artifact, std::ostream& os);
PlanArtifact load_plan_csv(std::istream& is);

/// Path-based convenience: a ".csv" suffix selects the CSV encoding on
/// save; load() sniffs the leading bytes and accepts either encoding.
void save_plan(const PlanArtifact& artifact, const std::string& path);
PlanArtifact load_plan(const std::string& path);

}  // namespace harl::core
