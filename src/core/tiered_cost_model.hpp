// The cost model, in its general k-tier form (the ONLY cost engine).
//
// The paper's model is written for two server classes; its conclusion names
// "extend our cost model to accommodate more than two server performance
// profiles" as future work.  This module is that extension — and, since the
// tier-vector refactor, also the implementation the paper's two-tier API in
// cost_model.hpp adapts to (k = 2): one geometry routine, one cost kernel,
// one set of calibration parameters per tier.
//
// Geometry convention: servers are ordered tier 0 first, then tier 1, ...,
// and striping is round-robin across all servers in that order (the same
// convention pfs::VariedStripeLayout and the paper use for HServers followed
// by SServers).  A region's layout is the stripe vector (s_0, ..., s_{k-1});
// the striping period is S = sum_j count_j * s_j.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {

/// One storage tier of the cluster.
///
/// `device_factors` generalizes the tier from a homogeneous server class to
/// an ordered group of member devices: factor i is server slot i's time
/// multiplier over the tier profile (1.0 = nominal).  The vector is kept in
/// *canonical* form — sorted ascending (fastest member first) with the
/// all-1.0 case represented by the empty vector
/// (storage::canonicalize_device_factors) — so "the d fastest members" is
/// always the slot prefix [0, d) and the homogeneous configuration takes
/// exactly the pre-device-model code paths, bit for bit.
struct TierSpec {
  std::size_t count = 0;           ///< number of servers in this tier
  storage::TierProfile profile;    ///< alpha/beta parameters per op
  /// Canonical per-member speed factors; empty = homogeneous tier.  When
  /// non-empty the size must equal `count`.
  std::vector<double> device_factors;

  /// True when every member matches the tier profile (no device model).
  bool homogeneous() const { return device_factors.empty(); }
};

/// Per-tier sub-request distribution of one request.
struct TierGeometry {
  Bytes max_bytes = 0;     ///< maximal per-server byte count in the tier
  std::size_t touched = 0; ///< servers of the tier with nonzero bytes
};

/// Exact per-tier geometry of request [o, o+r) under round-robin striping.
/// `counts[j]` servers in tier j each use stripe `stripes[j]` (0 = skip).
/// Requires counts.size() == stripes.size() and a nonzero total period.
std::vector<TierGeometry> tiered_geometry(Bytes o, Bytes r,
                                          std::span<const std::size_t> counts,
                                          std::span<const Bytes> stripes);

/// Allocation-free form: writes per-tier geometry into `out` (same size as
/// `counts`).  For k == 2 with both tiers present and both stripes nonzero
/// this dispatches to the O(1) closed forms of paper Fig. 4/5 (exactness is
/// pinned by closed_form_test); otherwise it walks the period's cells in
/// O(sum counts).  The optimizer calls this millions of times per region.
void tiered_geometry_into(Bytes o, Bytes r,
                          std::span<const std::size_t> counts,
                          std::span<const Bytes> stripes,
                          std::span<TierGeometry> out);

struct TieredCostParams {
  std::vector<TierSpec> tiers;
  Seconds t = 0.0;            ///< unit-byte network time
  Seconds net_latency = 0.0;  ///< fixed per-request overhead (0 = paper-pure)
  int net_hops = 1;           ///< link traversals charged
  /// Server-side processing charged per stripe unit of the largest
  /// sub-request (0 = paper-pure); see CostParams::per_stripe_overhead.
  Seconds per_stripe_overhead = 0.0;
};

/// Expected maximum of `k` i.i.d. uniforms on [p.startup_min, p.startup_max]
/// (paper Eq. 3/4): a_min + k/(k+1) * (a_max - a_min).  0 when k == 0.
Seconds startup_expected_max(const storage::OpProfile& p, std::size_t k);

/// The shared cost kernel (generalized Eq. 7/8):
///   T_X = hops * t * max_j(max_bytes_j) + latency
///   T_S = max_j E[max of touched_j uniforms on tier j's startup window]
///   T_T = max_j (max_bytes_j * beta_j) + per_stripe_overhead * max pieces
/// `profiles[j]` is tier j's OpProfile for the request's op (pre-selected so
/// hot loops pay no per-request branching) and `scratch` is caller-provided
/// TierGeometry storage of the same size as `counts`.
Seconds tiered_cost_kernel(std::span<const std::size_t> counts,
                           std::span<const storage::OpProfile* const> profiles,
                           Seconds t, Seconds net_latency, int net_hops,
                           Seconds per_stripe_overhead, Bytes offset,
                           Bytes size, std::span<const Bytes> stripes,
                           std::span<TierGeometry> scratch);

/// Device-aware variant of the kernel.  `tier_factors[j]` is the worst
/// (largest) speed factor among the member devices of tier j that the
/// request's stripes actually use (storage::worst_device_factor over the
/// selected member prefix).  Every server-side term is charged at that
/// conservative factor — the slowest touched member dominates its tier:
///   T_S = max_j f_j * E[max of touched_j startups on tier j's window]
///   T_T = max_j f_j * max_bytes_j * beta_j
///        + per_stripe_overhead * max_j f_j * pieces_j
/// The network terms (T_X) are unchanged: aging is a device property.
/// With all factors exactly 1.0 this returns a value bit-identical to
/// `tiered_cost_kernel` (multiplication by 1.0 is exact), but homogeneous
/// callers still use the unscaled kernel so the hot path is untouched.
Seconds tiered_cost_kernel_devices(
    std::span<const std::size_t> counts,
    std::span<const storage::OpProfile* const> profiles,
    std::span<const double> tier_factors, Seconds t, Seconds net_latency,
    int net_hops, Seconds per_stripe_overhead, Bytes offset, Bytes size,
    std::span<const Bytes> stripes, std::span<TierGeometry> scratch);

/// Cost of one request with per-tier stripe sizes (generalized Eq. 7/8).
/// Heterogeneous tiers (non-empty device_factors) are charged at the worst
/// factor over the full tier membership.
Seconds tiered_request_cost(const TieredCostParams& params, IoOp op, Bytes offset,
                            Bytes size, std::span<const Bytes> stripes);

/// Member-restricted cost: `members[j]` servers of tier j participate in
/// the round-robin (the j-th tier's *fastest* members — slot prefix of the
/// canonical factor order); members[j] == 0 skips the tier regardless of
/// stripes[j].  Requires members[j] <= tiers[j].count.  With
/// members[j] == count for every tier this equals the base overload.
Seconds tiered_request_cost(const TieredCostParams& params, IoOp op, Bytes offset,
                            Bytes size, std::span<const Bytes> stripes,
                            std::span<const std::size_t> members);

/// Geometry of the read-cache tier, for the expected-hit-rate cost term
/// (HACache direction): the fastest `devices` members of one tier are
/// reserved as a chunk-granular read cache, so a cache hit is served by
/// chunk-wise round-robin striping over those devices instead of by the
/// region's home-server layout.
struct CacheReadSpec {
  std::size_t devices = 0;     ///< reserved cache devices
  Bytes chunk = 0;             ///< cache chunk size (the hit stripe unit)
  storage::OpProfile profile;  ///< cache-device read alpha/beta
  /// Worst (largest) speed factor among the reserved member prefix — the
  /// slowest cache device dominates a multi-chunk hit, mirroring
  /// tiered_cost_kernel_devices' conservative charging.
  double worst_factor = 1.0;
};

/// Cost of serving read [offset, offset+size) entirely from the cache tier:
/// the same kernel as a one-tier layout of `spec.devices` servers striped at
/// `spec.chunk`, with network terms (t, latency, hops, per-stripe overhead)
/// taken from `params`.  Requires devices > 0 and chunk > 0.
Seconds cached_read_cost(const TieredCostParams& params,
                         const CacheReadSpec& spec, Bytes offset, Bytes size);

/// The expected-hit-rate term: a read's expected cost under a cache with
/// per-region hit rate `hit_rate` is the convex mix of its miss path (the
/// region's home layout) and its hit path (the cache tier).
inline Seconds expected_read_cost(Seconds miss_cost, Seconds hit_cost,
                                  double hit_rate) {
  return (1.0 - hit_rate) * miss_cost + hit_rate * hit_cost;
}

/// Order-independent fingerprint of the calibration (FNV-1a over the tier
/// counts and every parameter double's bit pattern; for a heterogeneous
/// tier also its device-factor vector).  Stored in Plan artifacts so the
/// Placing Phase can detect that a plan was computed against a different
/// calibration than the one in force.  A homogeneous tier (empty factors)
/// hashes exactly as before the device model existed, so pre-device plans
/// keep their fingerprints; changing any device factor changes the
/// fingerprint, which is what invalidates every cache keyed on it.
std::uint64_t params_fingerprint(const TieredCostParams& params);

}  // namespace harl::core
