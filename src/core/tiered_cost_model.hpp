// Generalized multi-tier cost model.
//
// The paper's model is written for two server classes; its conclusion names
// "extend our cost model to accommodate more than two server performance
// profiles" as future work.  This module is that extension: k tiers, each
// with a server count, an OpProfile pair, and its own stripe size.  The
// two-tier functions in cost_model.hpp are thin wrappers over these.
//
// Geometry convention: servers are ordered tier 0 first, then tier 1, ...,
// and striping is round-robin across all servers in that order (the same
// convention pfs::VariedStripeLayout and the paper use for HServers followed
// by SServers).
#pragma once

#include <span>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {

/// One storage tier of the cluster.
struct TierSpec {
  std::size_t count = 0;           ///< number of servers in this tier
  storage::TierProfile profile;    ///< alpha/beta parameters per op
};

/// Per-tier sub-request distribution of one request.
struct TierGeometry {
  Bytes max_bytes = 0;     ///< maximal per-server byte count in the tier
  std::size_t touched = 0; ///< servers of the tier with nonzero bytes
};

/// Exact per-tier geometry of request [o, o+r) under round-robin striping.
/// `counts[j]` servers in tier j each use stripe `stripes[j]` (0 = skip).
/// Requires counts.size() == stripes.size() and a nonzero total period.
std::vector<TierGeometry> tiered_geometry(Bytes o, Bytes r,
                                          std::span<const std::size_t> counts,
                                          std::span<const Bytes> stripes);

struct TieredCostParams {
  std::vector<TierSpec> tiers;
  Seconds t = 0.0;            ///< unit-byte network time
  Seconds net_latency = 0.0;  ///< fixed per-request overhead (0 = paper-pure)
  int net_hops = 1;           ///< link traversals charged
};

/// Cost of one request with per-tier stripe sizes (generalized Eq. 7/8):
///   T_X = hops * t * max_j(max_bytes_j) + latency
///   T_S = max_j E[max of touched_j uniforms on tier j's startup window]
///   T_T = max_j (max_bytes_j * beta_j)
Seconds tiered_request_cost(const TieredCostParams& params, IoOp op, Bytes offset,
                            Bytes size, std::span<const Bytes> stripes);

}  // namespace harl::core
