// Closed-form sub-request geometry for all four cases of paper Fig. 4.
//
// The paper derives the critical parameters (s_m, s_n, m, n) case by case —
// case (a): request begins and ends on HServers, (b): begins on HServers /
// ends on SServers, (c): begins on SServers / ends on HServers, (d): begins
// and ends on SServers — but prints only case (a)'s table ("Due to space
// limitation...").  This module completes the derivation "by following the
// same arguments", in O(1) per request and *exactly* (the printed case-(a)
// table approximates a few corners; see fig5_case_a_geometry).
//
// Key trick: working with the request's INCLUSIVE last byte e = o + r - 1
// removes every zero-length-fragment corner, so each tier reduces to
//   bytes(column) = full_periods * stripe + begin_partial + end_partial
// with begin/end partials determined by the begin/end columns and fragments.
// The property test closed_form_test.cpp checks equality with the exact
// O(M+N) geometry over randomized sweeps of all four cases.
#pragma once

#include "src/core/cost_model.hpp"

namespace harl::core {

/// The four begin/end-area cases of paper Fig. 4.
enum class Fig4Case { kA, kB, kC, kD };

/// Classifies request [o, o+r) (r > 0) under stripes `hs` with M HServers
/// and N SServers.  Requires h > 0, s > 0, M > 0, N > 0.
Fig4Case classify_fig4(Bytes o, Bytes r, StripePair hs, std::size_t M,
                       std::size_t N);

/// O(1) closed-form geometry, exact for every case and alignment.
/// Same preconditions as classify_fig4; throws std::invalid_argument.
SubreqGeometry closed_form_geometry(Bytes o, Bytes r, StripePair hs,
                                    std::size_t M, std::size_t N);

}  // namespace harl::core
