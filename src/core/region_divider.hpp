// File region division (paper Section III-C, Algorithm 1).
//
// Walks the trace's requests in ascending-offset order, growing a window and
// tracking the coefficient of variation (CV) of request sizes.  When the CV
// jumps by more than `threshold` (relative, 100% by default), the window is
// closed as a region and a new one starts.  If the division produces more
// regions than a fixed-size division (file_extent / fixed_region_size) would,
// the threshold is raised and the division re-run, loosening sensitivity and
// bounding metadata overhead.
//
// Edge-case conventions (the printed algorithm divides by cv_prev, which is
// zero initially and after every split):
//  * each window is seeded with its first two requests unconditionally (the
//    paper "reads the first two entries ... and calculates the CV"), so the
//    test applies from the third request on;
//  * with cv_prev == 0 (constant-size window so far), the relative change
//    denominator is floored at a small constant, so a CV jump reads as a
//    very large but finite change — it splits at the default threshold yet
//    can still be loosened by the region-count tuning.
#pragma once

#include <span>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/units.hpp"
#include "src/trace/record.hpp"

namespace harl::core {

struct DividerOptions {
  /// Initial relative-CV split threshold; 1.0 == the paper's 100%.
  double threshold = 1.0;
  /// Region-count cap reference: the fixed-size division's chunk size.
  Bytes fixed_region_size = 64 * MiB;
  /// Multiplier applied to the threshold each tuning round.
  double threshold_growth = 2.0;
  /// Maximum tuning rounds before accepting the current division.
  int max_tuning_rounds = 16;
};

/// One divided region: covers requests [first_request, last_request) of the
/// sorted input and file bytes [offset, end).
struct DividedRegion {
  Bytes offset = 0;          ///< region start (first request's offset)
  Bytes end = 0;             ///< region end (next region's start / file end)
  double avg_request = 0.0;  ///< average request size in the region (paper A_i)
  std::size_t first_request = 0;
  std::size_t last_request = 0;  ///< exclusive

  std::size_t request_count() const { return last_request - first_request; }
};

struct RegionDivision {
  std::vector<DividedRegion> regions;
  double threshold_used = 1.0;  ///< after auto-tuning
  int tuning_rounds = 0;
};

/// Incremental Algorithm 1: one CV update per appended request, O(1) state.
///
/// The batch `divide_regions` is this class fed in a loop (the two are
/// bit-identical by construction); the streaming form exists so online
/// consumers — the advisor's per-window analysis, `harl_trace divide` —
/// process each request once as it arrives instead of re-sorting and
/// re-walking the whole trace per window.  Offsets must be appended in
/// ascending order; `finish` closes the open region and tiles the touched
/// extent exactly like the batch pass.  One-shot: construct anew per pass.
class StreamingDivider {
 public:
  /// Relative-CV denominator floor (see divide_regions header comment): a
  /// jump away from a zero-CV window reads as a large but finite change.
  static constexpr double kCvFloor = 0.01;

  /// Per-request CV trajectory sample (captured when a trajectory vector is
  /// supplied — the `harl_trace divide` dump).
  struct CvSample {
    std::size_t index = 0;  ///< request index in feed order
    Bytes offset = 0;
    Bytes size = 0;
    double cv = 0.0;               ///< window CV after this request
    double relative_change = 0.0;  ///< 0 while the window is seeding
    bool split = false;            ///< this request closed a region
  };

  explicit StreamingDivider(double threshold,
                            std::vector<CvSample>* trajectory = nullptr);

  /// Appends one request; throws if `offset` decreases.
  void add(Bytes offset, Bytes size);
  void add(const trace::TraceRecord& record) { add(record.offset, record.size); }

  std::size_t fed() const { return index_; }
  /// Regions closed so far plus the open window (if any).
  std::size_t region_count() const {
    return regions_.size() + (window_.count() > 0 ? 1 : 0);
  }

  /// Closes the open region and tiles the touched extent ([0, max end)).
  std::vector<DividedRegion> finish();

 private:
  double threshold_;
  std::vector<CvSample>* trajectory_;
  std::vector<DividedRegion> regions_;
  RunningStats window_;
  double cv_prev_ = 0.0;
  std::size_t reg_init_ = 0;
  Bytes region_offset_ = 0;
  Bytes last_offset_ = 0;
  Bytes max_end_ = 0;
  std::size_t index_ = 0;
};

/// One threshold-tuning round of `divide_regions` (for diagnostics dumps).
struct TuningRound {
  int round = 0;
  double threshold = 0.0;
  std::size_t regions = 0;
};

/// Runs Algorithm 1 over `sorted` (must be ascending by offset — use
/// TraceCollector::sorted_by_offset()).  The first region is clamped to
/// start at offset 0 and the last extends to max(offset+size) so the regions
/// tile the touched extent.  An empty trace yields no regions.
RegionDivision divide_regions(std::span<const trace::TraceRecord> sorted,
                              const DividerOptions& options = {});

/// `divide_regions` plus diagnostics: when non-null, `trajectory` receives
/// the per-request CV trajectory of the final accepted round and `rounds`
/// one entry per threshold-tuning round (threshold tried, regions produced).
RegionDivision divide_regions_traced(
    std::span<const trace::TraceRecord> sorted, const DividerOptions& options,
    std::vector<StreamingDivider::CvSample>* trajectory,
    std::vector<TuningRound>* rounds);

/// The strawman the paper rejects (Section III-C): "logically divide the
/// address space of a file into regions by a fixed chunk size (e.g. 64MB or
/// 128MB)".  Chunks are [0, chunk), [chunk, 2*chunk), ...; a request belongs
/// to the chunk containing its offset; chunks with no requests are merged
/// into the following occupied chunk.  Used as a baseline to show why
/// workload-driven splitting wins (bench_ablation_division).
RegionDivision divide_regions_fixed(std::span<const trace::TraceRecord> sorted,
                                    Bytes chunk_size);

}  // namespace harl::core
