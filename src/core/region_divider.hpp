// File region division (paper Section III-C, Algorithm 1).
//
// Walks the trace's requests in ascending-offset order, growing a window and
// tracking the coefficient of variation (CV) of request sizes.  When the CV
// jumps by more than `threshold` (relative, 100% by default), the window is
// closed as a region and a new one starts.  If the division produces more
// regions than a fixed-size division (file_extent / fixed_region_size) would,
// the threshold is raised and the division re-run, loosening sensitivity and
// bounding metadata overhead.
//
// Edge-case conventions (the printed algorithm divides by cv_prev, which is
// zero initially and after every split):
//  * each window is seeded with its first two requests unconditionally (the
//    paper "reads the first two entries ... and calculates the CV"), so the
//    test applies from the third request on;
//  * with cv_prev == 0 (constant-size window so far), the relative change
//    denominator is floored at a small constant, so a CV jump reads as a
//    very large but finite change — it splits at the default threshold yet
//    can still be loosened by the region-count tuning.
#pragma once

#include <span>
#include <vector>

#include "src/common/units.hpp"
#include "src/trace/record.hpp"

namespace harl::core {

struct DividerOptions {
  /// Initial relative-CV split threshold; 1.0 == the paper's 100%.
  double threshold = 1.0;
  /// Region-count cap reference: the fixed-size division's chunk size.
  Bytes fixed_region_size = 64 * MiB;
  /// Multiplier applied to the threshold each tuning round.
  double threshold_growth = 2.0;
  /// Maximum tuning rounds before accepting the current division.
  int max_tuning_rounds = 16;
};

/// One divided region: covers requests [first_request, last_request) of the
/// sorted input and file bytes [offset, end).
struct DividedRegion {
  Bytes offset = 0;          ///< region start (first request's offset)
  Bytes end = 0;             ///< region end (next region's start / file end)
  double avg_request = 0.0;  ///< average request size in the region (paper A_i)
  std::size_t first_request = 0;
  std::size_t last_request = 0;  ///< exclusive

  std::size_t request_count() const { return last_request - first_request; }
};

struct RegionDivision {
  std::vector<DividedRegion> regions;
  double threshold_used = 1.0;  ///< after auto-tuning
  int tuning_rounds = 0;
};

/// Runs Algorithm 1 over `sorted` (must be ascending by offset — use
/// TraceCollector::sorted_by_offset()).  The first region is clamped to
/// start at offset 0 and the last extends to max(offset+size) so the regions
/// tile the touched extent.  An empty trace yields no regions.
RegionDivision divide_regions(std::span<const trace::TraceRecord> sorted,
                              const DividerOptions& options = {});

/// The strawman the paper rejects (Section III-C): "logically divide the
/// address space of a file into regions by a fixed chunk size (e.g. 64MB or
/// 128MB)".  Chunks are [0, chunk), [chunk, 2*chunk), ...; a request belongs
/// to the chunk containing its offset; chunks with no requests are merged
/// into the following occupied chunk.  Used as a baseline to show why
/// workload-driven splitting wins (bench_ablation_division).
RegionDivision divide_regions_fixed(std::span<const trace::TraceRecord> sorted,
                                    Bytes chunk_size);

}  // namespace harl::core
