#include "src/core/tiered_cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/interval.hpp"
#include "src/core/closed_form.hpp"
#include "src/core/cost_model.hpp"

namespace harl::core {

namespace {

/// Accumulates max-bytes/touched over one tier's cells without allocating.
/// `tier_base` is the tier's first cell offset within the period; the
/// sentinel full_periods == ~0 marks a single-period request [l_b, l_e).
void tier_geometry_inline(Bytes l_b, Bytes l_e, Bytes S, Bytes full_periods,
                          Bytes tier_base, std::size_t count, Bytes stripe,
                          TierGeometry& out) {
  if (stripe == 0 || count == 0) return;
  Bytes cell_base = tier_base;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteInterval cell{cell_base, cell_base + stripe};
    Bytes bytes = 0;
    if (full_periods == ~static_cast<Bytes>(0)) {
      bytes = intersect({l_b, l_e}, cell).length();
    } else {
      bytes = intersect({l_b, S}, cell).length() + full_periods * stripe +
              intersect({0, l_e}, cell).length();
    }
    if (bytes > 0) {
      ++out.touched;
      out.max_bytes = std::max(out.max_bytes, bytes);
    }
    cell_base += stripe;
  }
}

}  // namespace

void tiered_geometry_into(Bytes o, Bytes r,
                          std::span<const std::size_t> counts,
                          std::span<const Bytes> stripes,
                          std::span<TierGeometry> out) {
  if (counts.size() != stripes.size() || counts.size() != out.size()) {
    throw std::invalid_argument("counts/stripes size mismatch");
  }
  Bytes S = 0;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    S += static_cast<Bytes>(counts[j]) * stripes[j];
  }
  if (S == 0) throw std::invalid_argument("zero striping period");
  std::fill(out.begin(), out.end(), TierGeometry{});
  if (r == 0) return;

  // Fast path for the paper's hybrid shape: the completed Fig. 4/5 closed
  // forms are O(1) and exact when both tiers are present
  // (closed_form_test.cpp pins the equivalence with the cell walk).
  if (counts.size() == 2 && counts[0] > 0 && counts[1] > 0 && stripes[0] > 0 &&
      stripes[1] > 0) {
    const SubreqGeometry g = closed_form_geometry(
        o, r, StripePair{stripes[0], stripes[1]}, counts[0], counts[1]);
    out[0] = TierGeometry{g.s_m, g.m};
    out[1] = TierGeometry{g.s_n, g.n};
    return;
  }

  const Bytes end = o + r;
  const Bytes period_first = o / S;
  const Bytes period_last = end / S;
  const Bytes l_b = o - period_first * S;
  const Bytes l_e = end - period_last * S;
  const Bytes full_periods = period_last == period_first
                                 ? ~static_cast<Bytes>(0)
                                 : period_last - period_first - 1;

  Bytes tier_base = 0;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    tier_geometry_inline(l_b, l_e, S, full_periods, tier_base, counts[j],
                         stripes[j], out[j]);
    tier_base += static_cast<Bytes>(counts[j]) * stripes[j];
  }
}

std::vector<TierGeometry> tiered_geometry(Bytes o, Bytes r,
                                          std::span<const std::size_t> counts,
                                          std::span<const Bytes> stripes) {
  std::vector<TierGeometry> out(counts.size());
  tiered_geometry_into(o, r, counts, stripes, out);
  return out;
}

Seconds startup_expected_max(const storage::OpProfile& p, std::size_t k) {
  if (k == 0) return 0.0;
  const double frac = static_cast<double>(k) / static_cast<double>(k + 1);
  return p.startup_min + frac * (p.startup_max - p.startup_min);
}

Seconds tiered_cost_kernel(std::span<const std::size_t> counts,
                           std::span<const storage::OpProfile* const> profiles,
                           Seconds t, Seconds net_latency, int net_hops,
                           Seconds per_stripe_overhead, Bytes offset,
                           Bytes size, std::span<const Bytes> stripes,
                           std::span<TierGeometry> scratch) {
  tiered_geometry_into(offset, size, counts, stripes, scratch);

  Bytes max_bytes = 0;
  Seconds startup = 0.0;
  Seconds transfer = 0.0;
  Bytes max_pieces = 0;
  for (std::size_t j = 0; j < scratch.size(); ++j) {
    const TierGeometry& g = scratch[j];
    const storage::OpProfile& p = *profiles[j];
    max_bytes = std::max(max_bytes, g.max_bytes);
    startup = std::max(startup, startup_expected_max(p, g.touched));
    transfer = std::max(transfer,
                        static_cast<double>(g.max_bytes) * p.per_byte);
    // Stripe units in the maximal per-server extent (the per-stripe request
    // protocol charge of CostParams::per_stripe_overhead, tier-generalized).
    if (per_stripe_overhead > 0.0 && stripes[j] > 0 && g.max_bytes > 0) {
      max_pieces =
          std::max(max_pieces, (g.max_bytes + stripes[j] - 1) / stripes[j]);
    }
  }
  if (per_stripe_overhead > 0.0) {
    transfer += per_stripe_overhead * static_cast<double>(max_pieces);
  }
  const Seconds network = net_latency + static_cast<double>(net_hops) * t *
                                            static_cast<double>(max_bytes);
  return network + startup + transfer;
}

Seconds tiered_cost_kernel_devices(
    std::span<const std::size_t> counts,
    std::span<const storage::OpProfile* const> profiles,
    std::span<const double> tier_factors, Seconds t, Seconds net_latency,
    int net_hops, Seconds per_stripe_overhead, Bytes offset, Bytes size,
    std::span<const Bytes> stripes, std::span<TierGeometry> scratch) {
  tiered_geometry_into(offset, size, counts, stripes, scratch);

  Bytes max_bytes = 0;
  Seconds startup = 0.0;
  Seconds transfer = 0.0;
  // With heterogeneous tiers the dominating piece count is factor-weighted,
  // so the max runs over doubles rather than integer stripe units.
  double max_pieces = 0.0;
  for (std::size_t j = 0; j < scratch.size(); ++j) {
    const TierGeometry& g = scratch[j];
    const storage::OpProfile& p = *profiles[j];
    const double f = tier_factors[j];
    max_bytes = std::max(max_bytes, g.max_bytes);
    startup = std::max(startup, f * startup_expected_max(p, g.touched));
    transfer = std::max(transfer,
                        f * static_cast<double>(g.max_bytes) * p.per_byte);
    if (per_stripe_overhead > 0.0 && stripes[j] > 0 && g.max_bytes > 0) {
      const Bytes pieces = (g.max_bytes + stripes[j] - 1) / stripes[j];
      max_pieces = std::max(max_pieces, f * static_cast<double>(pieces));
    }
  }
  if (per_stripe_overhead > 0.0) {
    transfer += per_stripe_overhead * max_pieces;
  }
  const Seconds network = net_latency + static_cast<double>(net_hops) * t *
                                            static_cast<double>(max_bytes);
  return network + startup + transfer;
}

namespace {

/// Shared body of the two tiered_request_cost overloads.  `use_counts` is
/// the per-tier participating-server vector (full counts or a member
/// restriction); the worst-factor charge is taken over that many members of
/// each tier's canonical (ascending) factor vector.
Seconds tiered_request_cost_impl(const TieredCostParams& params, IoOp op,
                                 Bytes offset, Bytes size,
                                 std::span<const Bytes> stripes,
                                 std::span<const std::size_t> use_counts) {
  const std::size_t k = params.tiers.size();
  std::vector<const storage::OpProfile*> profiles(k);
  bool heterogeneous = false;
  for (std::size_t j = 0; j < k; ++j) {
    profiles[j] = &params.tiers[j].profile.op(op);
    if (!params.tiers[j].device_factors.empty()) heterogeneous = true;
  }
  std::vector<TierGeometry> scratch(k);
  if (!heterogeneous) {
    return tiered_cost_kernel(use_counts, profiles, params.t,
                              params.net_latency, params.net_hops,
                              params.per_stripe_overhead, offset, size,
                              stripes, scratch);
  }
  std::vector<double> factors(k);
  for (std::size_t j = 0; j < k; ++j) {
    factors[j] = storage::worst_device_factor(params.tiers[j].device_factors,
                                              use_counts[j]);
  }
  return tiered_cost_kernel_devices(
      use_counts, profiles, factors, params.t, params.net_latency,
      params.net_hops, params.per_stripe_overhead, offset, size, stripes,
      scratch);
}

}  // namespace

Seconds tiered_request_cost(const TieredCostParams& params, IoOp op,
                            Bytes offset, Bytes size,
                            std::span<const Bytes> stripes) {
  if (params.tiers.size() != stripes.size()) {
    throw std::invalid_argument("tiers/stripes size mismatch");
  }
  const std::size_t k = params.tiers.size();
  std::vector<std::size_t> counts(k);
  for (std::size_t j = 0; j < k; ++j) counts[j] = params.tiers[j].count;
  return tiered_request_cost_impl(params, op, offset, size, stripes, counts);
}

Seconds tiered_request_cost(const TieredCostParams& params, IoOp op,
                            Bytes offset, Bytes size,
                            std::span<const Bytes> stripes,
                            std::span<const std::size_t> members) {
  if (params.tiers.size() != stripes.size() ||
      params.tiers.size() != members.size()) {
    throw std::invalid_argument("tiers/stripes/members size mismatch");
  }
  for (std::size_t j = 0; j < members.size(); ++j) {
    if (members[j] > params.tiers[j].count) {
      throw std::invalid_argument("members exceed tier count");
    }
  }
  return tiered_request_cost_impl(params, op, offset, size, stripes, members);
}

Seconds cached_read_cost(const TieredCostParams& params,
                         const CacheReadSpec& spec, Bytes offset, Bytes size) {
  if (spec.devices == 0 || spec.chunk == 0) {
    throw std::invalid_argument("cache spec needs devices and a chunk size");
  }
  // A hit is a one-tier layout: `devices` servers striped at `chunk`, read
  // with the cache devices' profile.  Network terms come from the same
  // calibration as the miss path, so hit and miss costs are comparable.
  const std::size_t counts[1] = {spec.devices};
  const Bytes stripes[1] = {spec.chunk};
  const storage::OpProfile* profiles[1] = {&spec.profile};
  TierGeometry scratch[1];
  if (spec.worst_factor == 1.0) {
    return tiered_cost_kernel(counts, profiles, params.t, params.net_latency,
                              params.net_hops, params.per_stripe_overhead,
                              offset, size, stripes, scratch);
  }
  const double factors[1] = {spec.worst_factor};
  return tiered_cost_kernel_devices(counts, profiles, factors, params.t,
                                    params.net_latency, params.net_hops,
                                    params.per_stripe_overhead, offset, size,
                                    stripes, scratch);
}

std::uint64_t params_fingerprint(const TieredCostParams& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(params.tiers.size());
  mix_double(params.t);
  mix_double(params.net_latency);
  mix(static_cast<std::uint64_t>(params.net_hops));
  mix_double(params.per_stripe_overhead);
  for (const TierSpec& tier : params.tiers) {
    mix(tier.count);
    for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
      const storage::OpProfile& p = tier.profile.op(op);
      mix_double(p.startup_min);
      mix_double(p.startup_max);
      mix_double(p.per_byte);
    }
    // Device table: hashed only when present, so the homogeneous fingerprint
    // is unchanged from the pre-device-model format while any factor change
    // (even on a single member) yields a new fingerprint and invalidates
    // every cache keyed on it.
    if (!tier.device_factors.empty()) {
      mix(tier.device_factors.size());
      for (double f : tier.device_factors) mix_double(f);
    }
  }
  return h;
}

}  // namespace harl::core
