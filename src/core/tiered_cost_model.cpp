#include "src/core/tiered_cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/interval.hpp"
#include "src/core/cost_model.hpp"

namespace harl::core {

std::vector<TierGeometry> tiered_geometry(Bytes o, Bytes r,
                                          std::span<const std::size_t> counts,
                                          std::span<const Bytes> stripes) {
  if (counts.size() != stripes.size()) {
    throw std::invalid_argument("counts/stripes size mismatch");
  }
  std::vector<TierGeometry> out(counts.size());
  Bytes S = 0;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    S += static_cast<Bytes>(counts[j]) * stripes[j];
  }
  if (S == 0) throw std::invalid_argument("zero striping period");
  if (r == 0) return out;

  const Bytes end = o + r;
  const Bytes period_first = o / S;
  const Bytes period_last = end / S;
  const Bytes l_b = o - period_first * S;
  const Bytes l_e = end - period_last * S;

  Bytes cell_base = 0;  // start of the current server's cell in the period
  for (std::size_t j = 0; j < counts.size(); ++j) {
    const Bytes st = stripes[j];
    for (std::size_t i = 0; i < counts[j]; ++i) {
      if (st == 0) continue;
      const ByteInterval cell{cell_base, cell_base + st};
      Bytes bytes = 0;
      if (period_last == period_first) {
        bytes = intersect({l_b, l_e}, cell).length();
      } else {
        bytes = intersect({l_b, S}, cell).length() +
                (period_last - period_first - 1) * st +
                intersect({0, l_e}, cell).length();
      }
      if (bytes > 0) {
        ++out[j].touched;
        out[j].max_bytes = std::max(out[j].max_bytes, bytes);
      }
      cell_base += st;
    }
  }
  return out;
}

Seconds tiered_request_cost(const TieredCostParams& params, IoOp op,
                            Bytes offset, Bytes size,
                            std::span<const Bytes> stripes) {
  if (params.tiers.size() != stripes.size()) {
    throw std::invalid_argument("tiers/stripes size mismatch");
  }
  std::vector<std::size_t> counts(params.tiers.size());
  for (std::size_t j = 0; j < params.tiers.size(); ++j) {
    counts[j] = params.tiers[j].count;
  }
  const auto geo = tiered_geometry(offset, size, counts, stripes);

  Bytes max_bytes = 0;
  Seconds startup = 0.0;
  Seconds transfer = 0.0;
  for (std::size_t j = 0; j < geo.size(); ++j) {
    const storage::OpProfile& p = params.tiers[j].profile.op(op);
    max_bytes = std::max(max_bytes, geo[j].max_bytes);
    startup = std::max(startup, startup_expected_max(p, geo[j].touched));
    transfer = std::max(transfer,
                        static_cast<double>(geo[j].max_bytes) * p.per_byte);
  }
  const Seconds network = params.net_latency +
                          static_cast<double>(params.net_hops) * params.t *
                              static_cast<double>(max_bytes);
  return network + startup + transfer;
}

}  // namespace harl::core
