// On-line data layout advisor (paper Section V future work: "explore
// on-line data layout and data migration methods to make heterogeneous I/O
// systems more intelligent").
//
// The offline pipeline optimizes once from a first-execution trace; if the
// workload later drifts (request sizes change, read/write mix flips), the
// installed RST goes stale.  The advisor watches the live request stream in
// fixed-size windows: when a completed window's requests would cost
// materially less under a re-optimized layout than under the current RST,
// it emits a re-layout recommendation (new RST, expected model gain, and
// the extent of data whose placement changes — the migration cost driver).
// Adoption is explicit (`adopt`), since acting on it means migrating data.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "src/core/cost_memo.hpp"
#include "src/core/planner.hpp"

namespace harl::core {

class OnlineAdvisor {
 public:
  struct Options {
    std::size_t window = 1024;  ///< requests per analysis window
    /// Minimum relative model-cost reduction to recommend a re-layout
    /// (re-striping implies migration, so small gains are not worth it).
    double min_gain = 0.10;
    PlannerOptions planner;
  };

  struct Recommendation {
    RegionStripeTable rst;          ///< proposed replacement table
    Seconds current_cost = 0.0;     ///< window cost under the current RST
    Seconds optimized_cost = 0.0;   ///< window cost under the proposal
    double gain = 0.0;              ///< 1 - optimized/current
    Bytes affected_extent = 0;      ///< bytes of file span whose stripes change
    std::size_t window_requests = 0;
    /// Maximal [begin, end) spans (within the window's touched extent) whose
    /// governing stripes change — exactly the data a migration must move.
    /// Their lengths sum to `affected_extent`.
    std::vector<std::pair<Bytes, Bytes>> changed_ranges;
  };

  /// `current` is the RST installed by the offline Analysis Phase (or a
  /// single-region default).  Must be non-empty.
  OnlineAdvisor(CostParams params, RegionStripeTable current, Options options);

  /// Feeds one completed request.  Returns a recommendation when this
  /// request completes a window whose re-optimization clears `min_gain`.
  std::optional<Recommendation> observe(const trace::TraceRecord& record);

  /// Installs a recommendation as the new current table.
  void adopt(const Recommendation& recommendation);

  const RegionStripeTable& current() const { return current_; }
  std::size_t windows_analyzed() const { return windows_analyzed_; }
  std::size_t recommendations_made() const { return recommendations_made_; }

  /// Cost-kernel evaluations performed / avoided across every per-window
  /// re-optimization so far.  The scratch memo and (when serial) the planner
  /// pool are threaded through `observe`'s analyze call, so saved
  /// evaluations accumulate across windows instead of starting cold.
  std::uint64_t cost_evals() const { return cost_evals_; }
  std::uint64_t cost_evals_saved() const { return cost_evals_saved_; }

  /// Model cost of `records` when each request is striped per `rst`'s
  /// governing region (requests spanning a boundary are costed with the
  /// stripes of their starting region — the dominant share of their bytes).
  static Seconds cost_under(const CostParams& params,
                            const RegionStripeTable& rst,
                            std::span<const trace::TraceRecord> records);

 private:
  CostParams params_;
  RegionStripeTable current_;
  Options options_;
  /// Kept in ByOffset order by insertion, so each full window is already the
  /// sorted trace `analyze` expects — no per-window re-sort of the world.
  std::vector<trace::TraceRecord> window_;
  /// Optimizer scratch threaded through every window's analyze call.
  CostMemo memo_;
  std::size_t windows_analyzed_ = 0;
  std::size_t recommendations_made_ = 0;
  std::uint64_t cost_evals_ = 0;
  std::uint64_t cost_evals_saved_ = 0;
};

}  // namespace harl::core
