// Generalized stripe-size determination for k storage tiers.
//
// Extends Algorithm 2 to clusters with more than two server performance
// profiles (the paper's stated future work).  Candidates are per-tier
// stripe vectors (s_0, ..., s_{k-1}) on the same 4 KiB-style grid, subject
// to the monotonicity constraint s_0 <= s_1 <= ... <= s_{k-1} when tiers
// are ordered slowest-first — the k-tier analogue of the paper's "s starts
// from a size larger than h" load-balance rule.  Not all stripes may be
// zero.  The per-candidate score is the summed tiered cost-model time of
// the region's requests; ties prefer lexicographically larger vectors (see
// stripe_optimizer.cpp for why larger equivalent stripes win).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/tiered_cost_model.hpp"

namespace harl::core {

struct TieredOptimizerOptions {
  Bytes step = 4 * KiB;
  std::size_t max_requests = 4096;  ///< request-sampling cap (0 = no cap)
  ThreadPool* pool = nullptr;       ///< shard the first tier's axis
  /// Require stripes to be non-decreasing across tiers (slowest-first
  /// ordering).  Disable for clusters whose tier order is not by speed.
  bool monotone = true;
  /// Request-class coalescing, as in OptimizerOptions: the k-tier cost is
  /// also exactly periodic in the offset (period = sum count_j * stripe_j),
  /// so per-candidate memoization is bit-identical to brute force.
  bool coalesce = true;
};

struct TieredRegionStripes {
  std::vector<Bytes> stripes;   ///< winning per-tier sizes
  Seconds model_cost = 0.0;
  std::size_t candidates_evaluated = 0;
  std::uint64_t cost_evals = 0;        ///< tiered_request_cost calls made
  std::uint64_t cost_evals_saved = 0;  ///< calls avoided by coalescing
};

/// Exhaustive grid search over per-tier stripes for one region.
/// Requires at least one request, at least one tier with servers, and
/// avg_request_size > 0.  Grid cost grows as (R/step)^k — use coarser
/// steps for k >= 3 (candidates are reported for tuning).
TieredRegionStripes optimize_region_tiered(
    const TieredCostParams& params, std::span<const FileRequest> requests,
    double avg_request_size, const TieredOptimizerOptions& options = {});

/// Scores one candidate: summed tiered model cost over (sampled) requests.
Seconds tiered_region_cost(const TieredCostParams& params,
                           std::span<const FileRequest> requests,
                           std::span<const Bytes> stripes,
                           std::size_t max_requests = 0);

}  // namespace harl::core
