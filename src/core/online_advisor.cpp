#include "src/core/online_advisor.hpp"

#include <algorithm>
#include <stdexcept>

namespace harl::core {

OnlineAdvisor::OnlineAdvisor(CostParams params, RegionStripeTable current,
                             Options options)
    : params_(std::move(params)),
      current_(std::move(current)),
      options_(options) {
  if (current_.empty()) {
    throw std::invalid_argument("advisor needs a non-empty current RST");
  }
  if (options_.window == 0) {
    throw std::invalid_argument("window must be positive");
  }
  if (options_.min_gain < 0.0 || options_.min_gain >= 1.0) {
    throw std::invalid_argument("min_gain must be in [0, 1)");
  }
  window_.reserve(options_.window);
}

Seconds OnlineAdvisor::cost_under(const CostParams& params,
                                  const RegionStripeTable& rst,
                                  std::span<const trace::TraceRecord> records) {
  Seconds total = 0.0;
  for (const auto& r : records) {
    const RstEntry& entry = rst.lookup(r.offset);
    total += request_cost(params, r.op, r.offset, r.size, entry.pair());
  }
  return total;
}

std::optional<OnlineAdvisor::Recommendation> OnlineAdvisor::observe(
    const trace::TraceRecord& record) {
  // Binary insertion keeps the window in ByOffset order as it fills, so a
  // full window is already the sorted trace `analyze` expects (its
  // pre-sorted fast path takes over) instead of re-sorting per window.
  window_.insert(
      std::upper_bound(window_.begin(), window_.end(), record, trace::ByOffset{}),
      record);
  if (window_.size() < options_.window) return std::nullopt;

  // Window complete: re-run the Analysis Phase on the window alone.
  ++windows_analyzed_;
  std::vector<trace::TraceRecord> window;
  window.swap(window_);
  window_.reserve(options_.window);

  const Seconds current_cost = cost_under(params_, current_, window);
  // Thread the persistent scratch memo through the re-optimization (the
  // planner drops it automatically on the region-parallel path, where
  // per-shard memos apply instead).
  PlannerOptions planner = options_.planner;
  planner.optimizer.scratch = &memo_;
  Plan plan;
  try {
    plan = analyze(window, params_, planner);
  } catch (const std::exception&) {
    return std::nullopt;  // degenerate window (should not happen in practice)
  }
  cost_evals_ += plan.total_cost_evals();
  cost_evals_saved_ += plan.total_cost_evals_saved();
  const Seconds optimized_cost = cost_under(params_, plan.rst, window);
  if (current_cost <= 0.0) return std::nullopt;
  const double gain = 1.0 - optimized_cost / current_cost;
  if (gain < options_.min_gain) return std::nullopt;

  Recommendation rec;
  rec.current_cost = current_cost;
  rec.optimized_cost = optimized_cost;
  rec.gain = gain;
  rec.window_requests = window.size();

  // Affected extent: file span covered by the window whose governing stripe
  // pair changes — the upper bound on bytes a migration would move.  The
  // changed spans themselves (coalesced) ride along for the migration
  // engine.
  Bytes max_end = 0;
  for (const auto& r : window) max_end = std::max(max_end, r.offset + r.size);
  Bytes affected = 0;
  Bytes cursor = 0;
  while (cursor < max_end) {
    const RstEntry& old_entry = current_.lookup(cursor);
    const RstEntry& new_entry = plan.rst.lookup(cursor);
    // Next boundary in either table.
    Bytes next = max_end;
    const std::size_t old_idx = current_.region_of(cursor);
    const std::size_t new_idx = plan.rst.region_of(cursor);
    if (old_idx + 1 < current_.size()) {
      next = std::min(next, current_.entry(old_idx + 1).offset);
    }
    if (new_idx + 1 < plan.rst.size()) {
      next = std::min(next, plan.rst.entry(new_idx + 1).offset);
    }
    if (!(old_entry.stripes == new_entry.stripes)) {
      affected += next - cursor;
      if (!rec.changed_ranges.empty() &&
          rec.changed_ranges.back().second == cursor) {
        rec.changed_ranges.back().second = next;  // coalesce adjacent spans
      } else {
        rec.changed_ranges.emplace_back(cursor, next);
      }
    }
    cursor = next;
  }
  rec.affected_extent = affected;
  rec.rst = std::move(plan.rst);

  ++recommendations_made_;
  return rec;
}

void OnlineAdvisor::adopt(const Recommendation& recommendation) {
  if (recommendation.rst.empty()) {
    throw std::invalid_argument("cannot adopt an empty RST");
  }
  current_ = recommendation.rst;
}

}  // namespace harl::core
