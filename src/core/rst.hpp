// Region Stripe Table (paper Section III-E, Fig. 6).
//
// The RST is HARL's placement metadata: per file region, the offset where
// the region starts and the optimal stripe sizes for HServers and SServers.
// The MDS consults it to answer client placement lookups; the middleware
// loads it at MPI_Init time.  Adjacent regions with equal stripe pairs are
// merged to shrink metadata (Section III-E).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/cost_model.hpp"
#include "src/pfs/region_layout.hpp"

namespace harl::core {

/// One RST row (paper Fig. 6: Region #, File_offset, HServer stripe size,
/// SServer stripe size — the region number is implicit in the row index).
struct RstEntry {
  Bytes offset = 0;
  StripePair stripes;

  friend bool operator==(const RstEntry&, const RstEntry&) = default;
};

class RegionStripeTable {
 public:
  RegionStripeTable() = default;

  /// Appends a region; offsets must be added in strictly increasing order
  /// and the first must be 0.
  void add(Bytes offset, StripePair stripes);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const RstEntry& entry(std::size_t i) const { return entries_.at(i); }
  const std::vector<RstEntry>& entries() const { return entries_; }

  /// The stripe pair governing `offset` (binary search); the table must be
  /// non-empty.
  const RstEntry& lookup(Bytes offset) const;

  /// Index of the region containing `offset`.
  std::size_t region_of(Bytes offset) const;

  /// Merges adjacent regions with identical stripe pairs; returns the number
  /// of regions removed.
  std::size_t merge_adjacent();

  /// Text serialization: header line, then "offset h s" per region.
  void save(std::ostream& os) const;
  static RegionStripeTable load(std::istream& is);

  /// Converts to the pfs placement layout over M HServers and N SServers.
  std::shared_ptr<pfs::RegionLayout> to_layout(std::size_t M, std::size_t N) const;

 private:
  std::vector<RstEntry> entries_;
};

}  // namespace harl::core
