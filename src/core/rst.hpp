// Region Stripe Table (paper Section III-E, Fig. 6).
//
// The RST is HARL's placement metadata: per file region, the offset where
// the region starts and the optimal per-tier stripe sizes.  The MDS consults
// it to answer client placement lookups; the middleware loads it at MPI_Init
// time.  Adjacent regions with equal stripe vectors are merged to shrink
// metadata (Section III-E).
//
// Since the tier-vector refactor every entry holds a stripe vector
// (s_0, ..., s_{k-1}); the paper's two-tier table is k = 2 with tier 0 =
// HServers and tier 1 = SServers.  All entries of one table must agree on k.
//
// Text serialization: two-tier tables keep the legacy "harl-rst-v1" format
// ("offset h s" rows) byte-for-byte; tables with k != 2 use "harl-rst-v2"
// ("offset s_0 ... s_{k-1}" rows, k inferred from the column count); tables
// with any member-restricted entry (device-aware plans) use "harl-rst-v3"
// ("offset s_0 ... s_{k-1} m_0 ... m_{k-1}" rows, all-zero member columns =
// entry has no restriction).  load() accepts all three.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/core/cost_model.hpp"
#include "src/pfs/region_layout.hpp"

namespace harl::core {

/// One RST row (paper Fig. 6: Region #, File_offset, HServer stripe size,
/// SServer stripe size — the region number is implicit in the row index).
struct RstEntry {
  Bytes offset = 0;
  std::vector<Bytes> stripes;  ///< per-tier stripe sizes (0 = skip the tier)
  /// Per-tier member restriction (see pfs::RegionSpec::members): only the
  /// first members[j] servers of tier j participate.  Empty = full
  /// membership; device-aware plans may restrict a tier to its fastest
  /// devices.
  std::vector<std::size_t> members;

  /// Two-tier view; requires exactly two tiers.
  StripePair pair() const;

  friend bool operator==(const RstEntry&, const RstEntry&) = default;
};

class RegionStripeTable {
 public:
  RegionStripeTable() = default;

  /// Appends a region; offsets must be added in strictly increasing order,
  /// the first must be 0, at least one stripe must be nonzero, and every
  /// entry must carry the same number of tiers.
  void add(Bytes offset, std::vector<Bytes> stripes);

  /// As above with a per-tier member restriction (empty = full membership;
  /// otherwise one count per tier).
  void add(Bytes offset, std::vector<Bytes> stripes,
           std::vector<std::size_t> members);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const RstEntry& entry(std::size_t i) const { return entries_.at(i); }
  const std::vector<RstEntry>& entries() const { return entries_; }

  /// Tiers per entry (0 for an empty table).
  std::size_t num_tiers() const {
    return entries_.empty() ? 0 : entries_.front().stripes.size();
  }

  /// The stripe vector governing `offset` (binary search); the table must be
  /// non-empty.
  const RstEntry& lookup(Bytes offset) const;

  /// Index of the region containing `offset`.
  std::size_t region_of(Bytes offset) const;

  /// Merges adjacent regions with identical stripe vectors; returns the
  /// number of regions removed.
  std::size_t merge_adjacent();

  /// Text serialization: header line, then "offset s_0 ... s_{k-1}" per
  /// region (see the format note in the file header).
  void save(std::ostream& os) const;
  static RegionStripeTable load(std::istream& is);

  /// Converts to the pfs placement layout; `tier_counts[j]` servers in
  /// tier j.  Requires tier_counts.size() == num_tiers().
  std::shared_ptr<pfs::RegionLayout> to_layout(
      std::span<const std::size_t> tier_counts) const;

  /// Reservation-aware conversion: tier j's first `reserved[j]` servers are
  /// withheld from every region (the cache tier's device reservation); the
  /// table's stripe/member columns then address the remaining servers.  Used
  /// by plans whose Analysis Phase reserved the fastest devices as a read
  /// cache (Plan::cache).
  std::shared_ptr<pfs::RegionLayout> to_layout(
      std::span<const std::size_t> tier_counts,
      std::span<const std::size_t> reserved) const;

  /// Two-tier convenience: M HServers and N SServers.
  std::shared_ptr<pfs::RegionLayout> to_layout(std::size_t M, std::size_t N) const;

 private:
  std::vector<RstEntry> entries_;
};

}  // namespace harl::core
