#include "src/core/region_divider.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/stats.hpp"

namespace harl::core {

namespace {

/// One pass of Algorithm 1 at a fixed threshold.
std::vector<DividedRegion> divide_once(std::span<const trace::TraceRecord> sorted,
                                       double threshold) {
  std::vector<DividedRegion> regions;
  RunningStats window;
  double cv_prev = 0.0;
  std::size_t reg_init = 0;

  auto close_region = [&](std::size_t last_exclusive) {
    DividedRegion reg;
    reg.offset = sorted[reg_init].offset;
    reg.avg_request = window.mean();
    reg.first_request = reg_init;
    reg.last_request = last_exclusive;
    regions.push_back(reg);
  };

  for (std::size_t i = 0; i < sorted.size(); ++i) {
    window.add(static_cast<double>(sorted[i].size));
    const double cv_new = window.cv();

    if (window.count() <= 2) {
      // Seeding: the paper computes the first CV from the first two entries
      // and only tests from the third onwards.
      cv_prev = cv_new;
      continue;
    }
    // Relative CV change.  The denominator is floored at kCvFloor so that a
    // jump away from a zero CV (constant-size window) is a very large but
    // *finite* relative change — otherwise raising the threshold (the
    // paper's region-count control) could never loosen such splits.
    constexpr double kCvFloor = 0.01;
    const double relative_change =
        std::abs(cv_new - cv_prev) / std::max(cv_prev, kCvFloor);
    if (relative_change < threshold) {
      cv_prev = cv_new;
      continue;
    }
    // CV jumped: request i closes this region (it is included, as in the
    // printed algorithm where avg is computed before the split) and the next
    // region starts at request i + 1.
    close_region(i + 1);
    window.reset();
    cv_prev = 0.0;
    reg_init = i + 1;
  }
  if (reg_init < sorted.size()) close_region(sorted.size());

  // Tile the touched extent: clamp the first region to offset 0 and set each
  // region's end to its successor's start.
  if (!regions.empty()) {
    regions.front().offset = 0;
    Bytes max_end = 0;
    for (const auto& r : sorted) max_end = std::max(max_end, r.offset + r.size);
    for (std::size_t i = 0; i + 1 < regions.size(); ++i) {
      regions[i].end = regions[i + 1].offset;
    }
    regions.back().end = max_end;
  }
  return regions;
}

}  // namespace

RegionDivision divide_regions_fixed(std::span<const trace::TraceRecord> sorted,
                                    Bytes chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("chunk size must be > 0");
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].offset < sorted[i - 1].offset) {
      throw std::invalid_argument("trace must be sorted by ascending offset");
    }
  }
  RegionDivision division;
  if (sorted.empty()) return division;

  Bytes max_end = 0;
  for (const auto& r : sorted) max_end = std::max(max_end, r.offset + r.size);

  std::size_t i = 0;
  while (i < sorted.size()) {
    // The chunk of request i; extend over any empty chunks that follow by
    // taking requests while they fall into this chunk.
    const Bytes chunk_index = sorted[i].offset / chunk_size;
    const Bytes chunk_begin = chunk_index * chunk_size;
    const Bytes chunk_end = chunk_begin + chunk_size;

    DividedRegion region;
    region.first_request = i;
    RunningStats sizes;
    while (i < sorted.size() && sorted[i].offset < chunk_end) {
      sizes.add(static_cast<double>(sorted[i].size));
      ++i;
    }
    region.last_request = i;
    region.offset = chunk_begin;
    region.avg_request = sizes.mean();
    division.regions.push_back(region);
  }

  // Tile: clamp the first region to 0 and close each at its successor.
  division.regions.front().offset = 0;
  for (std::size_t r = 0; r + 1 < division.regions.size(); ++r) {
    division.regions[r].end = division.regions[r + 1].offset;
  }
  division.regions.back().end = max_end;
  return division;
}

RegionDivision divide_regions(std::span<const trace::TraceRecord> sorted,
                              const DividerOptions& options) {
  if (options.threshold <= 0.0) {
    throw std::invalid_argument("divider threshold must be positive");
  }
  if (options.threshold_growth <= 1.0) {
    throw std::invalid_argument("threshold growth must exceed 1");
  }
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].offset < sorted[i - 1].offset) {
      throw std::invalid_argument("trace must be sorted by ascending offset");
    }
  }

  RegionDivision division;
  division.threshold_used = options.threshold;
  if (sorted.empty()) return division;

  Bytes max_end = 0;
  for (const auto& r : sorted) max_end = std::max(max_end, r.offset + r.size);
  const std::size_t fixed_count = options.fixed_region_size > 0
                                      ? static_cast<std::size_t>(
                                            (max_end + options.fixed_region_size - 1) /
                                            options.fixed_region_size)
                                      : 0;

  double threshold = options.threshold;
  for (int round = 0;; ++round) {
    division.regions = divide_once(sorted, threshold);
    division.threshold_used = threshold;
    division.tuning_rounds = round;
    const bool too_many = fixed_count > 0 && division.regions.size() > fixed_count;
    if (!too_many || round >= options.max_tuning_rounds) break;
    threshold *= options.threshold_growth;
  }
  return division;
}

}  // namespace harl::core
