#include "src/core/region_divider.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/stats.hpp"

namespace harl::core {

namespace {

/// One pass of Algorithm 1 at a fixed threshold: the batch view of the
/// streaming core.
std::vector<DividedRegion> divide_once(
    std::span<const trace::TraceRecord> sorted, double threshold,
    std::vector<StreamingDivider::CvSample>* trajectory = nullptr) {
  StreamingDivider divider(threshold, trajectory);
  for (const auto& record : sorted) divider.add(record.offset, record.size);
  return divider.finish();
}

}  // namespace

StreamingDivider::StreamingDivider(double threshold,
                                   std::vector<CvSample>* trajectory)
    : threshold_(threshold), trajectory_(trajectory) {
  if (threshold <= 0.0) {
    throw std::invalid_argument("divider threshold must be positive");
  }
}

void StreamingDivider::add(Bytes offset, Bytes size) {
  if (index_ > 0 && offset < last_offset_) {
    throw std::invalid_argument("StreamingDivider requires ascending offsets");
  }
  last_offset_ = offset;
  max_end_ = std::max(max_end_, offset + size);
  if (window_.count() == 0) {
    reg_init_ = index_;
    region_offset_ = offset;
  }
  window_.add(static_cast<double>(size));
  const double cv_new = window_.cv();

  bool split = false;
  double relative_change = 0.0;
  if (window_.count() <= 2) {
    // Seeding: the paper computes the first CV from the first two entries
    // and only tests from the third onwards.
    cv_prev_ = cv_new;
  } else {
    // Relative CV change.  The denominator is floored at kCvFloor so that a
    // jump away from a zero CV (constant-size window) is a very large but
    // *finite* relative change — otherwise raising the threshold (the
    // paper's region-count control) could never loosen such splits.
    relative_change = std::abs(cv_new - cv_prev_) / std::max(cv_prev_, kCvFloor);
    if (relative_change < threshold_) {
      cv_prev_ = cv_new;
    } else {
      // CV jumped: this request closes the region (it is included, as in the
      // printed algorithm where avg is computed before the split) and the
      // next region starts at the following request.
      split = true;
      DividedRegion reg;
      reg.offset = region_offset_;
      reg.avg_request = window_.mean();
      reg.first_request = reg_init_;
      reg.last_request = index_ + 1;
      regions_.push_back(reg);
      window_.reset();
      cv_prev_ = 0.0;
    }
  }
  if (trajectory_ != nullptr) {
    trajectory_->push_back(
        CvSample{index_, offset, size, cv_new, relative_change, split});
  }
  ++index_;
}

std::vector<DividedRegion> StreamingDivider::finish() {
  if (window_.count() > 0) {
    DividedRegion reg;
    reg.offset = region_offset_;
    reg.avg_request = window_.mean();
    reg.first_request = reg_init_;
    reg.last_request = index_;
    regions_.push_back(reg);
    window_.reset();
  }
  // Tile the touched extent: clamp the first region to offset 0 and set each
  // region's end to its successor's start.
  if (!regions_.empty()) {
    regions_.front().offset = 0;
    for (std::size_t i = 0; i + 1 < regions_.size(); ++i) {
      regions_[i].end = regions_[i + 1].offset;
    }
    regions_.back().end = max_end_;
  }
  return std::move(regions_);
}

RegionDivision divide_regions_fixed(std::span<const trace::TraceRecord> sorted,
                                    Bytes chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("chunk size must be > 0");
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].offset < sorted[i - 1].offset) {
      throw std::invalid_argument("trace must be sorted by ascending offset");
    }
  }
  RegionDivision division;
  if (sorted.empty()) return division;

  Bytes max_end = 0;
  for (const auto& r : sorted) max_end = std::max(max_end, r.offset + r.size);

  std::size_t i = 0;
  while (i < sorted.size()) {
    // The chunk of request i; extend over any empty chunks that follow by
    // taking requests while they fall into this chunk.
    const Bytes chunk_index = sorted[i].offset / chunk_size;
    const Bytes chunk_begin = chunk_index * chunk_size;
    const Bytes chunk_end = chunk_begin + chunk_size;

    DividedRegion region;
    region.first_request = i;
    RunningStats sizes;
    while (i < sorted.size() && sorted[i].offset < chunk_end) {
      sizes.add(static_cast<double>(sorted[i].size));
      ++i;
    }
    region.last_request = i;
    region.offset = chunk_begin;
    region.avg_request = sizes.mean();
    division.regions.push_back(region);
  }

  // Tile: clamp the first region to 0 and close each at its successor.
  division.regions.front().offset = 0;
  for (std::size_t r = 0; r + 1 < division.regions.size(); ++r) {
    division.regions[r].end = division.regions[r + 1].offset;
  }
  division.regions.back().end = max_end;
  return division;
}

RegionDivision divide_regions(std::span<const trace::TraceRecord> sorted,
                              const DividerOptions& options) {
  return divide_regions_traced(sorted, options, nullptr, nullptr);
}

RegionDivision divide_regions_traced(
    std::span<const trace::TraceRecord> sorted, const DividerOptions& options,
    std::vector<StreamingDivider::CvSample>* trajectory,
    std::vector<TuningRound>* rounds) {
  if (options.threshold <= 0.0) {
    throw std::invalid_argument("divider threshold must be positive");
  }
  if (options.threshold_growth <= 1.0) {
    throw std::invalid_argument("threshold growth must exceed 1");
  }
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].offset < sorted[i - 1].offset) {
      throw std::invalid_argument("trace must be sorted by ascending offset");
    }
  }

  RegionDivision division;
  division.threshold_used = options.threshold;
  if (sorted.empty()) return division;

  Bytes max_end = 0;
  for (const auto& r : sorted) max_end = std::max(max_end, r.offset + r.size);
  const std::size_t fixed_count = options.fixed_region_size > 0
                                      ? static_cast<std::size_t>(
                                            (max_end + options.fixed_region_size - 1) /
                                            options.fixed_region_size)
                                      : 0;

  double threshold = options.threshold;
  for (int round = 0;; ++round) {
    division.regions = divide_once(sorted, threshold);
    division.threshold_used = threshold;
    division.tuning_rounds = round;
    if (rounds != nullptr) {
      rounds->push_back(TuningRound{round, threshold, division.regions.size()});
    }
    const bool too_many = fixed_count > 0 && division.regions.size() > fixed_count;
    if (!too_many || round >= options.max_tuning_rounds) break;
    threshold *= options.threshold_growth;
  }
  if (trajectory != nullptr) {
    // The trajectory of the accepted round only: one extra O(n) pass at the
    // final threshold (the tuning loop above may have tried several).
    trajectory->clear();
    divide_once(sorted, division.threshold_used, trajectory);
  }
  return division;
}

}  // namespace harl::core
