// The HARL Analysis Phase, end to end (paper Fig. 3).
//
// Input: a trace from the application's first execution (Tracing Phase) and
// the calibrated cost-model parameters.  Output: a Plan — the region stripe
// table plus per-region diagnostics — which the Placing Phase turns into a
// pfs::RegionLayout.  Pipeline: sort by offset -> Algorithm 1 region
// division -> Algorithm 2 stripe determination per region -> RST assembly
// with adjacent-equal merging.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/cost_model.hpp"
#include "src/core/region_divider.hpp"
#include "src/core/rst.hpp"
#include "src/core/stripe_optimizer.hpp"
#include "src/storage/cache_tier.hpp"

namespace harl::core {

struct PlannerOptions {
  DividerOptions divider;
  OptimizerOptions optimizer;
  bool merge_adjacent = true;  ///< merge equal-stripe neighbours (Sec. III-E)
  /// Optional region-level parallelism: when set, independent regions (and
  /// CARL's hdd-only/ssd-only pair per region) optimize concurrently on
  /// this pool.  Results are written back by region index, so the produced
  /// Plan is bit-identical to the serial path.  While regions run in
  /// parallel the per-region optimizer runs serially (optimizer.pool is
  /// ignored) — regions are the parallel grain; with a single region the
  /// optimizer's candidate sharding applies instead.
  ThreadPool* pool = nullptr;
};

/// Cache-tier planning knobs (HACache direction): analyze_cached may reserve
/// the fastest devices of the SSD tier as a chunk-granular read cache and
/// trades stripe width against the expected hit rate.  budget == 0 or
/// max_devices == 0 disables cache planning entirely (analyze_cached then
/// equals analyze, bit for bit).
struct CachePlannerOptions {
  Bytes budget = 0;             ///< total cache capacity in bytes
  Bytes chunk = MiB;            ///< cache chunk granularity
  std::size_t max_devices = 0;  ///< largest reservation the sweep considers
  storage::CachePolicy policy = storage::CachePolicy::kLru;

  bool enabled() const { return budget > 0 && max_devices > 0; }
};

/// The winning cache reservation of a cache-aware Analysis Phase.  The
/// Placing Phase withholds the first `devices` servers of `tier` from every
/// region (RegionLayout's reserved vector) and hands them to the runtime
/// pfs::CacheManager instead.
struct PlanCacheSpec {
  std::size_t tier = 1;     ///< tier whose fastest prefix is reserved
  std::size_t devices = 0;  ///< reserved device count (always > 0 when set)
  Bytes budget = 0;
  Bytes chunk = 0;
  storage::CachePolicy policy = storage::CachePolicy::kLru;
  double expected_hit_rate = 0.0;  ///< trace-wide read chunk hit-rate estimate
};

/// Per-region planning outcome (pre-merge).
struct PlannedRegion {
  Bytes offset = 0;
  Bytes end = 0;
  std::vector<Bytes> stripes;  ///< winning per-tier sizes ({h, s} for k = 2)
  /// Winning per-tier member counts (empty = full membership; the
  /// device-aware search may stripe over only a tier's fastest devices).
  std::vector<std::size_t> members;
  Seconds model_cost = 0.0;
  double avg_request = 0.0;
  std::size_t request_count = 0;
  std::size_t candidates_evaluated = 0;  ///< Algorithm 2 grid size
  std::uint64_t cost_evals = 0;          ///< cost-kernel calls made
  std::uint64_t cost_evals_saved = 0;    ///< calls avoided by coalescing
  /// Estimated read chunk hit rate under the planned cache reservation
  /// (0.0 for cache-less plans); see analyze_cached.
  double expected_hit_rate = 0.0;
};

struct Plan {
  RegionStripeTable rst;               ///< post-merge placement table
  std::vector<PlannedRegion> regions;  ///< pre-merge diagnostics
  /// Per-tier server counts the plan was computed for ({M, N} for two-tier);
  /// the Placing Phase validates these against the target cluster.
  std::vector<std::size_t> tier_counts;
  /// Per-tier device speed factors the plan was computed against (canonical
  /// ascending; an empty inner vector = homogeneous tier, an empty outer
  /// vector = fully homogeneous / pre-device-model plan).  The Placing
  /// Phase rejects installation on a cluster whose device table disagrees.
  std::vector<std::vector<double>> device_factors;
  /// Fingerprint of the calibration used (params_fingerprint); lets a loaded
  /// plan detect that it was computed against different parameters.
  std::uint64_t calibration_fingerprint = 0;
  /// Cache reservation chosen by analyze_cached; absent for cache-less plans
  /// (including cache-aware analyses where reserving never beat striping).
  std::optional<PlanCacheSpec> cache;
  double threshold_used = 1.0;
  int tuning_rounds = 0;
  std::size_t regions_before_merge = 0;
  std::size_t regions_after_merge = 0;

  /// Total model cost across regions (the objective Algorithm 2 minimized).
  Seconds total_model_cost() const;

  /// Aggregated Algorithm 2 effort across regions, for perf diagnostics.
  std::uint64_t total_cost_evals() const;
  std::uint64_t total_cost_evals_saved() const;
};

/// Runs the Analysis Phase over `records` (any order; input already in
/// ByOffset order — e.g. TraceCollector::sorted_by_offset() — is used in
/// place, so multi-scheme experiments sort the trace once).
/// Throws std::invalid_argument on an empty trace.
Plan analyze(std::span<const trace::TraceRecord> records,
             const CostParams& params, const PlannerOptions& options = {});

/// Cache-aware Analysis Phase: enumerates reserving the fastest r devices of
/// the SSD tier (tier 1) as a read cache, r = 0..cache.max_devices, as
/// first-class candidates against striping over them.  Per r the remaining
/// N - r SServers are re-optimized exactly as analyze() would (the region
/// division is trace-only, so it is shared across the sweep), and the
/// candidate's objective is the per-request model cost with each read costed
/// at its region's expected-hit-rate mix of home layout and cache tier
/// (expected_read_cost).  Per-region hit rates come from one deterministic
/// replay of the trace, in time order, through a storage::CacheTier over
/// logical file chunks — the same policy structure the runtime CacheManager
/// drives.  Ties go to the smaller r, so when caching cannot help the result
/// is bit-identical to analyze().
Plan analyze_cached(std::span<const trace::TraceRecord> records,
                    const CostParams& params, const CachePlannerOptions& cache,
                    const PlannerOptions& options = {});

/// File-level ablation: one region spanning the whole trace (heterogeneity-
/// aware stripes but no region division).
Plan analyze_file_level(std::span<const trace::TraceRecord> records,
                        const CostParams& params,
                        const PlannerOptions& options = {});

/// Segment-level ablation (scheme [10]): Algorithm 1 region division but
/// homogeneous (h == s) stripes per region.
Plan analyze_segment_level(std::span<const trace::TraceRecord> records,
                           const CostParams& params,
                           const PlannerOptions& options = {});

/// Fixed-chunk ablation: the paper's rejected strawman (Section III-C) —
/// regions at fixed `chunk_size` boundaries instead of Algorithm 1, with
/// heterogeneity-aware stripes per chunk.
Plan analyze_fixed_regions(std::span<const trace::TraceRecord> records,
                           const CostParams& params, Bytes chunk_size,
                           const PlannerOptions& options = {});

/// CARL baseline (the paper's reference [31], its closest prior work): the
/// same Algorithm-1 regions, but each region is placed *either* entirely on
/// SServers or entirely on HServers — never striped across both tiers.
/// Regions are moved to SServers greedily by model-cost savings per stored
/// byte until `ssd_capacity` is exhausted; stripe sizes within each tier are
/// optimized as usual.  HARL's advantage over CARL is exactly the ability to
/// split one region across heterogeneous tiers (paper Section II).
Plan analyze_carl(std::span<const trace::TraceRecord> records,
                  const CostParams& params, Bytes ssd_capacity,
                  const PlannerOptions& options = {});

/// Options for the k-tier Analysis Phase (same pipeline, tiered optimizer).
struct TieredPlannerOptions {
  DividerOptions divider;
  TieredOptimizerOptions optimizer;
  bool merge_adjacent = true;  ///< merge equal-stripe neighbours (Sec. III-E)
  ThreadPool* pool = nullptr;  ///< region-level parallelism, as PlannerOptions
};

/// Runs the Analysis Phase against a k-tier calibration: Algorithm 1 region
/// division, then the tiered grid search per region.  For a two-tier
/// calibration this differs from analyze() only in the candidate grid (the
/// monotone tier-vector enumeration instead of the paper's (h, s) grid).
Plan analyze_tiered(std::span<const trace::TraceRecord> records,
                    const TieredCostParams& params,
                    const TieredPlannerOptions& options = {});

}  // namespace harl::core
