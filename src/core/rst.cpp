#include "src/core/rst.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace harl::core {

namespace {
constexpr char kHeaderV1[] = "harl-rst-v1";  ///< two-tier legacy format
constexpr char kHeaderV2[] = "harl-rst-v2";  ///< k inferred from columns
constexpr char kHeaderV3[] = "harl-rst-v3";  ///< stripes + member columns
}  // namespace

StripePair RstEntry::pair() const {
  if (stripes.size() != 2) {
    throw std::logic_error("RST entry is not two-tier");
  }
  return StripePair{stripes[0], stripes[1]};
}

void RegionStripeTable::add(Bytes offset, std::vector<Bytes> stripes) {
  add(offset, std::move(stripes), {});
}

void RegionStripeTable::add(Bytes offset, std::vector<Bytes> stripes,
                            std::vector<std::size_t> members) {
  if (entries_.empty()) {
    if (offset != 0) throw std::invalid_argument("first RST region must start at 0");
  } else if (offset <= entries_.back().offset) {
    throw std::invalid_argument("RST offsets must be strictly increasing");
  }
  if (stripes.empty()) {
    throw std::invalid_argument("RST region needs at least one tier");
  }
  if (!entries_.empty() && stripes.size() != entries_.back().stripes.size()) {
    throw std::invalid_argument("RST entries must agree on tier count");
  }
  if (std::all_of(stripes.begin(), stripes.end(),
                  [](Bytes s) { return s == 0; })) {
    throw std::invalid_argument("RST region needs a nonzero stripe");
  }
  if (!members.empty()) {
    if (members.size() != stripes.size()) {
      throw std::invalid_argument("RST members must match tier count");
    }
    // All-zero member vectors are the "no restriction" serialization
    // sentinel; store them canonically as empty.
    if (std::all_of(members.begin(), members.end(),
                    [](std::size_t m) { return m == 0; })) {
      members.clear();
    } else {
      bool effective = false;
      for (std::size_t j = 0; j < stripes.size(); ++j) {
        if (stripes[j] > 0 && members[j] > 0) effective = true;
      }
      if (!effective) {
        throw std::invalid_argument("RST members exclude every striped tier");
      }
    }
  }
  entries_.push_back(RstEntry{offset, std::move(stripes), std::move(members)});
}

std::size_t RegionStripeTable::region_of(Bytes offset) const {
  if (entries_.empty()) throw std::logic_error("lookup in empty RST");
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), offset,
      [](Bytes off, const RstEntry& e) { return off < e.offset; });
  return static_cast<std::size_t>(std::distance(entries_.begin(), it)) - 1;
}

const RstEntry& RegionStripeTable::lookup(Bytes offset) const {
  return entries_[region_of(offset)];
}

std::size_t RegionStripeTable::merge_adjacent() {
  if (entries_.empty()) return 0;
  std::vector<RstEntry> merged;
  merged.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (!merged.empty() && merged.back().stripes == e.stripes &&
        merged.back().members == e.members) {
      continue;
    }
    merged.push_back(e);
  }
  const std::size_t removed = entries_.size() - merged.size();
  entries_ = std::move(merged);
  return removed;
}

void RegionStripeTable::save(std::ostream& os) const {
  // Two-tier tables keep the v1 format so files round-trip byte-identically
  // with pre-refactor readers; other tier counts need the v2 header; any
  // member-restricted entry (device-aware plans only) forces v3, where each
  // row appends the k member counts (all zeros = unrestricted entry).
  const bool v3 = std::any_of(entries_.begin(), entries_.end(),
                              [](const RstEntry& e) { return !e.members.empty(); });
  const bool v1 = !v3 && (entries_.empty() || num_tiers() == 2);
  os << (v3 ? kHeaderV3 : (v1 ? kHeaderV1 : kHeaderV2)) << '\n';
  for (const auto& e : entries_) {
    os << e.offset;
    for (Bytes s : e.stripes) os << ' ' << s;
    if (v3) {
      for (std::size_t j = 0; j < e.stripes.size(); ++j) {
        os << ' ' << (e.members.empty() ? 0 : e.members[j]);
      }
    }
    os << '\n';
  }
}

RegionStripeTable RegionStripeTable::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      (line != kHeaderV1 && line != kHeaderV2 && line != kHeaderV3)) {
    throw std::runtime_error("bad RST header");
  }
  const bool v1 = line == kHeaderV1;
  const bool v3 = line == kHeaderV3;
  RegionStripeTable table;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    Bytes offset = 0;
    if (!(ss >> offset)) {
      throw std::runtime_error("malformed RST row: " + line);
    }
    std::vector<Bytes> stripes;
    Bytes s = 0;
    while (ss >> s) stripes.push_back(s);
    if (!ss.eof() || stripes.empty() || (v1 && stripes.size() != 2) ||
        (v3 && stripes.size() % 2 != 0)) {
      throw std::runtime_error("malformed RST row: " + line);
    }
    std::vector<std::size_t> members;
    if (v3) {
      const std::size_t k = stripes.size() / 2;
      members.assign(stripes.begin() + static_cast<std::ptrdiff_t>(k),
                     stripes.end());
      stripes.resize(k);
    }
    table.add(offset, std::move(stripes), std::move(members));
  }
  return table;
}

std::shared_ptr<pfs::RegionLayout> RegionStripeTable::to_layout(
    std::span<const std::size_t> tier_counts) const {
  return to_layout(tier_counts, {});
}

std::shared_ptr<pfs::RegionLayout> RegionStripeTable::to_layout(
    std::span<const std::size_t> tier_counts,
    std::span<const std::size_t> reserved) const {
  if (entries_.empty()) throw std::logic_error("cannot build layout from empty RST");
  if (tier_counts.size() != num_tiers()) {
    throw std::invalid_argument("RST tier count does not match cluster tiers");
  }
  std::vector<pfs::RegionSpec> specs;
  specs.reserve(entries_.size());
  for (const auto& e : entries_) {
    specs.push_back(pfs::RegionSpec{e.offset, e.stripes, e.members});
  }
  return std::make_shared<pfs::RegionLayout>(
      std::vector<std::size_t>(tier_counts.begin(), tier_counts.end()),
      std::move(specs),
      std::vector<std::size_t>(reserved.begin(), reserved.end()));
}

std::shared_ptr<pfs::RegionLayout> RegionStripeTable::to_layout(
    std::size_t M, std::size_t N) const {
  const std::size_t counts[2] = {M, N};
  return to_layout(counts);
}

}  // namespace harl::core
