#include "src/core/rst.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace harl::core {

namespace {
constexpr char kHeader[] = "harl-rst-v1";
}

void RegionStripeTable::add(Bytes offset, StripePair stripes) {
  if (entries_.empty()) {
    if (offset != 0) throw std::invalid_argument("first RST region must start at 0");
  } else if (offset <= entries_.back().offset) {
    throw std::invalid_argument("RST offsets must be strictly increasing");
  }
  if (stripes.h == 0 && stripes.s == 0) {
    throw std::invalid_argument("RST region needs a nonzero stripe");
  }
  entries_.push_back(RstEntry{offset, stripes});
}

std::size_t RegionStripeTable::region_of(Bytes offset) const {
  if (entries_.empty()) throw std::logic_error("lookup in empty RST");
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), offset,
      [](Bytes off, const RstEntry& e) { return off < e.offset; });
  return static_cast<std::size_t>(std::distance(entries_.begin(), it)) - 1;
}

const RstEntry& RegionStripeTable::lookup(Bytes offset) const {
  return entries_[region_of(offset)];
}

std::size_t RegionStripeTable::merge_adjacent() {
  if (entries_.empty()) return 0;
  std::vector<RstEntry> merged;
  merged.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (!merged.empty() && merged.back().stripes == e.stripes) continue;
    merged.push_back(e);
  }
  const std::size_t removed = entries_.size() - merged.size();
  entries_ = std::move(merged);
  return removed;
}

void RegionStripeTable::save(std::ostream& os) const {
  os << kHeader << '\n';
  for (const auto& e : entries_) {
    os << e.offset << ' ' << e.stripes.h << ' ' << e.stripes.s << '\n';
  }
}

RegionStripeTable RegionStripeTable::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("bad RST header");
  }
  RegionStripeTable table;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    Bytes offset = 0;
    StripePair hs;
    if (!(ss >> offset >> hs.h >> hs.s)) {
      throw std::runtime_error("malformed RST row: " + line);
    }
    table.add(offset, hs);
  }
  return table;
}

std::shared_ptr<pfs::RegionLayout> RegionStripeTable::to_layout(
    std::size_t M, std::size_t N) const {
  if (entries_.empty()) throw std::logic_error("cannot build layout from empty RST");
  std::vector<pfs::RegionSpec> specs;
  specs.reserve(entries_.size());
  for (const auto& e : entries_) {
    specs.push_back(pfs::RegionSpec{e.offset, e.stripes.h, e.stripes.s});
  }
  return std::make_shared<pfs::RegionLayout>(M, N, std::move(specs));
}

}  // namespace harl::core
