#include "src/core/plan_artifact.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace harl::core {

namespace {

constexpr char kMagic[8] = {'H', 'A', 'R', 'L', 'P', 'L', 'A', 'N'};
/// Marker of the optional trailing cache section (cache-aware plans only).
constexpr char kCacheMagic[8] = {'H', 'A', 'R', 'L', 'C', 'A', 'C', 'H'};
constexpr char kCsvHeader[] = "harl-plan-csv-v1";
/// Allocation guards against corrupt length fields; generous compared to any
/// realistic cluster (tiers) or trace (regions, name length).
constexpr std::uint64_t kMaxTiers = 1024;
constexpr std::uint64_t kMaxRegions = 1u << 28;
constexpr std::uint64_t kMaxNameLength = 1u << 16;

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, sizeof(buf));
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, sizeof(buf));
}

std::uint32_t get_u32(std::istream& is) {
  char buf[4];
  if (!is.read(buf, sizeof(buf))) {
    throw std::runtime_error("truncated plan artifact");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  char buf[8];
  if (!is.read(buf, sizeof(buf))) {
    throw std::runtime_error("truncated plan artifact");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return v;
}

void check_files_shape(const PlanArtifact& artifact) {
  if (!artifact.region_files.empty() &&
      artifact.region_files.size() != artifact.rst.size()) {
    throw std::runtime_error("plan artifact R2F size does not match RST");
  }
}

void check_device_shape(const PlanArtifact& artifact) {
  if (artifact.device_factors.empty()) return;
  if (artifact.device_factors.size() != artifact.tier_counts.size()) {
    throw std::runtime_error(
        "plan artifact device table does not match tier table");
  }
  for (std::size_t j = 0; j < artifact.device_factors.size(); ++j) {
    const auto& f = artifact.device_factors[j];
    if (!f.empty() && f.size() != artifact.tier_counts[j]) {
      throw std::runtime_error(
          "plan artifact device table does not match tier counts");
    }
  }
}

/// Whether the artifact carries any device information (and thus needs the
/// version-2 encoding).
bool has_device_info(const PlanArtifact& artifact) {
  for (const auto& f : artifact.device_factors) {
    if (!f.empty()) return true;
  }
  for (const RstEntry& e : artifact.rst.entries()) {
    if (!e.members.empty()) return true;
  }
  return false;
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

PlanArtifact PlanArtifact::from_plan(const Plan& plan) {
  PlanArtifact artifact;
  artifact.tier_counts = plan.tier_counts;
  artifact.calibration_fingerprint = plan.calibration_fingerprint;
  artifact.device_factors = plan.device_factors;
  artifact.rst = plan.rst;
  artifact.cache = plan.cache;
  return artifact;
}

void save_plan_binary(const PlanArtifact& artifact, std::ostream& os) {
  check_files_shape(artifact);
  check_device_shape(artifact);
  // Version 2 only when device information is present: homogeneous plans
  // stay byte-identical to the pre-device-model version-1 encoding.
  const bool v2 = has_device_info(artifact);
  os.write(kMagic, sizeof(kMagic));
  put_u32(os, v2 ? 2 : 1);
  put_u32(os, static_cast<std::uint32_t>(artifact.tier_counts.size()));
  put_u64(os, artifact.calibration_fingerprint);
  for (std::size_t c : artifact.tier_counts) put_u64(os, c);
  put_u64(os, artifact.rst.size());
  for (const RstEntry& e : artifact.rst.entries()) {
    if (e.stripes.size() != artifact.tier_counts.size()) {
      throw std::runtime_error("plan artifact RST does not match tier table");
    }
    put_u64(os, e.offset);
    for (Bytes s : e.stripes) put_u64(os, s);
  }
  put_u64(os, artifact.region_files.size());
  for (const std::string& name : artifact.region_files) {
    put_u32(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  if (v2) {
    // Device table: one row per tier — factor count (0 = homogeneous tier)
    // then each factor's IEEE-754 bit pattern.
    for (std::size_t j = 0; j < artifact.tier_counts.size(); ++j) {
      const std::vector<double>& f = artifact.device_factors.empty()
                                         ? std::vector<double>{}
                                         : artifact.device_factors[j];
      put_u64(os, f.size());
      for (double v : f) put_u64(os, double_bits(v));
    }
    // Member section: flag, then per region the k member counts (all zeros
    // = unrestricted region).
    bool any_members = false;
    for (const RstEntry& e : artifact.rst.entries()) {
      if (!e.members.empty()) any_members = true;
    }
    put_u64(os, any_members ? 1 : 0);
    if (any_members) {
      for (const RstEntry& e : artifact.rst.entries()) {
        for (std::size_t j = 0; j < artifact.tier_counts.size(); ++j) {
          put_u64(os, e.members.empty() ? 0 : e.members[j]);
        }
      }
    }
  }
  if (artifact.cache) {
    // Optional trailing section (does not bump the version — readers that
    // stop after the sections above simply never see it).
    os.write(kCacheMagic, sizeof(kCacheMagic));
    put_u64(os, artifact.cache->tier);
    put_u64(os, artifact.cache->devices);
    put_u64(os, artifact.cache->budget);
    put_u64(os, artifact.cache->chunk);
    put_u32(os, artifact.cache->policy == storage::CachePolicy::kSlru ? 1 : 0);
    put_u64(os, double_bits(artifact.cache->expected_hit_rate));
  }
  if (!os) throw std::runtime_error("plan artifact write failed");
}

PlanArtifact load_plan_binary(std::istream& is) {
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      !std::equal(std::begin(magic), std::end(magic), std::begin(kMagic))) {
    throw std::runtime_error("bad plan artifact magic");
  }
  const std::uint32_t version = get_u32(is);
  if (version != 1 && version != 2) {
    throw std::runtime_error("unsupported plan artifact version " +
                             std::to_string(version));
  }
  const std::uint64_t k = get_u32(is);
  if (k == 0 || k > kMaxTiers) {
    throw std::runtime_error("corrupt plan artifact tier count");
  }
  PlanArtifact artifact;
  artifact.calibration_fingerprint = get_u64(is);
  for (std::uint64_t j = 0; j < k; ++j) {
    artifact.tier_counts.push_back(static_cast<std::size_t>(get_u64(is)));
  }
  const std::uint64_t regions = get_u64(is);
  if (regions > kMaxRegions) {
    throw std::runtime_error("corrupt plan artifact region count");
  }
  // Regions are buffered until the (version-2) member section is known so
  // each entry can be added with its member restriction.
  std::vector<Bytes> offsets(regions);
  std::vector<std::vector<Bytes>> stripes(regions);
  for (std::uint64_t r = 0; r < regions; ++r) {
    offsets[r] = get_u64(is);
    stripes[r].resize(k);
    for (std::uint64_t j = 0; j < k; ++j) stripes[r][j] = get_u64(is);
  }
  const std::uint64_t files = get_u64(is);
  if (files != 0 && files != regions) {
    throw std::runtime_error("plan artifact R2F size does not match RST");
  }
  for (std::uint64_t f = 0; f < files; ++f) {
    const std::uint32_t len = get_u32(is);
    if (len > kMaxNameLength) {
      throw std::runtime_error("corrupt plan artifact file name");
    }
    std::string name(len, '\0');
    if (len > 0 && !is.read(name.data(), len)) {
      throw std::runtime_error("truncated plan artifact");
    }
    artifact.region_files.push_back(std::move(name));
  }
  std::vector<std::vector<std::size_t>> members(regions);
  if (version >= 2) {
    for (std::uint64_t j = 0; j < k; ++j) {
      const std::uint64_t count = get_u64(is);
      if (count > kMaxTiers * kMaxTiers) {
        throw std::runtime_error("corrupt plan artifact device table");
      }
      std::vector<double> factors(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        factors[i] = bits_double(get_u64(is));
      }
      if (artifact.device_factors.empty() && count > 0) {
        artifact.device_factors.resize(k);
      }
      if (!artifact.device_factors.empty()) {
        artifact.device_factors[j] = std::move(factors);
      }
    }
    if (get_u64(is) != 0) {
      for (std::uint64_t r = 0; r < regions; ++r) {
        members[r].resize(k);
        for (std::uint64_t j = 0; j < k; ++j) {
          members[r][j] = static_cast<std::size_t>(get_u64(is));
        }
      }
    }
  }
  for (std::uint64_t r = 0; r < regions; ++r) {
    artifact.rst.add(offsets[r], std::move(stripes[r]), std::move(members[r]));
  }
  // Optional trailing cache section; absence (EOF here) is the normal
  // cache-less case.
  char cache_magic[sizeof(kCacheMagic)];
  if (is.read(cache_magic, sizeof(cache_magic))) {
    if (!std::equal(std::begin(cache_magic), std::end(cache_magic),
                    std::begin(kCacheMagic))) {
      throw std::runtime_error("bad plan artifact cache section magic");
    }
    PlanCacheSpec spec;
    spec.tier = static_cast<std::size_t>(get_u64(is));
    spec.devices = static_cast<std::size_t>(get_u64(is));
    spec.budget = get_u64(is);
    spec.chunk = get_u64(is);
    spec.policy = get_u32(is) != 0 ? storage::CachePolicy::kSlru
                                   : storage::CachePolicy::kLru;
    spec.expected_hit_rate = bits_double(get_u64(is));
    if (spec.tier >= artifact.tier_counts.size() || spec.devices == 0 ||
        spec.devices >= artifact.tier_counts[spec.tier] || spec.chunk == 0) {
      throw std::runtime_error("corrupt plan artifact cache section");
    }
    artifact.cache = spec;
  }
  check_device_shape(artifact);
  return artifact;
}

void save_plan_csv(const PlanArtifact& artifact, std::ostream& os) {
  check_files_shape(artifact);
  check_device_shape(artifact);
  os << kCsvHeader << '\n';
  os << "fingerprint," << artifact.calibration_fingerprint << '\n';
  os << "tiers";
  for (std::size_t c : artifact.tier_counts) os << ',' << c;
  os << '\n';
  // Device rows appear only for heterogeneous tiers, so homogeneous plans
  // stay byte-identical to the pre-device-model output.
  for (std::size_t j = 0; j < artifact.device_factors.size(); ++j) {
    if (artifact.device_factors[j].empty()) continue;
    os << "devtier," << j;
    const auto old_precision = os.precision(17);
    for (double f : artifact.device_factors[j]) os << ',' << f;
    os.precision(old_precision);
    os << '\n';
  }
  std::size_t region_index = 0;
  for (const RstEntry& e : artifact.rst.entries()) {
    if (e.stripes.size() != artifact.tier_counts.size()) {
      throw std::runtime_error("plan artifact RST does not match tier table");
    }
    os << "region," << e.offset;
    for (Bytes s : e.stripes) os << ',' << s;
    os << '\n';
    if (!e.members.empty()) {
      os << "members," << region_index;
      for (std::size_t m : e.members) os << ',' << m;
      os << '\n';
    }
    ++region_index;
  }
  for (std::size_t i = 0; i < artifact.region_files.size(); ++i) {
    os << "file," << i << ',' << artifact.region_files[i] << '\n';
  }
  if (artifact.cache) {
    // Optional trailing row, mirroring the binary cache section.
    const auto old_precision = os.precision(17);
    os << "cache," << artifact.cache->tier << ',' << artifact.cache->devices
       << ',' << artifact.cache->budget << ',' << artifact.cache->chunk << ','
       << to_string(artifact.cache->policy) << ','
       << artifact.cache->expected_hit_rate << '\n';
    os.precision(old_precision);
  }
  if (!os) throw std::runtime_error("plan artifact write failed");
}

PlanArtifact load_plan_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kCsvHeader) {
    throw std::runtime_error("bad plan artifact CSV header");
  }
  PlanArtifact artifact;
  bool saw_fingerprint = false;
  bool saw_tiers = false;
  // Regions are buffered so "members" rows (which follow their region row)
  // can be attached before the RST is assembled.
  std::vector<Bytes> offsets;
  std::vector<std::vector<Bytes>> stripes_rows;
  std::vector<std::vector<std::size_t>> members_rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    std::getline(ss, field, ',');
    auto next_u64 = [&]() {
      std::string token;
      if (!std::getline(ss, token, ',')) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      std::size_t pos = 0;
      std::uint64_t v = 0;
      try {
        v = std::stoull(token, &pos);
      } catch (const std::exception&) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      if (pos != token.size()) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      return v;
    };
    if (field == "fingerprint") {
      artifact.calibration_fingerprint = next_u64();
      saw_fingerprint = true;
    } else if (field == "tiers") {
      std::string token;
      while (std::getline(ss, token, ',')) {
        std::size_t pos = 0;
        std::uint64_t v = 0;
        try {
          v = std::stoull(token, &pos);
        } catch (const std::exception&) {
          throw std::runtime_error("malformed plan artifact row: " + line);
        }
        if (pos != token.size()) {
          throw std::runtime_error("malformed plan artifact row: " + line);
        }
        artifact.tier_counts.push_back(static_cast<std::size_t>(v));
      }
      if (artifact.tier_counts.empty() ||
          artifact.tier_counts.size() > kMaxTiers) {
        throw std::runtime_error("corrupt plan artifact tier count");
      }
      saw_tiers = true;
    } else if (field == "region") {
      if (!saw_tiers) {
        throw std::runtime_error("plan artifact region row before tiers row");
      }
      const Bytes offset = next_u64();
      std::vector<Bytes> stripes;
      for (std::size_t j = 0; j < artifact.tier_counts.size(); ++j) {
        stripes.push_back(next_u64());
      }
      std::string extra;
      if (std::getline(ss, extra, ',')) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      offsets.push_back(offset);
      stripes_rows.push_back(std::move(stripes));
      members_rows.emplace_back();
    } else if (field == "devtier") {
      if (!saw_tiers) {
        throw std::runtime_error("plan artifact devtier row before tiers row");
      }
      const std::uint64_t j = next_u64();
      if (j >= artifact.tier_counts.size()) {
        throw std::runtime_error("plan artifact devtier index out of range");
      }
      std::vector<double> factors;
      std::string token;
      while (std::getline(ss, token, ',')) {
        std::size_t pos = 0;
        double v = 0.0;
        try {
          v = std::stod(token, &pos);
        } catch (const std::exception&) {
          throw std::runtime_error("malformed plan artifact row: " + line);
        }
        if (pos != token.size()) {
          throw std::runtime_error("malformed plan artifact row: " + line);
        }
        factors.push_back(v);
      }
      if (factors.empty()) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      if (artifact.device_factors.empty()) {
        artifact.device_factors.resize(artifact.tier_counts.size());
      }
      artifact.device_factors[j] = std::move(factors);
    } else if (field == "members") {
      const std::uint64_t index = next_u64();
      if (index >= offsets.size()) {
        throw std::runtime_error("plan artifact members row out of range");
      }
      std::vector<std::size_t> members;
      for (std::size_t j = 0; j < artifact.tier_counts.size(); ++j) {
        members.push_back(static_cast<std::size_t>(next_u64()));
      }
      std::string extra;
      if (std::getline(ss, extra, ',')) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      members_rows[index] = std::move(members);
    } else if (field == "cache") {
      if (!saw_tiers) {
        throw std::runtime_error("plan artifact cache row before tiers row");
      }
      PlanCacheSpec spec;
      spec.tier = static_cast<std::size_t>(next_u64());
      spec.devices = static_cast<std::size_t>(next_u64());
      spec.budget = next_u64();
      spec.chunk = next_u64();
      std::string policy;
      if (!std::getline(ss, policy, ',')) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      try {
        spec.policy = storage::parse_cache_policy(policy);
      } catch (const std::exception&) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      std::string rate;
      if (!std::getline(ss, rate, ',')) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      try {
        std::size_t pos = 0;
        spec.expected_hit_rate = std::stod(rate, &pos);
        if (pos != rate.size()) throw std::invalid_argument(rate);
      } catch (const std::exception&) {
        throw std::runtime_error("malformed plan artifact row: " + line);
      }
      if (spec.tier >= artifact.tier_counts.size() || spec.devices == 0 ||
          spec.devices >= artifact.tier_counts[spec.tier] || spec.chunk == 0) {
        throw std::runtime_error("corrupt plan artifact cache row");
      }
      artifact.cache = spec;
    } else if (field == "file") {
      const std::uint64_t index = next_u64();
      if (index != artifact.region_files.size()) {
        throw std::runtime_error("plan artifact file rows out of order");
      }
      std::string name;
      std::getline(ss, name);
      artifact.region_files.push_back(std::move(name));
    } else {
      throw std::runtime_error("unknown plan artifact row: " + line);
    }
  }
  if (!saw_fingerprint || !saw_tiers) {
    throw std::runtime_error("plan artifact CSV missing header rows");
  }
  for (std::size_t r = 0; r < offsets.size(); ++r) {
    artifact.rst.add(offsets[r], std::move(stripes_rows[r]),
                     std::move(members_rows[r]));
  }
  if (!artifact.region_files.empty() &&
      artifact.region_files.size() != artifact.rst.size()) {
    throw std::runtime_error("plan artifact R2F size does not match RST");
  }
  check_device_shape(artifact);
  return artifact;
}

void save_plan(const PlanArtifact& artifact, const std::string& path) {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream os(path, csv ? std::ios::out : std::ios::out | std::ios::binary);
  if (!os) throw std::runtime_error("cannot open plan artifact for write: " + path);
  if (csv) {
    save_plan_csv(artifact, os);
  } else {
    save_plan_binary(artifact, os);
  }
}

PlanArtifact load_plan(const std::string& path) {
  std::ifstream is(path, std::ios::in | std::ios::binary);
  if (!is) throw std::runtime_error("cannot open plan artifact: " + path);
  // Sniff: binary artifacts start with the 8-byte magic, CSV ones with the
  // text header line.
  char first = 0;
  is.get(first);
  is.unget();
  if (first == 'H') {
    // Could still be either ("HARLPLAN" vs "harl-..." differs in case).
    return load_plan_binary(is);
  }
  return load_plan_csv(is);
}

}  // namespace harl::core
