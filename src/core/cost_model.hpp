// HARL's analytic data-access cost model (paper Section III-D).
//
// The cost of one file request in a hybrid PFS is
//
//     T = T_X + T_S + T_T                                   (Eq. 7/8)
//
// where, for the two-tier (M HServers with stripe h, N SServers with
// stripe s, round-robin) layout:
//
//   T_X = t * max(s_m, s_n)                                 (Eq. 1)
//   T_S = max over touched tiers of E[max of k U(a_min,a_max)]
//       = max( a_h^min + m/(m+1) (a_h^max - a_h^min),
//              a_s^min + n/(n+1) (a_s^max - a_s^min) )      (Eq. 3-5)
//   T_T = max( s_m * b_h, s_n * b_s )                       (Eq. 6)
//
// with s_m / s_n the *maximal per-server byte counts* on H/SServers and
// m / n the numbers of H/SServers touched.  Because striping is
// round-robin, all stripes of one request on one server form a single
// contiguous server-local extent, so "maximal sub-request size" equals
// "maximal per-server byte count" — the same quantity paper Fig. 5
// tabulates (e.g. s_m = dr*h - h + s_b + s_e for a same-column wrap).
//
// We compute the geometry (s_m, s_n, m, n) *exactly* in O(M+N) from
// round-robin arithmetic rather than case-by-case.  The paper's published
// closed form for case (a) of Fig. 4 (request begins and ends on HServers)
// is implemented in fig5_case_a_geometry() for cross-validation; its known
// typos are documented there.
//
// Since the tier-vector refactor this header is a thin k = 2 adapter over
// the general engine in tiered_cost_model.hpp: CostParams maps to a
// two-entry TieredCostParams and every cost/geometry function routes through
// the shared kernel.  The adapter is bit-exact — the k = 2 path produces
// the same doubles the dedicated two-tier implementation did (pinned by
// cost_model_test and the planner golden-plan tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/core/tiered_cost_model.hpp"
#include "src/storage/profiles.hpp"

namespace harl::core {

/// The stripe-size pair being evaluated (paper Table I: h and s).
struct StripePair {
  Bytes h = 0;  ///< stripe on each HServer (0 = skip HServers)
  Bytes s = 0;  ///< stripe on each SServer (0 = skip SServers)

  friend bool operator==(const StripePair&, const StripePair&) = default;
};

/// Sub-request distribution of one request (paper Fig. 5's four outputs).
struct SubreqGeometry {
  Bytes s_m = 0;       ///< maximal per-HServer byte count
  Bytes s_n = 0;       ///< maximal per-SServer byte count
  std::size_t m = 0;   ///< HServers touched
  std::size_t n = 0;   ///< SServers touched

  friend bool operator==(const SubreqGeometry&, const SubreqGeometry&) = default;
};

/// All model parameters (paper Table I).
struct CostParams {
  std::size_t M = 6;  ///< number of HServers
  std::size_t N = 2;  ///< number of SServers

  Seconds t = 0.0;           ///< unit-byte network transfer time
  Seconds net_latency = 0.0; ///< per-request fixed network overhead
                             ///< (0 = paper-pure; calibration may set it)
  int net_hops = 1;          ///< link traversals charged (1 = paper-pure,
                             ///< 2 = store-and-forward source+destination)
  /// Server-side processing charged per stripe unit of the largest
  /// sub-request (0 = paper-pure).  Calibrated from the PFS request
  /// protocol; prices the small-stripe penalty of paper Fig. 1b.
  Seconds per_stripe_overhead = 0.0;

  storage::OpProfile hserver_read;   ///< alpha_h / beta_h (reads)
  storage::OpProfile hserver_write;  ///< alpha_h / beta_h (writes)
  storage::OpProfile sserver_read;   ///< alpha_sr / beta_sr
  storage::OpProfile sserver_write;  ///< alpha_sw / beta_sw

  /// Per-member device speed factors (canonical ascending, empty =
  /// homogeneous; see TierSpec::device_factors).  When non-empty the size
  /// must equal M / N respectively — to_tiered drops a vector whose size
  /// disagrees with the count (e.g. when CARL zeroes out one tier).
  std::vector<double> hserver_factors;
  std::vector<double> sserver_factors;
};

/// Builds CostParams from tier profiles and a unit network time.
CostParams make_cost_params(std::size_t M, std::size_t N,
                            const storage::TierProfile& hserver,
                            const storage::TierProfile& sserver, Seconds t);

/// The tier-vector view of two-tier parameters (tier 0 = HServers, tier 1 =
/// SServers).  All adapters in this header are equivalent to converting with
/// this and calling the general engine.
TieredCostParams to_tiered(const CostParams& params);

/// Fingerprint of the k = 2 calibration; equals
/// params_fingerprint(to_tiered(params)), so a plan computed through the
/// two-tier API and one computed through the general engine with the same
/// parameters carry the same fingerprint.
std::uint64_t params_fingerprint(const CostParams& params);

/// Exact sub-request geometry of request [o, o+r) under round-robin striping
/// with per-tier stripes `hs` over M HServers and N SServers.
/// Requires hs.h > 0 or hs.s > 0 (with the matching server count nonzero).
SubreqGeometry request_geometry(Bytes o, Bytes r, StripePair hs, std::size_t M,
                                std::size_t N);

/// Brute-force reference: walks the request byte-by-stripe.  O(r / stripe);
/// used only by tests to validate request_geometry().
SubreqGeometry request_geometry_reference(Bytes o, Bytes r, StripePair hs,
                                          std::size_t M, std::size_t N);

/// Paper Fig. 5 closed form for case (a) of Fig. 4: the request must begin
/// and end within the HServer area of its period (l_b < M*h, l_e < M*h) and
/// both stripes must be nonzero.  Throws std::domain_error otherwise.
///
/// Typo corrections relative to the printed table (validated against the
/// exact geometry in tests):
///  * the beginning-fragment formula uses l_b (the paper prints l_e), and
///    fragments are s_b = h - l_b % h, s_e = l_e % h.
/// Rows the printed table only approximates (tests assert exactness on the
/// remaining rows and document these):
///  * dr = 0, dc = 0: s_m = s_b is an upper bound; the exact value is r;
///  * stripe-aligned request ends (l_e % h == 0) overcount m by one, since
///    column n_e receives no bytes;
///  * dr >= 1 with dc >= 1: middle columns hold (dr+1) full stripes, more
///    than the printed dr*h; similarly several multi-period backward-wrap
///    combinations under/overcount m.
SubreqGeometry fig5_case_a_geometry(Bytes o, Bytes r, StripePair hs,
                                    std::size_t M, std::size_t N);

// startup_expected_max (paper Eq. 3/4) lives in tiered_cost_model.hpp.

/// Cost of one file request under stripes `hs` (paper Eq. 7 for reads,
/// Eq. 8 for writes).
Seconds request_cost(const CostParams& params, IoOp op, Bytes offset,
                     Bytes size, StripePair hs);

/// Decomposed cost, for diagnostics and tests.
struct CostBreakdown {
  SubreqGeometry geometry;
  Seconds network = 0.0;   ///< T_X
  Seconds startup = 0.0;   ///< T_S
  Seconds transfer = 0.0;  ///< T_T
  Seconds total = 0.0;     ///< T
};

CostBreakdown request_cost_breakdown(const CostParams& params, IoOp op,
                                     Bytes offset, Bytes size, StripePair hs);

}  // namespace harl::core
