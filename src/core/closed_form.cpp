#include "src/core/closed_form.hpp"

#include <algorithm>
#include <stdexcept>

namespace harl::core {

namespace {

struct Endpoints {
  Bytes S = 0;        // striping period
  Bytes Mh = 0;       // size of the HServer area within a period
  std::int64_t dr = 0;  // r_e - r_b (periods spanned)
  Bytes l_b = 0;      // begin offset within its period
  Bytes l_e = 0;      // INCLUSIVE end offset within its period
};

Endpoints endpoints(Bytes o, Bytes r, StripePair hs, std::size_t M,
                    std::size_t N) {
  Endpoints ep;
  ep.Mh = static_cast<Bytes>(M) * hs.h;
  ep.S = ep.Mh + static_cast<Bytes>(N) * hs.s;
  const Bytes e = o + r - 1;  // inclusive last byte
  ep.dr = static_cast<std::int64_t>(e / ep.S) -
          static_cast<std::int64_t>(o / ep.S);
  ep.l_b = o % ep.S;
  ep.l_e = e % ep.S;
  return ep;
}

void validate(Bytes r, StripePair hs, std::size_t M, std::size_t N) {
  if (r == 0) throw std::invalid_argument("closed form needs r > 0");
  if (hs.h == 0 || hs.s == 0 || M == 0 || N == 0) {
    throw std::invalid_argument(
        "closed form needs both tiers present (h, s, M, N > 0); use "
        "request_geometry for single-tier layouts");
  }
}

/// One tier's geometry when the request touches it from a *begin* partial
/// (fragment `frag_b` in column `col_b`, later columns full), an *end*
/// partial (columns before `col_e` full, fragment `frag_e` in it), and
/// `fulls` complete passes.  Flags say whether each partial exists.
/// `cols` is the tier's column count, `stripe` its stripe size.
///
/// bytes(c) = fulls*stripe + begin_part(c) + end_part(c), where
///   begin_part: c > col_b -> stripe, c == col_b -> frag_b (if has_begin)
///   end_part:   c < col_e -> stripe, c == col_e -> frag_e (if has_end)
struct TierAccess {
  Bytes fulls = 0;
  bool has_begin = false;
  std::size_t col_b = 0;
  Bytes frag_b = 0;
  bool has_end = false;
  std::size_t col_e = 0;
  Bytes frag_e = 0;
};

void tier_closed_form(const TierAccess& a, std::size_t cols, Bytes stripe,
                      Bytes& max_bytes, std::size_t& touched) {
  auto bytes_at = [&](std::size_t c) -> Bytes {
    Bytes b = a.fulls * stripe;
    if (a.has_begin) {
      if (c > a.col_b) b += stripe;
      if (c == a.col_b) b += a.frag_b;
    }
    if (a.has_end) {
      if (c < a.col_e) b += stripe;
      if (c == a.col_e) b += a.frag_e;
    }
    return b;
  };

  // The maximum can only occur at a handful of structurally distinct
  // columns: the two fragment columns, a column strictly between them (both
  // partials), and a column outside both (only fulls).  Evaluate each
  // candidate that exists.
  max_bytes = 0;
  auto consider = [&](std::size_t c) {
    if (c < cols) max_bytes = std::max(max_bytes, bytes_at(c));
  };
  if (a.has_begin) consider(a.col_b);
  if (a.has_end) consider(a.col_e);
  if (a.has_begin && a.has_end && a.col_b + 1 < a.col_e) {
    consider(a.col_b + 1);  // inside both partial windows
  }
  if (a.has_begin && a.col_b + 1 < cols) consider(a.col_b + 1);
  if (a.has_end && a.col_e >= 1) consider(a.col_e - 1);
  consider(0);
  consider(cols - 1);

  if (a.fulls > 0) {
    touched = cols;  // every column holds at least the full passes
    return;
  }
  // No full passes: count columns with a nonzero partial (fragments are
  // always >= 1 byte, so the begin partial covers [col_b, cols) and the end
  // partial covers [0, col_e]).
  if (a.has_begin && a.has_end) {
    const std::size_t uncovered =
        a.col_b > a.col_e + 1 ? a.col_b - a.col_e - 1 : 0;
    touched = cols - uncovered;
  } else if (a.has_begin) {
    touched = cols - a.col_b;
  } else if (a.has_end) {
    touched = a.col_e + 1;
  } else {
    touched = 0;
  }
}

}  // namespace

Fig4Case classify_fig4(Bytes o, Bytes r, StripePair hs, std::size_t M,
                       std::size_t N) {
  validate(r, hs, M, N);
  const Endpoints ep = endpoints(o, r, hs, M, N);
  const bool begin_h = ep.l_b < ep.Mh;
  const bool end_h = ep.l_e < ep.Mh;
  if (begin_h && end_h) return Fig4Case::kA;
  if (begin_h && !end_h) return Fig4Case::kB;
  if (!begin_h && end_h) return Fig4Case::kC;
  return Fig4Case::kD;
}

SubreqGeometry closed_form_geometry(Bytes o, Bytes r, StripePair hs,
                                    std::size_t M, std::size_t N) {
  validate(r, hs, M, N);
  const Endpoints ep = endpoints(o, r, hs, M, N);
  const Bytes h = hs.h;
  const Bytes s = hs.s;
  const bool begin_h = ep.l_b < ep.Mh;
  const bool end_h = ep.l_e < ep.Mh;
  const auto dr = static_cast<Bytes>(ep.dr);

  // Begin-side parameters in the begin tier.
  const std::size_t col_b =
      begin_h ? static_cast<std::size_t>(ep.l_b / h)
              : static_cast<std::size_t>((ep.l_b - ep.Mh) / s);
  const Bytes frag_b =
      begin_h ? h - ep.l_b % h : s - (ep.l_b - ep.Mh) % s;
  // End-side parameters (inclusive): fragment counts bytes *into* the stripe.
  const std::size_t col_e =
      end_h ? static_cast<std::size_t>(ep.l_e / h)
            : static_cast<std::size_t>((ep.l_e - ep.Mh) / s);
  const Bytes frag_e = end_h ? ep.l_e % h + 1 : (ep.l_e - ep.Mh) % s + 1;

  // Single-period span within one tier (cases a/d with dr == 0): the
  // additive begin+end model below would double-count the middle columns,
  // so handle it directly.
  if (ep.dr == 0 && begin_h == end_h) {
    SubreqGeometry g;
    Bytes& smax = begin_h ? g.s_m : g.s_n;
    std::size_t& count = begin_h ? g.m : g.n;
    const Bytes stripe = begin_h ? h : s;
    if (col_b == col_e) {
      smax = r;  // the whole request sits inside one stripe
      count = 1;
    } else {
      count = col_e - col_b + 1;
      smax = std::max(frag_b, frag_e);
      if (col_e - col_b >= 2) smax = std::max(smax, stripe);
    }
    return g;
  }

  TierAccess h_access;
  TierAccess s_access;

  if (begin_h) {
    h_access.has_begin = true;
    h_access.col_b = col_b;
    h_access.frag_b = frag_b;
    // The S area of the begin period is fully covered iff the request
    // leaves the period (dr >= 1) or ends inside that S area (case b,
    // handled by the end partial instead).
  } else {
    s_access.has_begin = true;
    s_access.col_b = col_b;
    s_access.frag_b = frag_b;
  }
  if (end_h) {
    h_access.has_end = true;
    h_access.col_e = col_e;
    h_access.frag_e = frag_e;
  } else {
    s_access.has_end = true;
    s_access.col_e = col_e;
    s_access.frag_e = frag_e;
  }

  // Full passes over each tier.
  //  H tier: fully covered in periods strictly after r_b when the request
  //  begins past the H area (begin in S), in periods strictly before r_e
  //  when it ends after the H area (end in S), and in strictly-interior
  //  periods always.
  //  Count via: interior periods = dr - 1 (when dr >= 1); plus period r_b
  //  fully covers S-area iff dr >= 1 and begin is in the H area; plus period
  //  r_e fully covers H-area iff dr >= 1 and end is in the S area, etc.
  if (ep.dr >= 1) {
    const Bytes interior = dr - 1;
    // H tier fulls: interior, plus r_e's H area when the end lies beyond it
    // (end in S area).
    h_access.fulls = interior + (end_h ? 0 : 1);
    // ...plus r_b's H area when the begin lies before it?  The begin is at
    // l_b >= 0; the H area of period r_b is covered from l_b, which the
    // begin partial already accounts for when begin_h.  When the begin is in
    // the S area, period r_b's H area lies *before* l_b and is not covered.
    // S tier fulls: interior, plus r_b's S area when the begin is in the H
    // area (the request runs through it to the next period).
    s_access.fulls = interior + (begin_h ? 1 : 0);
  }

  SubreqGeometry g;
  tier_closed_form(h_access, M, h, g.s_m, g.m);
  tier_closed_form(s_access, N, s, g.s_n, g.n);
  return g;
}

}  // namespace harl::core
