// Conservative parallel discrete-event execution (PDES) for one run.
//
// The sequential engine in simulator.hpp dispatches one totally-ordered
// event queue.  This runtime shards that queue into logical processes (LPs):
// LP 0 hosts everything client-side (client logic, the program runner, the
// MDS queue, join counters, the adaptive layout manager), and every data
// server — its storage queue, its device and its server-side NIC link — is
// its own LP, with client NIC links sharded over a further group of LPs.
// Each LP owns a private copy of the sequential engine's allocation-free
// structures (now lane / ascending FIFO lane / 4-ary heap over packed keys,
// slab arena of InlineTask slots), so the per-event cost is the sequential
// engine's, not a concurrent queue's.
//
// Synchronization is conservative and window-based.  Every cross-LP
// interaction in the PFS model crosses either a network link (minimum cost:
// the link's message latency, the paper's network unit time t) or a storage
// queue (minimum cost: the per-stripe overhead), so any event an LP sends to
// another LP is delivered at least `lookahead` after the sender's clock.
// With B = min over LPs of their next event time, every event in
// [B, B + lookahead) can therefore be executed without ever receiving a
// straggler.  One window:
//
//   stage A   the coordinator runs LP 0 up to the window end.  Workers are
//             parked, so LP 0 (which is where new work originates) may push
//             events directly into any LP's queue — client->server traffic
//             needs no lookahead.
//   stage B   worker threads run the non-app LPs they own up to the window
//             end.  All cross-LP sends are buffered in per-worker mailboxes
//             (bounded vectors, single producer, drained only at the
//             barrier), never pushed into another LP's queue.
//   barrier   the coordinator drains every mailbox in deterministic (key)
//             order into the target queues, checks the lookahead contract
//             (delivery >= window end; violations are counted and must be
//             zero), replays buffered observability calls (below), and
//             recomputes B.
//
// Determinism: every event carries a 40-byte key
//     (time, send time, root tag, hop | source LP, per-source ord)
// compared lexicographically.  Time and send time use the IEEE-754 bit
// trick from simulator.hpp; the root tag is a global counter drawn in LP 0
// dispatch order and inherited down event chains, so keys are unique and
// the dispatch order is a pure function of the workload — identical at any
// worker count, including one.  The key order also reproduces the
// sequential engine's (time, seq) order: for same-time events, sequential
// seq order equals scheduling order, scheduling happens at nondecreasing
// simulated time (ordered by the send field), and same-send ties are
// resolved by the tag/ord fields, which follow LP 0 issue order — see
// DESIGN.md §12 for the argument and the measure-zero corner cases.
//
// Observability: trace/metrics sinks are order-sensitive (the flight
// recorder appends trace events and allocates async ids in call order), so
// data-path sink calls made during a window are buffered per LP together
// with the calling dispatch's key and call index, then replayed into the
// real sink at the barrier in global key order — the recorder observes
// exactly the sequential call sequence and its output stays byte-identical.
// Calls that the sequential engine made synchronously from an LP 0 dispatch
// but that now run in a relay event on another LP (a DataServer::submit
// issued by a client, the first hop of a transfer) adopt an *anchor* — the
// issuing dispatch's key and the call position where the relay was posted —
// so their records sort back into the exact position the sequential engine
// emitted them from.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/units.hpp"
#include "src/obs/sink.hpp"
#include "src/sim/inline_task.hpp"
#include "src/sim/simulator.hpp"

namespace harl::sim::pdes {

/// LP 0 hosts all client-side logic; it is the only LP that creates fresh
/// event chains, and the only one that runs in stage A.
inline constexpr std::uint32_t kAppLp = 0;

/// Deterministic event ordering key, compared lexicographically.  `time` and
/// `send` are raw IEEE-754 bits (valid times are >= +0.0, so unsigned bit
/// order equals numeric order); `tag` is the chain's root tag (drawn from a
/// global counter in LP 0 dispatch order, inherited by every event the chain
/// schedules); `hop_lp` packs the chain hop count (high 16 bits, saturating)
/// over the scheduling LP; `ord` is a per-scheduling-LP counter.  The
/// (tag, hop_lp, ord) tail makes every key unique, so the order is total and
/// independent of queue insertion order — the foundation of worker-count
/// independence.
struct Key {
  std::uint64_t time_bits = 0;
  std::uint64_t send_bits = 0;
  std::uint64_t tag = 0;
  std::uint32_t hop_lp = 0;
  std::uint32_t ord = 0;

  friend bool operator<(const Key& a, const Key& b) {
    if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
    if (a.send_bits != b.send_bits) return a.send_bits < b.send_bits;
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.hop_lp != b.hop_lp) return a.hop_lp < b.hop_lp;
    return a.ord < b.ord;
  }
  friend bool operator==(const Key& a, const Key& b) {
    return a.time_bits == b.time_bits && a.send_bits == b.send_bits &&
           a.tag == b.tag && a.hop_lp == b.hop_lp && a.ord == b.ord;
  }
};

inline std::uint64_t time_to_bits(Seconds t) {
  const double canonical = t + 0.0;  // -0.0 -> +0.0
  std::uint64_t bits;
  std::memcpy(&bits, &canonical, sizeof(bits));
  return bits;
}

inline Seconds bits_to_time(std::uint64_t bits) {
  double t;
  std::memcpy(&t, &bits, sizeof(t));
  return t;
}

/// Position in the global observability call order: the issuing dispatch's
/// key plus the call index reserved when the anchor was taken.  A relay
/// event adopting an anchor emits its sink calls at exactly the position the
/// sequential engine emitted them from (see file comment).
struct ObsAnchor {
  Key key;
  std::uint32_t seq = 0;
};

class Runtime;

/// Order-restoring observability sink.  Sits directly in front of the real
/// sink (a Recorder, or the AdaptiveLayoutManager's downstream): data-path
/// calls made during a window are buffered per LP with their global
/// position, then replayed into the target in sorted order at the window
/// barrier.  begin_request/begin_sub return synthetic ids that are
/// translated to the target's ids at replay.  Registration calls (pre-run,
/// coordinator only) pass through unchanged, as does everything when no
/// window is executing.
class ObsSequencer final : public obs::Sink {
 public:
  explicit ObsSequencer(Runtime& runtime) : rt_(runtime) {}

  void set_target(obs::Sink* target) { target_ = target; }
  obs::Sink* target() const { return target_; }

  std::uint32_t track(std::string_view name, obs::TrackKind kind,
                      std::uint32_t entity) override;
  std::uint32_t register_server(std::uint32_t server, std::uint32_t tier,
                                std::string_view name, bool is_ssd) override;
  std::uint32_t register_client(std::uint32_t client) override;
  void resource_event(std::uint32_t track, Seconds arrival, Seconds start,
                      Seconds finish) override;
  void server_access(std::uint32_t server, IoOp op, std::uint32_t region,
                     Bytes bytes, Bytes pieces, Seconds now) override;
  std::uint32_t begin_request(std::uint32_t client, IoOp op, Bytes offset,
                              Bytes size, Seconds now,
                              std::uint32_t file = obs::kNoId) override;
  std::uint32_t begin_sub(std::uint32_t request, std::uint32_t server,
                          std::uint32_t region, Bytes bytes,
                          Seconds now) override;
  void sub_storage(std::uint32_t sub, Seconds arrival, Seconds start,
                   Seconds startup, Seconds service) override;
  void sub_net_done(std::uint32_t sub, Seconds now) override;
  void end_request(std::uint32_t request, Seconds now) override;
  void adaptive_event(AdaptiveEvent event, std::uint32_t epoch, Bytes bytes,
                      Seconds now) override;
  void cache_event(Bytes hit_bytes, Bytes miss_bytes, Seconds now) override;

 private:
  friend class Runtime;

  enum class Kind : std::uint8_t {
    kResource,
    kAccess,
    kBeginRequest,
    kBeginSub,
    kSubStorage,
    kSubNetDone,
    kEndRequest,
    kAdaptive,
    kCacheEvent,
  };

  /// One buffered sink call: (pos, s1, s2) is the global replay order,
  /// the rest is the flattened argument list.
  struct Record {
    Key pos;
    std::uint32_t s1 = 0;
    std::uint32_t s2 = 0;
    Kind kind = Kind::kResource;
    std::uint8_t op = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t d = 0;
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    double t0 = 0.0;
    double t1 = 0.0;
    double t2 = 0.0;
    double t3 = 0.0;
  };

  /// Per-LP record buffer; cache-line-aligned so concurrent appends from
  /// different worker threads never share a line.
  struct alignas(64) Shard {
    std::vector<Record> records;
  };

  bool buffering() const;
  Record& push(Kind kind);
  /// Coordinator only, at the window barrier: merge + sort + forward.
  void replay();

  Runtime& rt_;
  obs::Sink* target_ = nullptr;
  std::vector<Shard> shards_;
  std::vector<Record> merged_;
  // Synthetic-id translation (synthetic ids are allocated in LP 0 dispatch
  // order — begin_request/begin_sub are client-side calls — and resolved to
  // the target's ids when the replayed call returns).
  std::vector<std::uint32_t> req_real_;
  std::vector<std::uint32_t> sub_real_;
  std::uint32_t next_req_ = 0;
  std::uint32_t next_sub_ = 0;
};

/// The conservative PDES executor.  Attach to a Simulator with
/// `sim.attach_pdes(&runtime)`: the simulator facade then forwards
/// now()/schedule/run/stats to the runtime and components keep their code
/// unchanged, except that LP owners (FifoResource, DataServer, Network) are
/// told their LP via set_lp()/attach_pdes() so completions are routed to the
/// right queue.
class Runtime {
 public:
  struct Options {
    /// Worker count including the coordinator; 1 = the full window protocol
    /// on one thread (the determinism reference for wider runs).
    unsigned threads = 1;
    /// Minimum cross-LP delivery delay (seconds); must be > 0.  For the PFS
    /// model: min(network message latency, server per-stripe overhead).
    Seconds lookahead = 0.0;
    /// Optional cap on the window length (seconds); 0 = use `lookahead`.
    /// Narrower windows only add synchronization overhead — exposed for
    /// BM_LookaheadSensitivity.
    Seconds window_cap = 0.0;
  };

  Runtime(std::uint32_t num_lps, const Options& options);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  std::uint32_t num_lps() const { return num_lps_; }
  unsigned threads() const { return threads_; }
  Seconds window() const { return window_; }
  std::uint64_t windows_run() const { return windows_; }

  /// LP of the running dispatch; kAppLp outside any dispatch (pre-run
  /// scheduling and the coordinator between windows are app context).
  std::uint32_t current_lp() const;

  /// Clock of the current dispatch's LP; the global horizon (max dispatched
  /// time) outside dispatch.
  Time now() const;

  bool idle() const;
  std::uint64_t events_dispatched() const;

  /// Schedules onto the current LP (the facade's schedule_at/schedule_after).
  void schedule(Time t, InlineTask fn);

  /// Schedules onto `lp` at absolute time `t` (>= the scheduling context's
  /// clock).  From LP 0 or pre-run this pushes directly (workers are
  /// parked); from a non-app LP a cross-LP send goes through the executor's
  /// mailbox and must respect the lookahead contract.
  void schedule_on(std::uint32_t lp, Time t, InlineTask fn);

  /// Reserves the current dispatch's next observability call position, to be
  /// adopted by a relay event (see ObsAnchor).
  ObsAnchor take_obs_anchor();
  /// Inside a relay dispatch: emit subsequent sink calls at `anchor`.
  void adopt_obs_anchor(const ObsAnchor& anchor);

  /// Called by FifoResource when submitted off its owner LP — a routing bug
  /// that would corrupt FIFO arrival order; counted into
  /// `lookahead_violations` (which must be 0).
  void note_off_lp_submit() {
    off_lp_submits_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Runs until every LP drains.  Returns the final global time.
  Time run();
  /// Runs windows while events at time <= `limit` exist (later events stay
  /// queued).  Returns the global time (last dispatched).
  Time run_until(Time limit);

  /// Aggregated engine stats across LPs, plus the PDES counters
  /// (mailbox_enqueues / window_stalls / lookahead_violations).  All fields
  /// are deterministic and identical at any worker count.
  Simulator::Stats stats() const;

  ObsSequencer& sequencer() { return sequencer_; }

 private:
  friend class ObsSequencer;

  struct Entry {
    Key key;
    std::uint32_t slot = 0;
  };

  /// FIFO ring of entries (power-of-two capacity), head = minimum.
  struct EntryRing {
    std::vector<Entry> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    bool empty() const { return count == 0; }
    const Entry& front() const { return buf[head]; }
    const Entry& back() const {
      return buf[(head + count - 1) & (buf.size() - 1)];
    }
    void push(const Entry& e) {
      if (count == buf.size()) grow();
      buf[(head + count) & (buf.size() - 1)] = e;
      ++count;
    }
    Entry pop() {
      const Entry e = buf[head];
      head = (head + 1) & (buf.size() - 1);
      --count;
      return e;
    }
    void grow();
  };

  static constexpr std::uint32_t kChunkSlots = 256;
  struct Chunk {
    InlineTask slots[kChunkSlots];
  };

  /// One logical process: the sequential engine's queue + arena, a clock,
  /// the dispatch context used for key assignment and observability
  /// ordering, and per-LP counters.  Aligned so neighbouring LPs run by
  /// different workers never share a cache line.
  struct alignas(64) Lp {
    EntryRing now_lane;
    EntryRing asc_lane;
    std::vector<Entry> heap;

    std::vector<std::unique_ptr<Chunk>> chunks;
    std::vector<std::uint32_t> free_slots;

    Key current{};       ///< key of the dispatch being executed
    double now = 0.0;    ///< LP clock (last dispatched time)
    std::uint32_t next_ord = 0;

    // Observability position of the running dispatch (see ObsSequencer).
    Key obs_key{};
    std::uint32_t obs_seq = 0;
    std::uint32_t obs_sub = 0;
    bool obs_anchored = false;

    std::uint64_t dispatched = 0;
    std::uint64_t now_lane_events = 0;
    std::uint64_t ascending_events = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::uint64_t inline_callbacks = 0;
    std::uint64_t heap_callbacks = 0;

    std::size_t pending() const {
      return now_lane.count + asc_lane.count + heap.size();
    }
  };

  /// Cross-LP send buffered during stage B; the InlineTask rides along (no
  /// arena slot until the coordinator lands it on the target LP).
  struct MailEntry {
    Key key;
    std::uint32_t target = 0;
    InlineTask task;
  };

  /// Per-executor mailbox: single producer (the owning worker during stage
  /// B), single consumer (the coordinator at the barrier) — phases are
  /// separated by the window's release/acquire pair, so no per-entry
  /// synchronization is needed.  Bounded by the reserve below; growth past
  /// it is an allocation, not an error.
  static constexpr std::size_t kMailboxReserve = 4096;
  struct alignas(64) Executor {
    std::vector<MailEntry> outbox;
  };

  InlineTask& lp_slot(Lp& lp, std::uint32_t index) const {
    return lp.chunks[index / kChunkSlots]->slots[index % kChunkSlots];
  }
  std::uint32_t lp_alloc_slot(Lp& lp, InlineTask&& fn);

  static void heap_push(std::vector<Entry>& heap, const Entry& e);
  static void heap_remove_min(std::vector<Entry>& heap);

  /// Minimum of the three lane fronts; nullptr when the LP is idle.
  const Entry* lp_front(const Lp& lp) const;
  Entry lp_pop_min(Lp& lp);

  void push_local(Lp& lp, const Entry& e, bool zero_delay);
  void push_external(Lp& lp, const Key& key, InlineTask&& fn);

  void run_lp(std::uint32_t lp_id, double end, unsigned exec);
  void run_windows(double limit);
  void drain_mailboxes();
  void worker_main(unsigned exec);

  Options options_;
  std::uint32_t num_lps_ = 0;
  unsigned threads_ = 1;
  double window_ = 0.0;

  std::vector<Lp> lps_;
  std::vector<Executor> execs_;
  std::vector<MailEntry> drain_scratch_;
  ObsSequencer sequencer_{*this};

  std::uint64_t next_tag_ = 0;
  double global_now_ = 0.0;
  double window_end_ = 0.0;  ///< written pre-release, read by workers

  std::uint64_t windows_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t mailbox_enqueues_ = 0;
  std::uint64_t lookahead_violations_ = 0;
  std::uint64_t peak_depth_ = 0;
  std::atomic<std::uint64_t> off_lp_submits_{0};

  // Window barrier: the coordinator publishes window_end_, bumps epoch_
  // (release) and waits for running_ to reach zero (acquire); workers wait
  // on epoch_, run their LPs, and decrement running_.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> running_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::jthread> workers_;
};

}  // namespace harl::sim::pdes
