#include "src/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "src/sim/pdes.hpp"

namespace harl::sim {

Time Simulator::pdes_now() const { return pdes_->now(); }

bool Simulator::pdes_idle() const { return pdes_->idle(); }

std::uint64_t Simulator::pdes_events_dispatched() const {
  return pdes_->events_dispatched();
}

std::uint32_t Simulator::current_lp() const {
  return pdes_ != nullptr ? pdes_->current_lp() : 0;
}

void Simulator::schedule_on(std::uint32_t lp, Time t, InlineTask fn) {
  if (pdes_ != nullptr) {
    pdes_->schedule_on(lp, t, std::move(fn));
    return;
  }
  schedule_at(t, std::move(fn));
}

std::uint32_t Simulator::alloc_slot(InlineTask&& fn) {
  const bool stored_inline = fn.stored_inline();
  inline_callbacks_ += stored_inline ? 1 : 0;
  heap_callbacks_ += stored_inline ? 0 : 1;
  if (free_slots_.empty()) {
    // Arena growth: the only allocation on the scheduling path, amortized
    // away once the pool covers the simulation's peak concurrency.
    ++pool_misses_;
    const auto base = static_cast<std::uint32_t>(chunks_.size()) * kChunkSlots;
    if (base + kChunkSlots > kMaxSlots) {
      throw std::overflow_error("simulator arena exceeds 2^24 live events");
    }
    chunks_.push_back(std::make_unique<Chunk>());
    free_slots_.reserve(free_slots_.size() + kChunkSlots);
    for (std::uint32_t i = kChunkSlots; i > 0; --i) {
      free_slots_.push_back(base + i - 1);
    }
  } else {
    ++pool_hits_;
  }
  const std::uint32_t index = free_slots_.back();
  free_slots_.pop_back();
  slot(index) = std::move(fn);
  return index;
}

void Simulator::heap_push(EventKey key) {
  std::size_t i = heap_.size();
  heap_.push_back(key);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (heap_[parent] <= key) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void Simulator::heap_remove_min() {
  // Bottom-up deletion: walk a hole from the root to a leaf along minimum
  // children (no compare against the displaced last element on the way
  // down), then sift that element up from the hole.  The displaced element
  // comes from the deepest level, so it almost always stays near the bottom
  // and the upward pass is short — measurably faster than the classic
  // compare-then-descend loop.
  const std::size_t n = heap_.size() - 1;
  const EventKey last = heap_[n];
  heap_.pop_back();
  if (n == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
#if defined(__GNUC__)
    // The next hole is one of the four children; start pulling their child
    // groups (4 x 16 B each) in now so the level-by-level dependent walk
    // overlaps its cache misses.
    const std::size_t grand = 4 * first + 1;
    if (grand < n) {
      __builtin_prefetch(&heap_[grand], 0, 1);
      __builtin_prefetch(&heap_[grand + 4], 0, 1);
      __builtin_prefetch(&heap_[grand + 8], 0, 1);
      __builtin_prefetch(&heap_[grand + 12], 0, 1);
    }
#endif
    const std::size_t end = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[c] < heap_[best]) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (heap_[parent] <= last) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
}

void Simulator::Ring::grow() {
  const std::size_t old_cap = buf.size();
  const std::size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
  std::vector<EventKey> grown(new_cap);
  for (std::size_t i = 0; i < count; ++i) {
    grown[i] = buf[(head + i) & (old_cap - 1)];
  }
  buf = std::move(grown);
  head = 0;
}

void Simulator::note_depth() {
  const std::uint64_t depth = heap_.size() + now_lane_.count + asc_lane_.count;
  if (depth > peak_depth_) peak_depth_ = depth;
}

void Simulator::schedule_at(Time t, InlineTask fn) {
  if (pdes_ != nullptr) {
    pdes_->schedule(t, std::move(fn));
    return;
  }
  // `!(t >= now_)` rather than `t < now_` so NaN times are rejected too —
  // a NaN would otherwise corrupt the bit-pattern ordering.
  if (!(t >= now_)) {
    throw std::invalid_argument("cannot schedule event in the past");
  }
  if (next_seq_ >= kMaxSeq) {
    throw std::overflow_error("simulator sequence numbers exhausted");
  }
  const EventKey key = make_key(t, next_seq_++, alloc_slot(std::move(fn)));
  if (t == now_) {
    // Zero-delay events are appended with monotonically increasing
    // (time, seq), so the now lane stays sorted and FIFO order equals
    // priority order.
    now_lane_.push(key);
    ++now_lane_events_;
  } else if (asc_lane_.count == 0 || key >= asc_lane_.back()) {
    // In-order insertion (the common DES case: completions scheduled in
    // increasing time as `now` advances): appending keeps the lane sorted,
    // no heap sift needed.
    asc_lane_.push(key);
    ++ascending_events_;
  } else {
    heap_push(key);
  }
  note_depth();
}

void Simulator::schedule_after(Time delay, InlineTask fn) {
  if (!(delay >= 0.0)) throw std::invalid_argument("negative event delay");
  // now() (not now_) so the delay is relative to the PDES LP clock too.
  schedule_at(now() + delay, std::move(fn));
}

Simulator::TaskHandle Simulator::park(InlineTask fn) {
  // A parked slot lives in the sequential arena and may be fired from any
  // LP — unsound under PDES, where the parallel network path moves the
  // continuation through the chain closures instead.
  if (pdes_ != nullptr) {
    throw std::logic_error("Simulator::park is not supported under PDES");
  }
  return alloc_slot(std::move(fn));
}

void Simulator::fire_parked(TaskHandle handle) {
  // Runs in place: the slot cannot be reused while it is off the free list,
  // so the task may schedule or park new work.  (If the task throws, the
  // slot is retired un-reused and its callable destroyed with the arena.)
  InlineTask& task = slot(handle);
  task();
  task.reset();
  free_slot(handle);
}

bool Simulator::peek_next(EventKey& out) const {
  if (idle()) return false;
  EventKey best = now_lane_.count != 0 ? now_lane_.front() : no_key();
  const EventKey asc = asc_lane_.count != 0 ? asc_lane_.front() : no_key();
  if (asc < best) best = asc;
  if (!heap_.empty() && heap_.front() < best) best = heap_.front();
  out = best;
  return true;
}

void Simulator::dispatch_next() {
  // The dispatch order is the (time, seq) total order: all three structures
  // keep their minimum at the front, so the global next event is whichever
  // front is smallest (seq is unique, so no two fronts compare equal).
  const EventKey now_k = now_lane_.count != 0 ? now_lane_.front() : no_key();
  const EventKey asc_k = asc_lane_.count != 0 ? asc_lane_.front() : no_key();
  const EventKey heap_k = !heap_.empty() ? heap_.front() : no_key();
  EventKey key;
  if (now_k < asc_k && now_k < heap_k) {
    key = now_lane_.pop();
  } else if (asc_k < heap_k) {
    key = asc_lane_.pop();
  } else {
    key = heap_k;
#if defined(__GNUC__)
    // The task slot is the next cache line we touch after the heap sift;
    // start pulling it in while the sift runs.
    __builtin_prefetch(&slot(key_slot(key)), 0, 1);
#endif
    heap_remove_min();
  }
  assert(key_time(key) >= now_ && "event queue lost time monotonicity");
  now_ = key_time(key);
  ++dispatched_;
  // The task runs in place in its arena slot (no move-out): the slot stays
  // off the free list while the callback runs, so new events scheduled by
  // the callback land in other slots and nothing is invalidated.
  const std::uint32_t index = key_slot(key);
  InlineTask& task = slot(index);
  task();
  task.reset();
  free_slot(index);
}

Time Simulator::run() {
  if (pdes_ != nullptr) return pdes_->run();
  while (!idle()) dispatch_next();
  return now_;
}

Time Simulator::run_until(Time limit) {
  if (pdes_ != nullptr) return pdes_->run_until(limit);
  EventKey next;
  while (peek_next(next) && key_time(next) <= limit) dispatch_next();
  return now_;
}

Simulator::Stats Simulator::stats() const {
  if (pdes_ != nullptr) return pdes_->stats();
  Stats s;
  s.events_dispatched = dispatched_;
  s.peak_queue_depth = peak_depth_;
  s.now_lane_events = now_lane_events_;
  s.ascending_events = ascending_events_;
  s.pool_hits = pool_hits_;
  s.pool_misses = pool_misses_;
  s.pool_chunks = chunks_.size();
  s.inline_callbacks = inline_callbacks_;
  s.heap_callbacks = heap_callbacks_;
  return s;
}

}  // namespace harl::sim
