#include "src/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace harl::sim {

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("cannot schedule event in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(Time delay, std::function<void()> fn) {
  if (delay < 0.0) throw std::invalid_argument("negative event delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::dispatch_next() {
  // Move the event out before popping: the callback may schedule new events,
  // which mutates the queue.  top() is const, so moving needs a const_cast;
  // this is safe because pop() follows immediately and the heap's sift-down
  // only reads `time` and `seq`, which the move leaves intact (only the
  // std::function's storage — potentially a heap allocation — is stolen).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++dispatched_;
  ev.fn();
}

Time Simulator::run() {
  while (!queue_.empty()) dispatch_next();
  return now_;
}

Time Simulator::run_until(Time limit) {
  while (!queue_.empty() && queue_.top().time <= limit) dispatch_next();
  return now_;
}

}  // namespace harl::sim
