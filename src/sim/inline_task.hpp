// Small-buffer-optimized callable for simulator events.
//
// `std::function<void()>` heap-allocates any capture beyond its ~16-byte
// small-object buffer, which made every event pushed through the simulator a
// malloc/free pair.  InlineTask stores the callable in place when it fits in
// kCapacity bytes, falling back to the heap only for oversized captures.
// The buffer is sized so every hot-path callback in net/, pfs/ and
// middleware/ stays inline; see DESIGN.md §10 for the capture-size audit.
//
// Unlike std::function, InlineTask is move-only and accepts move-only
// callables (e.g. lambdas owning a unique_ptr).  Copyable callables still
// convert implicitly, so existing call sites that pass lambdas or
// std::function lvalues keep compiling unchanged.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace harl::sim {

class InlineTask {
 public:
  /// In-place storage: 56 bytes of buffer + the 8-byte vtable pointer puts
  /// the whole object on one 64-byte cache line.  56 is chosen as the
  /// smallest multiple of 8 that keeps the largest hot-path capture (the
  /// client write-path continuation: server pointer, offset, size, join
  /// handle, object/pieces ids, op — 52 bytes) inline.
  static constexpr std::size_t kCapacity = 56;
  static constexpr std::size_t kAlignment = 16;

  InlineTask() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                        // the std::function parameters it replaces.
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineTask(InlineTask&& other) noexcept { move_from(other); }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable lives in the in-place buffer (no allocation).
  bool stored_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

  /// Invokes the callable.  Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst's callable from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
    /// True when a raw byte copy is a complete relocation (trivially
    /// copyable inline callables, and the heap case's stored pointer):
    /// move_from then uses one fixed-size memcpy instead of an indirect
    /// call, which matters on the event queue's move-heavy paths.
    bool trivially_relocatable;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kCapacity && alignof(D) <= kAlignment &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*std::launder(reinterpret_cast<D*>(storage)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<D*>(storage))->~D();
      },
      /*inline_stored=*/true,
      /*trivially_relocatable=*/std::is_trivially_copyable_v<D>,
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* storage) {
        (**std::launder(reinterpret_cast<D**>(storage)))();
      },
      [](void* dst, void* src) noexcept {
        // The stored pointer is trivially destructible: copying it over is a
        // complete relocation.
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* storage) noexcept {
        delete *std::launder(reinterpret_cast<D**>(storage));
      },
      /*inline_stored=*/false,
      /*trivially_relocatable=*/true,
  };

  void move_from(InlineTask& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivially_relocatable) {
        std::memcpy(storage_, other.storage_, kCapacity);
      } else {
        ops_->relocate(storage_, other.storage_);
      }
      other.ops_ = nullptr;
    }
  }

  // Zero-initialized so the fixed-size memcpy in move_from never reads
  // indeterminate tail bytes (callables smaller than kCapacity leave the
  // rest of the buffer untouched).
  alignas(kAlignment) unsigned char storage_[kCapacity] = {};
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(InlineTask) == 64, "InlineTask should fill one cache line");

}  // namespace harl::sim
