#include "src/sim/pdes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace harl::sim::pdes {

namespace {

/// Dispatch context of the calling thread.  `rt` scopes the context to one
/// runtime (several runtimes may live on one machine — the harness pool runs
/// one per scheme); `dispatching` is true only while an LP callback runs.
/// Outside dispatch every thread is app (LP 0) context: pre-run scheduling
/// and coordinator code between windows land on LP 0 with fresh tags.
struct TlsContext {
  const Runtime* rt = nullptr;
  std::uint32_t lp = 0;
  unsigned exec = 0;
  bool dispatching = false;
};

thread_local TlsContext t_ctx;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// --- ObsSequencer ------------------------------------------------------------

bool ObsSequencer::buffering() const {
  return target_ != nullptr && t_ctx.rt == &rt_ && t_ctx.dispatching;
}

ObsSequencer::Record& ObsSequencer::push(Kind kind) {
  Runtime::Lp& lp = rt_.lps_[t_ctx.lp];
  std::vector<Record>& records = shards_[t_ctx.lp].records;
  records.emplace_back();
  Record& r = records.back();
  r.pos = lp.obs_key;
  if (lp.obs_anchored) {
    r.s1 = lp.obs_seq;
    r.s2 = lp.obs_sub++;
  } else {
    r.s1 = lp.obs_seq++;
    r.s2 = 0;
  }
  r.kind = kind;
  return r;
}

std::uint32_t ObsSequencer::track(std::string_view name, obs::TrackKind kind,
                                  std::uint32_t entity) {
  // Registration is pre-run, coordinator-only: pass through so ids are real.
  return target_ != nullptr ? target_->track(name, kind, entity) : obs::kNoId;
}

std::uint32_t ObsSequencer::register_server(std::uint32_t server,
                                            std::uint32_t tier,
                                            std::string_view name,
                                            bool is_ssd) {
  return target_ != nullptr ? target_->register_server(server, tier, name,
                                                       is_ssd)
                            : obs::kNoId;
}

std::uint32_t ObsSequencer::register_client(std::uint32_t client) {
  return target_ != nullptr ? target_->register_client(client) : obs::kNoId;
}

void ObsSequencer::resource_event(std::uint32_t track, Seconds arrival,
                                  Seconds start, Seconds finish) {
  if (!buffering()) {
    if (target_ != nullptr) target_->resource_event(track, arrival, start,
                                                    finish);
    return;
  }
  Record& r = push(Kind::kResource);
  r.a = track;
  r.t0 = arrival;
  r.t1 = start;
  r.t2 = finish;
}

void ObsSequencer::server_access(std::uint32_t server, IoOp op,
                                 std::uint32_t region, Bytes bytes,
                                 Bytes pieces, Seconds now) {
  if (!buffering()) {
    if (target_ != nullptr) {
      target_->server_access(server, op, region, bytes, pieces, now);
    }
    return;
  }
  Record& r = push(Kind::kAccess);
  r.a = server;
  r.op = static_cast<std::uint8_t>(op);
  r.b = region;
  r.u = bytes;
  r.v = pieces;
  r.t0 = now;
}

std::uint32_t ObsSequencer::begin_request(std::uint32_t client, IoOp op,
                                          Bytes offset, Bytes size,
                                          Seconds now, std::uint32_t file) {
  if (!buffering()) {
    return target_ != nullptr
               ? target_->begin_request(client, op, offset, size, now, file)
               : obs::kNoId;
  }
  // Client-side call: LP 0 / coordinator, so the synthetic counter needs no
  // synchronization and ids are allocated in deterministic dispatch order.
  const std::uint32_t id = next_req_++;
  Record& r = push(Kind::kBeginRequest);
  r.a = client;
  r.op = static_cast<std::uint8_t>(op);
  r.b = id;
  r.c = file;
  r.u = offset;
  r.v = size;
  r.t0 = now;
  return id;
}

std::uint32_t ObsSequencer::begin_sub(std::uint32_t request,
                                      std::uint32_t server,
                                      std::uint32_t region, Bytes bytes,
                                      Seconds now) {
  if (!buffering()) {
    return target_ != nullptr
               ? target_->begin_sub(request, server, region, bytes, now)
               : obs::kNoId;
  }
  const std::uint32_t id = next_sub_++;
  Record& r = push(Kind::kBeginSub);
  r.a = request;
  r.b = server;
  r.c = region;
  r.d = id;
  r.u = bytes;
  r.t0 = now;
  return id;
}

void ObsSequencer::sub_storage(std::uint32_t sub, Seconds arrival,
                               Seconds start, Seconds startup,
                               Seconds service) {
  if (!buffering()) {
    if (target_ != nullptr) {
      target_->sub_storage(sub, arrival, start, startup, service);
    }
    return;
  }
  Record& r = push(Kind::kSubStorage);
  r.a = sub;
  r.t0 = arrival;
  r.t1 = start;
  r.t2 = startup;
  r.t3 = service;
}

void ObsSequencer::sub_net_done(std::uint32_t sub, Seconds now) {
  if (!buffering()) {
    if (target_ != nullptr) target_->sub_net_done(sub, now);
    return;
  }
  Record& r = push(Kind::kSubNetDone);
  r.a = sub;
  r.t0 = now;
}

void ObsSequencer::end_request(std::uint32_t request, Seconds now) {
  if (!buffering()) {
    if (target_ != nullptr) target_->end_request(request, now);
    return;
  }
  Record& r = push(Kind::kEndRequest);
  r.a = request;
  r.t0 = now;
}

void ObsSequencer::adaptive_event(AdaptiveEvent event, std::uint32_t epoch,
                                  Bytes bytes, Seconds now) {
  if (!buffering()) {
    if (target_ != nullptr) target_->adaptive_event(event, epoch, bytes, now);
    return;
  }
  Record& r = push(Kind::kAdaptive);
  r.op = static_cast<std::uint8_t>(event);
  r.a = epoch;
  r.u = bytes;
  r.t0 = now;
}

void ObsSequencer::cache_event(Bytes hit_bytes, Bytes miss_bytes,
                               Seconds now) {
  if (!buffering()) {
    if (target_ != nullptr) target_->cache_event(hit_bytes, miss_bytes, now);
    return;
  }
  Record& r = push(Kind::kCacheEvent);
  r.u = hit_bytes;
  r.v = miss_bytes;
  r.t0 = now;
}

void ObsSequencer::replay() {
  if (target_ == nullptr) return;
  merged_.clear();
  for (Shard& shard : shards_) {
    merged_.insert(merged_.end(), shard.records.begin(), shard.records.end());
    shard.records.clear();
  }
  if (merged_.empty()) return;
  std::sort(merged_.begin(), merged_.end(),
            [](const Record& a, const Record& b) {
              if (!(a.pos == b.pos)) return a.pos < b.pos;
              if (a.s1 != b.s1) return a.s1 < b.s1;
              return a.s2 < b.s2;
            });
  auto req_of = [this](std::uint32_t synth) {
    return synth < req_real_.size() ? req_real_[synth] : obs::kNoId;
  };
  auto sub_of = [this](std::uint32_t synth) {
    return synth < sub_real_.size() ? sub_real_[synth] : obs::kNoId;
  };
  for (const Record& r : merged_) {
    switch (r.kind) {
      case Kind::kResource:
        target_->resource_event(r.a, r.t0, r.t1, r.t2);
        break;
      case Kind::kAccess:
        target_->server_access(r.a, static_cast<IoOp>(r.op), r.b, r.u, r.v,
                               r.t0);
        break;
      case Kind::kBeginRequest: {
        const std::uint32_t real = target_->begin_request(
            r.a, static_cast<IoOp>(r.op), r.u, r.v, r.t0, r.c);
        if (r.b >= req_real_.size()) req_real_.resize(r.b + 1, obs::kNoId);
        req_real_[r.b] = real;
        break;
      }
      case Kind::kBeginSub: {
        const std::uint32_t real =
            target_->begin_sub(req_of(r.a), r.b, r.c, r.u, r.t0);
        if (r.d >= sub_real_.size()) sub_real_.resize(r.d + 1, obs::kNoId);
        sub_real_[r.d] = real;
        break;
      }
      case Kind::kSubStorage:
        target_->sub_storage(sub_of(r.a), r.t0, r.t1, r.t2, r.t3);
        break;
      case Kind::kSubNetDone:
        target_->sub_net_done(sub_of(r.a), r.t0);
        break;
      case Kind::kEndRequest:
        target_->end_request(req_of(r.a), r.t0);
        break;
      case Kind::kAdaptive:
        target_->adaptive_event(static_cast<obs::Sink::AdaptiveEvent>(r.op),
                                r.a, r.u, r.t0);
        break;
      case Kind::kCacheEvent:
        target_->cache_event(r.u, r.v, r.t0);
        break;
    }
  }
  merged_.clear();
}

// --- Runtime: queues and arena ----------------------------------------------

void Runtime::EntryRing::grow() {
  const std::size_t old_cap = buf.size();
  const std::size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
  std::vector<Entry> grown(new_cap);
  for (std::size_t i = 0; i < count; ++i) {
    grown[i] = buf[(head + i) & (old_cap - 1)];
  }
  buf = std::move(grown);
  head = 0;
}

std::uint32_t Runtime::lp_alloc_slot(Lp& lp, InlineTask&& fn) {
  const bool stored_inline = fn.stored_inline();
  lp.inline_callbacks += stored_inline ? 1 : 0;
  lp.heap_callbacks += stored_inline ? 0 : 1;
  if (lp.free_slots.empty()) {
    ++lp.pool_misses;
    const auto base =
        static_cast<std::uint32_t>(lp.chunks.size()) * kChunkSlots;
    lp.chunks.push_back(std::make_unique<Chunk>());
    lp.free_slots.reserve(lp.free_slots.size() + kChunkSlots);
    for (std::uint32_t i = kChunkSlots; i > 0; --i) {
      lp.free_slots.push_back(base + i - 1);
    }
  } else {
    ++lp.pool_hits;
  }
  const std::uint32_t index = lp.free_slots.back();
  lp.free_slots.pop_back();
  lp_slot(lp, index) = std::move(fn);
  return index;
}

void Runtime::heap_push(std::vector<Entry>& heap, const Entry& e) {
  std::size_t i = heap.size();
  heap.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!(e.key < heap[parent].key)) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = e;
}

void Runtime::heap_remove_min(std::vector<Entry>& heap) {
  const std::size_t n = heap.size() - 1;
  const Entry last = heap[n];
  heap.pop_back();
  if (n == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap[c].key < heap[best].key) best = c;
    }
    heap[hole] = heap[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!(last.key < heap[parent].key)) break;
    heap[hole] = heap[parent];
    hole = parent;
  }
  heap[hole] = last;
}

const Runtime::Entry* Runtime::lp_front(const Lp& lp) const {
  const Entry* best = nullptr;
  if (lp.now_lane.count != 0) best = &lp.now_lane.front();
  if (lp.asc_lane.count != 0) {
    const Entry& e = lp.asc_lane.front();
    if (best == nullptr || e.key < best->key) best = &e;
  }
  if (!lp.heap.empty()) {
    const Entry& e = lp.heap.front();
    if (best == nullptr || e.key < best->key) best = &e;
  }
  return best;
}

Runtime::Entry Runtime::lp_pop_min(Lp& lp) {
  const bool have_now = lp.now_lane.count != 0;
  const bool have_asc = lp.asc_lane.count != 0;
  const bool have_heap = !lp.heap.empty();
  const Key* now_k = have_now ? &lp.now_lane.front().key : nullptr;
  const Key* asc_k = have_asc ? &lp.asc_lane.front().key : nullptr;
  const Key* heap_k = have_heap ? &lp.heap.front().key : nullptr;
  const bool now_beats_asc = have_now && (!have_asc || *now_k < *asc_k);
  const Key* lane_k = now_beats_asc ? now_k : asc_k;
  if (lane_k != nullptr && (!have_heap || *lane_k < *heap_k)) {
    return now_beats_asc ? lp.now_lane.pop() : lp.asc_lane.pop();
  }
  const Entry e = lp.heap.front();
  heap_remove_min(lp.heap);
  return e;
}

void Runtime::push_local(Lp& lp, const Entry& e, bool zero_delay) {
  if (zero_delay &&
      (lp.now_lane.count == 0 || lp.now_lane.back().key < e.key)) {
    lp.now_lane.push(e);
    ++lp.now_lane_events;
  } else if (lp.asc_lane.count == 0 || !(e.key < lp.asc_lane.back().key)) {
    lp.asc_lane.push(e);
    ++lp.ascending_events;
  } else {
    heap_push(lp.heap, e);
  }
}

void Runtime::push_external(Lp& lp, const Key& key, InlineTask&& fn) {
  const Entry e{key, lp_alloc_slot(lp, std::move(fn))};
  if (lp.asc_lane.count == 0 || !(e.key < lp.asc_lane.back().key)) {
    lp.asc_lane.push(e);
    ++lp.ascending_events;
  } else {
    heap_push(lp.heap, e);
  }
}

// --- Runtime: scheduling -----------------------------------------------------

Runtime::Runtime(std::uint32_t num_lps, const Options& options)
    : options_(options), num_lps_(num_lps) {
  if (num_lps == 0) {
    throw std::invalid_argument("pdes::Runtime requires at least one LP");
  }
  if (!(options.lookahead > 0.0)) {
    throw std::invalid_argument("pdes::Runtime requires lookahead > 0");
  }
  threads_ = options.threads == 0 ? 1 : options.threads;
  window_ = options.lookahead;
  if (options.window_cap > 0.0 && options.window_cap < window_) {
    window_ = options.window_cap;
  }
  lps_ = std::vector<Lp>(num_lps_);
  execs_ = std::vector<Executor>(threads_);
  for (Executor& ex : execs_) ex.outbox.reserve(kMailboxReserve);
  sequencer_.shards_.resize(num_lps_);
  workers_.reserve(threads_ - 1);
  for (unsigned e = 1; e < threads_; ++e) {
    workers_.emplace_back([this, e] { worker_main(e); });
  }
}

Runtime::~Runtime() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::jthread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::uint32_t Runtime::current_lp() const {
  return (t_ctx.rt == this && t_ctx.dispatching) ? t_ctx.lp : kAppLp;
}

Time Runtime::now() const {
  if (t_ctx.rt == this && t_ctx.dispatching) return lps_[t_ctx.lp].now;
  return global_now_;
}

bool Runtime::idle() const {
  for (const Lp& lp : lps_) {
    if (lp.pending() != 0) return false;
  }
  return true;
}

std::uint64_t Runtime::events_dispatched() const {
  std::uint64_t total = 0;
  for (const Lp& lp : lps_) total += lp.dispatched;
  return total;
}

void Runtime::schedule(Time t, InlineTask fn) {
  schedule_on(current_lp(), t, std::move(fn));
}

void Runtime::schedule_on(std::uint32_t target, Time t, InlineTask fn) {
  if (target >= num_lps_) {
    throw std::out_of_range("pdes: schedule_on target LP out of range");
  }
  const bool in_dispatch = t_ctx.rt == this && t_ctx.dispatching;
  const std::uint32_t src = in_dispatch ? t_ctx.lp : kAppLp;
  Lp& src_lp = lps_[src];
  const double ref = in_dispatch ? src_lp.now : global_now_;
  // `!(t >= ref)` rather than `t < ref` so NaN times are rejected too.
  if (!(t >= ref)) {
    throw std::invalid_argument("cannot schedule event in the past");
  }
  Key key;
  key.time_bits = time_to_bits(t);
  key.send_bits = time_to_bits(ref);
  if (src == kAppLp && !in_dispatch) {
    // Pre-run / inter-window scheduling: a fresh root chain.
    key.tag = next_tag_++;
    key.hop_lp = kAppLp;
  } else if (src == kAppLp) {
    // LP 0 dispatch: fresh root tags in dispatch order — the deterministic
    // tie-break that stands in for the sequential engine's global seq.
    key.tag = next_tag_++;
    key.hop_lp = kAppLp;
  } else {
    // Chain continuation: inherit the root tag, bump the hop.
    key.tag = src_lp.current.tag;
    std::uint32_t hop = (src_lp.current.hop_lp >> 16) + 1;
    if (hop > 0xFFFF) hop = 0xFFFF;
    key.hop_lp = (hop << 16) | src;
  }
  key.ord = src_lp.next_ord++;
  const Entry local{key, 0};
  if (target == src) {
    Entry e = local;
    e.slot = lp_alloc_slot(src_lp, std::move(fn));
    push_local(src_lp, e, in_dispatch && t == src_lp.now);
  } else if (src == kAppLp) {
    // LP 0 only runs in stage A / between windows, when workers are parked:
    // direct pushes into any queue are safe and need no lookahead.
    push_external(lps_[target], key, std::move(fn));
  } else {
    execs_[t_ctx.exec].outbox.push_back(MailEntry{key, target, std::move(fn)});
  }
}

ObsAnchor Runtime::take_obs_anchor() {
  Lp& lp = lps_[current_lp()];
  ObsAnchor anchor;
  anchor.key = lp.obs_key;
  anchor.seq = lp.obs_anchored ? lp.obs_seq : lp.obs_seq++;
  return anchor;
}

void Runtime::adopt_obs_anchor(const ObsAnchor& anchor) {
  Lp& lp = lps_[current_lp()];
  lp.obs_key = anchor.key;
  lp.obs_seq = anchor.seq;
  lp.obs_sub = 0;
  lp.obs_anchored = true;
}

// --- Runtime: the window protocol -------------------------------------------

void Runtime::run_lp(std::uint32_t lp_id, double end, unsigned exec) {
  Lp& lp = lps_[lp_id];
  const TlsContext saved = t_ctx;
  t_ctx = TlsContext{this, lp_id, exec, true};
  for (;;) {
    const Entry* front = lp_front(lp);
    if (front == nullptr || !(bits_to_time(front->key.time_bits) < end)) {
      break;
    }
    const Entry e = lp_pop_min(lp);
    lp.now = bits_to_time(e.key.time_bits);
    lp.current = e.key;
    lp.obs_key = e.key;
    lp.obs_seq = 0;
    lp.obs_sub = 0;
    lp.obs_anchored = false;
    ++lp.dispatched;
    // Run in place: the slot stays off the free list while the callback
    // runs, so new events land in other slots (same discipline as the
    // sequential engine).
    InlineTask& task = lp_slot(lp, e.slot);
    task();
    task.reset();
    lp.free_slots.push_back(e.slot);
  }
  t_ctx = saved;
}

void Runtime::drain_mailboxes() {
  drain_scratch_.clear();
  for (Executor& ex : execs_) {
    mailbox_enqueues_ += ex.outbox.size();
    for (MailEntry& m : ex.outbox) drain_scratch_.push_back(std::move(m));
    ex.outbox.clear();
  }
  if (drain_scratch_.empty()) return;
  // Landing order must not depend on which worker carried which entry: sort
  // by key (unique, so the order is total) before insertion.  This also
  // keeps the per-LP lane routing — and with it the engine counters —
  // identical at every worker count.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const MailEntry& a, const MailEntry& b) { return a.key < b.key; });
  for (MailEntry& m : drain_scratch_) {
    if (bits_to_time(m.key.time_bits) < window_end_) ++lookahead_violations_;
    push_external(lps_[m.target], m.key, std::move(m.task));
  }
  drain_scratch_.clear();
}

void Runtime::run_windows(double limit) {
  const double hard_end =
      limit < kInf ? std::nextafter(limit, kInf) : kInf;
  for (;;) {
    double base = kInf;
    for (const Lp& lp : lps_) {
      const Entry* front = lp_front(lp);
      if (front != nullptr) {
        const double t = bits_to_time(front->key.time_bits);
        if (t < base) base = t;
      }
    }
    if (base == kInf || base > limit) break;
    double end = base + window_;
    if (end > hard_end) end = hard_end;
    window_end_ = end;
    for (const Lp& lp : lps_) {
      const Entry* front = lp_front(lp);
      if (front != nullptr && !(bits_to_time(front->key.time_bits) < end)) {
        ++window_stalls_;
      }
    }
    // Stage A: client-side logic; may push directly into any LP.
    run_lp(kAppLp, end, 0);
    // Stage B: the server/NIC LPs, sharded over the worker team.
    if (num_lps_ > 1) {
      if (threads_ == 1) {
        for (std::uint32_t lp = 1; lp < num_lps_; ++lp) run_lp(lp, end, 0);
      } else {
        running_.store(threads_ - 1, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        epoch_.notify_all();
        for (std::uint32_t lp = 1; lp < num_lps_; lp += threads_) {
          run_lp(lp, end, 0);
        }
        for (int spin = 0; spin < 4096; ++spin) {
          if (running_.load(std::memory_order_acquire) == 0) break;
        }
        for (;;) {
          const unsigned r = running_.load(std::memory_order_acquire);
          if (r == 0) break;
          running_.wait(r, std::memory_order_acquire);
        }
      }
    }
    drain_mailboxes();
    sequencer_.replay();
    ++windows_;
    std::uint64_t depth = 0;
    for (const Lp& lp : lps_) depth += lp.pending();
    if (depth > peak_depth_) peak_depth_ = depth;
  }
  sequencer_.replay();
  double horizon = global_now_;
  for (const Lp& lp : lps_) {
    if (lp.now > horizon) horizon = lp.now;
  }
  global_now_ = horizon;
}

void Runtime::worker_main(unsigned exec) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t cur = epoch_.load(std::memory_order_acquire);
    if (cur == seen) {
      for (int spin = 0; spin < 4096 && cur == seen; ++spin) {
        cur = epoch_.load(std::memory_order_acquire);
      }
      while (cur == seen) {
        epoch_.wait(seen, std::memory_order_acquire);
        cur = epoch_.load(std::memory_order_acquire);
      }
    }
    seen = cur;
    if (stop_.load(std::memory_order_acquire)) return;
    const double end = window_end_;
    for (std::uint32_t lp = 1 + exec; lp < num_lps_; lp += threads_) {
      run_lp(lp, end, exec);
    }
    running_.fetch_sub(1, std::memory_order_acq_rel);
    running_.notify_all();
  }
}

Time Runtime::run() {
  run_windows(kInf);
  return global_now_;
}

Time Runtime::run_until(Time limit) {
  run_windows(limit);
  return global_now_;
}

Simulator::Stats Runtime::stats() const {
  Simulator::Stats s;
  for (const Lp& lp : lps_) {
    s.events_dispatched += lp.dispatched;
    s.now_lane_events += lp.now_lane_events;
    s.ascending_events += lp.ascending_events;
    s.pool_hits += lp.pool_hits;
    s.pool_misses += lp.pool_misses;
    s.pool_chunks += lp.chunks.size();
    s.inline_callbacks += lp.inline_callbacks;
    s.heap_callbacks += lp.heap_callbacks;
  }
  s.peak_queue_depth = peak_depth_;
  s.mailbox_enqueues = mailbox_enqueues_;
  s.window_stalls = window_stalls_;
  s.lookahead_violations =
      lookahead_violations_ + off_lp_submits_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace harl::sim::pdes
