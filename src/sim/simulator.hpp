// Discrete-event simulation core.
//
// The simulated hybrid PFS runs entirely inside this single-threaded,
// deterministic event loop: clients, servers, NICs and disks schedule
// callbacks at future simulated times.  Ties are broken by insertion order so
// runs are bit-reproducible regardless of platform.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.hpp"

namespace harl::sim {

/// Simulated time in seconds from simulation start.
using Time = Seconds;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  0 before the first event fires.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t`; requires t >= now().
  void schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` `delay` seconds from now; requires delay >= 0.
  void schedule_after(Time delay, std::function<void()> fn);

  /// Runs until the event queue drains.  Returns the final time.
  Time run();

  /// Runs until the queue drains or simulated time would exceed `limit`
  /// (events after `limit` stay queued).  Returns now().
  Time run_until(Time limit);

  /// True when no events are pending.
  bool idle() const { return queue_.empty(); }

  /// Total events dispatched since construction (for micro-benchmarks).
  std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void dispatch_next();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace harl::sim
