// Discrete-event simulation core.
//
// The simulated hybrid PFS runs entirely inside this single-threaded,
// deterministic event loop: clients, servers, NICs and disks schedule
// callbacks at future simulated times.  Ties are broken by insertion order so
// runs are bit-reproducible regardless of platform.
//
// Throughput engineering (the Tracing/Running phases replay millions of
// events per figure):
//   * Callbacks are `InlineTask`s — no heap allocation per event for the
//     pointer-capturing lambdas the PFS model schedules.
//   * Tasks live in a slab arena of stable slots; the priority structures
//     only move 16-byte packed keys.  At steady state the arena's free list
//     serves every slot, so scheduling and dispatching allocate nothing.
//   * The ordering key (time, seq, slot) is packed into one unsigned 128-bit
//     integer: simulated time is non-negative, and IEEE-754 doubles >= +0.0
//     order identically to their raw bit patterns, so
//     `time_bits << 64 | seq << 24 | slot` compares (time, seq) with a
//     single branch-free wide compare.
//   * Three structures hold pending events, all ordered by the same key:
//       - the "now lane", a FIFO ring for zero-delay events (the
//         event-loop-turn handoffs in client.cpp, network.cpp, runner.cpp);
//       - the "ascending lane", a FIFO ring absorbing any event whose key is
//         >= the lane's current tail.  DES schedules are near-sorted (FIFO
//         resources complete in increasing time, and `now` only moves
//         forward), so most insertions append here in O(1) — the degenerate
//         single-rung case of a ladder queue;
//       - a 4-ary implicit heap (shallower and more cache-friendly than the
//         binary `std::priority_queue`) for the out-of-order remainder.
//     Each structure keeps its minimum at the front, and dispatch takes the
//     global minimum of the three fronts, so the dispatch order is
//     bit-identical to a single totally-ordered queue.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/units.hpp"
#include "src/sim/inline_task.hpp"

namespace harl::obs {
class Sink;
}  // namespace harl::obs

namespace harl::sim {

namespace pdes {
class Runtime;
}  // namespace pdes

/// Simulated time in seconds from simulation start.
using Time = Seconds;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  0 before the first event fires.
  Time now() const { return pdes_ != nullptr ? pdes_now() : now_; }

  /// Schedules `fn` at absolute simulated time `t`; requires t >= now().
  void schedule_at(Time t, InlineTask fn);

  /// Schedules `fn` `delay` seconds from now; requires delay >= 0.
  void schedule_after(Time delay, InlineTask fn);

  /// Runs until the event queue drains.  Returns the final time.
  Time run();

  /// Runs until the queue drains or simulated time would exceed `limit`
  /// (events after `limit` stay queued).  Returns now().
  Time run_until(Time limit);

  /// True when no events are pending.
  bool idle() const {
    if (pdes_ != nullptr) return pdes_idle();
    return heap_.empty() && now_lane_.count == 0 && asc_lane_.count == 0;
  }

  /// Total events dispatched since construction (for micro-benchmarks).
  std::uint64_t events_dispatched() const {
    return pdes_ != nullptr ? pdes_events_dispatched() : dispatched_;
  }

  // --- conservative PDES (src/sim/pdes.hpp) --------------------------------

  /// Attaches a parallel runtime: now()/schedule/run/stats forward to it and
  /// the sequential queue goes unused.  Attach before any event is
  /// scheduled; the runtime must outlive every run.  nullptr detaches.
  void attach_pdes(pdes::Runtime* runtime) { pdes_ = runtime; }
  pdes::Runtime* pdes() const { return pdes_; }

  /// Logical process of the currently running dispatch; 0 (the client-side
  /// LP, also the answer for purely sequential runs) outside any dispatch.
  std::uint32_t current_lp() const;

  /// Schedules onto logical process `lp` under PDES; plain schedule_at
  /// without a runtime (the `lp` is then only a routing annotation).
  void schedule_on(std::uint32_t lp, Time t, InlineTask fn);

  // --- parked continuations ------------------------------------------------

  /// Handle to a task parked in the event arena (see `park`).
  using TaskHandle = std::uint32_t;

  /// Parks a task in the arena and returns a handle to it.  Multi-hop
  /// completion chains (e.g. Network's store-and-forward second hop) park
  /// their continuation and capture the 4-byte handle instead of the task
  /// itself, which keeps the chaining lambdas inside InlineTask's in-place
  /// buffer.  Every parked task must eventually be released through
  /// `fire_parked` (or die with the simulator).
  TaskHandle park(InlineTask fn);

  /// Invokes and releases a parked task.  The task runs in place in its
  /// arena slot; the slot returns to the free list after it completes, so
  /// the task may park new work (which lands in other slots).
  void fire_parked(TaskHandle handle);

  // --- instrumentation -----------------------------------------------------

  /// Allocation/throughput counters for the engine (see harl_sim stats=1).
  struct Stats {
    std::uint64_t events_dispatched = 0;
    std::uint64_t peak_queue_depth = 0;  ///< max pending events (all queues)
    std::uint64_t now_lane_events = 0;   ///< zero-delay events (FIFO lane)
    std::uint64_t ascending_events = 0;  ///< in-order appends (no heap sift)
    std::uint64_t pool_hits = 0;         ///< slots served from the free list
    std::uint64_t pool_misses = 0;       ///< slot requests that grew the arena
    std::uint64_t pool_chunks = 0;       ///< arena chunks allocated (the only
                                         ///< steady-state-amortized allocation)
    std::uint64_t inline_callbacks = 0;  ///< tasks stored in-place
    std::uint64_t heap_callbacks = 0;    ///< tasks that spilled to the heap
    // PDES counters (all 0 for sequential runs; deterministic — identical
    // at every worker count — under a pdes::Runtime):
    std::uint64_t mailbox_enqueues = 0;  ///< cross-LP sends buffered in
                                         ///< per-worker mailboxes (stage B)
    std::uint64_t window_stalls = 0;     ///< (LP, window) pairs with pending
                                         ///< work but nothing executable
    std::uint64_t lookahead_violations = 0;  ///< deliveries inside the window
                                             ///< or off-owner-LP submissions
                                             ///< — must be 0
  };
  Stats stats() const;

  /// Observability sink shared by every component built on this simulator
  /// (see src/obs/sink.hpp).  The simulator itself never calls it — the
  /// dispatch loop stays untouched — it only distributes the pointer so
  /// instrumented components (FifoResource, DataServer, Client) can branch
  /// on it.  nullptr (the default) disables all instrumentation.
  void set_observer(obs::Sink* observer) { observer_ = observer; }
  obs::Sink* observer() const { return observer_; }

 private:
#if defined(__SIZEOF_INT128__)
  /// Packed ordering key: `time_bits(t) << 64 | seq << 24 | slot`.  One wide
  /// unsigned compare realises the (time, seq) lexicographic order — seq is
  /// unique, so the order is total and the slot bits never tie-break.
  __extension__ typedef unsigned __int128 EventKey;
#else
#error "simulator event keys require a 128-bit integer type"
#endif

  /// Sentinel larger than every real key (its time bits decode to NaN, which
  /// schedule_at rejects), so empty queues drop out of min-of-fronts.
  static constexpr EventKey no_key() { return ~EventKey{0}; }

  /// Bits reserved for the arena slot index (low field of the key).
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kMaxSlots = std::uint32_t{1} << kSlotBits;
  /// Bits left for seq: 64 - 24 = 40 (~10^12 events before exhaustion).
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kSlotBits);

  static EventKey make_key(Time t, std::uint64_t seq, std::uint32_t slot) {
    // +0.0 canonicalizes -0.0 so equal times always pack to equal bits.
    const double canonical = t + 0.0;
    std::uint64_t time_bits;
    std::memcpy(&time_bits, &canonical, sizeof(time_bits));
    return (static_cast<EventKey>(time_bits) << 64) | (seq << kSlotBits) | slot;
  }
  static Time key_time(EventKey key) {
    const auto time_bits = static_cast<std::uint64_t>(key >> 64);
    double t;
    std::memcpy(&t, &time_bits, sizeof(t));
    return t;
  }
  static std::uint32_t key_slot(EventKey key) {
    return static_cast<std::uint32_t>(key) & (kMaxSlots - 1);
  }

  // Slab arena of task slots.  Chunked so slot addresses are stable (the
  // queue stores indices); undispatched tasks are destroyed with the chunks.
  static constexpr std::uint32_t kChunkSlots = 256;
  struct Chunk {
    InlineTask slots[kChunkSlots];
  };

  InlineTask& slot(std::uint32_t index) {
    return chunks_[index / kChunkSlots]->slots[index % kChunkSlots];
  }
  std::uint32_t alloc_slot(InlineTask&& fn);
  void free_slot(std::uint32_t index) { free_slots_.push_back(index); }

  /// FIFO ring buffer of keys (power-of-two capacity).  Both lanes push at
  /// the tail and pop at the head; their contents are already sorted, so the
  /// head is the lane's minimum.
  struct Ring {
    std::vector<EventKey> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    EventKey front() const { return buf[head]; }
    EventKey back() const { return buf[(head + count - 1) & (buf.size() - 1)]; }
    void push(EventKey key) {
      if (count == buf.size()) grow();
      buf[(head + count) & (buf.size() - 1)] = key;
      ++count;
    }
    EventKey pop() {
      const EventKey key = buf[head];
      head = (head + 1) & (buf.size() - 1);
      --count;
      return key;
    }
    void grow();
  };

  // 4-ary implicit heap over packed keys.
  void heap_push(EventKey key);
  /// Removes the heap minimum (caller has already read heap_[0]).
  void heap_remove_min();

  /// True while events are pending; fills `out` with the global minimum.
  bool peek_next(EventKey& out) const;
  void dispatch_next();
  void note_depth();

  // Out-of-line PDES forwards so this header needs only the forward
  // declaration of pdes::Runtime.
  Time pdes_now() const;
  bool pdes_idle() const;
  std::uint64_t pdes_events_dispatched() const;

  std::vector<EventKey> heap_;
  Ring now_lane_;  ///< events scheduled at exactly now()
  Ring asc_lane_;  ///< events appended in ascending key order

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> free_slots_;

  obs::Sink* observer_ = nullptr;
  pdes::Runtime* pdes_ = nullptr;

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t peak_depth_ = 0;
  std::uint64_t now_lane_events_ = 0;
  std::uint64_t ascending_events_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t pool_misses_ = 0;
  std::uint64_t inline_callbacks_ = 0;
  std::uint64_t heap_callbacks_ = 0;
};

}  // namespace harl::sim
