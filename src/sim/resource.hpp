// FIFO service resources.
//
// A `FifoResource` models anything that serves one job at a time in arrival
// order with a service time known at submission: a disk spindle, an SSD
// channel, a NIC.  Because service times are fixed at submission, the queue
// can be represented by a single "next free" timestamp, which keeps the
// simulation O(log n) per job and deterministic.
//
// `JoinCounter` aggregates completion of a fan-out (a file request split into
// per-server sub-requests finishes when the last sub-request does).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/inline_task.hpp"
#include "src/sim/simulator.hpp"

namespace harl::sim {

class FifoResource {
 public:
  /// `name` is used only for diagnostics.
  FifoResource(Simulator& sim, std::string name);

  /// Enqueues a job with the given service time; `on_complete` fires at the
  /// simulated time the job finishes (queueing delay + service).
  /// Requires service >= 0.
  void submit(Seconds service, InlineTask on_complete);

  /// Like submit(), but fires `on_complete` on logical process `done_lp`
  /// when a PDES runtime is attached (identical to submit() without one).
  /// The resource itself must be driven from its owner LP — the "next free"
  /// horizon is only meaningful when arrivals are processed in time order.
  void submit_to(std::uint32_t done_lp, Seconds service,
                 InlineTask on_complete);

  /// Logical process owning this resource under PDES (see src/sim/pdes.hpp);
  /// 0 — the client-side LP — by default.  Completions of plain submit()
  /// calls fire on the owner LP.
  void set_lp(std::uint32_t lp) { lp_ = lp; }
  std::uint32_t lp() const { return lp_; }

  /// Time at which the resource next becomes free (== now when idle).
  Time next_free() const;

  /// Seconds this resource has spent (or is committed to spend) serving jobs.
  Seconds busy_time() const { return busy_; }

  /// Jobs submitted so far.
  std::uint64_t jobs() const { return jobs_; }

  /// Sum over jobs of (start - arrival): aggregate queueing delay.
  Seconds total_queue_delay() const { return queue_delay_; }

  const std::string& name() const { return name_; }

  /// Zeroes the busy/jobs/queue-delay counters (between experiment phases).
  /// The committed `next_free` horizon is preserved.
  void reset_stats();

  /// Fraction of [0, horizon] spent busy; horizon is usually the makespan.
  double utilization(Seconds horizon) const {
    return horizon > 0.0 ? busy_ / horizon : 0.0;
  }

  /// Binds this resource to a trace track of the simulator's observer; every
  /// subsequent job reports its arrival/start/finish.  With no observer (or
  /// no bound track) submit() performs one pointer comparison extra.
  void set_obs_track(std::uint32_t track) { obs_track_ = track; }
  std::uint32_t obs_track() const { return obs_track_; }

 private:
  Simulator& sim_;
  std::string name_;
  Time next_free_ = 0.0;
  Seconds busy_ = 0.0;
  Seconds queue_delay_ = 0.0;
  std::uint64_t jobs_ = 0;
  std::uint32_t obs_track_ = 0xFFFFFFFFu;  // obs::kNoId
  std::uint32_t lp_ = 0;
};

/// Calls `on_all_done` once `expected` child completions have been reported.
/// Create via std::make_shared and capture the shared_ptr in each child's
/// completion callback; the counter frees itself when the last child fires.
class JoinCounter {
 public:
  JoinCounter(std::uint64_t expected, InlineTask on_all_done);

  /// Reports one child completion.  Must be called exactly `expected` times.
  void done();

  std::uint64_t remaining() const { return remaining_; }

 private:
  std::uint64_t remaining_;
  InlineTask on_all_done_;
};

}  // namespace harl::sim
