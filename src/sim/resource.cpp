#include "src/sim/resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/obs/sink.hpp"
#include "src/sim/pdes.hpp"

namespace harl::sim {

FifoResource::FifoResource(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void FifoResource::submit(Seconds service, InlineTask on_complete) {
  submit_to(lp_, service, std::move(on_complete));
}

void FifoResource::submit_to(std::uint32_t done_lp, Seconds service,
                             InlineTask on_complete) {
  if (service < 0.0) throw std::invalid_argument("negative service time");
  if (pdes::Runtime* rt = sim_.pdes();
      rt != nullptr && rt->current_lp() != lp_) [[unlikely]] {
    // Off-owner submission: next_free_ would be read/written outside the
    // owner LP's time order.  Counted into lookahead_violations (must be 0).
    rt->note_off_lp_submit();
  }
  const Time arrival = sim_.now();
  const Time start = std::max(arrival, next_free_);
  const Time finish = start + service;
  next_free_ = finish;
  busy_ += service;
  queue_delay_ += start - arrival;
  ++jobs_;
  if (obs::Sink* obs = sim_.observer();
      obs != nullptr && obs_track_ != obs::kNoId) [[unlikely]] {
    obs->resource_event(obs_track_, arrival, start, finish);
  }
  sim_.schedule_on(done_lp, finish, std::move(on_complete));
}

Time FifoResource::next_free() const { return next_free_; }

void FifoResource::reset_stats() {
  busy_ = 0.0;
  queue_delay_ = 0.0;
  jobs_ = 0;
}

JoinCounter::JoinCounter(std::uint64_t expected, InlineTask on_all_done)
    : remaining_(expected), on_all_done_(std::move(on_all_done)) {
  if (expected == 0) throw std::invalid_argument("JoinCounter needs >= 1 child");
}

void JoinCounter::done() {
  if (remaining_ == 0) throw std::logic_error("JoinCounter over-notified");
  if (--remaining_ == 0 && on_all_done_) on_all_done_();
}

}  // namespace harl::sim
