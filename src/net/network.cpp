#include "src/net/network.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "src/obs/sink.hpp"
#include "src/sim/pdes.hpp"

namespace harl::net {

NetworkParams gigabit_ethernet() {
  // 1 Gb/s minus protocol overhead: ~117 MB/s effective; per-message cost
  // reflects pipelined TCP streaming rather than a full round trip.
  return NetworkParams{1.0 / (117.0 * 1024.0 * 1024.0), 40e-6};
}

NetworkParams ten_gigabit_ethernet() {
  return NetworkParams{1.0 / (1170.0 * 1024.0 * 1024.0), 20e-6};
}

Network::Network(sim::Simulator& sim, NetworkParams params,
                 std::size_t num_clients, std::size_t num_servers)
    : sim_(sim), params_(params) {
  if (num_clients == 0 || num_servers == 0) {
    throw std::invalid_argument("network needs >= 1 client and server link");
  }
  client_links_.reserve(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) {
    client_links_.push_back(std::make_unique<sim::FifoResource>(
        sim, "client_nic_" + std::to_string(i)));
  }
  server_links_.reserve(num_servers);
  for (std::size_t i = 0; i < num_servers; ++i) {
    server_links_.push_back(std::make_unique<sim::FifoResource>(
        sim, "server_nic_" + std::to_string(i)));
  }
}

void Network::attach_observer() {
  obs::Sink* obs = sim_.observer();
  if (obs == nullptr) return;
  for (std::size_t i = 0; i < client_links_.size(); ++i) {
    client_links_[i]->set_obs_track(
        obs->track(client_links_[i]->name(), obs::TrackKind::kClientNic,
                   static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = 0; i < server_links_.size(); ++i) {
    server_links_[i]->set_obs_track(
        obs->track(server_links_[i]->name(), obs::TrackKind::kServerNic,
                   static_cast<std::uint32_t>(i)));
  }
}

void Network::attach_pdes(const std::vector<std::uint32_t>& client_lps,
                          const std::vector<std::uint32_t>& server_lps) {
  if (client_lps.size() != client_links_.size() ||
      server_lps.size() != server_links_.size()) {
    throw std::invalid_argument("network attach_pdes: one LP per link");
  }
  for (std::size_t i = 0; i < client_links_.size(); ++i) {
    client_links_[i]->set_lp(client_lps[i]);
  }
  for (std::size_t i = 0; i < server_links_.size(); ++i) {
    server_links_[i]->set_lp(server_lps[i]);
  }
  pdes_ = true;
}

void Network::two_hop_pdes(sim::FifoResource& src, sim::FifoResource& dst,
                           Seconds hop, std::uint32_t final_lp,
                           sim::InlineTask on_done) {
  // Parallel store-and-forward: the first-hop completion is an event on the
  // destination link's LP, and the chained completion lands on `final_lp`
  // (the server LP for client->server payloads — the disk submit that
  // follows is then LP-local — and the app LP for everything arriving back
  // at client-side logic).  The continuation rides inside the chain closure
  // instead of the sequential engine's parked-task arena, which is
  // single-threaded; the closures spill to the heap, a cost only the PDES
  // path pays.
  sim::pdes::Runtime* rt = sim_.pdes();
  const std::uint32_t dst_lp = dst.lp();
  if (rt->current_lp() == src.lp()) {
    // Already on the source link's LP (the server->client read path starts
    // from the disk completion on the server LP): chain in place.
    src.submit_to(dst_lp, hop,
                  [&dst, hop, final_lp, cb = std::move(on_done)]() mutable {
                    dst.submit_to(final_lp, hop, std::move(cb));
                  });
    return;
  }
  // Issued off the source LP (client-side logic on the app LP): relay the
  // first hop onto it at the same simulated time, carrying the issuing
  // dispatch's observability anchor so the source link's trace event
  // replays at exactly the position the sequential engine emitted it.
  const sim::pdes::ObsAnchor anchor = rt->take_obs_anchor();
  sim_.schedule_on(
      src.lp(), sim_.now(),
      [this, &src, &dst, hop, dst_lp, final_lp, anchor,
       cb = std::move(on_done)]() mutable {
        sim_.pdes()->adopt_obs_anchor(anchor);
        src.submit_to(dst_lp, hop,
                      [&dst, hop, final_lp, cb2 = std::move(cb)]() mutable {
                        dst.submit_to(final_lp, hop, std::move(cb2));
                      });
      });
}

void Network::two_hop(sim::FifoResource& src, sim::FifoResource& dst,
                      Seconds hop, sim::InlineTask on_done) {
  // Store-and-forward: the payload serializes on the source link, then on
  // the destination link.  The completion task is parked in the simulator's
  // arena and chained by its 4-byte handle — capturing the task itself would
  // push both chaining lambdas past InlineTask's in-place buffer and cost a
  // heap allocation per transfer.
  const sim::Simulator::TaskHandle done = sim_.park(std::move(on_done));
  sim::Simulator* sim = &sim_;
  src.submit(hop, [sim, &dst, hop, done] {
    dst.submit(hop, [sim, done] { sim->fire_parked(done); });
  });
}

void Network::transfer(std::size_t client, std::size_t server, Bytes size,
                       Direction dir, sim::InlineTask on_done) {
  sim::FifoResource& src = dir == Direction::kClientToServer
                               ? client_link(client)
                               : server_link(server);
  sim::FifoResource& dst = dir == Direction::kClientToServer
                               ? server_link(server)
                               : client_link(client);
  if (pdes_) {
    const std::uint32_t final_lp = dir == Direction::kClientToServer
                                       ? dst.lp()
                                       : sim::pdes::kAppLp;
    two_hop_pdes(src, dst, wire_time(size), final_lp, std::move(on_done));
    return;
  }
  two_hop(src, dst, wire_time(size), std::move(on_done));
}

void Network::push_transfer(std::size_t client, std::size_t server, Bytes size,
                            sim::InlineTask on_done) {
  if (pdes_) {
    two_hop_pdes(client_link(client), server_link(server), wire_time(size),
                 sim::pdes::kAppLp, std::move(on_done));
    return;
  }
  two_hop(client_link(client), server_link(server), wire_time(size),
          std::move(on_done));
}

void Network::client_transfer(std::size_t from, std::size_t to, Bytes size,
                              sim::InlineTask on_done) {
  if (from == to) {
    sim_.schedule_after(0.0, std::move(on_done));
    return;
  }
  if (pdes_) {
    two_hop_pdes(client_link(from), client_link(to), wire_time(size),
                 sim::pdes::kAppLp, std::move(on_done));
    return;
  }
  two_hop(client_link(from), client_link(to), wire_time(size),
          std::move(on_done));
}

NetworkParams profile_network(const NetworkParams& actual, int samples,
                              Bytes probe_size) {
  if (samples < 1) throw std::invalid_argument("samples must be >= 1");
  if (probe_size < 2) throw std::invalid_argument("probe_size too small");

  // One client node, one server node, as in the paper's estimation setup.
  const Bytes small = probe_size / 2;
  Seconds total[2] = {0.0, 0.0};
  const Bytes sizes[2] = {small, probe_size};
  for (int which = 0; which < 2; ++which) {
    sim::Simulator sim;
    Network nw(sim, actual, 1, 1);
    for (int i = 0; i < samples; ++i) {
      // Sequential ping-style transfers; each is independent because the
      // simulator drains between submissions.
      nw.transfer(0, 0, sizes[which], Direction::kServerToClient, [] {});
      sim.run();
    }
    total[which] = sim.now();
  }

  // Each transfer crosses two links: T(s) = 2*latency + 2*s*per_byte.
  const double n = static_cast<double>(samples);
  const double t_small = total[0] / n;
  const double t_large = total[1] / n;
  NetworkParams fitted;
  fitted.per_byte = (t_large - t_small) /
                    (2.0 * static_cast<double>(sizes[1] - sizes[0]));
  fitted.message_latency =
      (t_small - 2.0 * static_cast<double>(sizes[0]) * fitted.per_byte) / 2.0;
  return fitted;
}

}  // namespace harl::net
