// Cluster interconnect model.
//
// The paper's testbed uses Gigabit Ethernet; its cost model reduces the
// network to a unit-byte transfer time `t` (Table I).  Here each endpoint
// (client NIC, server NIC) is a FIFO link resource; a transfer serializes on
// the source link and then on the destination link (store-and-forward).  This
// produces the two effects the evaluation depends on: a server NIC caps what
// one fast SSD server can deliver, and a client NIC caps what one process can
// ingest from many servers.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/units.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace harl::net {

struct NetworkParams {
  Seconds per_byte = 0.0;        ///< `t` in the paper's Table I
  Seconds message_latency = 0.0; ///< fixed per-transfer overhead
};

/// Gigabit Ethernet: ~117 MB/s effective, ~80 us message latency.
NetworkParams gigabit_ethernet();

/// 10 GbE for sensitivity/extension experiments.
NetworkParams ten_gigabit_ethernet();

enum class Direction { kClientToServer, kServerToClient };

class Network {
 public:
  Network(sim::Simulator& sim, NetworkParams params, std::size_t num_clients,
          std::size_t num_servers);

  /// Moves `size` bytes between client `client` and server `server`;
  /// `on_done` fires when the last byte clears the destination link.
  void transfer(std::size_t client, std::size_t server, Bytes size,
                Direction dir, sim::InlineTask on_done);

  /// Client-to-client transfer (the shuffle phase of two-phase collective
  /// I/O).  Same-node transfers (from == to) complete on the next event-loop
  /// turn without consuming link time.
  void client_transfer(std::size_t from, std::size_t to, Bytes size,
                       sim::InlineTask on_done);

  /// Client-to-server transfer whose completion runs with client-side logic
  /// (under PDES: on the app LP, not the destination server's LP).  For
  /// client-driven background pushes — cache fills — where the completion
  /// submits device work: issuing that submit from the app LP makes
  /// same-time arrivals at the device sort in client dispatch order, which
  /// is exactly the order the sequential engine produces when it runs the
  /// completion synchronously inside a client-side dispatch.  Sequentially
  /// this is identical to transfer(kClientToServer).
  void push_transfer(std::size_t client, std::size_t server, Bytes size,
                     sim::InlineTask on_done);

  const NetworkParams& params() const { return params_; }
  std::size_t num_clients() const { return client_links_.size(); }
  std::size_t num_servers() const { return server_links_.size(); }

  sim::FifoResource& client_link(std::size_t i) { return *client_links_.at(i); }
  sim::FifoResource& server_link(std::size_t i) { return *server_links_.at(i); }
  const sim::FifoResource& client_link(std::size_t i) const {
    return *client_links_.at(i);
  }
  const sim::FifoResource& server_link(std::size_t i) const {
    return *server_links_.at(i);
  }

  /// Registers one trace track per NIC link with the simulator's observer
  /// (client links as kClientNic, server links as kServerNic) and binds the
  /// links to them.  Call once, before any traffic.
  void attach_observer();

  /// Assigns every link to its PDES logical process (client link i to
  /// client_lps[i], server link j to server_lps[j]) and switches transfers
  /// to the parallel store-and-forward chain: each hop completion is an
  /// event on the next link's LP, so link state is only touched in LP time
  /// order and every hop costs at least the message latency the PDES
  /// lookahead is derived from.  Call once, before any traffic.
  void attach_pdes(const std::vector<std::uint32_t>& client_lps,
                   const std::vector<std::uint32_t>& server_lps);

 private:
  Seconds wire_time(Bytes size) const {
    return params_.message_latency + static_cast<double>(size) * params_.per_byte;
  }

  void two_hop(sim::FifoResource& src, sim::FifoResource& dst, Seconds hop,
               sim::InlineTask on_done);
  void two_hop_pdes(sim::FifoResource& src, sim::FifoResource& dst,
                    Seconds hop, std::uint32_t final_lp,
                    sim::InlineTask on_done);

  sim::Simulator& sim_;
  NetworkParams params_;
  std::vector<std::unique_ptr<sim::FifoResource>> client_links_;
  std::vector<std::unique_ptr<sim::FifoResource>> server_links_;
  bool pdes_ = false;  ///< attach_pdes() called: route via two_hop_pdes
};

/// Estimates the unit transfer time `t` the way the paper does: repeated
/// transfers between one client node and one server node, averaged.
/// Returns the fitted NetworkParams.
NetworkParams profile_network(const NetworkParams& actual, int samples = 1000,
                              Bytes probe_size = 1 * MiB);

}  // namespace harl::net
