// Plain-text table/series printing for bench binaries and examples.
//
// Every figure-reproduction bench prints the same rows/series the paper
// plots; this keeps the formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace harl::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Right-pads each column to its widest cell, separated by two spaces.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision numeric formatting helpers for table cells.
std::string cell(double value, int precision = 1);
std::string cell_ratio(double value, double baseline);  ///< "+73.4%" style

}  // namespace harl::harness
