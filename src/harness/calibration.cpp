#include "src/harness/calibration.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "src/common/rng.hpp"
#include "src/storage/hdd.hpp"
#include "src/storage/profiler.hpp"
#include "src/storage/ssd.hpp"

namespace harl::harness {

namespace {

/// Mean service time of random-offset accesses at `size`, divided by `size`:
/// the effective unit transfer time a black-box server benchmark observes.
Seconds effective_unit_time(storage::StorageDevice& device, IoOp op, Bytes size,
                            const CalibrationOptions& options) {
  device.reset();
  Rng rng(options.seed ^ 0xBEEF);
  Seconds total = 0.0;
  // Random, widely separated offsets so HDD positioning is fully exposed.
  for (int i = 0; i < options.beta_samples; ++i) {
    const Bytes offset = rng.uniform_u64(0, 1u << 20) * size;
    total += device.service_time(op, offset, size);
  }
  device.reset();
  return total / static_cast<double>(options.beta_samples) /
         static_cast<double>(size);
}

storage::TierProfile measured_or_nominal(storage::StorageDevice& device,
                                         const CalibrationOptions& options) {
  if (!options.measure_devices) return device.profile();
  storage::ProfilerOptions popts;
  popts.samples_per_size = options.samples_per_size;
  popts.seed = options.seed;
  // Sequential single-stream probes: the paper calibrates startup against
  // one otherwise-idle server, where an HDD shows its sequential startup.
  popts.random_offsets = false;
  storage::TierProfile fitted = storage::profile_device(device, popts);
  if (options.effective_beta) {
    fitted.read.per_byte = effective_unit_time(
        device, IoOp::kRead, options.beta_reference_size, options);
    fitted.write.per_byte = effective_unit_time(
        device, IoOp::kWrite, options.beta_reference_size, options);
  }
  return fitted;
}

/// Validates and canonicalizes one tier's configured factor vector
/// (mirroring ClusterConfig::effective_tiers() for the two-tier fields).
std::vector<double> canonical_factors(std::vector<double> factors,
                                      std::size_t count, const char* tier) {
  if (!factors.empty() && factors.size() != count) {
    throw std::invalid_argument(std::string(tier) + " has " +
                                std::to_string(factors.size()) +
                                " device factors for " +
                                std::to_string(count) + " servers");
  }
  storage::canonicalize_device_factors(factors);
  return factors;
}

/// Per-slot measured speed factors for one tier.  The paper benchmarks one
/// server per *class*; with per-device aging each distinct factor value is
/// its own class, so we probe one aged device per distinct factor and report
/// its effective unit time relative to a fresh device of the same tier.
/// With measurement disabled the configured factors are trusted as-is.
std::vector<double> measured_device_factors(
    const storage::TierProfile& profile, bool is_ssd,
    const pfs::ClusterConfig& config, const std::vector<double>& configured,
    const CalibrationOptions& options) {
  if (configured.empty() || options.device_blind) return {};
  if (!options.measure_devices) return configured;
  auto make_device = [&](const storage::TierProfile& p)
      -> std::unique_ptr<storage::StorageDevice> {
    if (is_ssd) {
      return std::make_unique<storage::SsdDevice>(p, options.seed + 2,
                                                  config.ssd_gc);
    }
    return std::make_unique<storage::HddDevice>(p, options.seed + 2,
                                                config.hdd_sequential_factor);
  };
  const Seconds base_unit = effective_unit_time(
      *make_device(profile), IoOp::kRead, options.beta_reference_size, options);
  std::vector<double> out(configured.size(), 1.0);
  double prev_configured = 1.0;
  double prev_measured = 1.0;
  for (std::size_t i = 0; i < configured.size(); ++i) {
    const double f = configured[i];
    if (f == prev_configured) {
      out[i] = prev_measured;
      continue;
    }
    const Seconds aged_unit = effective_unit_time(
        *make_device(storage::scaled_profile(profile, f)), IoOp::kRead,
        options.beta_reference_size, options);
    out[i] = aged_unit / base_unit;
    prev_configured = f;
    prev_measured = out[i];
  }
  storage::canonicalize_device_factors(out);
  return out;
}

}  // namespace

core::CostParams calibrate(const pfs::ClusterConfig& config,
                           const CalibrationOptions& options) {
  storage::HddDevice hdd(config.hdd, options.seed,
                         config.hdd_sequential_factor);
  storage::SsdDevice ssd(config.ssd, options.seed + 1, config.ssd_gc);

  const storage::TierProfile hdd_fit = measured_or_nominal(hdd, options);
  const storage::TierProfile ssd_fit = measured_or_nominal(ssd, options);

  core::CostParams params = core::make_cost_params(
      config.num_hservers, config.num_sservers, hdd_fit, ssd_fit,
      config.network.per_byte);
  // Paper-pure Eq. 1 (one t per byte of the maximal sub-request); the fixed
  // per-request message overhead is a constant that never changes argmins.
  params.net_hops = 1;
  params.net_latency = 2.0 * config.network.message_latency;
  // Measured per-stripe request-protocol cost of the PFS servers (probing
  // strided vs contiguous accesses isolates it exactly in this substrate).
  params.per_stripe_overhead = config.server_per_stripe_overhead;
  // Per-device aging (tentatively beyond the paper): one probe per distinct
  // configured factor, aligned with the cluster's canonical slot order.
  params.hserver_factors = measured_device_factors(
      config.hdd, false, config,
      canonical_factors(config.hdd_factors, config.num_hservers, "hserver"),
      options);
  params.sserver_factors = measured_device_factors(
      config.ssd, true, config,
      canonical_factors(config.ssd_factors, config.num_sservers, "sserver"),
      options);
  return params;
}

core::TieredCostParams calibrate_tiered(const pfs::ClusterConfig& config,
                                        const CalibrationOptions& options) {
  // The k=2 view of the same calibration: carries every field (including
  // per_stripe_overhead) so params_fingerprint() matches calibrate()'s.
  return core::to_tiered(calibrate(config, options));
}

}  // namespace harl::harness
