#include "src/harness/calibration.hpp"

#include "src/common/rng.hpp"
#include "src/storage/hdd.hpp"
#include "src/storage/profiler.hpp"
#include "src/storage/ssd.hpp"

namespace harl::harness {

namespace {

/// Mean service time of random-offset accesses at `size`, divided by `size`:
/// the effective unit transfer time a black-box server benchmark observes.
Seconds effective_unit_time(storage::StorageDevice& device, IoOp op, Bytes size,
                            const CalibrationOptions& options) {
  device.reset();
  Rng rng(options.seed ^ 0xBEEF);
  Seconds total = 0.0;
  // Random, widely separated offsets so HDD positioning is fully exposed.
  for (int i = 0; i < options.beta_samples; ++i) {
    const Bytes offset = rng.uniform_u64(0, 1u << 20) * size;
    total += device.service_time(op, offset, size);
  }
  device.reset();
  return total / static_cast<double>(options.beta_samples) /
         static_cast<double>(size);
}

storage::TierProfile measured_or_nominal(storage::StorageDevice& device,
                                         const CalibrationOptions& options) {
  if (!options.measure_devices) return device.profile();
  storage::ProfilerOptions popts;
  popts.samples_per_size = options.samples_per_size;
  popts.seed = options.seed;
  // Sequential single-stream probes: the paper calibrates startup against
  // one otherwise-idle server, where an HDD shows its sequential startup.
  popts.random_offsets = false;
  storage::TierProfile fitted = storage::profile_device(device, popts);
  if (options.effective_beta) {
    fitted.read.per_byte = effective_unit_time(
        device, IoOp::kRead, options.beta_reference_size, options);
    fitted.write.per_byte = effective_unit_time(
        device, IoOp::kWrite, options.beta_reference_size, options);
  }
  return fitted;
}

}  // namespace

core::CostParams calibrate(const pfs::ClusterConfig& config,
                           const CalibrationOptions& options) {
  storage::HddDevice hdd(config.hdd, options.seed,
                         config.hdd_sequential_factor);
  storage::SsdDevice ssd(config.ssd, options.seed + 1, config.ssd_gc);

  const storage::TierProfile hdd_fit = measured_or_nominal(hdd, options);
  const storage::TierProfile ssd_fit = measured_or_nominal(ssd, options);

  core::CostParams params = core::make_cost_params(
      config.num_hservers, config.num_sservers, hdd_fit, ssd_fit,
      config.network.per_byte);
  // Paper-pure Eq. 1 (one t per byte of the maximal sub-request); the fixed
  // per-request message overhead is a constant that never changes argmins.
  params.net_hops = 1;
  params.net_latency = 2.0 * config.network.message_latency;
  // Measured per-stripe request-protocol cost of the PFS servers (probing
  // strided vs contiguous accesses isolates it exactly in this substrate).
  params.per_stripe_overhead = config.server_per_stripe_overhead;
  return params;
}

core::TieredCostParams calibrate_tiered(const pfs::ClusterConfig& config,
                                        const CalibrationOptions& options) {
  // The k=2 view of the same calibration: carries every field (including
  // per_stripe_overhead) so params_fingerprint() matches calibrate()'s.
  return core::to_tiered(calibrate(config, options));
}

}  // namespace harl::harness
