// Layout schemes compared in the paper's evaluation.
//
//  * fixed   — one stripe size for every server and the whole file
//              (the conventional layout; 64K is the OrangeFS default)
//  * random  — per-server stripe sizes drawn at random (the paper's
//              "randomly-chosen stripe" strategy)
//  * HARL    — trace -> Algorithm 1 regions -> Algorithm 2 stripes -> RST
//  * HARL-file    — ablation: heterogeneity-aware stripes, single region
//  * segment-level — ablation: Algorithm 1 regions, homogeneous stripes
//                    (the segment-level scheme the paper cites as [10])
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/core/planner.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/layout.hpp"
#include "src/trace/record.hpp"

namespace harl::harness {

enum class SchemeKind {
  kFixed,
  kRandomStripes,
  kHarl,
  kHarlAdaptive,
  kFileLevelHarl,
  kSegmentLevel,
  kCarl,
  kHarlSpaceBounded,
  kLoadedPlan,
};

struct LayoutScheme {
  SchemeKind kind = SchemeKind::kFixed;
  Bytes fixed_stripe = 64 * KiB;   ///< kFixed only
  std::uint64_t random_seed = 1;   ///< kRandomStripes only
  Bytes carl_ssd_capacity = 0;     ///< kCarl only
  double max_sserver_share = 1.0;  ///< kHarlSpaceBounded only
  std::string plan_file;           ///< kLoadedPlan only

  static LayoutScheme fixed(Bytes stripe);
  static LayoutScheme random_stripes(std::uint64_t seed);
  static LayoutScheme harl();
  /// Epoch-versioned adaptive HARL: epoch 0 is the offline plan (same
  /// analysis as `harl()`), then an AdaptiveLayoutManager re-optimizes live
  /// windows during the measured run, swapping epochs and migrating changed
  /// ranges as background I/O (ExperimentOptions::adaptive tunes it).
  static LayoutScheme harl_adaptive();
  static LayoutScheme file_level_harl();
  static LayoutScheme segment_level();
  /// CARL baseline (paper reference [31]): each region entirely on one tier,
  /// hottest regions moved to SServers under `ssd_capacity`.
  static LayoutScheme carl(Bytes ssd_capacity);
  /// PSA-style space-bounded HARL ([33] / the paper's Discussion): full
  /// region-level optimization with each region's SServer byte share capped.
  static LayoutScheme harl_space_bounded(double max_sserver_share);
  /// Placing Phase from a saved Plan artifact (see core/plan_artifact.hpp):
  /// no trace or analysis; the artifact's calibration fingerprint and tier
  /// table are validated at build time.
  static LayoutScheme from_plan_file(std::string path);

  /// Figure-legend style label: "64K", "rand1", "HARL", ...
  std::string label() const;

  /// True for the schemes that require a trace + Analysis Phase.
  bool needs_analysis() const {
    return kind == SchemeKind::kHarl || kind == SchemeKind::kHarlAdaptive ||
           kind == SchemeKind::kFileLevelHarl ||
           kind == SchemeKind::kSegmentLevel || kind == SchemeKind::kCarl ||
           kind == SchemeKind::kHarlSpaceBounded;
  }

  /// True when build_layout() yields a Plan (analysis-based schemes and
  /// loaded Plan artifacts).
  bool produces_plan() const {
    return needs_analysis() || kind == SchemeKind::kLoadedPlan;
  }
};

/// Materializes a scheme into a concrete layout for `cluster`.  For
/// analysis-based schemes, `trace` (the first-execution trace) and `params`
/// (calibrated model) drive the planner; `plan_out` (optional) receives the
/// plan for diagnostics.  With `cache_options` enabled, the HARL schemes
/// (kHarl / kHarlAdaptive) run the cache-aware Analysis Phase
/// (core::analyze_cached); a winning reservation shows up as plan.cache and
/// the returned layout withholds those devices from every region.  Loaded
/// plan artifacts honour their own embedded cache section instead.
std::shared_ptr<const pfs::Layout> build_layout(
    const LayoutScheme& scheme, const pfs::ClusterConfig& cluster,
    std::span<const trace::TraceRecord> trace_records,
    const core::CostParams& params, const core::PlannerOptions& planner_options,
    core::Plan* plan_out = nullptr,
    const core::CachePlannerOptions& cache_options = {});

}  // namespace harl::harness
