// Namespace populations: many files, many tenants, one shared cluster.
//
// The single-file Experiment reproduces the paper's evaluation shape — one
// logical file per run.  Real deployments serve a *namespace*: N files owned
// by T tenants whose traffic shares every server queue, NIC and cache slot.
// This module provides
//
//   * make_population(): a deterministic population generator — files are
//     assigned to tenants by a D'Hondt allocation over Zipf tenant weights
//     (tenant 0 is the hot tenant and owns proportionally more files), and
//     each file gets one of a rotating set of workload shapes (sequential
//     IOR, random IOR, multi-region) so per-file plans genuinely differ;
//
//   * run_population(): the measured namespace run — every file's offline
//     pipeline (trace, analysis, plan) runs on a private cluster first, then
//     ALL files launch concurrently on ONE shared simulated cluster
//     (ProgramRunner::launch/finish), with per-file replica placement chosen
//     by the cost model, a shared read cache keyed by (file, chunk), per-file
//     adaptive managers when the scheme is harl-adaptive, and — when the
//     cluster config arms fail_server — degraded reads plus a rebuild storm
//     contending with the foreground traffic.
//
// Determinism: the generator is a pure function of its spec; the measured
// run inherits the simulator's guarantees, so every output is byte-identical
// across PDES widths.  A population of one file with no replication and no
// failure is the degenerate case — it produces exactly the single-file run's
// traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/scheme.hpp"
#include "src/obs/health.hpp"
#include "src/obs/recorder.hpp"
#include "src/pfs/cache_manager.hpp"

namespace harl::harness {

struct PopulationSpec {
  std::size_t files = 4;
  std::size_t tenants = 2;
  /// Zipf exponent over tenants: tenant t's weight is 1/(t+1)^theta, so the
  /// low-numbered tenants own more files (0 = uniform).
  double tenant_theta = 0.8;
  std::size_t processes = 8;     ///< ranks per file (shared MPI world size)
  Bytes file_size = 32 * MiB;    ///< logical size of every file
  Bytes request_size = 256 * KiB;
  std::uint64_t seed = 7;        ///< forked per file for random workloads
};

/// One file of the namespace, ready to run: id == its index in the
/// population vector (ids double as obs FileIds and label-dimension values).
struct PopulationFile {
  std::uint32_t id = 0;
  std::uint32_t tenant = 0;
  std::string name;   ///< logical file name, e.g. "t0/f2.dat"
  Bytes size = 0;     ///< logical file size
  WorkloadBundle bundle;
};

/// Deterministic proportional assignment of `files` files to `tenants`
/// tenants under Zipf(theta) tenant weights: each file goes to the tenant
/// maximizing weight / (files already assigned + 1) — the D'Hondt rule, so
/// the long-run share tracks the weights exactly.  theta = 0 is round-robin.
std::vector<std::uint32_t> assign_tenants(std::size_t files,
                                          std::size_t tenants, double theta);

std::vector<PopulationFile> make_population(const PopulationSpec& spec);

struct PopulationRunOptions {
  /// Give every file per-region replicas (cost-model placement for plan
  /// schemes, whole-cluster chained declustering otherwise).  Required for
  /// failure runs: an unreplicated file cannot serve degraded reads.
  bool replicate = true;
  /// Rebuild storm throttle and chunk (see mw::RebuildManager::Options).
  double rebuild_bandwidth = 256.0 * static_cast<double>(MiB);
  Bytes rebuild_chunk = 4 * MiB;
};

struct PopulationFileResult {
  std::uint32_t id = 0;
  std::uint32_t tenant = 0;
  std::string name;
  std::string layout_description;
  std::size_t region_count = 1;
  /// This file's own bytes over its own completion span (launch to the
  /// instant its last rank finished) — files finishing early are not charged
  /// for the stragglers.
  PhaseStats total;
  std::size_t adaptive_epochs = 0;  ///< epochs beyond 0 (adaptive runs)
};

struct PopulationResult {
  std::vector<PopulationFileResult> files;
  /// Aggregate bytes over the whole shared run (launch to quiescence,
  /// including rebuild/migration drain).
  PhaseStats total;
  std::vector<Seconds> server_io_time;

  // --- failure/rebuild telemetry (failure runs only) ----------------------
  std::uint64_t degraded_reads = 0;   ///< foreground reads served by replicas
  std::uint64_t replica_writes = 0;   ///< foreground replica write legs
  Bytes rebuilt_bytes = 0;            ///< failed-server bytes re-materialized
  std::uint64_t rebuild_chunks = 0;
  Seconds rebuild_interference = 0.0;
  Seconds rebuild_finished_at = 0.0;
  bool rebuild_done = false;
  /// Any per-file adaptive manager re-planned against the degraded fleet.
  bool degraded_replan = false;

  /// Per-tenant whole-request SLO attainment (telemetry runs with an SLO;
  /// indexed by tenant id).
  std::vector<double> tenant_slo;

  std::optional<pfs::CacheManager::Stats> cache;
  std::shared_ptr<obs::Recorder> obs;
  std::shared_ptr<obs::HealthMonitor> health;
  sim::Simulator::Stats sim_stats;
};

/// Runs `population` under `scheme` as one shared measured run (see the file
/// header).  The experiment supplies calibration, cluster config, observer
/// and cache options; population files must carry ids 0..N-1 in order and
/// agree on the process count.
PopulationResult run_population(Experiment& experiment,
                                const std::vector<PopulationFile>& population,
                                const LayoutScheme& scheme,
                                const PopulationRunOptions& options = {});

}  // namespace harl::harness
