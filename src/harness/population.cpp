#include "src/harness/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/middleware/mpi_world.hpp"
#include "src/middleware/rebuild.hpp"
#include "src/pfs/replication.hpp"
#include "src/sim/pdes.hpp"
#include "src/workloads/ior.hpp"
#include "src/workloads/multiregion.hpp"

namespace harl::harness {

namespace {

/// PDES runtime for one population run; mirrors the experiment runner's
/// lookahead rule (see experiment.cpp) so population runs are width-invariant
/// under exactly the same conditions as single-file runs.
std::unique_ptr<sim::pdes::Runtime> make_pdes_runtime(
    const ExperimentOptions& options, sim::Simulator& sim) {
  if (options.sim_threads == 0) return nullptr;
  const Seconds lookahead =
      std::min(options.cluster.network.message_latency,
               options.cluster.server_per_stripe_overhead *
                   options.cluster.min_device_factor());
  if (!(lookahead > 0.0)) return nullptr;
  sim::pdes::Runtime::Options ro;
  ro.threads = options.sim_threads;
  ro.lookahead = lookahead;
  auto rt = std::make_unique<sim::pdes::Runtime>(
      static_cast<std::uint32_t>(pfs::Cluster::pdes_lp_count(options.cluster)),
      ro);
  sim.attach_pdes(rt.get());
  return rt;
}

void for_indices(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

/// Tracing Phase for one population file, on a private cluster (same fixed
/// tracing layout as Experiment::collect_trace).
std::vector<trace::TraceRecord> collect_trace(const ExperimentOptions& options,
                                              const WorkloadBundle& bundle) {
  sim::Simulator sim;
  const auto pdes_rt = make_pdes_runtime(options, sim);
  pfs::Cluster cluster(sim, options.cluster);
  if (pdes_rt != nullptr) cluster.attach_pdes(*pdes_rt);
  mw::MpiWorld world(cluster, bundle.processes);
  trace::TraceCollector collector;
  auto layout =
      pfs::make_fixed_layout(cluster.num_servers(), options.tracing_stripe);
  mw::ProgramRunner runner(world, bundle.name, layout, &collector,
                           options.collective);
  if (!bundle.write_programs.empty()) runner.run(bundle.write_programs);
  if (!bundle.read_programs.empty()) runner.run(bundle.read_programs);
  if (!bundle.mixed_programs.empty()) runner.run(bundle.mixed_programs);
  return collector.sorted_by_offset();
}

/// One file's phases flattened into a single program set: write pass, then
/// read pass, then mixed run, with a barrier between consecutive phases so
/// the in-file ordering matches sequential ProgramRunner::run calls while
/// other files' traffic interleaves freely.
std::vector<mw::RankProgram> combined_programs(const WorkloadBundle& bundle) {
  const std::vector<mw::RankProgram>* phases[] = {
      &bundle.write_programs, &bundle.read_programs, &bundle.mixed_programs};
  std::vector<mw::RankProgram> combined;
  for (const auto* phase : phases) {
    if (phase->empty()) continue;
    if (combined.empty()) {
      combined = *phase;
      continue;
    }
    if (combined.size() != phase->size()) {
      throw std::invalid_argument("bundle phases disagree on rank count");
    }
    for (std::size_t r = 0; r < combined.size(); ++r) {
      combined[r].push_back(mw::IoAction::barrier());
      combined[r].insert(combined[r].end(), (*phase)[r].begin(),
                         (*phase)[r].end());
    }
  }
  if (combined.empty()) {
    throw std::invalid_argument("workload bundle has no programs");
  }
  return combined;
}

}  // namespace

std::vector<std::uint32_t> assign_tenants(std::size_t files,
                                          std::size_t tenants, double theta) {
  if (tenants == 0) throw std::invalid_argument("needs >= 1 tenant");
  std::vector<double> weight(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    weight[t] = 1.0 / std::pow(static_cast<double>(t + 1), theta);
  }
  std::vector<std::size_t> count(tenants, 0);
  std::vector<std::uint32_t> out;
  out.reserve(files);
  for (std::size_t f = 0; f < files; ++f) {
    std::size_t best = 0;
    double best_score = 0.0;
    for (std::size_t t = 0; t < tenants; ++t) {
      const double score = weight[t] / static_cast<double>(count[t] + 1);
      if (score > best_score) {
        best = t;
        best_score = score;
      }
    }
    ++count[best];
    out.push_back(static_cast<std::uint32_t>(best));
  }
  return out;
}

std::vector<PopulationFile> make_population(const PopulationSpec& spec) {
  if (spec.files == 0) throw std::invalid_argument("needs >= 1 file");
  if (spec.file_size == 0 || spec.request_size == 0) {
    throw std::invalid_argument("needs nonzero file and request sizes");
  }
  const auto tenants =
      assign_tenants(spec.files, spec.tenants, spec.tenant_theta);
  std::vector<PopulationFile> population;
  population.reserve(spec.files);
  for (std::size_t f = 0; f < spec.files; ++f) {
    PopulationFile file;
    file.id = static_cast<std::uint32_t>(f);
    file.tenant = tenants[f];
    file.name = "t";
    file.name += std::to_string(file.tenant);
    file.name += "/f";
    file.name += std::to_string(f);
    file.name += ".dat";
    file.size = spec.file_size;
    switch (f % 3) {
      case 0: {  // sequential IOR: each rank streams its segment
        workloads::IorConfig cfg;
        cfg.processes = spec.processes;
        cfg.file_size = spec.file_size;
        cfg.request_size = spec.request_size;
        cfg.random_offsets = false;
        cfg.seed = spec.seed + f;
        file.bundle = ior_bundle(cfg);
        break;
      }
      case 1: {  // random IOR: request-aligned random offsets
        workloads::IorConfig cfg;
        cfg.processes = spec.processes;
        cfg.file_size = spec.file_size;
        cfg.request_size = spec.request_size;
        cfg.random_offsets = true;
        cfg.seed = spec.seed + f;
        file.bundle = ior_bundle(cfg);
        break;
      }
      default: {  // multi-region: non-uniform request sizes per byte range
        workloads::MultiRegionConfig cfg;
        cfg.processes = spec.processes;
        cfg.regions = {
            {spec.file_size / 8,
             std::max<Bytes>(spec.request_size / 2, 4 * KiB)},
            {3 * spec.file_size / 8, spec.request_size},
            {spec.file_size / 2, 2 * spec.request_size},
        };
        cfg.seed = spec.seed + f;
        file.bundle = multiregion_bundle(cfg);
        Bytes total = 0;
        for (const auto& r : cfg.regions) total += r.size;
        file.size = total;
        break;
      }
    }
    file.bundle.name = file.name;
    population.push_back(std::move(file));
  }
  return population;
}

PopulationResult run_population(Experiment& experiment,
                                const std::vector<PopulationFile>& population,
                                const LayoutScheme& scheme,
                                const PopulationRunOptions& popts) {
  if (population.empty()) throw std::invalid_argument("empty population");
  const ExperimentOptions& options = experiment.options();
  const std::size_t nfiles = population.size();
  for (std::size_t i = 0; i < nfiles; ++i) {
    if (population[i].id != i) {
      throw std::invalid_argument("population file ids must be 0..N-1");
    }
  }
  const std::size_t processes = population.front().bundle.processes;
  for (const auto& file : population) {
    if (file.bundle.processes != processes) {
      throw std::invalid_argument("population files disagree on ranks");
    }
  }
  const bool adaptive = scheme.kind == SchemeKind::kHarlAdaptive;
  const core::CostParams& params = experiment.cost_params();

  // --- Phase A: per-file offline pipeline on private clusters -------------
  struct Prep {
    std::shared_ptr<const pfs::Layout> layout;
    std::optional<core::Plan> plan;
    std::unique_ptr<pfs::ReplicaMap> replicas;
  };
  std::vector<Prep> preps(nfiles);
  for_indices(options.pool, nfiles, [&](std::size_t i) {
    std::vector<trace::TraceRecord> records;
    if (scheme.needs_analysis()) {
      records = collect_trace(options, population[i].bundle);
    }
    core::Plan plan;
    preps[i].layout = build_layout(scheme, options.cluster, records, params,
                                   options.planner, &plan);
    if (scheme.produces_plan()) preps[i].plan = std::move(plan);
  });

  // Replica placement: cost-model tiers for plan schemes on two-tier fleets,
  // whole-cluster chained declustering otherwise.
  const auto tier_groups = options.cluster.effective_tiers();
  std::vector<std::size_t> tier_counts;
  std::size_t nservers = 0;
  for (const auto& group : tier_groups) {
    tier_counts.push_back(group.count);
    nservers += group.count;
  }
  if (popts.replicate) {
    for (std::size_t i = 0; i < nfiles; ++i) {
      if (preps[i].plan && tier_groups.size() == 2) {
        preps[i].replicas =
            std::make_unique<pfs::ReplicaMap>(pfs::ReplicaMap::tiered(
                tier_counts,
                mw::choose_replica_tiers(*preps[i].plan, params)));
      } else {
        preps[i].replicas = std::make_unique<pfs::ReplicaMap>(
            pfs::ReplicaMap::chained(nservers));
      }
    }
  }

  // --- Phase B: one shared measured cluster -------------------------------
  PopulationResult result;
  sim::Simulator sim;
  const auto pdes_rt = make_pdes_runtime(options, sim);

  std::vector<std::uint32_t> tenant_of(nfiles);
  std::uint32_t max_tenant = 0;
  for (std::size_t i = 0; i < nfiles; ++i) {
    tenant_of[i] = population[i].tenant;
    max_tenant = std::max(max_tenant, population[i].tenant);
  }
  if (options.observe) {
    result.obs = std::make_shared<obs::Recorder>(options.recorder);
    result.obs->set_tenant_of(tenant_of);
  }
  obs::Sink* tail = result.obs.get();
  if (options.telemetry.enabled() && tail != nullptr) {
    obs::HealthMonitor::Options hm;
    hm.interval = options.telemetry.interval;
    hm.window_capacity = options.telemetry.window_capacity;
    hm.slo = options.telemetry.slo;
    hm.flag_threshold = options.telemetry.flag_threshold;
    hm.recover_threshold = options.telemetry.recover_threshold;
    hm.flag_windows = options.telemetry.flag_windows;
    hm.recover_windows = options.telemetry.recover_windows;
    hm.min_window_jobs = options.telemetry.min_window_jobs;
    result.health = std::make_shared<obs::HealthMonitor>(hm, tail);
    result.health->set_tenant_of(tenant_of);
    tail = result.health.get();
  }
  if (pdes_rt != nullptr && tail != nullptr) {
    pdes_rt->sequencer().set_target(tail);
    tail = &pdes_rt->sequencer();
  }

  // Per-file adaptive managers, chained file 0 outermost; each one's advisor
  // sees only its own file's completions (set_file_filter), so every file's
  // epochs adapt to its own traffic.
  std::vector<std::unique_ptr<mw::AdaptiveLayoutManager>> managers;
  if (adaptive) {
    std::optional<mw::AdaptiveOptions::FailSpec> fail;
    if (options.cluster.fail_server >= 0 && tier_groups.size() == 2) {
      mw::AdaptiveOptions::FailSpec spec;
      spec.tier = static_cast<std::size_t>(options.cluster.fail_server) <
                          tier_counts[0]
                      ? 0
                      : 1;
      spec.at = options.cluster.fail_at;
      fail = spec;
    }
    managers.resize(nfiles);
    for (std::size_t k = nfiles; k-- > 0;) {
      mw::AdaptiveOptions adaptive_options = options.adaptive;
      adaptive_options.fail = fail;
      managers[k] = std::make_unique<mw::AdaptiveLayoutManager>(
          params, preps[k].plan->rst, std::move(adaptive_options), tail);
      managers[k]->set_file_filter(static_cast<std::uint32_t>(k));
      tail = managers[k].get();
    }
  }
  if (tail != nullptr) sim.set_observer(tail);

  pfs::Cluster cluster(sim, options.cluster);
  if (pdes_rt != nullptr) cluster.attach_pdes(*pdes_rt);
  if (adaptive) {
    for (std::size_t i = 0; i < nfiles; ++i) {
      preps[i].layout = managers[i]->install(cluster, population[i].name);
    }
  }

  // One shared read cache across the whole namespace, keyed by (file,
  // chunk): a hot tenant's working set competes with every other file's
  // under the configured policy.  Plans are cache-less here (per-file
  // reservations would conflict), so the cache always runs blind.
  std::unique_ptr<pfs::CacheManager> cache_manager;
  if (options.cache.enabled()) {
    pfs::CacheManager::Config cache_config;
    cache_config.budget = options.cache.budget;
    cache_config.chunk = options.cache.chunk;
    cache_config.devices = options.cache.devices;
    cache_config.policy = options.cache.policy;
    cache_config.blind = true;
    cache_manager = std::make_unique<pfs::CacheManager>(cluster, cache_config);
    for (std::size_t i = 0; i < cluster.num_clients(); ++i) {
      cluster.client(i).set_cache(cache_manager.get());
    }
    for (std::size_t i = 0; i < managers.size(); ++i) {
      // Epoch swaps invalidate only the adapting file's cached chunks.
      managers[i]->set_epoch_hook(
          [cache = cache_manager.get(),
           file = static_cast<std::uint32_t>(i)](std::uint32_t) {
            cache->invalidate_file(file);
          });
    }
  }

  // Failure storm: degraded reads are the Client's job; the rebuild plane
  // re-materializes the failed server's share in the background.
  std::unique_ptr<mw::RebuildManager> rebuild;
  if (options.cluster.fail_server >= 0 && popts.replicate) {
    mw::RebuildManager::Options ro;
    ro.failed_server = static_cast<std::size_t>(options.cluster.fail_server);
    ro.start_at = options.cluster.fail_at;
    ro.bandwidth = popts.rebuild_bandwidth;
    ro.chunk = popts.rebuild_chunk;
    rebuild = std::make_unique<mw::RebuildManager>(cluster, ro);
    for (std::size_t i = 0; i < nfiles; ++i) {
      rebuild->add_file(preps[i].layout, population[i].size,
                        preps[i].replicas.get());
    }
    rebuild->arm();
  }

  mw::MpiWorld world(cluster, processes);
  std::vector<std::unique_ptr<mw::ProgramRunner>> runners(nfiles);
  std::vector<mw::ProgramRunner::Launch> launches(nfiles);
  for (std::size_t i = 0; i < nfiles; ++i) {
    mw::RunnerOptions runner_options;
    runner_options.collective = options.collective;
    runner_options.file = static_cast<std::uint32_t>(i);
    runner_options.replicas = preps[i].replicas.get();
    runners[i] = std::make_unique<mw::ProgramRunner>(
        world, population[i].name, preps[i].layout, nullptr, runner_options);
  }
  const Seconds t0 = sim.now();
  for (std::size_t i = 0; i < nfiles; ++i) {
    launches[i] = runners[i]->launch(combined_programs(population[i].bundle));
  }
  sim.run();

  // --- harvest ------------------------------------------------------------
  result.files.resize(nfiles);
  for (std::size_t i = 0; i < nfiles; ++i) {
    const mw::RunResult r = runners[i]->finish(launches[i]);
    PopulationFileResult& out = result.files[i];
    out.id = population[i].id;
    out.tenant = population[i].tenant;
    out.name = population[i].name;
    out.layout_description = preps[i].layout->describe();
    if (preps[i].plan) out.region_count = preps[i].plan->rst.size();
    out.total.bytes = r.bytes_read + r.bytes_written;
    out.total.makespan = r.completed_at - launches[i].start;
    result.total.bytes += out.total.bytes;
  }
  result.total.makespan = sim.now() - t0;

  for (std::size_t i = 0; i < cluster.num_clients(); ++i) {
    result.degraded_reads += cluster.client(i).degraded_reads();
    result.replica_writes += cluster.client(i).replica_writes();
  }
  if (rebuild != nullptr) {
    result.rebuilt_bytes = rebuild->rebuilt_bytes();
    result.rebuild_chunks = rebuild->chunks();
    result.rebuild_interference = rebuild->interference();
    result.rebuild_finished_at = rebuild->finished_at();
    result.rebuild_done = rebuild->done();
    if (result.obs) result.obs->metrics().merge(rebuild->metrics());
  }
  for (std::size_t i = 0; i < managers.size(); ++i) {
    result.files[i].adaptive_epochs = managers[i]->summary().epochs_installed;
    result.degraded_replan =
        result.degraded_replan || managers[i]->degraded_active();
    if (result.obs) result.obs->metrics().merge(managers[i]->metrics());
  }
  if (result.health) {
    result.health->finalize();
    if (result.obs) result.obs->metrics().merge(result.health->metrics());
    if (options.telemetry.slo > 0.0) {
      result.tenant_slo.reserve(max_tenant + 1);
      for (std::uint32_t t = 0; t <= max_tenant; ++t) {
        result.tenant_slo.push_back(result.health->tenant_slo_attainment(t));
      }
    }
  }
  if (cache_manager != nullptr) result.cache = cache_manager->stats();
  result.server_io_time.reserve(cluster.num_servers());
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    result.server_io_time.push_back(cluster.server_io_time(i));
  }
  result.sim_stats = sim.stats();
  return result;
}

}  // namespace harl::harness
