#include "src/harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace harl::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match headers");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule.append("  ");
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string cell_ratio(double value, double baseline) {
  if (baseline == 0.0) return "n/a";
  const double pct = (value / baseline - 1.0) * 100.0;
  std::ostringstream ss;
  ss << std::showpos << std::fixed << std::setprecision(1) << pct << '%';
  return ss.str();
}

}  // namespace harl::harness
