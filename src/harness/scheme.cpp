#include "src/harness/scheme.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/plan_artifact.hpp"

namespace harl::harness {

namespace {

/// Whether a plan artifact's per-tier device-factor table matches the
/// cluster's configured fleet.  Factors are compared with a relative
/// tolerance because the artifact carries *measured* factors (probed device
/// ratios) while the cluster carries configured ones; they agree to ~1e-15
/// but are not bit-equal by construction.  An absent table (empty outer or
/// inner vector) means "homogeneous" on either side.
bool device_table_matches(const std::vector<std::vector<double>>& artifact,
                          const std::vector<pfs::TierGroup>& tiers) {
  const auto tier_factors = [&](std::size_t j) -> const std::vector<double>& {
    static const std::vector<double> kEmpty;
    return j < artifact.size() ? artifact[j] : kEmpty;
  };
  for (std::size_t j = 0; j < tiers.size(); ++j) {
    const std::vector<double>& a = tier_factors(j);
    const std::vector<double>& c = tiers[j].device_factors;
    if (a.empty() != c.empty()) return false;
    if (a.size() != c.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double scale = std::max({std::abs(a[i]), std::abs(c[i]), 1.0});
      if (std::abs(a[i] - c[i]) > 1e-6 * scale) return false;
    }
  }
  return true;
}

}  // namespace

LayoutScheme LayoutScheme::fixed(Bytes stripe) {
  if (stripe == 0) throw std::invalid_argument("fixed stripe must be nonzero");
  LayoutScheme s;
  s.kind = SchemeKind::kFixed;
  s.fixed_stripe = stripe;
  return s;
}

LayoutScheme LayoutScheme::random_stripes(std::uint64_t seed) {
  LayoutScheme s;
  s.kind = SchemeKind::kRandomStripes;
  s.random_seed = seed;
  return s;
}

LayoutScheme LayoutScheme::harl() {
  LayoutScheme s;
  s.kind = SchemeKind::kHarl;
  return s;
}

LayoutScheme LayoutScheme::harl_adaptive() {
  LayoutScheme s;
  s.kind = SchemeKind::kHarlAdaptive;
  return s;
}

LayoutScheme LayoutScheme::file_level_harl() {
  LayoutScheme s;
  s.kind = SchemeKind::kFileLevelHarl;
  return s;
}

LayoutScheme LayoutScheme::segment_level() {
  LayoutScheme s;
  s.kind = SchemeKind::kSegmentLevel;
  return s;
}

LayoutScheme LayoutScheme::carl(Bytes ssd_capacity) {
  LayoutScheme s;
  s.kind = SchemeKind::kCarl;
  s.carl_ssd_capacity = ssd_capacity;
  return s;
}

LayoutScheme LayoutScheme::harl_space_bounded(double max_sserver_share) {
  LayoutScheme s;
  s.kind = SchemeKind::kHarlSpaceBounded;
  s.max_sserver_share = max_sserver_share;
  return s;
}

LayoutScheme LayoutScheme::from_plan_file(std::string path) {
  if (path.empty()) throw std::invalid_argument("plan file path is empty");
  LayoutScheme s;
  s.kind = SchemeKind::kLoadedPlan;
  s.plan_file = std::move(path);
  return s;
}

std::string LayoutScheme::label() const {
  switch (kind) {
    case SchemeKind::kFixed: return format_size(fixed_stripe);
    case SchemeKind::kRandomStripes: return "rand" + std::to_string(random_seed);
    case SchemeKind::kHarl: return "HARL";
    case SchemeKind::kHarlAdaptive: return "HARL-adaptive";
    case SchemeKind::kFileLevelHarl: return "HARL-file";
    case SchemeKind::kSegmentLevel: return "segment";
    case SchemeKind::kCarl: return "CARL";
    case SchemeKind::kHarlSpaceBounded: {
      std::ostringstream os;
      os << "HARL<=" << static_cast<int>(max_sserver_share * 100.0) << "%ssd";
      return os.str();
    }
    case SchemeKind::kLoadedPlan: return "plan";
  }
  return "?";
}

std::shared_ptr<const pfs::Layout> build_layout(
    const LayoutScheme& scheme, const pfs::ClusterConfig& cluster,
    std::span<const trace::TraceRecord> trace_records,
    const core::CostParams& params,
    const core::PlannerOptions& planner_options, core::Plan* plan_out,
    const core::CachePlannerOptions& cache_options) {
  const std::size_t M = cluster.num_hservers;
  const std::size_t N = cluster.num_sservers;

  // A plan whose Analysis Phase reserved cache devices installs with those
  // devices withheld from every region (the cache-less path is untouched:
  // no reservation means the exact pre-cache to_layout call).
  const auto place = [&](const core::Plan& plan) {
    if (!plan.cache.has_value()) return plan.rst.to_layout(M, N);
    const std::vector<std::size_t> counts = {M, N};
    std::vector<std::size_t> reserved(counts.size(), 0);
    reserved[plan.cache->tier] = plan.cache->devices;
    return plan.rst.to_layout(counts, reserved);
  };

  switch (scheme.kind) {
    case SchemeKind::kFixed:
      return pfs::make_fixed_layout(M + N, scheme.fixed_stripe);

    case SchemeKind::kRandomStripes: {
      // Independent random power-of-two stripe per server in [16K, 2M],
      // the paper's "randomly varied stripe sizes" strategy.
      Rng rng(scheme.random_seed * 0x9E3779B97F4A7C15ULL + 1);
      std::vector<Bytes> stripes(M + N);
      for (auto& st : stripes) {
        st = (16 * KiB) << rng.uniform_u64(0, 7);  // 16K..2M
      }
      return std::make_shared<pfs::VariedStripeLayout>(std::move(stripes));
    }

    case SchemeKind::kHarl:
    case SchemeKind::kHarlAdaptive:
    case SchemeKind::kFileLevelHarl:
    case SchemeKind::kSegmentLevel:
    case SchemeKind::kCarl:
    case SchemeKind::kHarlSpaceBounded: {
      if (trace_records.empty()) {
        throw std::invalid_argument(
            "analysis-based scheme requires a first-execution trace");
      }
      // kHarlAdaptive's offline analysis is exactly HARL's: the resulting
      // plan is epoch 0 of the adaptive run (the experiment runner layers
      // the AdaptiveLayoutManager on top of this layout).
      core::Plan plan;
      if (scheme.kind == SchemeKind::kHarl ||
          scheme.kind == SchemeKind::kHarlAdaptive) {
        plan = cache_options.enabled()
                   ? core::analyze_cached(trace_records, params, cache_options,
                                          planner_options)
                   : core::analyze(trace_records, params, planner_options);
      } else if (scheme.kind == SchemeKind::kHarlSpaceBounded) {
        core::PlannerOptions bounded = planner_options;
        bounded.optimizer.max_sserver_share = scheme.max_sserver_share;
        plan = core::analyze(trace_records, params, bounded);
      } else if (scheme.kind == SchemeKind::kFileLevelHarl) {
        plan = core::analyze_file_level(trace_records, params, planner_options);
      } else if (scheme.kind == SchemeKind::kCarl) {
        plan = core::analyze_carl(trace_records, params,
                                  scheme.carl_ssd_capacity, planner_options);
      } else {
        plan = core::analyze_segment_level(trace_records, params,
                                           planner_options);
      }
      auto layout = place(plan);
      if (plan_out != nullptr) *plan_out = std::move(plan);
      return layout;
    }

    case SchemeKind::kLoadedPlan: {
      core::PlanArtifact artifact = core::load_plan(scheme.plan_file);
      if (artifact.calibration_fingerprint != core::params_fingerprint(params)) {
        throw std::runtime_error(
            "plan artifact was produced under a different calibration: " +
            scheme.plan_file);
      }
      // The artifact's tier table against this cluster: normally the two-tier
      // (M, N) view; a generic artifact must match it tier-for-tier.
      std::vector<std::size_t> counts = {M, N};
      if (artifact.tier_counts != counts) {
        throw std::runtime_error(
            "plan artifact tier table does not match the cluster: " +
            scheme.plan_file);
      }
      // A plan computed against a different device fleet must not install:
      // its member restrictions and stripe choices assume per-slot speeds
      // this cluster does not have.
      if (!device_table_matches(artifact.device_factors,
                                cluster.effective_tiers())) {
        throw std::runtime_error(
            "plan artifact device-factor table does not match the cluster's "
            "fleet: " +
            scheme.plan_file);
      }
      core::Plan plan;
      plan.tier_counts = artifact.tier_counts;
      plan.device_factors = artifact.device_factors;
      plan.calibration_fingerprint = artifact.calibration_fingerprint;
      plan.regions_before_merge = artifact.rst.size();
      plan.regions_after_merge = artifact.rst.size();
      plan.cache = artifact.cache;
      plan.rst = std::move(artifact.rst);
      auto layout = place(plan);
      if (plan_out != nullptr) *plan_out = std::move(plan);
      return layout;
    }
  }
  throw std::logic_error("unknown scheme kind");
}

}  // namespace harl::harness
