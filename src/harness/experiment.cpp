#include "src/harness/experiment.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/core/cost_model.hpp"
#include "src/core/tiered_cost_model.hpp"
#include "src/middleware/mpi_world.hpp"
#include "src/pfs/region_layout.hpp"
#include "src/sim/pdes.hpp"
#include "src/sim/simulator.hpp"

namespace harl::harness {

namespace {

/// Builds (and attaches) the conservative PDES runtime for one simulated run
/// when ExperimentOptions::sim_threads asks for it.  The lookahead is the
/// minimum cross-LP delivery delay of the PFS model: every cross-LP event
/// crosses a network link (>= message latency) or a storage queue (>= the
/// per-stripe overhead).  Returns nullptr — the sequential engine — when
/// parallel execution is off or the config erases the lookahead.
std::unique_ptr<sim::pdes::Runtime> make_pdes_runtime(
    const ExperimentOptions& options, sim::Simulator& sim) {
  if (options.sim_threads == 0) return nullptr;
  // A device faster than its tier profile (factor < 1.0) shrinks the
  // storage-queue delivery floor, so the overhead term scales by the
  // cluster's fastest device.
  const Seconds lookahead =
      std::min(options.cluster.network.message_latency,
               options.cluster.server_per_stripe_overhead *
                   options.cluster.min_device_factor());
  if (!(lookahead > 0.0)) return nullptr;
  sim::pdes::Runtime::Options ro;
  ro.threads = options.sim_threads;
  ro.lookahead = lookahead;
  auto rt = std::make_unique<sim::pdes::Runtime>(
      static_cast<std::uint32_t>(pfs::Cluster::pdes_lp_count(options.cluster)),
      ro);
  sim.attach_pdes(rt.get());
  return rt;
}

/// Builds the recorder's cost-model predictor for `layout`: the analytic
/// tiered request cost with the stripe vector of the region the request
/// falls in (requests spanning regions take the worst segment, matching the
/// "maximal cost of all sub-requests" reading).  Layout shapes without a
/// per-tier stripe interpretation get no predictor.
obs::Recorder::Predictor make_predictor(
    const std::shared_ptr<const pfs::Layout>& layout,
    core::TieredCostParams params) {
  if (auto rl = std::dynamic_pointer_cast<const pfs::RegionLayout>(layout)) {
    return [rl, params = std::move(params)](IoOp op, Bytes offset,
                                            Bytes size) -> Seconds {
      Seconds worst = 0.0;
      Bytes pos = offset;
      const Bytes end = offset + size;
      while (pos < end) {
        const std::size_t ri = rl->region_of(pos);
        const pfs::RegionSpec& spec = rl->region(ri);
        const Bytes seg_end = std::min(end, rl->region_end(ri));
        const Seconds cost =
            spec.members.empty()
                ? core::tiered_request_cost(params, op, pos - spec.offset,
                                            seg_end - pos, spec.stripes)
                : core::tiered_request_cost(params, op, pos - spec.offset,
                                            seg_end - pos, spec.stripes,
                                            spec.members);
        worst = std::max(worst, cost);
        pos = seg_end;
      }
      return worst;
    };
  }
  if (auto vl =
          std::dynamic_pointer_cast<const pfs::VariedStripeLayout>(layout)) {
    // Per-tier stripe vector from the per-server stripes (layouts built by
    // make_fixed/make_two_tier/make_tiered_layout are uniform within a tier).
    std::vector<Bytes> stripes;
    stripes.reserve(params.tiers.size());
    std::size_t begin = 0;
    for (const core::TierSpec& tier : params.tiers) {
      stripes.push_back(begin < vl->stripes().size() ? vl->stripes()[begin]
                                                     : 0);
      begin += tier.count;
    }
    return [params = std::move(params), stripes = std::move(stripes)](
               IoOp op, Bytes offset, Bytes size) -> Seconds {
      return core::tiered_request_cost(params, op, offset, size, stripes);
    };
  }
  return {};
}

/// Lands the Analysis Phase diagnostics already carried by the Plan in the
/// same registry as the measured run, so metrics-out= shows what Algorithm 2
/// spent (grid size, cost-kernel calls, coalescing savings, modeled cost)
/// next to what the placement actually did.  Region labels index the
/// pre-merge regions — the grain the optimizer worked at.
void record_plan_metrics(obs::MetricsRegistry& metrics,
                         const core::Plan& plan) {
  using Kind = obs::MetricsRegistry::Kind;
  const auto requests =
      metrics.family("planner.region.requests", Kind::kCounter);
  const auto candidates =
      metrics.family("planner.region.candidates", Kind::kCounter);
  const auto evals =
      metrics.family("planner.region.cost_evals", Kind::kCounter);
  const auto saved =
      metrics.family("planner.region.cost_evals_saved", Kind::kCounter);
  const auto model_cost =
      metrics.family("planner.region.model_cost_s", Kind::kGauge);
  for (std::size_t i = 0; i < plan.regions.size(); ++i) {
    const core::PlannedRegion& r = plan.regions[i];
    const auto labels = obs::LabelSet{}.region(static_cast<std::uint32_t>(i));
    metrics.add(requests, labels, static_cast<double>(r.request_count));
    metrics.add(candidates, labels,
                static_cast<double>(r.candidates_evaluated));
    metrics.add(evals, labels, static_cast<double>(r.cost_evals));
    metrics.add(saved, labels, static_cast<double>(r.cost_evals_saved));
    metrics.set(model_cost, labels, r.model_cost);
  }
  const auto no_labels = obs::LabelSet{};
  metrics.set(metrics.family("planner.regions_before_merge", Kind::kGauge),
              no_labels, static_cast<double>(plan.regions_before_merge));
  metrics.set(metrics.family("planner.regions_after_merge", Kind::kGauge),
              no_labels, static_cast<double>(plan.regions_after_merge));
  metrics.set(metrics.family("planner.total_model_cost_s", Kind::kGauge),
              no_labels, plan.total_model_cost());
}

/// Lands the measured run's read-cache counters in the metrics registry
/// (cache.* families) so metrics-out= carries the hit/miss/fill/evict story
/// next to the server and planner metrics.  obs_report.py --check validates
/// the reconciliation invariants over exactly these families.
void record_cache_metrics(obs::MetricsRegistry& metrics,
                          const pfs::CacheManager::Stats& stats) {
  using Kind = obs::MetricsRegistry::Kind;
  const auto no_labels = obs::LabelSet{};
  const auto add = [&](const char* name, std::uint64_t value) {
    metrics.add(metrics.family(name, Kind::kCounter), no_labels,
                static_cast<double>(value));
  };
  add("cache.lookups", stats.tier.lookups);
  add("cache.hits", stats.tier.hits);
  add("cache.misses", stats.tier.misses);
  add("cache.admissions", stats.tier.admissions);
  add("cache.evictions", stats.tier.evictions);
  add("cache.invalidations", stats.tier.invalidations);
  add("cache.fills_completed", stats.tier.fills_completed);
  add("cache.fills_discarded", stats.tier.fills_discarded);
  add("cache.hit_bytes", stats.hit_read_bytes);
  add("cache.miss_bytes", stats.miss_read_bytes);
  add("cache.fill_bytes", stats.fill_bytes);
  add("cache.resplits", stats.resplits);
  add("cache.clears", stats.clears);
  metrics.set(metrics.family("cache.active_devices", Kind::kGauge), no_labels,
              static_cast<double>(stats.active_devices));
}

}  // namespace

WorkloadBundle ior_bundle(const workloads::IorConfig& config) {
  WorkloadBundle bundle;
  bundle.name = "ior.dat";
  bundle.processes = config.processes;

  workloads::IorConfig write_cfg = config;
  write_cfg.op = IoOp::kWrite;
  bundle.write_programs = workloads::make_ior_programs(write_cfg);

  // The read pass re-reads the same offsets (same seed -> same stream).
  workloads::IorConfig read_cfg = config;
  read_cfg.op = IoOp::kRead;
  bundle.read_programs = workloads::make_ior_programs(read_cfg);
  return bundle;
}

WorkloadBundle zipf_bundle(const workloads::ZipfConfig& config) {
  WorkloadBundle bundle;
  bundle.name = "zipf.dat";
  bundle.processes = config.processes;
  bundle.write_programs = workloads::make_zipf_write_programs(config);
  bundle.read_programs = workloads::make_zipf_read_programs(config);
  return bundle;
}

WorkloadBundle multiregion_bundle(const workloads::MultiRegionConfig& config) {
  WorkloadBundle bundle;
  bundle.name = "multiregion.dat";
  bundle.processes = config.processes;

  workloads::MultiRegionConfig write_cfg = config;
  write_cfg.op = IoOp::kWrite;
  bundle.write_programs = workloads::make_multiregion_programs(write_cfg);

  workloads::MultiRegionConfig read_cfg = config;
  read_cfg.op = IoOp::kRead;
  bundle.read_programs = workloads::make_multiregion_programs(read_cfg);
  return bundle;
}

WorkloadBundle btio_bundle(const workloads::BtioConfig& config) {
  WorkloadBundle bundle;
  bundle.name = "btio.out";
  bundle.processes = config.processes;
  bundle.mixed_programs = workloads::make_btio_programs(config);
  return bundle;
}

Experiment::Experiment(ExperimentOptions options)
    : options_(std::move(options)) {
  // The telemetry plane rides the flight recorder's observer chain.
  if (options_.telemetry.enabled()) options_.observe = true;
}

const core::CostParams& Experiment::cost_params() {
  if (!cached_params_) {
    cached_params_ = calibrate(options_.cluster, options_.calibration);
  }
  return *cached_params_;
}

std::vector<trace::TraceRecord> Experiment::collect_trace(
    const WorkloadBundle& bundle) {
  // Tracing Phase: first execution on the default fixed-stripe layout with
  // the IOSIG-like collector attached.
  sim::Simulator sim;
  const auto pdes_rt = make_pdes_runtime(options_, sim);
  pfs::Cluster cluster(sim, options_.cluster);
  if (pdes_rt != nullptr) cluster.attach_pdes(*pdes_rt);
  mw::MpiWorld world(cluster, bundle.processes);
  trace::TraceCollector collector;
  auto layout = pfs::make_fixed_layout(cluster.num_servers(),
                                       options_.tracing_stripe);
  mw::ProgramRunner runner(world, bundle.name, layout, &collector,
                           options_.collective);
  if (!bundle.write_programs.empty()) runner.run(bundle.write_programs);
  if (!bundle.read_programs.empty()) runner.run(bundle.read_programs);
  if (!bundle.mixed_programs.empty()) runner.run(bundle.mixed_programs);
  return collector.sorted_by_offset();
}

SchemeResult Experiment::run(const WorkloadBundle& bundle,
                             const LayoutScheme& scheme) {
  std::vector<trace::TraceRecord> trace_records;
  if (scheme.needs_analysis()) trace_records = collect_trace(bundle);
  return run_with_trace(bundle, scheme, trace_records);
}

SchemeResult Experiment::run_with_trace(
    const WorkloadBundle& bundle, const LayoutScheme& scheme,
    std::span<const trace::TraceRecord> trace_records) {
  if (bundle.write_programs.empty() && bundle.read_programs.empty() &&
      bundle.mixed_programs.empty()) {
    throw std::invalid_argument("workload bundle has no programs");
  }

  SchemeResult result;
  result.label = scheme.label();
  core::Plan plan;
  core::CachePlannerOptions cache_planner;
  if (options_.cache.enabled() && !options_.cache.blind) {
    cache_planner.budget = options_.cache.budget;
    cache_planner.chunk = options_.cache.chunk;
    cache_planner.max_devices = options_.cache.devices;
    cache_planner.policy = options_.cache.policy;
  }
  auto layout =
      build_layout(scheme, options_.cluster, trace_records, cost_params(),
                   options_.planner, &plan, cache_planner);
  result.layout_description = layout->describe();
  if (scheme.produces_plan()) {
    result.region_count = plan.rst.size();
    result.plan = std::move(plan);
  }

  // Measured run on a fresh cluster; the observer must be in place before
  // the cluster is built so components register their tracks.  For the
  // adaptive scheme the AdaptiveLayoutManager takes the observer seat
  // (forwarding to the recorder, when one is attached) so completed requests
  // feed its advisor, and its epoched facade replaces the epoch-0 layout.
  const bool adaptive = scheme.kind == SchemeKind::kHarlAdaptive;
  sim::Simulator sim;
  const auto pdes_rt = make_pdes_runtime(options_, sim);
  std::unique_ptr<mw::AdaptiveLayoutManager> manager;
  if (options_.observe) {
    result.obs = std::make_shared<obs::Recorder>(options_.recorder);
  }
  // Under PDES the order-sensitive recorder sits behind the runtime's
  // ObsSequencer, which replays data-path calls in deterministic global
  // order at each window barrier; the adaptive manager (whose data-path
  // hooks are stateless forwards) stays in front as the simulator-facing
  // sink so completed requests still feed its advisor synchronously.
  obs::Sink* tail = result.obs.get();
  // The telemetry plane wraps the recorder first, so under PDES it sits
  // *behind* the sequencer (chain: sim -> [manager] -> [sequencer] ->
  // [health] -> recorder) and only ever sees replayed, deterministic call
  // order — its window watermark stays monotone at every width.
  if (options_.telemetry.enabled() && tail != nullptr) {
    obs::HealthMonitor::Options hm;
    hm.interval = options_.telemetry.interval;
    hm.window_capacity = options_.telemetry.window_capacity;
    hm.slo = options_.telemetry.slo;
    hm.flag_threshold = options_.telemetry.flag_threshold;
    hm.recover_threshold = options_.telemetry.recover_threshold;
    hm.flag_windows = options_.telemetry.flag_windows;
    hm.recover_windows = options_.telemetry.recover_windows;
    hm.min_window_jobs = options_.telemetry.min_window_jobs;
    result.health = std::make_shared<obs::HealthMonitor>(hm, tail);
    tail = result.health.get();
  }
  if (pdes_rt != nullptr && tail != nullptr) {
    pdes_rt->sequencer().set_target(tail);
    tail = &pdes_rt->sequencer();
  }
  // Devices the measured run's cache covers: the plan's reservation when the
  // Analysis Phase was cache-aware, the configured count for blind and
  // non-plan schemes (see ExperimentOptions::cache).
  std::size_t cache_devices = 0;
  if (options_.cache.enabled()) {
    if (result.plan && result.plan->cache) {
      cache_devices = result.plan->cache->devices;
    } else if (options_.cache.blind || !scheme.produces_plan()) {
      cache_devices = options_.cache.devices;
    }
  }
  if (adaptive) {
    mw::AdaptiveOptions adaptive_options = options_.adaptive;
    if (result.plan->cache) {
      // Every epoch inherits the offline reservation; window re-optimization
      // plans over the unreserved fleet.
      adaptive_options.reserved =
          std::vector<std::size_t>{0, result.plan->cache->devices};
      adaptive_options.cache_spec = result.plan->cache;
    }
    manager = std::make_unique<mw::AdaptiveLayoutManager>(
        cost_params(), result.plan->rst, std::move(adaptive_options), tail);
    sim.set_observer(manager.get());
  } else if (tail != nullptr) {
    sim.set_observer(tail);
  }
  pfs::Cluster cluster(sim, options_.cluster);
  if (pdes_rt != nullptr) cluster.attach_pdes(*pdes_rt);
  if (adaptive) layout = manager->install(cluster, bundle.name);
  std::unique_ptr<pfs::CacheManager> cache_manager;
  if (cache_devices > 0) {
    pfs::CacheManager::Config cache_config;
    cache_config.budget = options_.cache.budget;
    cache_config.chunk = options_.cache.chunk;
    cache_config.devices = cache_devices;
    cache_config.policy = options_.cache.policy;
    cache_config.blind = options_.cache.blind;
    cache_manager = std::make_unique<pfs::CacheManager>(cluster, cache_config);
    for (std::size_t i = 0; i < cluster.num_clients(); ++i) {
      cluster.client(i).set_cache(cache_manager.get());
    }
    if (manager != nullptr) {
      manager->set_epoch_hook(
          [cache = cache_manager.get()](std::uint32_t) { cache->on_epoch(); });
    }
  }
  if (result.obs) {
    result.obs->set_predictor(
        make_predictor(layout, core::to_tiered(cost_params())));
    if (result.plan) record_plan_metrics(result.obs->metrics(), *result.plan);
  }
  mw::MpiWorld world(cluster, bundle.processes);
  mw::ProgramRunner runner(world, bundle.name, layout, nullptr,
                           options_.collective);

  auto run_phase = [&](const std::vector<mw::RankProgram>& programs,
                       bool separate_rw) {
    if (programs.empty()) return;
    const mw::RunResult r = runner.run(programs);
    if (separate_rw) {
      if (r.bytes_written > 0 && r.bytes_read == 0) {
        result.write.makespan += r.makespan;
        result.write.bytes += r.bytes_written;
      } else if (r.bytes_read > 0 && r.bytes_written == 0) {
        result.read.makespan += r.makespan;
        result.read.bytes += r.bytes_read;
      } else {
        // Mixed phase: attribute to both proportionally via totals only.
        result.write.bytes += r.bytes_written;
        result.read.bytes += r.bytes_read;
      }
    }
    result.total.makespan += r.makespan;
    result.total.bytes += r.bytes_read + r.bytes_written;
  };

  run_phase(bundle.write_programs, true);
  run_phase(bundle.read_programs, true);
  run_phase(bundle.mixed_programs, true);

  if (manager != nullptr) {
    result.adaptive = manager->summary();
    // Post-run state: describe the lineage the run ended with, and persist
    // the *latest* epoch as the plan (a saved artifact resumes from there).
    result.layout_description = layout->describe();
    result.plan = manager->latest_plan();
    result.region_count = result.plan->rst.size();
    if (result.obs) result.obs->metrics().merge(manager->metrics());
  }

  if (result.health) {
    result.health->finalize();
    if (result.obs) result.obs->metrics().merge(result.health->metrics());
  }

  if (cache_manager != nullptr) {
    result.cache = cache_manager->stats();
    if (result.obs) {
      record_cache_metrics(result.obs->metrics(), *result.cache);
    }
  }

  result.server_io_time.reserve(cluster.num_servers());
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    result.server_io_time.push_back(cluster.server_io_time(i));
  }
  result.sim_stats = sim.stats();
  return result;
}

void Experiment::for_indices(ThreadPool* pool, std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

Experiment::ReplicatedResult Experiment::run_replicated(
    const WorkloadBundle& bundle, const LayoutScheme& scheme,
    std::size_t replicas) {
  if (replicas == 0) throw std::invalid_argument("needs >= 1 replica");
  ReplicatedResult out;
  out.runs.resize(replicas);
  // Each replica is a self-contained Experiment over shifted seeds (the only
  // stochastic input), recalibrated against its own devices as a real
  // deployment would be.  Replicas share no mutable state, so they may run
  // concurrently; results land by index, making the output byte-identical
  // to the serial order at any pool width.
  for_indices(options_.pool, replicas, [&](std::size_t i) {
    ExperimentOptions replica_options = options_;
    replica_options.cluster.seed = options_.cluster.seed + i;
    replica_options.calibration.seed = options_.calibration.seed + i;
    Experiment replica(std::move(replica_options));
    out.runs[i] = replica.run(bundle, scheme);
  });

  double sum = 0.0;
  out.min_total = out.runs.front().total.throughput();
  out.max_total = out.min_total;
  for (const auto& r : out.runs) {
    const double t = r.total.throughput();
    sum += t;
    out.min_total = std::min(out.min_total, t);
    out.max_total = std::max(out.max_total, t);
  }
  out.mean_total = sum / static_cast<double>(replicas);
  return out;
}

std::vector<SchemeResult> Experiment::run_all(
    const WorkloadBundle& bundle, const std::vector<LayoutScheme>& schemes) {
  // Trace the first execution once: the collector's output depends only on
  // the bundle and the fixed tracing layout, so every analysis-based scheme
  // can share it (and the planner reuses its sorted order in place).
  std::vector<trace::TraceRecord> trace_records;
  for (const auto& scheme : schemes) {
    if (scheme.needs_analysis()) {
      trace_records = collect_trace(bundle);
      break;
    }
  }
  // Calibrate before fanning out: run_with_trace only reads the cached
  // params once they exist, so pre-warming makes it safe to evaluate the
  // schemes concurrently (each on its own simulated cluster).
  if (!schemes.empty()) cost_params();
  std::vector<SchemeResult> results(schemes.size());
  for_indices(options_.pool, schemes.size(), [&](std::size_t i) {
    results[i] = run_with_trace(bundle, schemes[i], trace_records);
  });
  return results;
}

}  // namespace harl::harness
