// Experiment runner: (cluster config) x (workload) x (layout scheme)
// -> simulated throughput and per-server statistics.
//
// This is the machinery every bench binary and example shares.  A run of an
// analysis-based scheme reproduces the paper's full pipeline: a traced first
// execution on the default fixed layout (Tracing Phase), offline analysis
// with the calibrated cost model (Analysis Phase), then the measured run on
// the optimized layout placed through the middleware (Placing Phase).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/planner.hpp"
#include "src/harness/calibration.hpp"
#include "src/obs/health.hpp"
#include "src/obs/recorder.hpp"
#include "src/harness/scheme.hpp"
#include "src/middleware/adaptive.hpp"
#include "src/middleware/program.hpp"
#include "src/pfs/cache_manager.hpp"
#include "src/middleware/runner.hpp"
#include "src/sim/simulator.hpp"
#include "src/workloads/btio.hpp"
#include "src/workloads/ior.hpp"
#include "src/workloads/multiregion.hpp"
#include "src/workloads/zipf.hpp"

namespace harl::harness {

/// A workload packaged as its measured phases.
struct WorkloadBundle {
  std::string name = "file";
  std::size_t processes = 16;
  std::vector<mw::RankProgram> write_programs;  ///< phase 1 (optional)
  std::vector<mw::RankProgram> read_programs;   ///< phase 2 (optional)
  std::vector<mw::RankProgram> mixed_programs;  ///< single mixed run (BTIO)
};

/// IOR: a write pass and a read pass over the same offsets.
WorkloadBundle ior_bundle(const workloads::IorConfig& config);

/// Four-region non-uniform IOR variant: write pass + read pass.
WorkloadBundle multiregion_bundle(const workloads::MultiRegionConfig& config);

/// Skewed re-read workload: sequential seeding write pass + Zipf-distributed
/// read phases over the whole file (the cache-tier stressor).
WorkloadBundle zipf_bundle(const workloads::ZipfConfig& config);

/// BTIO: one mixed run (interleaved compute, collective writes, read-back).
WorkloadBundle btio_bundle(const workloads::BtioConfig& config);

struct PhaseStats {
  Seconds makespan = 0.0;
  Bytes bytes = 0;

  double throughput() const {
    return makespan > 0.0 ? static_cast<double>(bytes) / makespan : 0.0;
  }
};

struct SchemeResult {
  std::string label;
  std::string layout_description;
  PhaseStats write;
  PhaseStats read;
  PhaseStats total;                     ///< all phases combined
  std::vector<Seconds> server_io_time;  ///< per server, all phases (Fig. 1a)
  std::size_t region_count = 1;
  std::optional<core::Plan> plan;       ///< plan-producing schemes only
  /// Adaptive runs only (harl-adaptive scheme): epoch/migration counters of
  /// the measured run.  `plan` then holds the *latest* epoch's RST, so a
  /// saved artifact resumes from where adaptation ended.
  std::optional<mw::AdaptiveLayoutManager::Summary> adaptive;
  /// Read-cache counters of the measured run (cache-enabled runs only).
  std::optional<pfs::CacheManager::Stats> cache;
  /// Event-engine counters of the measured run (harl_sim stats=1).
  sim::Simulator::Stats sim_stats;
  /// Flight recorder of the measured run (ExperimentOptions::observe only):
  /// metrics registry, trace events, per-request T_X/T_S/T_T attribution.
  std::shared_ptr<obs::Recorder> obs;
  /// Telemetry plane of the measured run (ExperimentOptions::telemetry
  /// enabled + observe): windowed per-server time series and the
  /// straggler/SLO health monitor, already finalized; its health.* metrics
  /// are merged into `obs`'s registry.
  std::shared_ptr<obs::HealthMonitor> health;
};

struct ExperimentOptions {
  pfs::ClusterConfig cluster;
  core::PlannerOptions planner;
  CalibrationOptions calibration;
  /// Layout of the traced first execution (OrangeFS default 64K).
  Bytes tracing_stripe = 64 * KiB;
  mw::CollectiveOptions collective;
  /// Optional pool for evaluating independent schemes (run_all) and replicas
  /// (run_replicated) concurrently — each on its own Simulator instance.
  /// Results are written by index, so the output is byte-identical to the
  /// serial order regardless of pool width.  May alias planner.pool: nested
  /// parallel_for on the same pool is deadlock-free (work-helping).
  ThreadPool* pool = nullptr;
  /// Attach a flight recorder to every measured run.  Each SchemeResult then
  /// carries its own obs::Recorder (one per scheme/replica, so parallel
  /// run_all stays lock-free) with a cost-model predictor derived from the
  /// scheme's layout, feeding the per-region model-error histogram.
  bool observe = false;
  obs::Recorder::Options recorder;
  /// Tuning for the harl-adaptive scheme: advisor window/min_gain/planner
  /// plus the migration throttle.  Ignored by every other scheme.
  mw::AdaptiveOptions adaptive;
  /// Heterogeneity-aware read cache (HACache direction).  budget > 0 and
  /// devices > 0 arm a pfs::CacheManager over the fastest SSD devices of the
  /// measured run.  Cache-aware mode (blind == false): the HARL schemes run
  /// core::analyze_cached, and the runtime cache uses exactly the plan's
  /// winning reservation — which may be *no* reservation, in which case the
  /// run is cache-less (the model said striping wins); non-HARL plan schemes
  /// stay cache-less too.  Blind mode (blind == true): the planner is left
  /// untouched and the cache runs over the configured devices while regions
  /// still stripe across them — the bolted-on ablation arm.  Non-plan
  /// schemes (fixed/random) also take the configured devices.
  struct CacheOptions {
    Bytes budget = 0;
    Bytes chunk = MiB;
    std::size_t devices = 0;
    storage::CachePolicy policy = storage::CachePolicy::kLru;
    bool blind = false;

    bool enabled() const { return budget > 0 && devices > 0; }
  };
  CacheOptions cache;
  /// Telemetry plane (DESIGN.md §15): interval > 0 arms an
  /// obs::HealthMonitor (which owns the run's TimeSeries) behind the
  /// ObsSequencer of every measured run.  Requires `observe`; the runner
  /// forces it on when telemetry is enabled.
  struct TelemetryOptions {
    Seconds interval = 0.0;            ///< window width; 0 = disabled
    std::size_t window_capacity = 4096;
    Seconds slo = 0.0;                 ///< request deadline; 0 = no SLO
    double flag_threshold = 2.0;
    double recover_threshold = 1.25;
    std::size_t flag_windows = 2;
    std::size_t recover_windows = 2;
    std::uint64_t min_window_jobs = 1;

    bool enabled() const { return interval > 0.0; }
  };
  TelemetryOptions telemetry;
  /// Worker threads for the event engine of each simulated run (tracing and
  /// measured): 0 = the sequential engine, >= 1 = the conservative PDES
  /// runtime (src/sim/pdes.hpp) at that width.  Every output — metrics,
  /// traces, plans, adaptive summaries — is byte-identical across widths,
  /// including the sequential engine.  Independent of `pool`, which
  /// parallelizes across runs; sim_threads parallelizes within one run.
  unsigned sim_threads = 0;
};

class Experiment {
 public:
  explicit Experiment(ExperimentOptions options);

  /// Runs one scheme against one workload (fresh simulated cluster per call;
  /// results are independent and reproducible).
  SchemeResult run(const WorkloadBundle& bundle, const LayoutScheme& scheme);

  /// Runs one scheme against a pre-collected first-execution trace (already
  /// in ByOffset order).  Lets callers trace once and evaluate many schemes
  /// without re-tracing or re-sorting; `trace_records` may be empty for
  /// schemes that need no analysis.
  SchemeResult run_with_trace(const WorkloadBundle& bundle,
                              const LayoutScheme& scheme,
                              std::span<const trace::TraceRecord> trace_records);

  /// Convenience: run several schemes against the same workload.  The
  /// first-execution trace is collected (and sorted) once and shared by
  /// every analysis-based scheme.
  std::vector<SchemeResult> run_all(const WorkloadBundle& bundle,
                                    const std::vector<LayoutScheme>& schemes);

  /// Seed replication: reruns the scheme under `replicas` different device
  /// RNG seeds (the only stochastic input) and reports the spread.  The
  /// planner runs per replica against that replica's calibration, as a real
  /// deployment would.
  struct ReplicatedResult {
    std::vector<SchemeResult> runs;
    double mean_total = 0.0;  ///< bytes/s
    double min_total = 0.0;
    double max_total = 0.0;
  };
  ReplicatedResult run_replicated(const WorkloadBundle& bundle,
                                  const LayoutScheme& scheme,
                                  std::size_t replicas);

  /// The calibrated cost-model parameters (lazily computed, cached).
  const core::CostParams& cost_params();

  const ExperimentOptions& options() const { return options_; }

 private:
  std::vector<trace::TraceRecord> collect_trace(const WorkloadBundle& bundle);

  /// Runs fn(i) for i in [0, n): on `pool` when set (and n > 1), else
  /// inline.  Callers write output by index for deterministic results.
  static void for_indices(ThreadPool* pool, std::size_t n,
                          const std::function<void(std::size_t)>& fn);

  ExperimentOptions options_;
  std::optional<core::CostParams> cached_params_;
};

}  // namespace harl::harness
