// Cost-model parameter calibration (the paper's Analysis-Phase measurement).
//
// The paper derives its model parameters by benchmarking one file server of
// each class (startup and transfer times, repeated "thousands of times") and
// one client/server pair for the network unit time.  This module does the
// same against the simulated devices: it instantiates one HDD and one SSD
// device from the cluster config, fits their OpProfiles with the storage
// profiler, fits the network, and assembles core::CostParams.  The network
// terms use two hops plus two message latencies because the simulated data
// path crosses the server NIC and the client NIC (store-and-forward).
#pragma once

#include "src/core/cost_model.hpp"
#include "src/core/tiered_cost_model.hpp"
#include "src/pfs/cluster.hpp"

namespace harl::harness {

struct CalibrationOptions {
  /// Fit device parameters by probing simulated devices (paper-faithful);
  /// if false, copy the nominal profiles directly.
  bool measure_devices = true;
  int samples_per_size = 1500;
  std::uint64_t seed = 99;
  /// Fit beta as the *effective* unit time — mean service time of
  /// random-offset accesses at `beta_reference_size`, divided by that size —
  /// rather than the pure media-rate slope.  On an HDD this folds per-access
  /// positioning into the per-byte rate (64 KiB random accesses run at
  /// ~25 MB/s effective, not the ~90 MB/s media rate), which is what a
  /// black-box server benchmark measures and what makes Algorithm 2
  /// reproduce the paper's optima (reads {32K,160K} at 512 KiB requests,
  /// SServer-only {0K,64K} at 128 KiB).
  bool effective_beta = true;
  Bytes beta_reference_size = 64 * KiB;
  int beta_samples = 3000;
  /// Ignore per-device aging: calibrate the tier profiles only and leave the
  /// per-slot factor vectors empty, as a pre-device-model HARL would.  The
  /// heterogeneity ablation uses this as its tier-blind arm.
  bool device_blind = false;
};

/// CostParams for the given cluster shape, measured or nominal.
core::CostParams calibrate(const pfs::ClusterConfig& config,
                           const CalibrationOptions& options = {});

/// The multi-tier equivalent (tier 0 = HServers, tier 1 = SServers).
core::TieredCostParams calibrate_tiered(const pfs::ClusterConfig& config,
                                        const CalibrationOptions& options = {});

}  // namespace harl::harness
