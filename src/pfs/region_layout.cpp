#include "src/pfs/region_layout.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace harl::pfs {

RegionLayout::RegionLayout(std::vector<std::size_t> tier_counts,
                           std::vector<RegionSpec> regions,
                           std::vector<std::size_t> reserved)
    : tier_counts_(std::move(tier_counts)),
      reserved_(std::move(reserved)),
      specs_(std::move(regions)) {
  for (std::size_t c : tier_counts_) total_servers_ += c;
  if (total_servers_ == 0) throw std::invalid_argument("layout needs servers");
  if (specs_.empty()) throw std::invalid_argument("region layout needs regions");
  if (!reserved_.empty() && reserved_.size() != tier_counts_.size()) {
    throw std::invalid_argument("reserved vector does not match tiers");
  }
  if (specs_.front().offset != 0) {
    throw std::invalid_argument("first region must start at offset 0");
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0 && specs_[i].offset <= specs_[i - 1].offset) {
      throw std::invalid_argument("regions must have increasing offsets");
    }
    if (specs_[i].stripes.size() != tier_counts_.size()) {
      throw std::invalid_argument("region stripe vector does not match tiers");
    }
    const std::vector<std::size_t>& members = specs_[i].members;
    if (!members.empty() && members.size() != tier_counts_.size()) {
      throw std::invalid_argument("region member vector does not match tiers");
    }
    bool any_stripe = false;
    bool any_effective = false;  // a nonzero stripe on a tier with servers
    for (std::size_t j = 0; j < tier_counts_.size(); ++j) {
      if (specs_[i].stripes[j] == 0) continue;
      any_stripe = true;
      const std::size_t unreserved =
          tier_counts_[j] - (reserved_.empty()
                                 ? 0
                                 : std::min(reserved_[j], tier_counts_[j]));
      const std::size_t avail =
          members.empty() ? unreserved : std::min(members[j], unreserved);
      if (avail > 0) any_effective = true;
    }
    if (!any_stripe) {
      throw std::invalid_argument("region must stripe over at least one tier");
    }
    if (!any_effective) {
      throw std::invalid_argument("region stripes only over absent servers");
    }
    region_layouts_.push_back(
        make_tiered_layout(tier_counts_, specs_[i].stripes, members, reserved_));
  }
}

RegionLayout::RegionLayout(std::vector<std::size_t> tier_counts,
                           std::vector<RegionSpec> regions)
    : RegionLayout(std::move(tier_counts), std::move(regions),
                   std::vector<std::size_t>{}) {}

RegionLayout::RegionLayout(std::size_t M, std::size_t N,
                           std::vector<RegionSpec> regions)
    : RegionLayout(std::vector<std::size_t>{M, N}, std::move(regions)) {}

std::size_t RegionLayout::region_of(Bytes offset) const {
  // Last spec with spec.offset <= offset.
  auto it = std::upper_bound(
      specs_.begin(), specs_.end(), offset,
      [](Bytes off, const RegionSpec& spec) { return off < spec.offset; });
  return static_cast<std::size_t>(std::distance(specs_.begin(), it)) - 1;
}

Bytes RegionLayout::region_end(std::size_t i) const {
  return i + 1 < specs_.size() ? specs_[i + 1].offset
                               : std::numeric_limits<Bytes>::max();
}

std::vector<SubRequest> RegionLayout::map(Bytes offset, Bytes size) const {
  std::vector<SubRequest> out;
  Bytes pos = offset;
  const Bytes end = offset + size;
  while (pos < end) {
    const std::size_t reg = region_of(pos);
    const Bytes reg_begin = specs_[reg].offset;
    const Bytes reg_end_off = region_end(reg);
    const Bytes take = std::min(end, reg_end_off) - pos;
    // Region-relative addressing: each region is its own physical object,
    // striped from its own origin.
    auto subs = region_layouts_[reg]->map(pos - reg_begin, take);
    for (auto& sub : subs) {
      sub.object = static_cast<std::uint32_t>(reg);
      sub.file_offset += reg_begin;
      out.push_back(sub);
    }
    pos += take;
  }
  return out;
}

std::string RegionLayout::describe() const {
  std::ostringstream os;
  os << "region-level(" << specs_.size() << " regions:";
  for (std::size_t i = 0; i < specs_.size() && i < 4; ++i) {
    os << ' ' << format_size(specs_[i].offset) << "@{";
    for (std::size_t j = 0; j < specs_[i].stripes.size(); ++j) {
      if (j > 0) os << ',';
      os << format_size(specs_[i].stripes[j]);
    }
    os << '}';
  }
  if (specs_.size() > 4) os << " ...";
  bool any_reserved = false;
  for (std::size_t r : reserved_) any_reserved |= r > 0;
  if (any_reserved) {
    os << " cache-reserved{";
    for (std::size_t j = 0; j < reserved_.size(); ++j) {
      if (j > 0) os << ',';
      os << reserved_[j];
    }
    os << '}';
  }
  os << ')';
  return os.str();
}

}  // namespace harl::pfs
