// Storage-space accounting and SSD-relief migration planning.
//
// HARL gives SServers larger stripes, so they hold a disproportionate share
// of the file.  The paper's Discussion section proposes migrating data from
// SServers to HServers when SSD space runs low; this module computes the
// per-server footprint of a layout and plans which (cold) regions to demote
// so the SServer footprint fits a capacity budget.
#pragma once

#include <vector>

#include "src/pfs/region_layout.hpp"

namespace harl::pfs {

struct SpaceUsage {
  std::vector<Bytes> per_server;  ///< bytes stored on each server
  Bytes total = 0;

  Bytes hserver_bytes(std::size_t M) const;
  Bytes sserver_bytes(std::size_t M) const;
};

/// Bytes each server stores for a file of `file_size` bytes under `layout`.
SpaceUsage storage_footprint(const Layout& layout, Bytes file_size);

/// One file of a namespace, for aggregate capacity accounting.
struct NamespaceFile {
  const Layout* layout = nullptr;  ///< must outlive the call
  Bytes size = 0;                  ///< logical file size
  bool replicated = false;         ///< replica copies double the footprint
};

/// Per-server footprint of a whole namespace: the sum of every file's
/// layout footprint over `server_count` servers.  Replicated files charge a
/// second copy, spread uniformly over the other servers of the fleet (the
/// chained-declustering average — exact per-server replica placement is
/// region-dependent, but capacity planning needs the aggregate).  Layouts
/// narrower than `server_count` simply leave the remaining servers empty;
/// wider layouts throw std::invalid_argument.
SpaceUsage namespace_footprint(const std::vector<NamespaceFile>& files,
                               std::size_t server_count);

/// One region's access intensity, as observed in a trace.
struct RegionHeat {
  std::size_t region = 0;
  Bytes bytes_accessed = 0;
};

struct MigrationPlan {
  /// New region specs (same offsets, possibly rebalanced stripes).
  std::vector<RegionSpec> regions;
  /// Regions whose SServer share was demoted to HServers, coldest first.
  std::vector<std::size_t> demoted;
  Bytes sserver_bytes_before = 0;
  Bytes sserver_bytes_after = 0;
};

/// Plans SServer->HServer migration: demotes whole regions (coldest first,
/// by bytes_accessed per stored byte) to HServer-only striping until the
/// aggregate SServer footprint fits `ssd_capacity_total`.  Demoted regions
/// get h = max(previous h, previous s) so striping stays sane.  Throws if
/// even full demotion cannot fit (capacity < 0 is impossible by types).
MigrationPlan plan_migration(const RegionLayout& layout, Bytes file_size,
                             Bytes ssd_capacity_total,
                             const std::vector<RegionHeat>& heat);

}  // namespace harl::pfs
