#include "src/pfs/space.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace harl::pfs {

Bytes SpaceUsage::hserver_bytes(std::size_t M) const {
  return std::accumulate(per_server.begin(),
                         per_server.begin() + static_cast<std::ptrdiff_t>(
                                                  std::min(M, per_server.size())),
                         Bytes{0});
}

Bytes SpaceUsage::sserver_bytes(std::size_t M) const {
  if (M >= per_server.size()) return 0;
  return std::accumulate(per_server.begin() + static_cast<std::ptrdiff_t>(M),
                         per_server.end(), Bytes{0});
}

SpaceUsage storage_footprint(const Layout& layout, Bytes file_size) {
  SpaceUsage usage;
  usage.per_server.assign(layout.server_count(), 0);
  if (file_size == 0) return usage;
  for (const auto& sub : layout.map(0, file_size)) {
    usage.per_server.at(sub.server) += sub.size;
    usage.total += sub.size;
  }
  return usage;
}

SpaceUsage namespace_footprint(const std::vector<NamespaceFile>& files,
                               std::size_t server_count) {
  SpaceUsage usage;
  usage.per_server.assign(server_count, 0);
  for (const NamespaceFile& file : files) {
    if (file.layout == nullptr) {
      throw std::invalid_argument("namespace file needs a layout");
    }
    if (file.layout->server_count() > server_count) {
      throw std::invalid_argument("file layout wider than the namespace");
    }
    const SpaceUsage one = storage_footprint(*file.layout, file.size);
    for (std::size_t s = 0; s < one.per_server.size(); ++s) {
      usage.per_server[s] += one.per_server[s];
    }
    usage.total += one.total;
    if (file.replicated && server_count > 1) {
      // Uniform spread of the second copy: server s's primary share lands on
      // the other server_count - 1 servers in equal parts, with the division
      // remainder dealt one byte at a time so the per-server vector still
      // sums to the exact doubled total.
      for (std::size_t s = 0; s < one.per_server.size(); ++s) {
        const Bytes share = one.per_server[s] / (server_count - 1);
        Bytes remainder = one.per_server[s] % (server_count - 1);
        for (std::size_t d = 0; d < server_count; ++d) {
          if (d == s) continue;
          usage.per_server[d] += share;
          if (remainder > 0) {
            ++usage.per_server[d];
            --remainder;
          }
        }
      }
      usage.total += one.total;
    }
  }
  return usage;
}

MigrationPlan plan_migration(const RegionLayout& layout, Bytes file_size,
                             Bytes ssd_capacity_total,
                             const std::vector<RegionHeat>& heat) {
  const std::size_t M = layout.num_hservers();
  if (M == 0) {
    throw std::invalid_argument("cannot migrate to HServers: none exist");
  }

  MigrationPlan plan;
  plan.regions = layout.regions();

  // Per-region SServer footprint.
  std::vector<Bytes> region_ssd_bytes(plan.regions.size(), 0);
  for (std::size_t i = 0; i < plan.regions.size(); ++i) {
    const Bytes begin = plan.regions[i].offset;
    const Bytes end = std::min<Bytes>(layout.region_end(i), file_size);
    if (begin >= end) continue;
    auto sub_layout =
        make_tiered_layout(layout.tier_counts(), plan.regions[i].stripes,
                           plan.regions[i].members);
    const SpaceUsage u = storage_footprint(*sub_layout, end - begin);
    region_ssd_bytes[i] = u.sserver_bytes(M);
  }
  plan.sserver_bytes_before = std::accumulate(region_ssd_bytes.begin(),
                                              region_ssd_bytes.end(), Bytes{0});

  Bytes ssd_bytes = plan.sserver_bytes_before;
  if (ssd_bytes <= ssd_capacity_total) {
    plan.sserver_bytes_after = ssd_bytes;
    return plan;  // already fits; nothing to demote
  }

  // Coldness = accessed bytes per stored SSD byte; demote coldest first.
  std::vector<Bytes> accessed(plan.regions.size(), 0);
  for (const auto& h : heat) {
    if (h.region < accessed.size()) accessed[h.region] += h.bytes_accessed;
  }
  std::vector<std::size_t> order(plan.regions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double heat_a = region_ssd_bytes[a] > 0
                              ? static_cast<double>(accessed[a]) /
                                    static_cast<double>(region_ssd_bytes[a])
                              : 1e300;
    const double heat_b = region_ssd_bytes[b] > 0
                              ? static_cast<double>(accessed[b]) /
                                    static_cast<double>(region_ssd_bytes[b])
                              : 1e300;
    if (heat_a != heat_b) return heat_a < heat_b;
    return a < b;
  });

  for (std::size_t idx : order) {
    if (ssd_bytes <= ssd_capacity_total) break;
    if (region_ssd_bytes[idx] == 0) continue;
    // Demote to the capacity tier (tier 0): keep the region's largest stripe
    // there and clear every faster tier.  For k = 2 this is the original
    // h = max(h, s), s = 0 rule.
    RegionSpec& spec = plan.regions[idx];
    Bytes widest = 0;
    for (Bytes st : spec.stripes) widest = std::max(widest, st);
    spec.stripes.assign(spec.stripes.size(), 0);
    spec.stripes[0] = widest;
    // Demoted regions spread over the full capacity tier; any device-aware
    // member restriction applied to the faster tiers no longer applies.
    spec.members.clear();
    ssd_bytes -= region_ssd_bytes[idx];
    region_ssd_bytes[idx] = 0;
    plan.demoted.push_back(idx);
  }

  if (ssd_bytes > ssd_capacity_total) {
    throw std::runtime_error(
        "SSD capacity cannot be met even with full demotion");
  }
  plan.sserver_bytes_after = ssd_bytes;
  return plan;
}

}  // namespace harl::pfs
