// Per-region replica placement for degraded reads and rebuild traffic.
//
// One failure domain is a whole data server (DataServer::set_failed_at).  To
// keep reads available through a failure, every primary sub-request has a
// deterministic *replica* image on a different server: the same server-local
// extent, stored under a replica object id so it never aliases the primary
// object on a shared device.  Writes go to primary and replica; after a
// failure, reads of subs homed on the failed server are redirected to the
// replica (pfs::Client's degraded path), and the rebuild plane re-reads the
// failed server's share from replicas over the real simulated servers.
//
// Placement is per *region* (the sub-request's object id is the region index
// under the R2F mapping): `region_tiers` assigns each region a replica tier,
// chosen by the caller — mw::choose_replica_tiers() consults the cost model
// per planned region (this module stays below core, so the chooser lives in
// the middleware).  Within the chosen tier the replica rotates by primary
// server and region (chained declustering), so one server's failure spreads
// its replica load across the whole tier instead of doubling one
// neighbour's traffic.  Without a tier table the map chains over the whole
// cluster — the fallback for non-plan layouts and unknown objects.
//
// Determinism: a ReplicaMap is immutable after construction; replica_of()
// does no I/O and holds no mutable state, so degraded routing is
// byte-identical across PDES widths.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pfs/layout.hpp"

namespace harl::pfs {

class ReplicaMap {
 public:
  /// Object-id offset of replica objects.  Foreground epoch objects stay
  /// below EpochedLayout::kObjectsPerEpoch * max_epochs (< 1 << 20) and the
  /// cache area sits at 1 << 22, so the replica band [1 << 21, 1 << 22) is
  /// distinct from both on any shared device.
  static constexpr std::uint32_t kReplicaObject = 1u << 21;

  /// Region part of a sub-request object id (EpochedLayout partitions object
  /// ids as epoch * kObjectsPerEpoch + region), so every epoch of a region
  /// shares one replica home.
  static constexpr std::uint32_t kObjectsPerEpoch = 4096;

  /// Chained declustering over `server_count` servers: region r of primary
  /// server p replicates on (p + 1 + r) % server_count.  Requires >= 2
  /// servers.
  static ReplicaMap chained(std::size_t server_count);

  /// Tier-aware placement: region r's replica lands in tier
  /// `region_tiers[r]` of the `tier_counts` topology (global indices
  /// contiguous per tier, in order), rotated within the tier by primary
  /// server and region.  Regions beyond the table — and primaries whose
  /// chosen tier cannot host a distinct replica — fall back to
  /// whole-cluster chaining.  Requires >= 2 servers in total.
  static ReplicaMap tiered(const std::vector<std::size_t>& tier_counts,
                           std::vector<std::uint32_t> region_tiers);

  /// The replica image of a primary sub-request: same extent and piece
  /// count, replica object id, placed per the region's replica tier.  The
  /// returned sub is served exactly like a primary (same queues and NICs),
  /// so replicated writes and degraded reads pay honest simulated cost.
  SubRequest replica_of(const SubRequest& sub) const;

  /// Server hosting the replica of (primary `server`, object `object`).
  std::size_t replica_server(std::size_t server, std::uint32_t object) const;

  std::size_t server_count() const { return server_count_; }
  /// Per-region replica tiers (empty for chained maps); index = region id.
  const std::vector<std::uint32_t>& region_tiers() const {
    return region_tiers_;
  }

 private:
  ReplicaMap() = default;

  std::size_t server_count_ = 0;
  std::vector<std::size_t> tier_counts_;   ///< empty for flat chained maps
  std::vector<std::size_t> tier_begin_;    ///< per-tier first global index
  std::vector<std::uint32_t> region_tiers_;
};

}  // namespace harl::pfs
