#include "src/pfs/layout.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace harl::pfs {

VariedStripeLayout::VariedStripeLayout(std::vector<Bytes> stripes)
    : stripes_(std::move(stripes)) {
  if (stripes_.empty()) {
    throw std::invalid_argument("layout needs at least one server");
  }
  cell_start_.resize(stripes_.size());
  Bytes cum = 0;
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    cell_start_[i] = cum;
    cum += stripes_[i];
  }
  period_ = cum;
  if (period_ == 0) {
    throw std::invalid_argument("all stripe sizes are zero");
  }
}

std::vector<SubRequest> VariedStripeLayout::map(Bytes offset, Bytes size) const {
  std::vector<SubRequest> out;
  if (size == 0) return out;

  const Bytes S = period_;
  const Bytes end = offset + size;
  const Bytes period_first = offset / S;       // r_b in the paper
  const Bytes period_last = end / S;           // r_e
  const Bytes l_b = offset - period_first * S;
  const Bytes l_e = end - period_last * S;

  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    const Bytes st = stripes_[i];
    if (st == 0) continue;
    const ByteInterval cell{cell_start_[i], cell_start_[i] + st};

    Bytes bytes = 0;
    Bytes pieces = 0;       // stripe units merged into the extent
    Bytes local_start = 0;  // server-local offset of the first byte touched
    Bytes file_start = 0;   // logical-file offset of that byte

    if (period_last == period_first) {
      const ByteInterval ov = intersect({l_b, l_e}, cell);
      bytes = ov.length();
      if (bytes > 0) {
        pieces = 1;
        local_start = period_first * st + (ov.begin - cell.begin);
        file_start = period_first * S + ov.begin;
      }
    } else {
      const ByteInterval first_ov = intersect({l_b, S}, cell);
      const ByteInterval last_ov = intersect({0, l_e}, cell);
      const Bytes full = period_last - period_first - 1;
      const Bytes mid = full * st;
      bytes = first_ov.length() + mid + last_ov.length();
      pieces = (first_ov.length() > 0 ? 1 : 0) + full +
               (last_ov.length() > 0 ? 1 : 0);
      if (first_ov.length() > 0) {
        local_start = period_first * st + (first_ov.begin - cell.begin);
        file_start = period_first * S + first_ov.begin;
      } else if (mid > 0) {
        local_start = (period_first + 1) * st;
        file_start = (period_first + 1) * S + cell.begin;
      } else if (last_ov.length() > 0) {
        local_start = period_last * st + (last_ov.begin - cell.begin);
        file_start = period_last * S + last_ov.begin;
      }
    }

    if (bytes > 0) {
      out.push_back(SubRequest{i, 0, local_start, bytes, file_start, pieces});
    }
  }

  std::sort(out.begin(), out.end(), [](const SubRequest& a, const SubRequest& b) {
    return a.file_offset < b.file_offset;
  });
  return out;
}

std::vector<SubRequest> VariedStripeLayout::map_pieces(Bytes offset,
                                                       Bytes size) const {
  std::vector<SubRequest> out;
  Bytes pos = offset;
  const Bytes end = offset + size;
  while (pos < end) {
    const Bytes period = pos / period_;
    const Bytes within = pos - period * period_;
    // Locate the server cell containing `within`.
    auto it = std::upper_bound(cell_start_.begin(), cell_start_.end(), within);
    auto idx = static_cast<std::size_t>(std::distance(cell_start_.begin(), it)) - 1;
    // Skip zero-stripe cells (their cell_start equals the next cell's).
    while (stripes_[idx] == 0) ++idx;
    const Bytes cell_end = cell_start_[idx] + stripes_[idx];
    const Bytes take = std::min(end - pos, cell_end - within);
    out.push_back(SubRequest{idx, 0,
                             period * stripes_[idx] + (within - cell_start_[idx]),
                             take, pos});
    pos += take;
  }
  return out;
}

std::string VariedStripeLayout::describe() const {
  // Collapse runs of equal stripe sizes: "6x36K+2x148K".
  std::ostringstream os;
  std::size_t i = 0;
  bool first = true;
  while (i < stripes_.size()) {
    std::size_t j = i;
    while (j < stripes_.size() && stripes_[j] == stripes_[i]) ++j;
    if (!first) os << '+';
    os << (j - i) << 'x' << format_size(stripes_[i]);
    first = false;
    i = j;
  }
  return os.str();
}

std::shared_ptr<VariedStripeLayout> make_fixed_layout(std::size_t servers,
                                                      Bytes stripe) {
  return std::make_shared<VariedStripeLayout>(
      std::vector<Bytes>(servers, stripe));
}

std::shared_ptr<VariedStripeLayout> make_two_tier_layout(std::size_t M, Bytes h,
                                                         std::size_t N, Bytes s) {
  std::vector<Bytes> stripes;
  stripes.reserve(M + N);
  stripes.insert(stripes.end(), M, h);
  stripes.insert(stripes.end(), N, s);
  return std::make_shared<VariedStripeLayout>(std::move(stripes));
}

std::shared_ptr<VariedStripeLayout> make_tiered_layout(
    const std::vector<std::size_t>& counts, const std::vector<Bytes>& stripes) {
  if (counts.size() != stripes.size()) {
    throw std::invalid_argument("counts/stripes size mismatch");
  }
  std::vector<Bytes> per_server;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    per_server.insert(per_server.end(), counts[j], stripes[j]);
  }
  return std::make_shared<VariedStripeLayout>(std::move(per_server));
}

std::shared_ptr<VariedStripeLayout> make_tiered_layout(
    const std::vector<std::size_t>& counts, const std::vector<Bytes>& stripes,
    const std::vector<std::size_t>& members) {
  if (members.empty()) return make_tiered_layout(counts, stripes);
  if (counts.size() != stripes.size() || counts.size() != members.size()) {
    throw std::invalid_argument("counts/stripes/members size mismatch");
  }
  std::vector<Bytes> per_server;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    if (members[j] > counts[j]) {
      throw std::invalid_argument("members exceed tier count");
    }
    per_server.insert(per_server.end(), members[j], stripes[j]);
    per_server.insert(per_server.end(), counts[j] - members[j], Bytes{0});
  }
  return std::make_shared<VariedStripeLayout>(std::move(per_server));
}

std::shared_ptr<VariedStripeLayout> make_tiered_layout(
    const std::vector<std::size_t>& counts, const std::vector<Bytes>& stripes,
    const std::vector<std::size_t>& members,
    const std::vector<std::size_t>& reserved) {
  if (reserved.empty()) return make_tiered_layout(counts, stripes, members);
  if (counts.size() != stripes.size() || counts.size() != reserved.size() ||
      (!members.empty() && members.size() != counts.size())) {
    throw std::invalid_argument("counts/stripes/members/reserved size mismatch");
  }
  std::vector<Bytes> per_server;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    if (reserved[j] > counts[j]) {
      throw std::invalid_argument("reservation exceeds tier count");
    }
    const std::size_t m =
        members.empty() ? counts[j] - reserved[j] : members[j];
    if (reserved[j] + m > counts[j]) {
      throw std::invalid_argument("members + reservation exceed tier count");
    }
    per_server.insert(per_server.end(), reserved[j], Bytes{0});
    per_server.insert(per_server.end(), m, stripes[j]);
    per_server.insert(per_server.end(), counts[j] - reserved[j] - m, Bytes{0});
  }
  return std::make_shared<VariedStripeLayout>(std::move(per_server));
}

}  // namespace harl::pfs
