#include "src/pfs/epoch_layout.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace harl::pfs {

namespace {

constexpr Bytes kNoEnd = std::numeric_limits<Bytes>::max();

/// Full-file view of one epoch with objects rebased into its partition.
class EpochViewLayout final : public Layout {
 public:
  EpochViewLayout(std::shared_ptr<const RegionLayout> layout,
                  std::uint32_t epoch)
      : layout_(std::move(layout)), epoch_(epoch) {}

  std::vector<SubRequest> map(Bytes offset, Bytes size) const override {
    auto subs = layout_->map(offset, size);
    for (auto& sub : subs) {
      sub.object += epoch_ * EpochedLayout::kObjectsPerEpoch;
    }
    return subs;
  }
  std::size_t server_count() const override { return layout_->server_count(); }
  std::string describe() const override {
    return "epoch-view(e" + std::to_string(epoch_) + ")";
  }

 private:
  std::shared_ptr<const RegionLayout> layout_;
  std::uint32_t epoch_;
};

}  // namespace

EpochedLayout::EpochedLayout(std::shared_ptr<const RegionLayout> epoch0) {
  if (epoch0 == nullptr) {
    throw std::invalid_argument("epoched layout needs an epoch-0 layout");
  }
  if (epoch0->region_count() >= kObjectsPerEpoch) {
    throw std::invalid_argument("epoch has too many regions for its partition");
  }
  epochs_.push_back(std::move(epoch0));
  owners_.push_back(Span{0, 0});
}

std::uint32_t EpochedLayout::add_epoch(
    std::shared_ptr<const RegionLayout> layout) {
  if (layout == nullptr) throw std::invalid_argument("null epoch layout");
  if (layout->tier_counts() != epochs_.front()->tier_counts()) {
    throw std::invalid_argument("epoch tier shape differs from epoch 0");
  }
  if (layout->region_count() >= kObjectsPerEpoch) {
    throw std::invalid_argument("epoch has too many regions for its partition");
  }
  epochs_.push_back(std::move(layout));
  return latest_epoch();
}

std::size_t EpochedLayout::owner_index(Bytes offset) const {
  // Last span with span.begin <= offset.
  auto it = std::upper_bound(
      owners_.begin(), owners_.end(), offset,
      [](Bytes off, const Span& span) { return off < span.begin; });
  return static_cast<std::size_t>(std::distance(owners_.begin(), it)) - 1;
}

std::uint32_t EpochedLayout::owner_of(Bytes offset) const {
  return owners_[owner_index(offset)].epoch;
}

Bytes EpochedLayout::owner_end(Bytes offset) const {
  const std::size_t idx = owner_index(offset);
  return idx + 1 < owners_.size() ? owners_[idx + 1].begin : kNoEnd;
}

void EpochedLayout::assign(Bytes begin, Bytes end, std::uint32_t epoch) {
  if (begin >= end) return;
  if (epoch >= epochs_.size()) {
    throw std::invalid_argument("assign to unknown epoch");
  }
  std::vector<Span> next;
  next.reserve(owners_.size() + 2);
  auto emit = [&](Bytes b, std::uint32_t e) {
    if (!next.empty() && next.back().epoch == e) return;  // coalesce runs
    next.push_back(Span{b, e});
  };
  bool inserted = false;
  for (std::size_t i = 0; i < owners_.size(); ++i) {
    const Bytes b = owners_[i].begin;
    const Bytes span_end = i + 1 < owners_.size() ? owners_[i + 1].begin : kNoEnd;
    if (b < begin) emit(b, owners_[i].epoch);  // piece before the new range
    if (!inserted && span_end > begin) {
      emit(begin, epoch);
      inserted = true;
    }
    if (span_end > end) {  // piece after the new range resumes the old owner
      emit(std::max(b, end), owners_[i].epoch);
    }
  }
  owners_ = std::move(next);
}

std::vector<std::pair<Bytes, std::uint32_t>> EpochedLayout::owners() const {
  std::vector<std::pair<Bytes, std::uint32_t>> out;
  out.reserve(owners_.size());
  for (const Span& span : owners_) out.emplace_back(span.begin, span.epoch);
  return out;
}

std::size_t EpochedLayout::effective_region_count() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < owners_.size(); ++i) {
    const RegionLayout& layout = *epochs_[owners_[i].epoch];
    const Bytes b = owners_[i].begin;
    const Bytes span_end = i + 1 < owners_.size() ? owners_[i + 1].begin : kNoEnd;
    const std::size_t first = layout.region_of(b);
    const std::size_t last = span_end == kNoEnd
                                 ? layout.region_count() - 1
                                 : layout.region_of(span_end - 1);
    count += last - first + 1;
  }
  return count;
}

std::vector<SubRequest> EpochedLayout::map(Bytes offset, Bytes size) const {
  std::vector<SubRequest> out;
  Bytes pos = offset;
  const Bytes end = offset + size;
  while (pos < end) {
    const std::size_t idx = owner_index(pos);
    const Bytes span_end =
        idx + 1 < owners_.size() ? owners_[idx + 1].begin : kNoEnd;
    const Bytes take = std::min(end, span_end) - pos;
    const std::uint32_t e = owners_[idx].epoch;
    // Epoch RSTs cover the whole file, so the epoch's layout resolves the
    // absolute offsets directly; only the object ids need rebasing.
    auto subs = epochs_[e]->map(pos, take);
    for (auto& sub : subs) {
      sub.object += e * kObjectsPerEpoch;
      out.push_back(std::move(sub));
    }
    pos += take;
  }
  return out;
}

std::size_t EpochedLayout::server_count() const {
  return epochs_.front()->server_count();
}

std::string EpochedLayout::describe() const {
  std::ostringstream os;
  os << "epoched(" << epochs_.size() << " epoch"
     << (epochs_.size() == 1 ? "" : "s") << ", " << owners_.size()
     << " span" << (owners_.size() == 1 ? "" : "s") << "; latest "
     << epochs_.back()->describe() << ")";
  return os.str();
}

std::shared_ptr<const Layout> EpochedLayout::epoch_view(
    std::uint32_t e) const {
  return std::make_shared<EpochViewLayout>(epochs_.at(e), e);
}

}  // namespace harl::pfs
