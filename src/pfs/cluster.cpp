#include "src/pfs/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/common/rng.hpp"
#include "src/sim/pdes.hpp"

namespace harl::pfs {

std::vector<TierGroup> ClusterConfig::effective_tiers() const {
  std::vector<TierGroup> groups;
  if (!tiers.empty()) {
    groups = tiers;
  } else {
    if (num_hservers > 0) {
      groups.push_back(
          TierGroup{"hserver", num_hservers, hdd, false, hdd_factors});
    }
    if (num_sservers > 0) {
      groups.push_back(
          TierGroup{"sserver", num_sservers, ssd, true, ssd_factors});
    }
  }
  for (auto& g : groups) {
    if (!g.device_factors.empty() && g.device_factors.size() != g.count) {
      throw std::invalid_argument("tier \"" + g.name + "\" has " +
                                  std::to_string(g.device_factors.size()) +
                                  " device factors for " +
                                  std::to_string(g.count) + " servers");
    }
    storage::canonicalize_device_factors(g.device_factors);
  }
  return groups;
}

double ClusterConfig::min_device_factor() const {
  double min_factor = 1.0;
  for (const auto& g : effective_tiers()) {
    for (double f : g.device_factors) min_factor = std::min(min_factor, f);
  }
  return min_factor;
}

std::vector<std::size_t> Cluster::tier_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(tiers_.size());
  for (const auto& t : tiers_) counts.push_back(t.count);
  return counts;
}

Cluster::Cluster(sim::Simulator& sim, const ClusterConfig& config)
    : sim_(sim), config_(config), tiers_(config.effective_tiers()) {
  std::size_t total = 0;
  for (const auto& t : tiers_) {
    tier_begin_.push_back(total);
    total += t.count;
    (t.is_ssd ? num_sservers_ : num_hservers_) += t.count;
  }
  if (total == 0) throw std::invalid_argument("cluster needs file servers");
  if (config.num_clients == 0) throw std::invalid_argument("cluster needs clients");

  network_ = std::make_unique<net::Network>(sim_, config.network,
                                            config.num_clients, total);

  Rng seeder(config.seed);
  for (const auto& t : tiers_) {
    for (std::size_t i = 0; i < t.count; ++i) {
      const std::string name = t.name + std::to_string(i);
      // Slot i runs factor i of the tier's canonical (ascending) vector, so
      // the fastest members occupy the lowest global indices — the order the
      // device-aware member-prefix search assumes.  A homogeneous tier uses
      // t.profile directly: byte-identity with the pre-device-model cluster.
      const double factor =
          t.device_factors.empty() ? 1.0 : t.device_factors[i];
      const storage::TierProfile profile =
          t.device_factors.empty() ? t.profile
                                   : storage::scaled_profile(t.profile, factor);
      std::unique_ptr<storage::StorageDevice> device;
      if (t.is_ssd) {
        device = std::make_unique<storage::SsdDevice>(profile, seeder.next(),
                                                      config.ssd_gc);
      } else {
        device = std::make_unique<storage::HddDevice>(
            profile, seeder.next(), config.hdd_sequential_factor);
      }
      const std::size_t global_index = servers_.size();
      if (auto it = config.server_faults.find(global_index);
          it != config.server_faults.end()) {
        device = std::make_unique<storage::FaultyDevice>(std::move(device),
                                                         it->second);
      }
      servers_.push_back(std::make_unique<DataServer>(
          sim_, std::move(device), name, t.is_ssd,
          config.server_per_stripe_overhead * factor, factor));
    }
  }

  if (config.gc_pause.period > 0.0 && config.gc_pause.duration > 0.0) {
    if (!(config.gc_pause.factor >= 1.0)) {
      throw std::invalid_argument(
          "gc_pause.factor must be >= 1 (lookahead floor)");
    }
    std::size_t target = 0;
    if (config.gc_pause.server >= 0) {
      target = static_cast<std::size_t>(config.gc_pause.server);
      if (target >= servers_.size()) {
        throw std::invalid_argument("gc_pause.server out of range");
      }
    } else {
      // Default: the first SSD server — the paper's long-tailed device class.
      for (std::size_t ti = 0; ti < tiers_.size(); ++ti) {
        if (tiers_[ti].is_ssd) {
          target = tier_begin_[ti];
          break;
        }
      }
    }
    servers_[target]->set_gc_pause(config.gc_pause.period,
                                   config.gc_pause.duration,
                                   config.gc_pause.factor);
  }

  if (config.fail_server >= 0) {
    const auto target = static_cast<std::size_t>(config.fail_server);
    if (target >= servers_.size()) {
      throw std::invalid_argument("fail_server out of range");
    }
    if (!(config.fail_at >= 0.0)) {
      throw std::invalid_argument("fail_at must be >= 0");
    }
    servers_[target]->set_failed_at(config.fail_at);
  }

  mds_ = std::make_unique<MetadataServer>(sim_, config.mds_lookup_cost,
                                          config.mds_per_region_cost);

  std::vector<DataServer*> server_ptrs;
  server_ptrs.reserve(servers_.size());
  for (auto& s : servers_) server_ptrs.push_back(s.get());
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    clients_.push_back(std::make_unique<Client>(sim_, *network_, server_ptrs, i));
  }

  // Set the simulator's observer *before* constructing the cluster to get
  // per-component tracks and attribution; a cluster built without one runs
  // the uninstrumented fast paths.
  if (sim_.observer() != nullptr) {
    std::size_t global = 0;
    for (std::size_t ti = 0; ti < tiers_.size(); ++ti) {
      for (std::size_t i = 0; i < tiers_[ti].count; ++i, ++global) {
        servers_[global]->attach_observer(static_cast<std::uint32_t>(global),
                                          static_cast<std::uint32_t>(ti));
      }
    }
    network_->attach_observer();
    for (auto& c : clients_) c->attach_observer();
    if (config.observe_mds) mds_->attach_observer();
  }
}

std::size_t Cluster::pdes_lp_count(const ClusterConfig& config) {
  std::size_t total = 0;
  for (const auto& t : config.effective_tiers()) total += t.count;
  const std::size_t shards = std::min(config.num_clients, total);
  return 1 + total + shards;
}

void Cluster::attach_pdes(sim::pdes::Runtime& runtime) {
  const std::size_t total = servers_.size();
  const std::size_t shards = std::min(clients_.size(), total);
  if (runtime.num_lps() != 1 + total + shards) {
    throw std::invalid_argument(
        "PDES runtime sized for a different cluster shape");
  }
  std::vector<std::uint32_t> server_lps(total);
  for (std::size_t j = 0; j < total; ++j) {
    const auto lp = static_cast<std::uint32_t>(1 + j);
    servers_[j]->set_lp(lp);
    server_lps[j] = lp;
  }
  std::vector<std::uint32_t> client_lps(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    client_lps[i] = static_cast<std::uint32_t>(1 + total + (i % shards));
  }
  network_->attach_pdes(client_lps, server_lps);
}

Seconds Cluster::server_io_time(std::size_t i) const {
  return servers_.at(i)->io_time() + network_->server_link(i).busy_time();
}

void Cluster::reset_stats() {
  for (auto& s : servers_) s->reset_stats();
  for (std::size_t i = 0; i < num_servers(); ++i) {
    network_->server_link(i).reset_stats();
  }
  for (std::size_t i = 0; i < num_clients(); ++i) {
    network_->client_link(i).reset_stats();
  }
}

}  // namespace harl::pfs
