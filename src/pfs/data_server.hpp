// A file server: one storage device behind a FIFO service queue.
//
// Sub-requests arrive from clients (already aggregated per server by the
// layout), queue on the device, and complete after the device's modelled
// service time.  Distinct physical objects (one per HARL region, via the R2F
// mapping) are placed at widely separated device offsets so the HDD
// sequentiality model never confuses extents of different objects.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/io.hpp"
#include "src/obs/sink.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"
#include "src/storage/device.hpp"

namespace harl::pfs {

class DataServer {
 public:
  /// `per_stripe_overhead` is charged once per stripe unit of each access
  /// (PFS request-protocol/flow-buffer processing): the term that makes tiny
  /// stripes expensive for large requests (paper Fig. 1b).  `speed_factor`
  /// records the device's aging multiplier relative to its tier profile
  /// (1.0 = fresh); the cluster has already baked it into the device and the
  /// overhead — this copy is for observability only.
  DataServer(sim::Simulator& sim, std::unique_ptr<storage::StorageDevice> device,
             std::string name, bool is_ssd, Seconds per_stripe_overhead = 0.0,
             double speed_factor = 1.0);

  /// Queues one server-local access spanning `pieces` stripe units;
  /// `on_complete` fires when the device finishes it (FIFO after all
  /// previously queued accesses).  `obs_sub` optionally names the
  /// observability sub-request this access belongs to (obs::Sink::begin_sub),
  /// so the recorder can split the access into startup (T_S) and transfer
  /// (T_T) via the device's last_startup().
  void submit(IoOp op, std::uint32_t object, Bytes offset, Bytes size,
              Bytes pieces, sim::InlineTask on_complete,
              std::uint32_t obs_sub = obs::kNoId);

  /// Registers this server with the simulator's observer under global server
  /// index `server` and tier `tier`; binds the storage queue to its trace
  /// track.  Call once, before any traffic.
  void attach_observer(std::uint32_t server, std::uint32_t tier);

  /// Assigns this server (and its storage queue) to logical process `lp`
  /// under PDES.  submit() calls issued off this LP relay themselves onto it
  /// (with their observability anchor) so the device and queue state are
  /// only ever touched in LP time order.
  void set_lp(std::uint32_t lp) {
    lp_ = lp;
    queue_.set_lp(lp);
  }
  std::uint32_t lp() const { return lp_; }

  const std::string& name() const { return name_; }
  bool is_ssd() const { return is_ssd_; }
  /// Device aging multiplier relative to the tier profile (1.0 = fresh).
  double speed_factor() const { return speed_factor_; }
  storage::StorageDevice& device() { return *device_; }
  const storage::StorageDevice& device() const { return *device_; }

  /// Cumulative device busy time: the per-server "I/O time" reported in the
  /// paper's Fig. 1a.
  Seconds io_time() const { return queue_.busy_time(); }
  Seconds queue_delay() const { return queue_.total_queue_delay(); }
  std::uint64_t requests_served() const { return queue_.jobs(); }
  Bytes bytes_read() const { return bytes_read_; }
  Bytes bytes_written() const { return bytes_written_; }

  /// Clears statistics and device state between experiment phases.
  void reset_stats();

  /// Arms periodic service-time inflation (a GC-pause model): while
  /// fmod(sim.now(), period) < duration, every access's service time is
  /// multiplied by `factor` (>= 1, so the PDES lookahead floor still holds).
  /// Deterministic in simulated time, hence PDES-width-invariant.
  void set_gc_pause(Seconds period, Seconds duration, double factor) {
    gc_period_ = period;
    gc_duration_ = duration;
    gc_factor_ = factor;
  }

  /// Arms a whole-server failure at simulated time `at` (< 0 disarms).
  /// Like the GC-pause model, failure is a pure function of simulated time —
  /// clients on any LP evaluate failed(now) identically at identical sim
  /// times, so degraded routing is PDES-width-invariant.  The server object
  /// stays alive (the queue would still drain in-flight work); callers are
  /// expected to stop routing to it instead.
  void set_failed_at(Seconds at) { failed_at_ = at; }
  Seconds failed_at() const { return failed_at_; }
  bool failed(Seconds now) const {
    return failed_at_ >= 0.0 && now >= failed_at_;
  }

 private:
  /// Device-address stride separating physical objects (regions).
  static constexpr Bytes kObjectStride = static_cast<Bytes>(1) << 40;

  /// The body of submit(), always running on this server's LP under PDES.
  void submit_local(IoOp op, std::uint32_t object, Bytes offset, Bytes size,
                    Bytes pieces, sim::InlineTask on_complete,
                    std::uint32_t obs_sub);

  sim::Simulator& sim_;
  std::unique_ptr<storage::StorageDevice> device_;
  std::string name_;
  bool is_ssd_;
  Seconds per_stripe_overhead_;
  double speed_factor_;
  sim::FifoResource queue_;
  Seconds gc_period_ = 0.0;    ///< 0 = GC-pause model disabled
  Seconds gc_duration_ = 0.0;
  double gc_factor_ = 1.0;
  Seconds failed_at_ = -1.0;   ///< < 0 = never fails
  Bytes bytes_read_ = 0;
  Bytes bytes_written_ = 0;
  std::uint32_t obs_server_ = obs::kNoId;  // global index under the observer
  std::uint32_t lp_ = 0;                   // owning logical process under PDES
};

}  // namespace harl::pfs
