#include "src/pfs/mds.hpp"

#include "src/obs/sink.hpp"
#include "src/pfs/epoch_layout.hpp"
#include "src/pfs/region_layout.hpp"

#include <utility>

namespace harl::pfs {

MetadataServer::MetadataServer(sim::Simulator& sim, Seconds lookup_cost,
                               Seconds per_region_cost)
    : sim_(sim),
      queue_(sim, "mds"),
      lookup_cost_(lookup_cost),
      per_region_cost_(per_region_cost) {}

void MetadataServer::attach_observer() {
  if (obs::Sink* obs = sim_.observer(); obs != nullptr) {
    queue_.set_obs_track(obs->track("mds", obs::TrackKind::kOther,
                                    /*entity=*/0));
  }
}

void MetadataServer::register_file(const std::string& name,
                                   std::shared_ptr<const Layout> layout) {
  files_[name] = std::move(layout);
}

void MetadataServer::remove_file(const std::string& name) { files_.erase(name); }

bool MetadataServer::has_file(const std::string& name) const {
  return files_.count(name) > 0;
}

void MetadataServer::lookup(
    const std::string& name,
    std::function<void(std::shared_ptr<const Layout>)> cb) {
  // Resolve at service time: by the instant the RPC is actually served the
  // namespace may have dropped (or replaced) the file, and the caller must
  // see that state, not a layout pinned when the RPC entered the queue.
  // The name rides behind a shared_ptr so the task fits InlineTask's
  // in-place buffer (8 + 32 + 16 = 56 = kCapacity).
  queue_.submit(lookup_cost_,
                [this, cb = std::move(cb),
                 name = std::make_shared<const std::string>(name)] {
                  cb(layout_of(*name));
                });
}

void MetadataServer::placement_lookup(
    const std::string& name,
    std::function<void(std::shared_ptr<const Layout>)> cb) {
  // The RST consulted for costing is the one visible at submission (the
  // service time of a FIFO job is fixed when it enqueues); the layout handed
  // to the callback is re-resolved at service time, like lookup().
  auto layout = layout_of(name);
  const std::size_t regions = layout ? region_count_of(*layout) : 1;
  const Seconds service =
      lookup_cost_ + per_region_cost_ * static_cast<double>(regions);
  queue_.submit(service,
                [this, cb = std::move(cb),
                 name = std::make_shared<const std::string>(name)] {
                  cb(layout_of(*name));
                });
}

std::size_t MetadataServer::region_count_of(const Layout& layout) {
  if (const auto* region = dynamic_cast<const RegionLayout*>(&layout)) {
    return region->region_count();
  }
  if (const auto* epoched = dynamic_cast<const EpochedLayout*>(&layout)) {
    // The effective table the MDS consults is the ownership map refined by
    // each governing epoch's regions, so adaptive re-layouts pay metadata
    // cost for the spans they actually create.
    return epoched->effective_region_count();
  }
  return 1;
}

std::shared_ptr<const Layout> MetadataServer::layout_of(
    const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second;
}

}  // namespace harl::pfs
