#include "src/pfs/client.hpp"

#include <stdexcept>
#include <utility>

#include "src/pfs/cache_manager.hpp"
#include "src/pfs/replication.hpp"

namespace harl::pfs {

Client::Client(sim::Simulator& sim, net::Network& network,
               std::vector<DataServer*> servers, std::size_t id)
    : sim_(sim), network_(network), servers_(std::move(servers)), id_(id) {
  if (servers_.empty()) throw std::invalid_argument("client needs servers");
}

void Client::attach_observer() {
  if (obs::Sink* obs = sim_.observer(); obs != nullptr) {
    obs->register_client(static_cast<std::uint32_t>(id_));
    observed_ = true;
  }
}

void Client::io(const Layout& layout, IoOp op, Bytes offset, Bytes size,
                sim::InlineTask on_complete, std::uint32_t file,
                const ReplicaMap* replicas) {
  ++requests_issued_;
  if (size == 0) {
    sim_.schedule_after(0.0, std::move(on_complete));
    return;
  }
  if (replicas != nullptr) [[unlikely]] {
    obs::Sink* obs = observed_ ? sim_.observer() : nullptr;
    io_replicated(obs, layout, op, offset, size, std::move(on_complete), file,
                  *replicas);
    return;
  }
  if (obs::Sink* obs = sim_.observer(); obs != nullptr && observed_)
      [[unlikely]] {
    io_observed(*obs, layout, op, offset, size, std::move(on_complete), file);
    return;
  }
  if (cache_ != nullptr && cache_->enabled()) [[unlikely]] {
    // The cache fronts the whole file request: hits read from the cache
    // devices, miss runs map through the layout inside the manager.
    if (op == IoOp::kRead) {
      auto join =
          std::make_shared<sim::JoinCounter>(1, std::move(on_complete));
      cache_->issue_read(id_, layout, offset, size, join, nullptr, obs::kNoId,
                         file);
      return;
    }
    cache_->invalidate(offset, size, file);
  }
  auto subs = layout.map(offset, size);
  if (subs.empty()) throw std::logic_error("layout mapped request to nothing");
  auto join =
      std::make_shared<sim::JoinCounter>(subs.size(), std::move(on_complete));
  for (const auto& sub : subs) {
    if (sub.server >= servers_.size()) {
      throw std::out_of_range("layout references unknown server");
    }
    if (op == IoOp::kRead) {
      issue_read(sub, join);
    } else {
      issue_write(op, sub, join);
    }
  }
}

void Client::issue_read(const SubRequest& sub,
                        const std::shared_ptr<sim::JoinCounter>& join) {
  DataServer& server = *servers_[sub.server];
  const std::size_t server_idx = sub.server;
  const Bytes bytes = sub.size;
  server.submit(IoOp::kRead, sub.object, sub.server_offset, bytes, sub.pieces,
                [this, server_idx, bytes, join] {
                  network_.transfer(id_, server_idx, bytes,
                                    net::Direction::kServerToClient,
                                    [join] { join->done(); });
                });
}

void Client::issue_write(IoOp op, const SubRequest& sub,
                         const std::shared_ptr<sim::JoinCounter>& join) {
  // Packed continuation: capturing the whole SubRequest would overflow
  // InlineTask's in-place buffer, so only the fields the server needs ride
  // along (52 bytes — the sizing case for InlineTask::kCapacity).
  struct SubmitAfterTransfer {
    DataServer* server;
    Bytes server_offset;
    Bytes size;
    std::shared_ptr<sim::JoinCounter> join;
    std::uint32_t object;
    std::uint32_t pieces;
    IoOp op;
    void operator()() {
      server->submit(op, object, server_offset, size, pieces,
                     [join = std::move(join)] { join->done(); });
    }
  };
  network_.transfer(
      id_, sub.server, sub.size, net::Direction::kClientToServer,
      SubmitAfterTransfer{servers_[sub.server], sub.server_offset, sub.size,
                          join, sub.object,
                          static_cast<std::uint32_t>(sub.pieces), op});
}

void Client::issue_read_observed(const SubRequest& sub,
                                 const std::shared_ptr<sim::JoinCounter>& join,
                                 std::uint32_t osub) {
  DataServer& server = *servers_[sub.server];
  const std::size_t server_idx = sub.server;
  const Bytes bytes = sub.size;
  server.submit(
      IoOp::kRead, sub.object, sub.server_offset, bytes, sub.pieces,
      [this, server_idx, bytes, osub, join] {
        network_.transfer(id_, server_idx, bytes,
                          net::Direction::kServerToClient,
                          [this, osub, join] {
                            sim_.observer()->sub_net_done(osub, sim_.now());
                            join->done();
                          });
      },
      osub);
}

void Client::issue_write_observed(IoOp op, const SubRequest& sub,
                                  const std::shared_ptr<sim::JoinCounter>& join,
                                  std::uint32_t osub) {
  struct SubmitAfterTransferObs {
    DataServer* server;
    Bytes server_offset;
    Bytes size;
    std::shared_ptr<sim::JoinCounter> join;
    std::uint32_t object;
    std::uint32_t pieces;
    IoOp op;
    std::uint32_t obs_sub;
    void operator()() {
      server->submit(
          op, object, server_offset, size, pieces,
          [join = std::move(join)] { join->done(); }, obs_sub);
    }
  };
  network_.transfer(id_, sub.server, sub.size, net::Direction::kClientToServer,
                    SubmitAfterTransferObs{
                        servers_[sub.server], sub.server_offset, sub.size,
                        join, sub.object,
                        static_cast<std::uint32_t>(sub.pieces), op, osub});
}

void Client::io_observed(obs::Sink& obs, const Layout& layout, IoOp op,
                         Bytes offset, Bytes size, sim::InlineTask on_complete,
                         std::uint32_t file) {
  // Cold mirror of io()/issue_read()/issue_write(): same data path, plus
  // request/sub-request attribution hooks.  The extra captures may spill
  // some lambdas past InlineTask's in-place buffer; only enabled runs pay.
  const bool cached = cache_ != nullptr && cache_->enabled();
  if (cached && op == IoOp::kRead) {
    // The cache splits the request into per-piece sub attributions (hit
    // spans on cache devices, miss runs on the home servers), so only the
    // request-level bracket lives here.
    const std::uint32_t req = obs.begin_request(
        static_cast<std::uint32_t>(id_), op, offset, size, sim_.now(), file);
    auto join = std::make_shared<sim::JoinCounter>(
        1, [this, req, done = std::move(on_complete)]() mutable {
          sim_.observer()->end_request(req, sim_.now());
          done();
        });
    cache_->issue_read(id_, layout, offset, size, join, &obs, req, file);
    return;
  }
  if (cached) cache_->invalidate(offset, size, file);
  auto subs = layout.map(offset, size);
  if (subs.empty()) throw std::logic_error("layout mapped request to nothing");
  const std::uint32_t req = obs.begin_request(
      static_cast<std::uint32_t>(id_), op, offset, size, sim_.now(), file);
  auto join = std::make_shared<sim::JoinCounter>(
      subs.size(), [this, req, done = std::move(on_complete)]() mutable {
        sim_.observer()->end_request(req, sim_.now());
        done();
      });
  for (const auto& sub : subs) {
    if (sub.server >= servers_.size()) {
      throw std::out_of_range("layout references unknown server");
    }
    const std::uint32_t osub =
        obs.begin_sub(req, sub.server, sub.object, sub.size, sim_.now());
    if (op == IoOp::kRead) {
      issue_read_observed(sub, join, osub);
    } else {
      issue_write_observed(op, sub, join, osub);
    }
  }
}

void Client::io_replicated(obs::Sink* obs, const Layout& layout, IoOp op,
                           Bytes offset, Bytes size,
                           sim::InlineTask on_complete, std::uint32_t file,
                           const ReplicaMap& replicas) {
  // Replicated traffic bypasses the read cache: after a failure the cache's
  // fill sources may include the failed server, and rebuild writes do not
  // flow through Client::io's invalidation hook — routing around the cache
  // keeps the degraded path self-consistent.
  auto subs = layout.map(offset, size);
  if (subs.empty()) throw std::logic_error("layout mapped request to nothing");
  const Seconds now = sim_.now();
  std::size_t expected = 0;
  for (const auto& sub : subs) {
    if (sub.server >= servers_.size()) {
      throw std::out_of_range("layout references unknown server");
    }
    // Reads: one completion per sub (primary or its replica stand-in).
    // Writes: primary + replica copies, minus the failed primary.
    if (op == IoOp::kRead) {
      expected += 1;
    } else {
      expected += servers_[sub.server]->failed(now) ? 1 : 2;
    }
  }
  std::uint32_t req = obs::kNoId;
  std::shared_ptr<sim::JoinCounter> join;
  if (obs != nullptr) {
    req = obs->begin_request(static_cast<std::uint32_t>(id_), op, offset, size,
                             now, file);
    join = std::make_shared<sim::JoinCounter>(
        expected, [this, req, done = std::move(on_complete)]() mutable {
          sim_.observer()->end_request(req, sim_.now());
          done();
        });
  } else {
    join =
        std::make_shared<sim::JoinCounter>(expected, std::move(on_complete));
  }
  for (const auto& sub : subs) {
    const bool primary_failed = servers_[sub.server]->failed(now);
    if (op == IoOp::kRead) {
      SubRequest target = sub;
      if (primary_failed) {
        target = replicas.replica_of(sub);
        if (target.server >= servers_.size()) {
          throw std::out_of_range("replica map references unknown server");
        }
        ++degraded_reads_;
      }
      if (obs != nullptr) {
        const std::uint32_t osub = obs->begin_sub(
            req, static_cast<std::uint32_t>(target.server), target.object,
            target.size, sim_.now());
        issue_read_observed(target, join, osub);
      } else {
        issue_read(target, join);
      }
      continue;
    }
    const SubRequest replica = replicas.replica_of(sub);
    if (replica.server >= servers_.size()) {
      throw std::out_of_range("replica map references unknown server");
    }
    ++replica_writes_;
    if (!primary_failed) {
      if (obs != nullptr) {
        const std::uint32_t osub =
            obs->begin_sub(req, static_cast<std::uint32_t>(sub.server),
                           sub.object, sub.size, sim_.now());
        issue_write_observed(op, sub, join, osub);
      } else {
        issue_write(op, sub, join);
      }
    }
    if (obs != nullptr) {
      const std::uint32_t osub =
          obs->begin_sub(req, static_cast<std::uint32_t>(replica.server),
                         replica.object, replica.size, sim_.now());
      issue_write_observed(op, replica, join, osub);
    } else {
      issue_write(op, replica, join);
    }
  }
}

}  // namespace harl::pfs
