#include "src/pfs/data_server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/sim/pdes.hpp"

namespace harl::pfs {

DataServer::DataServer(sim::Simulator& sim,
                       std::unique_ptr<storage::StorageDevice> device,
                       std::string name, bool is_ssd,
                       Seconds per_stripe_overhead, double speed_factor)
    : sim_(sim),
      device_(std::move(device)),
      name_(std::move(name)),
      is_ssd_(is_ssd),
      per_stripe_overhead_(per_stripe_overhead),
      speed_factor_(speed_factor),
      queue_(sim_, name_ + "/disk") {}

void DataServer::submit(IoOp op, std::uint32_t object, Bytes offset, Bytes size,
                        Bytes pieces, sim::InlineTask on_complete,
                        std::uint32_t obs_sub) {
  if (sim::pdes::Runtime* rt = sim_.pdes();
      rt != nullptr && rt->current_lp() != lp_) {
    // Issued off this server's LP (the client read path: LP 0 talks to the
    // server directly, without a store-and-forward hop in between).  Relay
    // the call onto the owner LP at the same simulated time, carrying the
    // issuing dispatch's observability anchor so the sink calls the body
    // makes replay at exactly the position the sequential engine made them.
    const sim::pdes::ObsAnchor anchor = rt->take_obs_anchor();
    sim_.schedule_on(
        lp_, sim_.now(),
        [this, op, object, offset, size, pieces, obs_sub, anchor,
         cb = std::move(on_complete)]() mutable {
          sim_.pdes()->adopt_obs_anchor(anchor);
          submit_local(op, object, offset, size, pieces, std::move(cb),
                       obs_sub);
        });
    return;
  }
  submit_local(op, object, offset, size, pieces, std::move(on_complete),
               obs_sub);
}

void DataServer::submit_local(IoOp op, std::uint32_t object, Bytes offset,
                              Bytes size, Bytes pieces,
                              sim::InlineTask on_complete,
                              std::uint32_t obs_sub) {
  const Bytes device_offset = static_cast<Bytes>(object) * kObjectStride + offset;
  // FIFO order equals arrival order, so sampling the device at submission
  // time preserves the sequential-access detection of stateful devices.
  Seconds service =
      device_->service_time(op, device_offset, size) +
      per_stripe_overhead_ * static_cast<double>(std::max<Bytes>(pieces, 1));
  if (gc_period_ > 0.0 &&
      std::fmod(sim_.now(), gc_period_) < gc_duration_) {
    // Inside a GC pause: inflate the whole access.  Pure function of
    // simulated time, so identical at every PDES width (the relay in
    // submit() preserves sim time), and factor >= 1 keeps every service
    // above the lookahead floor.
    service *= gc_factor_;
  }
  if (op == IoOp::kRead) {
    bytes_read_ += size;
  } else {
    bytes_written_ += size;
  }
  if (obs::Sink* obs = sim_.observer();
      obs != nullptr && obs_server_ != obs::kNoId) [[unlikely]] {
    const sim::Time arrival = sim_.now();
    obs->server_access(obs_server_, op, object, size, pieces, arrival);
    if (obs_sub != obs::kNoId) {
      const sim::Time start = std::max(arrival, queue_.next_free());
      obs->sub_storage(obs_sub, arrival, start, device_->last_startup(),
                       service);
    }
  }
  // Read completions fire on this LP (they start the server->client network
  // transfer from the server's NIC); write completions report straight back
  // to client-side logic on the app LP.  Both hops cost at least the
  // per-stripe overhead, which the PDES lookahead is derived from.
  queue_.submit_to(op == IoOp::kRead ? lp_ : sim::pdes::kAppLp, service,
                   std::move(on_complete));
}

void DataServer::attach_observer(std::uint32_t server, std::uint32_t tier) {
  if (obs::Sink* obs = sim_.observer(); obs != nullptr) {
    obs_server_ = server;
    queue_.set_obs_track(obs->register_server(server, tier, name_, is_ssd_));
  }
}

void DataServer::reset_stats() {
  bytes_read_ = 0;
  bytes_written_ = 0;
  device_->reset();
  queue_.reset_stats();
}

}  // namespace harl::pfs
