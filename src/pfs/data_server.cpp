#include "src/pfs/data_server.hpp"

#include <algorithm>
#include <utility>

namespace harl::pfs {

DataServer::DataServer(sim::Simulator& sim,
                       std::unique_ptr<storage::StorageDevice> device,
                       std::string name, bool is_ssd,
                       Seconds per_stripe_overhead)
    : sim_(sim),
      device_(std::move(device)),
      name_(std::move(name)),
      is_ssd_(is_ssd),
      per_stripe_overhead_(per_stripe_overhead),
      queue_(sim_, name_ + "/disk") {}

void DataServer::submit(IoOp op, std::uint32_t object, Bytes offset, Bytes size,
                        Bytes pieces, sim::InlineTask on_complete) {
  const Bytes device_offset = static_cast<Bytes>(object) * kObjectStride + offset;
  // FIFO order equals arrival order, so sampling the device at submission
  // time preserves the sequential-access detection of stateful devices.
  const Seconds service =
      device_->service_time(op, device_offset, size) +
      per_stripe_overhead_ * static_cast<double>(std::max<Bytes>(pieces, 1));
  if (op == IoOp::kRead) {
    bytes_read_ += size;
  } else {
    bytes_written_ += size;
  }
  queue_.submit(service, std::move(on_complete));
}

void DataServer::reset_stats() {
  bytes_read_ = 0;
  bytes_written_ = 0;
  device_->reset();
  queue_.reset_stats();
}

}  // namespace harl::pfs
