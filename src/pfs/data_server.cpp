#include "src/pfs/data_server.hpp"

#include <algorithm>
#include <utility>

namespace harl::pfs {

DataServer::DataServer(sim::Simulator& sim,
                       std::unique_ptr<storage::StorageDevice> device,
                       std::string name, bool is_ssd,
                       Seconds per_stripe_overhead)
    : sim_(sim),
      device_(std::move(device)),
      name_(std::move(name)),
      is_ssd_(is_ssd),
      per_stripe_overhead_(per_stripe_overhead),
      queue_(sim_, name_ + "/disk") {}

void DataServer::submit(IoOp op, std::uint32_t object, Bytes offset, Bytes size,
                        Bytes pieces, sim::InlineTask on_complete,
                        std::uint32_t obs_sub) {
  const Bytes device_offset = static_cast<Bytes>(object) * kObjectStride + offset;
  // FIFO order equals arrival order, so sampling the device at submission
  // time preserves the sequential-access detection of stateful devices.
  const Seconds service =
      device_->service_time(op, device_offset, size) +
      per_stripe_overhead_ * static_cast<double>(std::max<Bytes>(pieces, 1));
  if (op == IoOp::kRead) {
    bytes_read_ += size;
  } else {
    bytes_written_ += size;
  }
  if (obs::Sink* obs = sim_.observer();
      obs != nullptr && obs_server_ != obs::kNoId) [[unlikely]] {
    const sim::Time arrival = sim_.now();
    obs->server_access(obs_server_, op, object, size, pieces, arrival);
    if (obs_sub != obs::kNoId) {
      const sim::Time start = std::max(arrival, queue_.next_free());
      obs->sub_storage(obs_sub, arrival, start, device_->last_startup(),
                       service);
    }
  }
  queue_.submit(service, std::move(on_complete));
}

void DataServer::attach_observer(std::uint32_t server, std::uint32_t tier) {
  if (obs::Sink* obs = sim_.observer(); obs != nullptr) {
    obs_server_ = server;
    queue_.set_obs_track(obs->register_server(server, tier, name_, is_ssd_));
  }
}

void DataServer::reset_stats() {
  bytes_read_ = 0;
  bytes_written_ = 0;
  device_->reset();
  queue_.reset_stats();
}

}  // namespace harl::pfs
