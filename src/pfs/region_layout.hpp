// Region-level layout: the data-placement half of HARL (paper Fig. 2b).
//
// The logical file is split at region boundaries; each region is striped
// independently with its own per-tier stripe sizes and is backed by its own
// physical object per server (the paper maps each region to a separate
// OrangeFS file via the R2F table).  Requests spanning region boundaries are
// split and mapped per region; the SubRequest::object field carries the
// region index so servers address distinct physical objects.
#pragma once

#include <memory>
#include <vector>

#include "src/pfs/layout.hpp"

namespace harl::pfs {

/// Stripe configuration of one region, mirroring an RST row (paper Fig. 6).
struct RegionSpec {
  Bytes offset = 0;  ///< region start; the region extends to the next spec
  Bytes h = 0;       ///< HServer stripe size (0 = skip HServers)
  Bytes s = 0;       ///< SServer stripe size (0 = skip SServers)

  friend bool operator==(const RegionSpec&, const RegionSpec&) = default;
};

class RegionLayout final : public Layout {
 public:
  /// `M` HServers occupy global server slots [0, M); `N` SServers occupy
  /// [M, M+N).  `regions` must be sorted by strictly increasing offset and
  /// start at offset 0; the last region extends to infinity.  Each region
  /// must have h > 0 or s > 0.
  RegionLayout(std::size_t M, std::size_t N, std::vector<RegionSpec> regions);

  std::vector<SubRequest> map(Bytes offset, Bytes size) const override;
  std::size_t server_count() const override { return M_ + N_; }
  std::string describe() const override;

  std::size_t region_count() const { return specs_.size(); }
  const RegionSpec& region(std::size_t i) const { return specs_.at(i); }
  const std::vector<RegionSpec>& regions() const { return specs_; }

  /// Index of the region containing `offset` (binary search).
  std::size_t region_of(Bytes offset) const;

  /// End offset of region i (start of region i+1, or +inf for the last).
  Bytes region_end(std::size_t i) const;

  std::size_t num_hservers() const { return M_; }
  std::size_t num_sservers() const { return N_; }

 private:
  std::size_t M_;
  std::size_t N_;
  std::vector<RegionSpec> specs_;
  std::vector<std::shared_ptr<VariedStripeLayout>> region_layouts_;
};

}  // namespace harl::pfs
