// Region-level layout: the data-placement half of HARL (paper Fig. 2b).
//
// The logical file is split at region boundaries; each region is striped
// independently with its own per-tier stripe sizes and is backed by its own
// physical object per server (the paper maps each region to a separate
// OrangeFS file via the R2F table).  Requests spanning region boundaries are
// split and mapped per region; the SubRequest::object field carries the
// region index so servers address distinct physical objects.
//
// Since the tier-vector refactor a region's stripe configuration is the
// per-tier vector (s_0, ..., s_{k-1}); the paper's two-tier shape is k = 2
// with tier 0 = HServers and tier 1 = SServers.  Clusters with 3+ tiers use
// the exact same placement code.
#pragma once

#include <memory>
#include <vector>

#include "src/pfs/layout.hpp"

namespace harl::pfs {

/// Stripe configuration of one region, mirroring an RST row (paper Fig. 6).
struct RegionSpec {
  Bytes offset = 0;  ///< region start; the region extends to the next spec
  std::vector<Bytes> stripes;  ///< per-tier stripe sizes (0 = skip the tier)
  /// Per-tier member restriction: only the first members[j] servers of tier
  /// j participate in the round-robin (the tier's fastest devices — the
  /// device-aware planner's straggler exclusion).  Empty = full membership,
  /// the only form homogeneous plans produce.
  std::vector<std::size_t> members;

  RegionSpec() = default;
  RegionSpec(Bytes offset_, std::vector<Bytes> stripes_)
      : offset(offset_), stripes(std::move(stripes_)) {}
  RegionSpec(Bytes offset_, std::vector<Bytes> stripes_,
             std::vector<std::size_t> members_)
      : offset(offset_),
        stripes(std::move(stripes_)),
        members(std::move(members_)) {}
  /// Two-tier convenience: HServer stripe `h`, SServer stripe `s`.
  RegionSpec(Bytes offset_, Bytes h, Bytes s) : offset(offset_), stripes{h, s} {}

  /// Two-tier views (tier 0 / tier 1; 0 when the tier is absent).
  Bytes h() const { return stripes.empty() ? 0 : stripes[0]; }
  Bytes s() const { return stripes.size() < 2 ? 0 : stripes[1]; }

  friend bool operator==(const RegionSpec&, const RegionSpec&) = default;
};

class RegionLayout final : public Layout {
 public:
  /// `tier_counts[j]` servers form tier j; tiers occupy consecutive global
  /// server slots in order (tier 0 first).  `regions` must be sorted by
  /// strictly increasing offset and start at offset 0; the last region
  /// extends to infinity.  Each region must carry one stripe per tier, with
  /// at least one nonzero stripe on a tier that has servers.
  RegionLayout(std::vector<std::size_t> tier_counts,
               std::vector<RegionSpec> regions);

  /// Reservation-aware form: tier j's first `reserved[j]` servers (its
  /// fastest devices) are withheld from every region's round-robin — the
  /// cache tier's device reservation.  Region member restrictions then
  /// count from the first unreserved slot (see the make_tiered_layout
  /// reserved overload).  An empty `reserved` is identical to the plain
  /// constructor.
  RegionLayout(std::vector<std::size_t> tier_counts,
               std::vector<RegionSpec> regions,
               std::vector<std::size_t> reserved);

  /// Two-tier convenience: `M` HServers occupy global server slots [0, M);
  /// `N` SServers occupy [M, M+N).
  RegionLayout(std::size_t M, std::size_t N, std::vector<RegionSpec> regions);

  std::vector<SubRequest> map(Bytes offset, Bytes size) const override;
  std::size_t server_count() const override { return total_servers_; }
  std::string describe() const override;

  std::size_t region_count() const { return specs_.size(); }
  const RegionSpec& region(std::size_t i) const { return specs_.at(i); }
  const std::vector<RegionSpec>& regions() const { return specs_; }

  /// Index of the region containing `offset` (binary search).
  std::size_t region_of(Bytes offset) const;

  /// End offset of region i (start of region i+1, or +inf for the last).
  Bytes region_end(std::size_t i) const;

  std::size_t num_tiers() const { return tier_counts_.size(); }
  const std::vector<std::size_t>& tier_counts() const { return tier_counts_; }

  /// Per-tier reserved (cache) device counts; empty = no reservation.
  const std::vector<std::size_t>& reserved() const { return reserved_; }

  /// Two-tier views: tier 0 / tier 1 server counts (0 when absent).
  std::size_t num_hservers() const {
    return tier_counts_.empty() ? 0 : tier_counts_[0];
  }
  std::size_t num_sservers() const {
    return tier_counts_.size() < 2 ? 0 : tier_counts_[1];
  }

 private:
  std::vector<std::size_t> tier_counts_;
  std::vector<std::size_t> reserved_;
  std::size_t total_servers_ = 0;
  std::vector<RegionSpec> specs_;
  std::vector<std::shared_ptr<VariedStripeLayout>> region_layouts_;
};

}  // namespace harl::pfs
