// Hybrid PFS cluster assembly.
//
// Mirrors the paper's testbed shape: M HServers (HDD-backed) followed by N
// SServers (SSD-backed) behind one file system namespace, a metadata server,
// and a set of compute nodes (client NICs) over a shared-parameter network.
// Global server indices [0, M) are HServers and [M, M+N) are SServers — the
// same convention the layouts and the cost model use.
//
// Beyond the paper, the cluster generalizes to any number of *tier groups*
// (the paper's stated future work: "extend our cost model to accommodate
// more than two server performance profiles"): set ClusterConfig::tiers to
// an ordered list of groups and the two-tier fields are ignored.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network.hpp"
#include "src/pfs/client.hpp"
#include "src/pfs/data_server.hpp"
#include "src/pfs/mds.hpp"
#include "src/sim/simulator.hpp"
#include "src/storage/faulty.hpp"
#include "src/storage/hdd.hpp"
#include "src/storage/profiles.hpp"
#include "src/storage/ssd.hpp"

namespace harl::pfs {

/// One group of file servers sharing a tier profile.  `device_factors`
/// optionally ages individual members: factor i multiplies every time
/// parameter of member i's device (1.0 = fresh, matching the tier profile).
/// Canonicalized ascending (fastest member first) at cluster construction,
/// matching the slot order the device-aware planner assumes; empty = all
/// members run the tier profile exactly (the paper's homogeneous tier).
struct TierGroup {
  std::string name;                 ///< e.g. "hserver", "sata", "nvme"
  std::size_t count = 0;
  storage::TierProfile profile;
  bool is_ssd = false;              ///< selects the SSD vs HDD device model
  std::vector<double> device_factors;  ///< empty, or one factor per member
};

struct ClusterConfig {
  // --- two-tier convenience (the paper's shape); used when `tiers` empty --
  std::size_t num_hservers = 6;  ///< paper default
  std::size_t num_sservers = 2;  ///< paper default
  storage::TierProfile hdd = storage::hdd_profile();
  storage::TierProfile ssd = storage::pcie_ssd_profile();
  /// Two-tier convenience device aging (see TierGroup::device_factors):
  /// per-member speed factors for the H/S tiers.  Empty = homogeneous.
  std::vector<double> hdd_factors;
  std::vector<double> ssd_factors;

  /// Generalized form: ordered tier groups (slowest first by convention).
  /// When non-empty this overrides the two-tier fields above.
  std::vector<TierGroup> tiers;

  std::size_t num_clients = 8;   ///< compute nodes (paper: 8)
  net::NetworkParams network = net::gigabit_ethernet();
  Seconds mds_lookup_cost = 200e-6;
  /// Added per RST region on MDS placement lookups (metadata management
  /// overhead of rich region tables, paper Section III-C).
  Seconds mds_per_region_cost = 2e-6;
  /// Per-stripe-unit request processing on data servers (flow buffers,
  /// request protocol): what makes small stripes costly for large requests.
  Seconds server_per_stripe_overhead = 50e-6;
  double hdd_sequential_factor = 0.55;
  storage::SsdDevice::GcModel ssd_gc{};  ///< disabled by default
  std::uint64_t seed = 1;                ///< per-device streams fork from this

  /// Fault injection: degrade specific servers (by global index) with a
  /// slowdown factor and/or periodic hiccups.
  std::map<std::size_t, storage::FaultyDevice::Faults> server_faults;

  /// Periodic GC-pause service-time inflation on one server — the telemetry
  /// plane's canonical straggler (DESIGN.md §15).  Disabled while period or
  /// duration is 0.  `server` < 0 targets the first SSD server (first member
  /// of the first is_ssd tier; server 0 when there is none).
  struct GcPause {
    Seconds period = 0.0;    ///< pause cycle length (sim seconds)
    Seconds duration = 0.0;  ///< inflated prefix of each cycle
    double factor = 8.0;     ///< service multiplier during the pause (>= 1)
    std::int64_t server = -1;
  };
  GcPause gc_pause;

  /// Whole-server failure injection: server `fail_server` (global index)
  /// fails at simulated time `fail_at` (DataServer::set_failed_at) — the
  /// failure/rebuild-storm scenario.  fail_server < 0 disarms.  Like the GC
  /// pause, failure is a pure function of simulated time, so degraded
  /// routing is PDES-width-invariant.  Callers that route around the failure
  /// (degraded reads, adaptive re-plans) require the failed server to be the
  /// LAST slot of its tier — the member-prefix layout search can then price
  /// it out without reordering slots.
  std::int64_t fail_server = -1;
  Seconds fail_at = 0.0;

  /// Bind the MDS queue to the observer (MetadataServer::attach_observer):
  /// lookup RPC resident times land in the "pfs.mds.time" sketch.  Off by
  /// default so legacy telemetry is byte-identical.
  bool observe_mds = false;

  /// The tier-group view, synthesizing it from the two-tier fields when
  /// `tiers` is empty.  Device factors are returned canonical (sorted
  /// ascending, all-1.0 collapsed to empty); throws std::invalid_argument
  /// when a non-empty factor vector's size disagrees with its tier count.
  std::vector<TierGroup> effective_tiers() const;

  /// Smallest device speed factor across all servers (1.0 when every tier
  /// is homogeneous).  The PDES lookahead derives the per-stripe overhead
  /// floor from this so width invariance survives device heterogeneity.
  double min_device_factor() const;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, const ClusterConfig& config);

  /// Servers in non-SSD groups (== the paper's M for two-tier clusters).
  std::size_t num_hservers() const { return num_hservers_; }
  /// Servers in SSD groups (== the paper's N for two-tier clusters).
  std::size_t num_sservers() const { return num_sservers_; }
  std::size_t num_servers() const { return servers_.size(); }
  std::size_t num_clients() const { return clients_.size(); }

  /// Tier-group topology (ordered; global server indices are contiguous
  /// per group, in order).
  std::size_t num_tiers() const { return tiers_.size(); }
  const TierGroup& tier(std::size_t i) const { return tiers_.at(i); }
  /// Global index of tier i's first server.
  std::size_t tier_begin(std::size_t i) const { return tier_begin_.at(i); }
  /// Per-tier server counts, in tier order — the shape the tier-vector
  /// layout path (RST, RegionLayout, Plan artifact) is keyed by.
  std::vector<std::size_t> tier_counts() const;

  DataServer& server(std::size_t i) { return *servers_.at(i); }
  const DataServer& server(std::size_t i) const { return *servers_.at(i); }
  Client& client(std::size_t i) { return *clients_.at(i); }
  MetadataServer& mds() { return *mds_; }
  net::Network& network() { return *network_; }
  const net::Network& network() const { return *network_; }
  sim::Simulator& simulator() { return sim_; }
  const ClusterConfig& config() const { return config_; }

  /// Per-server "I/O time" including NIC serialization — the quantity the
  /// paper plots in Fig. 1a.
  Seconds server_io_time(std::size_t i) const;

  /// Zeroes all server/NIC statistics and device state between phases.
  void reset_stats();

  /// Logical processes a PDES run of this cluster shape needs: the app LP,
  /// one per data server, and one per client-NIC shard (clients are sharded
  /// over min(clients, servers) link LPs — beyond that the NICs stop being
  /// the parallelism bottleneck and extra LPs only add window overhead).
  static std::size_t pdes_lp_count(const ClusterConfig& config);

  /// Partitions the cluster over the runtime's LPs (server j — disk queue
  /// and NIC link — on LP 1 + j; client NIC i on shard LP
  /// 1 + num_servers + (i % shards)).  Call after construction and before
  /// any traffic, with `sim.attach_pdes(&runtime)` already in effect.
  void attach_pdes(sim::pdes::Runtime& runtime);

 private:
  sim::Simulator& sim_;
  ClusterConfig config_;
  std::vector<TierGroup> tiers_;
  std::vector<std::size_t> tier_begin_;
  std::size_t num_hservers_ = 0;
  std::size_t num_sservers_ = 0;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<DataServer>> servers_;
  std::unique_ptr<MetadataServer> mds_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace harl::pfs
