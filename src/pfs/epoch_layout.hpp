// Epoch-versioned region-level layout.
//
// The adaptive path (middleware AdaptiveLayoutManager) re-optimizes the RST
// while a file is live.  Rewriting the installed layout in place would
// teleport already-written bytes into the new striping for free; instead the
// file's placement is a *stack of epochs* — immutable RegionLayouts, epoch 0
// installed by HarlDriver — plus an ownership map assigning each byte range
// to the epoch that currently governs it.  A request is resolved by the
// governing epoch of each byte it touches: ranges flip to a newer epoch only
// after the migration engine has actually copied them through the simulated
// servers, so layout changes cost what they cost.
//
// Physical addressing: each (epoch, region) pair is its own physical object.
// SubRequest::object is partitioned as epoch * kObjectsPerEpoch + region,
// mirroring the per-epoch R2F physical file names ("<logical>.e<e>.r<k>"),
// so a migrated region never aliases the bytes of its predecessor.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/pfs/region_layout.hpp"

namespace harl::pfs {

class EpochedLayout final : public Layout {
 public:
  /// Object-id partition width: region index space reserved per epoch.
  static constexpr std::uint32_t kObjectsPerEpoch = 4096;

  /// Starts the lineage with epoch 0 owning the whole file.
  explicit EpochedLayout(std::shared_ptr<const RegionLayout> epoch0);

  // --- Layout: resolve each byte range against its governing epoch --------
  std::vector<SubRequest> map(Bytes offset, Bytes size) const override;
  std::size_t server_count() const override;
  std::string describe() const override;

  // --- epoch lineage -------------------------------------------------------

  /// Installs a new epoch (same tier shape as epoch 0, fewer than
  /// kObjectsPerEpoch regions) and returns its id.  Ownership is unchanged:
  /// ranges move to the new epoch through `assign` as migration completes.
  std::uint32_t add_epoch(std::shared_ptr<const RegionLayout> layout);

  std::size_t epoch_count() const { return epochs_.size(); }
  std::uint32_t latest_epoch() const {
    return static_cast<std::uint32_t>(epochs_.size() - 1);
  }
  const RegionLayout& epoch(std::uint32_t e) const { return *epochs_.at(e); }

  // --- ownership map -------------------------------------------------------

  /// Epoch governing `offset`.
  std::uint32_t owner_of(Bytes offset) const;

  /// End of the contiguous same-owner run containing `offset` (max Bytes for
  /// the final run).
  Bytes owner_end(Bytes offset) const;

  /// Reassigns [begin, end) to `epoch`; adjacent same-epoch runs coalesce.
  /// The migration engine flips each chunk as its copy lands.
  void assign(Bytes begin, Bytes end, std::uint32_t epoch);

  /// Ownership runs currently in effect: (begin, epoch), ascending begins,
  /// first begin == 0, each run extending to the next begin.
  std::vector<std::pair<Bytes, std::uint32_t>> owners() const;

  /// Distinct (epoch, region) spans the ownership map resolves to — the
  /// MDS's effective RST size for placement-lookup costing.
  std::size_t effective_region_count() const;

  // --- migration addressing ------------------------------------------------

  /// Full-file view that resolves *every* offset against epoch `e`'s
  /// RegionLayout (object ids rebased into e's partition), regardless of
  /// current ownership.  Migration reads source-epoch objects and writes
  /// target-epoch objects through these views before flipping ownership.
  std::shared_ptr<const Layout> epoch_view(std::uint32_t e) const;

 private:
  struct Span {
    Bytes begin = 0;
    std::uint32_t epoch = 0;
  };

  std::size_t owner_index(Bytes offset) const;

  std::vector<std::shared_ptr<const RegionLayout>> epochs_;
  std::vector<Span> owners_;  ///< sorted by begin; owners_[0].begin == 0
};

}  // namespace harl::pfs
