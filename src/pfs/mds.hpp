// Metadata server.
//
// Holds per-file layout metadata (including HARL's region stripe table once
// installed).  Clients contact the MDS once per open; lookups are charged a
// constant service time through a FIFO queue, modelling the metadata RPC of
// a real PFS.  During reads/writes clients talk to data servers directly,
// exactly as the paper describes (Section III-F).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/pfs/layout.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace harl::pfs {

class MetadataServer {
 public:
  /// `lookup_cost` is the base metadata RPC service time; `per_region_cost`
  /// is added per RST region during placement lookups (paper Section III-C:
  /// too many regions "leads to substantial extra metadata management
  /// overhead"), making region-count control measurable.
  MetadataServer(sim::Simulator& sim, Seconds lookup_cost,
                 Seconds per_region_cost = 2e-6);

  /// Registers (or replaces) a file's layout.
  void register_file(const std::string& name,
                     std::shared_ptr<const Layout> layout);

  void remove_file(const std::string& name);
  bool has_file(const std::string& name) const;

  /// Asynchronous lookup with the RPC cost applied; the callback receives
  /// the layout (nullptr if the file is unknown).  The layout is resolved at
  /// *service* time, not submission time: a remove_file that lands while the
  /// lookup is queued yields nullptr instead of a layout the namespace no
  /// longer owns (the dangling-layout hazard of concurrent open/unlink).
  void lookup(const std::string& name,
              std::function<void(std::shared_ptr<const Layout>)> cb);

  /// Per-request placement lookup (paper Section III-F: "MDSs look up the
  /// RST table according to the request's offset and length").  Costed as
  /// lookup_cost + per_region_cost * (the layout's region count), so richer
  /// RSTs are more expensive to consult.
  void placement_lookup(const std::string& name,
                        std::function<void(std::shared_ptr<const Layout>)> cb);

  /// Region count used for placement costing (1 for non-region layouts).
  static std::size_t region_count_of(const Layout& layout);

  /// Immediate, cost-free lookup for tools and assertions.
  std::shared_ptr<const Layout> layout_of(const std::string& name) const;

  /// Registered file count (namespace size).
  std::size_t file_count() const { return files_.size(); }

  /// Opt-in observability: binds the MDS queue to a trace track of the
  /// simulator's observer (TrackKind::kOther, name "mds"), which feeds the
  /// recorder's "pfs.mds.time" resident-time sketch — queue contention under
  /// open storms becomes measurable.  Off by default so legacy telemetry is
  /// byte-identical.  Call once, before any traffic.
  void attach_observer();

  std::uint64_t lookups_served() const { return queue_.jobs(); }

 private:
  sim::Simulator& sim_;
  std::map<std::string, std::shared_ptr<const Layout>> files_;
  sim::FifoResource queue_;
  Seconds lookup_cost_;
  Seconds per_region_cost_;
};

}  // namespace harl::pfs
