// Runtime read-cache tier over the fastest SSD devices (HACache direction).
//
// CacheManager is the *mechanism* half of the cache layer: it owns a
// storage::CacheTier directory plus the slot pool mapping cached chunks onto
// the reserved devices, and drives the honest data path.  The cache fronts
// the *file*: chunks are aligned ranges of logical file offsets, intercepted
// in Client::io before layout mapping — the same granularity the planner's
// replay estimates hit rates at, and the reason a hit is one contiguous read
// no matter how wide the home layout stripes.
//
//   read hit : cache device disk -> device NIC -> client NIC -> done
//   read miss: the miss run maps through the home layout (normal striped
//              read), then admitted chunks *fill*: the full chunk is re-read
//              from its home servers (read-around), shipped to the client,
//              and forwarded to the cache device's disk — every leg charged
//              over the same simulated links and queues as foreground
//              traffic (the MigrationEngine honesty rule: promotions queue
//              and interfere, they are never free copies).
//   write    : overlapped chunks are invalidated at issue time; a fill in
//              flight for an invalidated chunk is poisoned and its landed
//              bytes discarded.
//
// PDES placement (width invariance): every directory mutation runs on the
// app LP.  lookup/admit/invalidate happen at issue time (Client::io runs on
// LP 0), miss-run fills are issued from the read's network completion
// (Network routes server->client completions to kAppLp), and fill-write
// completions land on kAppLp (DataServer routes write completions there).
// The cache devices' own disk/NIC state stays on their LPs, touched only
// through the same submit/transfer relays as foreground traffic — so
// sim-threads=N is byte-identical to the sequential engine.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/obs/sink.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/layout.hpp"
#include "src/storage/cache_tier.hpp"

namespace harl::pfs {

class CacheManager {
 public:
  struct Config {
    Bytes budget = 0;         ///< total cache capacity in bytes (0 disables)
    Bytes chunk = MiB;        ///< chunk granularity
    std::size_t tier = 1;     ///< cluster tier whose fastest prefix caches
    std::size_t devices = 0;  ///< reserved device count (tier's slot prefix)
    storage::CachePolicy policy = storage::CachePolicy::kLru;
    /// Ablation arm: the cache runs, but the planner did not reserve the
    /// devices — foreground regions still stripe over them and the two
    /// roles contend (the "bolted-on cache" the cost model cannot see).
    bool blind = false;
  };

  struct Stats {
    storage::CacheTier::Stats tier;   ///< directory counters
    Bytes hit_read_bytes = 0;         ///< foreground bytes served by cache devices
    Bytes miss_read_bytes = 0;        ///< foreground bytes read from home servers
    Bytes fill_bytes = 0;             ///< promotion traffic issued
    std::size_t active_devices = 0;
    std::uint64_t resplits = 0;       ///< epoch-boundary budget re-splits
    std::uint64_t clears = 0;         ///< full drops (re-splits)
  };

  /// `cluster` must outlive the manager.  Throws std::invalid_argument when
  /// the tier/devices do not fit the cluster shape.
  CacheManager(Cluster& cluster, Config config);

  /// False when the budget or device count is zero (every hook no-ops).
  bool enabled() const { return active_devices_ > 0 && tier_.slots() > 0; }

  const Config& config() const { return config_; }
  const storage::CacheTier& tier() const { return tier_; }
  std::size_t active_devices() const { return active_devices_; }
  /// Global server index of cache device i (i < config().devices).
  std::size_t cache_server(std::size_t i) const { return cache_base_ + i; }
  Stats stats() const;

  /// Issues the whole read request [offset, offset + size) through the
  /// cache: resident chunk spans are read from the cache devices, miss runs
  /// map through `layout` onto the home servers, and missed chunks are
  /// admitted and filled in the background.  `join->done()` fires exactly
  /// once, when every foreground piece has reached client `client_id` (fills
  /// are background traffic and do not hold the request).  With `obs` set,
  /// each piece gets its own sub-request attribution under `obs_req`.
  /// `file` namespaces the directory: one manager is shared by every file of
  /// a population, entries are keyed (file, chunk), and the eviction policy
  /// arbitrates across files — a hot tenant's working set evicts a cold
  /// tenant's under LRU/SLRU pressure.  kNoId is the legacy single-file
  /// namespace (keys degenerate to the bare chunk index, bit-identical to
  /// the pre-namespace directory).
  void issue_read(std::size_t client_id, const Layout& layout, Bytes offset,
                  Bytes size, const std::shared_ptr<sim::JoinCounter>& join,
                  obs::Sink* obs = nullptr,
                  std::uint32_t obs_req = obs::kNoId,
                  std::uint32_t file = obs::kNoId);

  /// Write-invalidate: drops every cached chunk of `file` overlapping the
  /// write [offset, offset + size) (in-flight fills for those chunks are
  /// poisoned).
  void invalidate(Bytes offset, Bytes size, std::uint32_t file = obs::kNoId);

  /// Drops every cached chunk of `file` (remove_file / rebuild hygiene);
  /// other files' entries are untouched.
  void invalidate_file(std::uint32_t file);

  /// Drops every entry and frees every slot.
  void clear();

  /// Epoch-boundary budget re-split: spread the slot pool over the first
  /// `devices` reserved devices (<= config().devices; 0 parks the cache).
  /// A change of spread re-maps every slot address, so the cache is cleared.
  void set_active_devices(std::size_t devices);

  /// Epoch-adoption hook (AdaptiveLayoutManager::set_epoch_hook): re-splits
  /// the budget across the reserved devices in proportion to the observed
  /// working set — a chunk lives on exactly one device, so the spread only
  /// balances concurrent load, and a cache whose working set filled under
  /// half the slots concentrates on the fastest reserved devices instead of
  /// scattering fills across all of them.  Cached file chunks stay valid
  /// across an epoch swap (migration moves homes, not file contents), so an
  /// unchanged spread keeps the directory warm.
  void on_epoch();

 private:
  /// Physical object id of the cache area on a device — far above any
  /// (epoch, region) foreground object (EpochedLayout::kObjectsPerEpoch *
  /// AdaptiveOptions::max_epochs), so cache extents never alias foreground
  /// extents on a shared device (the blind arm).
  static constexpr std::uint32_t kCacheObject = 1u << 22;

  struct SlotInfo {
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;  ///< fill sequence, to detect stale fills
  };
  /// An admitted chunk whose data is being promoted.  The home mapping is
  /// captured at issue time (on the app LP), so the fill never touches the
  /// caller's Layout after the request returns — an epoch swap mid-flight
  /// reads the pre-swap homes, which a real cache would too.
  struct Fill {
    std::uint64_t key = 0;  ///< file chunk index
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::vector<SubRequest> subs;  ///< the chunk's home mapping
  };

  /// Directory key of (file, chunk-index): the file namespace (file + 1, 0
  /// for the legacy kNoId namespace) rides the high bits above the chunk
  /// index, so legacy keys equal the bare chunk index bit-for-bit.
  static std::uint64_t chunk_key(std::uint32_t file, Bytes chunk_index) {
    const std::uint64_t ns = file == obs::kNoId ? 0 : std::uint64_t{file} + 1;
    return (ns << 40) | chunk_index;
  }

  std::size_t slot_device(std::uint32_t slot) const {
    return cache_base_ + slot % active_devices_;
  }
  Bytes slot_address(std::uint32_t slot) const {
    return (static_cast<Bytes>(slot) / active_devices_) * config_.chunk;
  }
  void free_slot(std::uint64_t key);
  void reset_slots();
  void issue_fill(std::size_t client_id, const Fill& fill);
  void fill_landed(std::uint64_t key, std::uint64_t seq);

  Cluster& cluster_;
  sim::Simulator& sim_;
  Config config_;
  storage::CacheTier tier_;
  std::size_t cache_base_ = 0;      ///< global index of the first cache device
  std::size_t active_devices_ = 0;  ///< slot pool spread (<= config_.devices)
  std::unordered_map<std::uint64_t, SlotInfo> slots_;
  std::vector<std::uint32_t> free_slots_;  ///< LIFO, deterministic
  std::uint64_t fill_seq_ = 0;
  std::vector<std::uint64_t> evicted_scratch_;
  Bytes hit_read_bytes_ = 0;
  Bytes miss_read_bytes_ = 0;
  Bytes fill_bytes_ = 0;
  std::uint64_t resplits_ = 0;
  std::uint64_t clears_ = 0;
};

}  // namespace harl::pfs
