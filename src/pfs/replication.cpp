#include "src/pfs/replication.hpp"

#include <stdexcept>

namespace harl::pfs {

ReplicaMap ReplicaMap::chained(std::size_t server_count) {
  if (server_count < 2) {
    throw std::invalid_argument("replication needs at least two servers");
  }
  ReplicaMap map;
  map.server_count_ = server_count;
  return map;
}

ReplicaMap ReplicaMap::tiered(const std::vector<std::size_t>& tier_counts,
                              std::vector<std::uint32_t> region_tiers) {
  std::size_t total = 0;
  for (std::size_t c : tier_counts) total += c;
  ReplicaMap map = chained(total);
  for (std::uint32_t tier : region_tiers) {
    if (tier >= tier_counts.size()) {
      throw std::invalid_argument("replica tier out of range");
    }
  }
  map.tier_counts_ = tier_counts;
  map.tier_begin_.reserve(tier_counts.size());
  std::size_t begin = 0;
  for (std::size_t c : tier_counts) {
    map.tier_begin_.push_back(begin);
    begin += c;
  }
  map.region_tiers_ = std::move(region_tiers);
  return map;
}

std::size_t ReplicaMap::replica_server(std::size_t server,
                                       std::uint32_t object) const {
  const std::uint32_t region = object % kObjectsPerEpoch;
  if (region < region_tiers_.size()) {
    const std::uint32_t tier = region_tiers_[region];
    const std::size_t base = tier_begin_[tier];
    const std::size_t count = tier_counts_[tier];
    const bool inside = server >= base && server < base + count;
    if (count >= 2 || (count == 1 && !inside)) {
      std::size_t slot;
      if (inside) {
        slot = base + (server - base + 1 + region) % count;
        if (slot == server) slot = base + (server - base + 1) % count;
      } else {
        slot = base + (server + region) % count;
      }
      if (slot != server) return slot;
    }
    // The tier cannot host a distinct replica for this primary — chain over
    // the whole cluster instead.
  }
  std::size_t slot = (server + 1 + region) % server_count_;
  if (slot == server) slot = (server + 1) % server_count_;
  return slot;
}

SubRequest ReplicaMap::replica_of(const SubRequest& sub) const {
  SubRequest replica = sub;
  replica.server = replica_server(sub.server, sub.object);
  replica.object = kReplicaObject + sub.object;
  return replica;
}

}  // namespace harl::pfs
