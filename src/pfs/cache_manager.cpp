#include "src/pfs/cache_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/net/network.hpp"
#include "src/pfs/data_server.hpp"
#include "src/sim/resource.hpp"

namespace harl::pfs {

CacheManager::CacheManager(Cluster& cluster, Config config)
    : cluster_(cluster),
      sim_(cluster.simulator()),
      config_(config),
      tier_(storage::CacheTier::Config{config.budget, config.chunk,
                                       config.policy}) {
  if (config_.devices == 0 || tier_.slots() == 0) {
    // Disabled manager: enabled() is false and every hook no-ops, so hook
    // sites need no null checks beyond the pointer itself.
    return;
  }
  if (config_.tier >= cluster_.num_tiers()) {
    throw std::invalid_argument("cache tier out of range for cluster");
  }
  if (config_.devices > cluster_.tier_counts()[config_.tier]) {
    throw std::invalid_argument("cache devices exceed tier size");
  }
  cache_base_ = cluster_.tier_begin(config_.tier);
  active_devices_ = config_.devices;
  reset_slots();
}

CacheManager::Stats CacheManager::stats() const {
  Stats stats;
  stats.tier = tier_.stats();
  stats.hit_read_bytes = hit_read_bytes_;
  stats.miss_read_bytes = miss_read_bytes_;
  stats.fill_bytes = fill_bytes_;
  stats.active_devices = active_devices_;
  stats.resplits = resplits_;
  stats.clears = clears_;
  return stats;
}

void CacheManager::issue_read(std::size_t client_id, const Layout& layout,
                              Bytes offset, Bytes size,
                              const std::shared_ptr<sim::JoinCounter>& join,
                              obs::Sink* obs, std::uint32_t obs_req,
                              std::uint32_t file) {
  // Walk the file range chunk by chunk, coalescing adjacent resident chunks
  // into cache-device reads and adjacent non-resident chunks into *miss
  // runs* that map through the home layout as one striped read.  Missed
  // chunks are admitted here, at issue time on the app LP; their fills
  // launch once the owning miss run's data has reached the client, each
  // re-reading the full chunk from its home servers (read-around — the
  // mapping is captured now, so the fill is independent of the layout's
  // lifetime).
  const Bytes chunk = config_.chunk;
  const Bytes end = offset + size;

  struct HitPiece {
    std::size_t device = 0;
    Bytes address = 0;
    Bytes size = 0;
  };
  struct MissRun {
    Bytes begin = 0;
    Bytes end = 0;
    std::vector<Fill> fills;  ///< launched when this run reaches the client
  };
  std::vector<HitPiece> hits;
  std::vector<MissRun> runs;
  bool run_open = false;
  Bytes call_hit = 0;
  Bytes call_miss = 0;

  for (Bytes c = offset / chunk; c <= (end - 1) / chunk; ++c) {
    const std::uint64_t key = chunk_key(file, c);
    const Bytes chunk_begin = c * chunk;
    const Bytes span_begin = std::max(offset, chunk_begin);
    const Bytes span_end = std::min(end, chunk_begin + chunk);
    const auto state = tier_.lookup(key);
    if (state == storage::CacheTier::State::kResident) {
      run_open = false;
      const SlotInfo& info = slots_.at(key);
      hit_read_bytes_ += span_end - span_begin;
      call_hit += span_end - span_begin;
      hits.push_back({slot_device(info.slot),
                      slot_address(info.slot) + (span_begin - chunk_begin),
                      span_end - span_begin});
    } else {
      miss_read_bytes_ += span_end - span_begin;
      call_miss += span_end - span_begin;
      if (!run_open) {
        run_open = true;
        runs.push_back({span_begin, span_end, {}});
      } else {
        runs.back().end = span_end;
      }
      if (state == storage::CacheTier::State::kAbsent) {
        evicted_scratch_.clear();
        if (tier_.admit(key, evicted_scratch_)) {
          for (const std::uint64_t victim : evicted_scratch_) {
            free_slot(victim);
          }
          const std::uint32_t slot = free_slots_.back();
          free_slots_.pop_back();
          const std::uint64_t seq = ++fill_seq_;
          slots_[key] = SlotInfo{slot, seq};
          runs.back().fills.push_back(
              Fill{key, seq, slot, layout.map(chunk_begin, chunk)});
        }
      }
    }
  }

  if (obs != nullptr && call_hit + call_miss > 0) {
    obs->cache_event(call_hit, call_miss, sim_.now());
  }

  // The foreground request completes when every hit piece and every miss
  // run's mapped sub-request has reached the client.
  auto inner = std::make_shared<sim::JoinCounter>(hits.size() + runs.size(),
                                                  [join] { join->done(); });
  for (const HitPiece& hit : hits) {
    const std::uint32_t osub =
        obs != nullptr ? obs->begin_sub(obs_req, hit.device, kCacheObject,
                                        hit.size, sim_.now())
                       : obs::kNoId;
    DataServer& device = cluster_.server(hit.device);
    const std::size_t device_idx = hit.device;
    const Bytes bytes = hit.size;
    device.submit(
        IoOp::kRead, kCacheObject, hit.address, bytes, 1,
        [this, client_id, device_idx, bytes, osub, inner] {
          cluster_.network().transfer(
              client_id, device_idx, bytes, net::Direction::kServerToClient,
              [this, osub, inner] {
                if (osub != obs::kNoId) {
                  sim_.observer()->sub_net_done(osub, sim_.now());
                }
                inner->done();
              });
        },
        osub);
  }
  for (MissRun& run : runs) {
    auto subs = layout.map(run.begin, run.end - run.begin);
    if (subs.empty()) throw std::logic_error("layout mapped run to nothing");
    // The run's fills launch once all of its home sub-requests have landed;
    // the data the client forwards is then in hand.
    auto run_join = std::make_shared<sim::JoinCounter>(
        subs.size(),
        [this, client_id, inner, fills = std::move(run.fills)]() mutable {
          for (const Fill& fill : fills) issue_fill(client_id, fill);
          inner->done();
        });
    for (const SubRequest& sub : subs) {
      const std::uint32_t osub =
          obs != nullptr ? obs->begin_sub(obs_req, sub.server, sub.object,
                                          sub.size, sim_.now())
                         : obs::kNoId;
      DataServer& server = cluster_.server(sub.server);
      const std::size_t server_idx = sub.server;
      const Bytes bytes = sub.size;
      server.submit(
          IoOp::kRead, sub.object, sub.server_offset, bytes, sub.pieces,
          [this, client_id, server_idx, bytes, osub, run_join] {
            cluster_.network().transfer(
                client_id, server_idx, bytes, net::Direction::kServerToClient,
                [this, osub, run_join] {
                  if (osub != obs::kNoId) {
                    sim_.observer()->sub_net_done(osub, sim_.now());
                  }
                  run_join->done();
                });
          },
          osub);
    }
  }
}

void CacheManager::issue_fill(std::size_t client_id, const Fill& fill) {
  // The admission may have been superseded (write-invalidate, a re-split
  // clear, even a re-admission) while the miss run was in flight; a stale
  // fill is discarded before it touches the network.
  const auto it = slots_.find(fill.key);
  if (it == slots_.end() || it->second.seq != fill.seq) {
    tier_.discard_fill();
    return;
  }
  // Read-around promotion: the full chunk is read from its home servers
  // (captured mapping), shipped to the client, and forwarded to the cache
  // device — honest legs that queue behind and interfere with foreground
  // traffic.
  fill_bytes_ += config_.chunk;
  const std::size_t device_idx = slot_device(fill.slot);
  const Bytes address = slot_address(fill.slot);
  const Bytes chunk = config_.chunk;
  auto forward = std::make_shared<sim::JoinCounter>(
      fill.subs.size(),
      [this, client_id, device_idx, address, chunk, key = fill.key,
       seq = fill.seq] {
        // push_transfer lands the completion with client-side logic, so the
        // device write below is issued from the app LP like every hit read
        // and foreground sub: same-time arrivals at the cache device then
        // sort in client dispatch order under PDES, exactly as the
        // sequential engine orders them.
        cluster_.network().push_transfer(
            client_id, device_idx, chunk,
            [this, device_idx, address, chunk, key, seq] {
              cluster_.server(device_idx)
                  .submit(IoOp::kWrite, kCacheObject, address, chunk, 1,
                          [this, key, seq] { fill_landed(key, seq); });
            });
      });
  for (const SubRequest& sub : fill.subs) {
    DataServer& server = cluster_.server(sub.server);
    const std::size_t server_idx = sub.server;
    const Bytes bytes = sub.size;
    server.submit(IoOp::kRead, sub.object, sub.server_offset, bytes,
                  sub.pieces, [this, client_id, server_idx, bytes, forward] {
                    cluster_.network().transfer(
                        client_id, server_idx, bytes,
                        net::Direction::kServerToClient,
                        [forward] { forward->done(); });
                  });
  }
}

void CacheManager::fill_landed(std::uint64_t key, std::uint64_t seq) {
  const auto it = slots_.find(key);
  if (it == slots_.end() || it->second.seq != seq) {
    // Invalidated (and possibly re-admitted with a fresh fill) after launch.
    tier_.discard_fill();
    return;
  }
  tier_.fill_complete(key);
}

void CacheManager::invalidate(Bytes offset, Bytes size, std::uint32_t file) {
  if (!enabled() || size == 0) return;
  const Bytes chunk = config_.chunk;
  const Bytes end = offset + size;
  for (Bytes c = offset / chunk; c <= (end - 1) / chunk; ++c) {
    const std::uint64_t key = chunk_key(file, c);
    if (tier_.invalidate(key)) free_slot(key);
  }
}

void CacheManager::invalidate_file(std::uint32_t file) {
  if (!enabled()) return;
  // Collect first (invalidate mutates slots_), in sorted order so the
  // directory's recency structure after a bulk drop is deterministic.
  const std::uint64_t ns = chunk_key(file, 0) >> 40;
  std::vector<std::uint64_t> keys;
  for (const auto& [key, info] : slots_) {
    if ((key >> 40) == ns) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    if (tier_.invalidate(key)) free_slot(key);
  }
}

void CacheManager::clear() {
  tier_.clear();
  reset_slots();
  ++clears_;
}

void CacheManager::set_active_devices(std::size_t devices) {
  devices = std::min(devices, config_.devices);
  if (devices == active_devices_) return;
  // Changing the spread re-maps every slot -> (device, address) pair, so
  // resident data is unreachable at its old coordinates; drop everything.
  active_devices_ = devices;
  clear();
  ++resplits_;
}

void CacheManager::on_epoch() {
  if (config_.devices == 0 || tier_.slots() == 0) return;
  // Spread proportional to utilization, floor one device, ceiling the full
  // reservation.  Cached file chunks survive an epoch swap (migration moves
  // home placement, not file contents), so an unchanged spread keeps the
  // directory warm.
  const double utilization = static_cast<double>(tier_.resident()) /
                             static_cast<double>(tier_.slots());
  const double scaled =
      static_cast<double>(config_.devices) * std::min(1.0, 2.0 * utilization);
  const std::size_t target = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(scaled)), 1, config_.devices);
  set_active_devices(target);
}

void CacheManager::free_slot(std::uint64_t key) {
  const auto it = slots_.find(key);
  if (it == slots_.end()) return;
  free_slots_.push_back(it->second.slot);
  slots_.erase(it);
}

void CacheManager::reset_slots() {
  slots_.clear();
  free_slots_.clear();
  free_slots_.reserve(tier_.slots());
  for (std::size_t i = tier_.slots(); i-- > 0;) {
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
}

}  // namespace harl::pfs
