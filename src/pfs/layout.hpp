// File data layouts: how logical file bytes map onto file servers.
//
// A layout answers one question: given a file request [offset, offset+size),
// which server-local extents does it touch?  The conventional scheme is
// round-robin striping with one fixed stripe size (paper Fig. 2a).  HARL's
// building block is the *varied-size* stripe: every server gets its own
// stripe size within the round-robin period (Fig. 2b), with stripe 0 meaning
// "skip this server" (e.g. the {0K, 64K} layout of paper Section IV-B.3 that
// places data only on SServers).
//
// Because striping is round-robin, all stripes a request touches on one
// server form a single contiguous server-local extent; `map()` returns these
// aggregated extents (what is actually sent to servers), while
// `VariedStripeLayout::map_pieces()` exposes the raw stripe-by-stripe walk
// for tests and the brute-force cost-model cross-check.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/interval.hpp"
#include "src/common/units.hpp"

namespace harl::pfs {

/// One server-local extent of a file request.
struct SubRequest {
  std::size_t server = 0;       ///< global server index [0, server_count)
  std::uint32_t object = 0;     ///< physical object id on the server (region index)
  Bytes server_offset = 0;      ///< byte offset within that object
  Bytes size = 0;               ///< extent length
  Bytes file_offset = 0;        ///< logical-file offset of the extent's first byte
  /// Stripe units merged into this extent (periods the server is touched
  /// in).  The extent is contiguous on the server, but each stripe unit is
  /// processed separately by the PFS request protocol, so servers charge a
  /// per-unit overhead — this is what makes very small stripes expensive for
  /// large requests (paper Fig. 1b).
  Bytes pieces = 1;

  friend bool operator==(const SubRequest&, const SubRequest&) = default;
};

/// Abstract mapping from logical file ranges to server-local extents.
class Layout {
 public:
  virtual ~Layout() = default;

  /// Aggregated sub-requests (one per touched (server, object) pair),
  /// ordered by ascending file_offset.  The union of the returned extents
  /// partitions [offset, offset+size) exactly.
  virtual std::vector<SubRequest> map(Bytes offset, Bytes size) const = 0;

  /// Number of servers this layout distributes over (touched or not).
  virtual std::size_t server_count() const = 0;

  /// Human-readable summary, e.g. "fixed 64K x8" or "region-level, 3 regions".
  virtual std::string describe() const = 0;
};

/// Round-robin striping with a per-server stripe size.
class VariedStripeLayout final : public Layout {
 public:
  /// `stripes[i]` is server i's stripe size; 0 skips the server.  At least
  /// one stripe must be nonzero.
  explicit VariedStripeLayout(std::vector<Bytes> stripes);

  std::vector<SubRequest> map(Bytes offset, Bytes size) const override;
  std::size_t server_count() const override { return stripes_.size(); }
  std::string describe() const override;

  /// Raw stripe-by-stripe mapping in file order, without per-server
  /// aggregation.  O(size / min_stripe); intended for tests.
  std::vector<SubRequest> map_pieces(Bytes offset, Bytes size) const;

  /// The round-robin period: sum of all stripe sizes.
  Bytes period() const { return period_; }
  const std::vector<Bytes>& stripes() const { return stripes_; }

 private:
  std::vector<Bytes> stripes_;
  std::vector<Bytes> cell_start_;  // cell_start_[i]: server i's offset in the period
  Bytes period_ = 0;
};

/// Conventional fixed-size striping over `servers` servers (paper Fig. 2a).
std::shared_ptr<VariedStripeLayout> make_fixed_layout(std::size_t servers,
                                                      Bytes stripe);

/// Two-tier layout: M HServers with stripe `h` followed by N SServers with
/// stripe `s` (the paper's canonical configuration).  h or s may be 0.
std::shared_ptr<VariedStripeLayout> make_two_tier_layout(std::size_t M, Bytes h,
                                                         std::size_t N, Bytes s);

/// Generalized per-tier layout: group j contributes `counts[j]` servers,
/// each striped at `stripes[j]` (0 = skip the tier).  Server order matches
/// pfs::Cluster's tier-group order.
std::shared_ptr<VariedStripeLayout> make_tiered_layout(
    const std::vector<std::size_t>& counts, const std::vector<Bytes>& stripes);

/// Member-restricted per-tier layout: only the first `members[j]` servers of
/// tier j (the tier's fastest devices under the canonical speed ordering)
/// stripe at `stripes[j]`; the remaining counts[j] - members[j] servers are
/// skipped.  An empty `members` means full membership, identical to the
/// overload above.  Requires members[j] <= counts[j].
std::shared_ptr<VariedStripeLayout> make_tiered_layout(
    const std::vector<std::size_t>& counts, const std::vector<Bytes>& stripes,
    const std::vector<std::size_t>& members);

/// Reservation-aware per-tier layout: tier j's first `reserved[j]` servers
/// are withheld from the round-robin entirely (the cache tier's device
/// reservation — those servers serve cache fills/hits instead of regions),
/// and the member restriction applies to the servers after them: slots
/// [reserved[j], reserved[j] + m_j) of tier j stripe at stripes[j], where
/// m_j is members[j] (or counts[j] - reserved[j] under full membership).
/// Under the canonical fastest-first device order this keeps "the m fastest
/// *unreserved* members" a contiguous slot run.  An empty `reserved` is
/// identical to the overload above.  Requires reserved[j] + members[j] <=
/// counts[j].
std::shared_ptr<VariedStripeLayout> make_tiered_layout(
    const std::vector<std::size_t>& counts, const std::vector<Bytes>& stripes,
    const std::vector<std::size_t>& members,
    const std::vector<std::size_t>& reserved);

}  // namespace harl::pfs
