// PFS client: issues file requests on behalf of application processes.
//
// A client splits a request via the file's layout into per-server
// sub-requests, then drives the data path:
//   read : server disk -> server NIC -> client NIC -> done (per sub-request)
//   write: client NIC -> server NIC -> server disk -> done
// The request completes when its last sub-request completes (the cost
// model's "maximal cost of all sub-requests").
//
// Namespace identity: io() carries the FileId of the logical file the
// request addresses (obs::kNoId on the legacy single-file path), which flows
// into request attribution (per-file/per-tenant metrics) and the cache's
// (file, chunk) directory keys.  With a ReplicaMap attached the request
// takes the cold replicated path: writes land on primary and replica, reads
// whose primary server has failed are transparently redirected to the
// replica (degraded reads) — both over the same simulated queues and NICs
// as ordinary traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/io.hpp"
#include "src/net/network.hpp"
#include "src/pfs/data_server.hpp"
#include "src/pfs/layout.hpp"
#include "src/sim/simulator.hpp"

namespace harl::pfs {

class CacheManager;
class ReplicaMap;

class Client {
 public:
  /// `servers` must outlive the client; `id` indexes the client's NIC link
  /// in `network` (one link per compute node).
  Client(sim::Simulator& sim, net::Network& network,
         std::vector<DataServer*> servers, std::size_t id);

  /// Issues one file request against `layout`; `on_complete` fires when all
  /// sub-requests have finished.  Zero-byte requests complete immediately
  /// (next event-loop turn).  `file` is the namespace FileId for attribution
  /// (kNoId = legacy single-file, suppressing per-file accounting);
  /// `replicas` (optional, must outlive the request) routes the request
  /// through the replicated path.
  void io(const Layout& layout, IoOp op, Bytes offset, Bytes size,
          sim::InlineTask on_complete, std::uint32_t file = obs::kNoId,
          const ReplicaMap* replicas = nullptr);

  /// Registers this client with the simulator's observer: every subsequent
  /// io() records request/sub-request attribution (T_X/T_S/T_T) through the
  /// cold `io_observed` path.  Call once, before any traffic.
  void attach_observer();

  /// Routes reads homed on cache-fronted servers through `cache` (and
  /// write-invalidates through it); nullptr restores the direct path.  The
  /// manager must outlive the client.
  void set_cache(CacheManager* cache) { cache_ = cache; }

  std::size_t id() const { return id_; }
  std::uint64_t requests_issued() const { return requests_issued_; }
  /// Read sub-requests redirected to a replica because the primary server
  /// had failed (replicated path only).
  std::uint64_t degraded_reads() const { return degraded_reads_; }
  /// Replica copies written (one per primary sub on the replicated path).
  std::uint64_t replica_writes() const { return replica_writes_; }

 private:
  void issue_read(const SubRequest& sub,
                  const std::shared_ptr<sim::JoinCounter>& join);
  void issue_write(IoOp op, const SubRequest& sub,
                   const std::shared_ptr<sim::JoinCounter>& join);
  void issue_read_observed(const SubRequest& sub,
                           const std::shared_ptr<sim::JoinCounter>& join,
                           std::uint32_t osub);
  void issue_write_observed(IoOp op, const SubRequest& sub,
                            const std::shared_ptr<sim::JoinCounter>& join,
                            std::uint32_t osub);
  void io_observed(obs::Sink& obs, const Layout& layout, IoOp op, Bytes offset,
                   Bytes size, sim::InlineTask on_complete, std::uint32_t file);
  void io_replicated(obs::Sink* obs, const Layout& layout, IoOp op,
                     Bytes offset, Bytes size, sim::InlineTask on_complete,
                     std::uint32_t file, const ReplicaMap& replicas);

  sim::Simulator& sim_;
  net::Network& network_;
  std::vector<DataServer*> servers_;
  std::size_t id_;
  std::uint64_t requests_issued_ = 0;
  std::uint64_t degraded_reads_ = 0;
  std::uint64_t replica_writes_ = 0;
  bool observed_ = false;
  CacheManager* cache_ = nullptr;
};

}  // namespace harl::pfs
