// PFS client: issues file requests on behalf of application processes.
//
// A client splits a request via the file's layout into per-server
// sub-requests, then drives the data path:
//   read : server disk -> server NIC -> client NIC -> done (per sub-request)
//   write: client NIC -> server NIC -> server disk -> done
// The request completes when its last sub-request completes (the cost
// model's "maximal cost of all sub-requests").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/io.hpp"
#include "src/net/network.hpp"
#include "src/pfs/data_server.hpp"
#include "src/pfs/layout.hpp"
#include "src/sim/simulator.hpp"

namespace harl::pfs {

class CacheManager;

class Client {
 public:
  /// `servers` must outlive the client; `id` indexes the client's NIC link
  /// in `network` (one link per compute node).
  Client(sim::Simulator& sim, net::Network& network,
         std::vector<DataServer*> servers, std::size_t id);

  /// Issues one file request against `layout`; `on_complete` fires when all
  /// sub-requests have finished.  Zero-byte requests complete immediately
  /// (next event-loop turn).
  void io(const Layout& layout, IoOp op, Bytes offset, Bytes size,
          sim::InlineTask on_complete);

  /// Registers this client with the simulator's observer: every subsequent
  /// io() records request/sub-request attribution (T_X/T_S/T_T) through the
  /// cold `io_observed` path.  Call once, before any traffic.
  void attach_observer();

  /// Routes reads homed on cache-fronted servers through `cache` (and
  /// write-invalidates through it); nullptr restores the direct path.  The
  /// manager must outlive the client.
  void set_cache(CacheManager* cache) { cache_ = cache; }

  std::size_t id() const { return id_; }
  std::uint64_t requests_issued() const { return requests_issued_; }

 private:
  void issue_read(const SubRequest& sub,
                  const std::shared_ptr<sim::JoinCounter>& join);
  void issue_write(IoOp op, const SubRequest& sub,
                   const std::shared_ptr<sim::JoinCounter>& join);
  void io_observed(obs::Sink& obs, const Layout& layout, IoOp op, Bytes offset,
                   Bytes size, sim::InlineTask on_complete);

  sim::Simulator& sim_;
  net::Network& network_;
  std::vector<DataServer*> servers_;
  std::size_t id_;
  std::uint64_t requests_issued_ = 0;
  bool observed_ = false;
  CacheManager* cache_ = nullptr;
};

}  // namespace harl::pfs
