// Epoch-versioned adaptive layout manager (paper Section V future work:
// "explore on-line data layout and data migration methods").
//
// The offline HARL pipeline installs one plan and never looks back; this
// manager closes the loop at runtime.  It sits on the simulator's observer
// seat (implementing obs::Sink as a transparent forwarder over the normal
// flight recorder) so every completed foreground request is also fed to an
// OnlineAdvisor.  When a window's re-optimization clears the advisor's
// min_gain gate, the manager
//   1. stacks the new RST as the next epoch of the file's EpochedLayout
//      (requests keep resolving against the epoch owning their byte range),
//   2. registers the epoch's per-region physical files at the MDS
//      (RegionFileMap::for_epoch names), and
//   3. hands the recommendation's changed ranges to a MigrationEngine that
//      copies them region-read/region-write through the *real* simulated
//      data servers and network — chunked, bandwidth-throttled, and flipping
//      ownership chunk-by-chunk as each copy lands — so adaptation pays its
//      full modeled cost in competition with foreground traffic.
//
// Everything runs inside the one deterministic event loop: an adaptive run
// is bit-identical at any harness pool width, and all adaptive/migration
// counters live in the manager's own MetricsRegistry so they merge
// order-independently into the run's recorder.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/online_advisor.hpp"
#include "src/core/planner.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sink.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/epoch_layout.hpp"

namespace harl::mw {

struct AdaptiveOptions {
  /// Advisor tuning: window size, min_gain gate and planner options for the
  /// per-window re-optimization.
  core::OnlineAdvisor::Options advisor;
  /// Migration throttle (bytes of copied data per simulated second): the
  /// next chunk is issued no earlier than issue + chunk/bandwidth, so a
  /// chunk's pacing is max(copy time, chunk/bandwidth).
  double migrate_bandwidth = 256.0 * static_cast<double>(MiB);
  /// Bytes copied per migration round trip (read then write), clamped to
  /// ownership-run boundaries.
  Bytes migrate_chunk = 4 * MiB;
  /// Upper bound on stacked epochs (EpochedLayout's object partition allows
  /// kObjectsPerEpoch regions each); further recommendations are deferred.
  std::size_t max_epochs = 16;
  /// Per-tier cache-device reservation (Plan::cache of a cache-aware offline
  /// analysis): tier j's first reserved[j] servers are withheld from every
  /// epoch's region layout, and the advisor re-optimizes windows against the
  /// unreserved fleet so recommendations stay consistent with epoch 0.
  /// Empty = no reservation (the pre-cache behaviour, bit for bit).
  std::vector<std::size_t> reserved;
  /// Cache spec carried into latest_plan() so an artifact saved after an
  /// adaptive run resumes with the same reservation.
  std::optional<core::PlanCacheSpec> cache_spec;
  /// Mid-run data-server failure (rebuild-storm runs).  From simulated time
  /// `at` on, the advisor re-optimizes windows against cost parameters whose
  /// failed slot carries an effectively infinite device factor, so the
  /// device-aware member-prefix search prices the degraded server out of
  /// every new epoch — the same mechanism that routes around workload drift
  /// also routes around the failure.  The failed server must be the *last*
  /// slot of its tier (device factors are canonical ascending, so only the
  /// trailing slot can be excluded by a member prefix).
  struct FailSpec {
    std::size_t tier = 0;  ///< 0 = HServer tier, 1 = SServer tier
    Seconds at = 0.0;      ///< failure instant (simulated seconds)
  };
  std::optional<FailSpec> fail;
};

/// Background copier for one adopted recommendation.  Owns a private PFS
/// client that is *not* attach_observer'd: migration traffic still queues on
/// real server disks, NICs and the shared client-0 node link (that is the
/// interference), and per-server accounting sees it, but it produces no
/// request attribution — so it never feeds back into the advisor's window.
class MigrationEngine {
 public:
  MigrationEngine(pfs::Cluster& cluster,
                  std::shared_ptr<pfs::EpochedLayout> layout);

  /// Starts copying `ranges` (byte spans of the logical file) into `epoch`.
  /// `on_done(bytes_moved)` fires when the last chunk's ownership flips.
  /// Only one migration may be active at a time.
  void start(std::vector<std::pair<Bytes, Bytes>> ranges, std::uint32_t epoch,
             double bandwidth, Bytes chunk, std::function<void(Bytes)> on_done);

  bool active() const { return active_; }
  Bytes migrated_bytes() const { return migrated_bytes_; }
  std::uint64_t chunks_copied() const { return chunks_copied_; }
  /// Total simulated seconds migration chunks were in flight (read issue to
  /// ownership flip) — the window in which they contend with foreground I/O.
  Seconds interference() const { return interference_; }

  /// Per-chunk completion hook (target epoch, bytes, in-flight seconds, now);
  /// the manager uses it to stream per-epoch migration metrics.
  using ChunkHook =
      std::function<void(std::uint32_t, Bytes, Seconds, Seconds)>;
  void set_chunk_hook(ChunkHook hook) { chunk_hook_ = std::move(hook); }

 private:
  void next_chunk();

  sim::Simulator& sim_;
  pfs::Client client_;
  std::shared_ptr<pfs::EpochedLayout> layout_;

  std::vector<std::pair<Bytes, Bytes>> pending_;  ///< consumed back-to-front
  std::shared_ptr<const pfs::Layout> target_view_;
  std::uint32_t target_epoch_ = 0;
  double bandwidth_ = 0.0;
  Bytes chunk_ = 0;
  std::function<void(Bytes)> on_done_;
  ChunkHook chunk_hook_;

  bool active_ = false;
  Bytes batch_bytes_ = 0;
  Bytes migrated_bytes_ = 0;
  std::uint64_t chunks_copied_ = 0;
  Seconds interference_ = 0.0;
};

class AdaptiveLayoutManager final : public obs::Sink {
 public:
  /// Adaptive run counters (also exported as metric families).
  struct Summary {
    std::size_t epochs_installed = 0;  ///< beyond epoch 0
    std::size_t windows_analyzed = 0;
    std::size_t recommendations = 0;
    /// Recommendations that cleared min_gain but arrived while a migration
    /// was still draining (or the epoch budget was spent).
    std::size_t recommendations_deferred = 0;
    Bytes migrated_bytes = 0;
    std::uint64_t migration_chunks = 0;
    Seconds migration_interference = 0.0;
    std::uint64_t cost_evals = 0;
    std::uint64_t cost_evals_saved = 0;
  };

  /// `epoch0` is the offline plan's RST (what HarlDriver would install);
  /// `downstream` (optional, not owned) receives every Sink call unchanged.
  /// Construct *before* the Cluster and pass to Simulator::set_observer so
  /// components register through the manager.
  AdaptiveLayoutManager(core::CostParams params,
                        core::RegionStripeTable epoch0, AdaptiveOptions options,
                        obs::Sink* downstream = nullptr);

  /// "Install epoch 0": builds the EpochedLayout over the cluster's tier
  /// shape, registers the logical file and epoch-0 physical region files at
  /// the MDS, and arms the migration engine.  Returns the live facade to run
  /// programs against (it resolves every request at issue time, so epoch
  /// swaps take effect mid-run).
  std::shared_ptr<const pfs::Layout> install(pfs::Cluster& cluster,
                                             const std::string& logical_name);

  // --- obs::Sink: forward everything, feed the advisor on completions ------
  std::uint32_t track(std::string_view name, obs::TrackKind kind,
                      std::uint32_t entity) override;
  std::uint32_t register_server(std::uint32_t server, std::uint32_t tier,
                                std::string_view name, bool is_ssd) override;
  std::uint32_t register_client(std::uint32_t client) override;
  void resource_event(std::uint32_t track, Seconds arrival, Seconds start,
                      Seconds finish) override;
  void server_access(std::uint32_t server, IoOp op, std::uint32_t region,
                     Bytes bytes, Bytes pieces, Seconds now) override;
  std::uint32_t begin_request(std::uint32_t client, IoOp op, Bytes offset,
                              Bytes size, Seconds now,
                              std::uint32_t file = obs::kNoId) override;
  std::uint32_t begin_sub(std::uint32_t request, std::uint32_t server,
                          std::uint32_t region, Bytes bytes,
                          Seconds now) override;
  void sub_storage(std::uint32_t sub, Seconds arrival, Seconds start,
                   Seconds startup, Seconds service) override;
  void sub_net_done(std::uint32_t sub, Seconds now) override;
  void end_request(std::uint32_t request, Seconds now) override;
  void adaptive_event(AdaptiveEvent event, std::uint32_t epoch, Bytes bytes,
                      Seconds now) override;
  void cache_event(Bytes hit_bytes, Bytes miss_bytes, Seconds now) override;
  void health_event(HealthEvent event, std::uint32_t server, double score,
                    Seconds now) override;

  // --- results -------------------------------------------------------------

  Summary summary() const;
  const pfs::EpochedLayout* layout() const { return epoched_.get(); }

  /// The latest epoch as a Plan (RST + tier shape + calibration
  /// fingerprint), suitable for HarlDriver::save_plan — a restart from the
  /// artifact resumes from where adaptation left off.
  core::Plan latest_plan() const;

  /// Adaptive/migration metric families (adaptive.*, migration.*).  Counters
  /// only, so merging into a recorder's registry is order-independent; call
  /// after the run, e.g. recorder.metrics().merge(manager.metrics()).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Epoch-adoption hook, fired (with the new epoch id) right after a
  /// recommendation is installed and its migration armed.  The experiment
  /// runner points it at pfs::CacheManager::on_epoch so the read cache drops
  /// its stale directory and re-splits its budget at every epoch boundary.
  using EpochHook = std::function<void(std::uint32_t)>;
  void set_epoch_hook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  /// Namespace scoping: only requests tagged with this FileId feed the
  /// advisor (others pass through untouched), so each file's epochs adapt to
  /// its own traffic.  obs::kNoId (the default) accepts everything — the
  /// legacy single-file behaviour.
  void set_file_filter(std::uint32_t file) { file_filter_ = file; }

  /// True once the failure instant has passed and the advisor was rebuilt
  /// against the degraded fleet (FailSpec set only).
  bool degraded_active() const { return degraded_applied_; }

 private:
  void feed(std::uint32_t client, IoOp op, Bytes offset, Bytes size,
            Seconds issue, Seconds now);
  void handle(const core::OnlineAdvisor::Recommendation& rec, Seconds now);

  core::CostParams params_;
  AdaptiveOptions options_;
  obs::Sink* downstream_;
  core::OnlineAdvisor advisor_;

  pfs::Cluster* cluster_ = nullptr;
  std::string logical_name_;
  std::vector<std::size_t> tier_counts_;
  std::shared_ptr<pfs::EpochedLayout> epoched_;
  std::unique_ptr<MigrationEngine> migration_;

  /// Foreground request slots: the manager issues its own ids so it can
  /// reconstruct a TraceRecord at end_request; `down` is the downstream id.
  struct PendingReq {
    std::uint32_t down = obs::kNoId;
    IoOp op = IoOp::kRead;
    Bytes offset = 0;
    Bytes size = 0;
    Seconds issue = 0.0;
    std::uint32_t client = 0;
    std::uint32_t file = obs::kNoId;
  };
  std::vector<PendingReq> reqs_;
  std::vector<std::uint32_t> req_free_;

  EpochHook epoch_hook_;
  std::uint32_t file_filter_ = obs::kNoId;
  bool degraded_applied_ = false;
  /// Advisor counter totals carried across the degraded-advisor swap.
  std::size_t windows_offset_ = 0;
  std::uint64_t evals_offset_ = 0;
  std::uint64_t evals_saved_offset_ = 0;
  std::uint64_t last_cost_evals_ = 0;
  std::uint64_t last_cost_evals_saved_ = 0;
  std::size_t epochs_installed_ = 0;
  std::size_t recommendations_ = 0;
  std::size_t deferred_ = 0;

  obs::MetricsRegistry metrics_;
  obs::MetricsRegistry::FamilyId m_epochs_;
  obs::MetricsRegistry::FamilyId m_windows_;
  obs::MetricsRegistry::FamilyId m_recs_;
  obs::MetricsRegistry::FamilyId m_deferred_;
  obs::MetricsRegistry::FamilyId m_evals_;
  obs::MetricsRegistry::FamilyId m_evals_saved_;
  obs::MetricsRegistry::FamilyId m_migrated_;
  obs::MetricsRegistry::FamilyId m_chunks_;
  obs::MetricsRegistry::FamilyId m_interference_;
  obs::MetricsRegistry::FamilyId m_degraded_;
};

}  // namespace harl::mw
