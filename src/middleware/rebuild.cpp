#include "src/middleware/rebuild.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/storage/profiles.hpp"

namespace harl::mw {

namespace {

std::vector<pfs::DataServer*> server_ptrs(pfs::Cluster& cluster) {
  std::vector<pfs::DataServer*> servers;
  servers.reserve(cluster.num_servers());
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    servers.push_back(&cluster.server(i));
  }
  return servers;
}

double mean_factor(const std::vector<double>& factors) {
  if (factors.empty()) return 1.0;
  double sum = 0.0;
  for (double f : factors) sum += f;
  return sum / static_cast<double>(factors.size());
}

}  // namespace

std::vector<std::uint32_t> choose_replica_tiers(
    const core::Plan& plan, const core::CostParams& params) {
  const std::vector<std::size_t> counts =
      !plan.tier_counts.empty() ? plan.tier_counts
                                : std::vector<std::size_t>{params.M, params.N};
  if (counts.size() != 2) {
    throw std::invalid_argument("replica tier choice needs a two-tier plan");
  }
  // Modeled read cost of `probe` bytes on each tier, scaled by the tier's
  // mean device factor (a slower fleet serves the degraded read slower).
  const auto tier_cost = [&](std::size_t tier, Bytes probe) {
    const storage::OpProfile& profile =
        tier == 0 ? params.hserver_read : params.sserver_read;
    const double factor = mean_factor(tier == 0 ? params.hserver_factors
                                                : params.sserver_factors);
    return factor * (profile.startup_mean() +
                     static_cast<double>(probe) * profile.per_byte);
  };

  std::vector<std::uint32_t> tiers;
  tiers.reserve(plan.rst.size());
  for (std::size_t r = 0; r < plan.rst.size(); ++r) {
    Bytes probe = 0;
    for (Bytes st : plan.rst.entry(r).stripes) probe = std::max(probe, st);
    if (probe == 0) probe = 64 * KiB;

    std::uint32_t best = 0;
    double best_cost = 0.0;
    bool found = false;
    for (std::uint32_t tier = 0; tier < counts.size(); ++tier) {
      if (counts[tier] < 2) continue;  // cannot absorb a same-tier failure
      const double cost = tier_cost(tier, probe);
      if (!found || cost < best_cost) {
        best = tier;
        best_cost = cost;
        found = true;
      }
    }
    tiers.push_back(found ? best : 0);
  }
  return tiers;
}

RebuildManager::RebuildManager(pfs::Cluster& cluster, Options options)
    : sim_(cluster.simulator()),
      // Client-NIC id 0: rebuild shares compute node 0's link, so its
      // transfers contend with that node's foreground traffic too.
      client_(cluster.simulator(), cluster.network(), server_ptrs(cluster), 0),
      options_(options) {
  if (options_.failed_server >= cluster.num_servers()) {
    throw std::invalid_argument("failed server index out of range");
  }
  if (!(options_.bandwidth > 0.0) || options_.chunk == 0) {
    throw std::invalid_argument("rebuild needs bandwidth > 0 and chunk > 0");
  }
  using Kind = obs::MetricsRegistry::Kind;
  m_bytes_ = metrics_.family("rebuild.rebuilt_bytes", Kind::kCounter);
  m_chunks_ = metrics_.family("rebuild.chunks", Kind::kCounter);
  m_interference_ = metrics_.family("rebuild.interference_s", Kind::kCounter);
}

void RebuildManager::add_file(std::shared_ptr<const pfs::Layout> layout,
                              Bytes file_size,
                              const pfs::ReplicaMap* replicas) {
  if (armed_) throw std::logic_error("cannot add files after arm()");
  if (layout == nullptr) throw std::invalid_argument("rebuild needs a layout");
  if (replicas == nullptr) {
    throw std::invalid_argument("an unreplicated file cannot be rebuilt");
  }
  items_.push_back(Item{std::move(layout), file_size, replicas});
}

void RebuildManager::arm() {
  if (armed_) throw std::logic_error("rebuild already armed");
  armed_ = true;
  const Seconds now = sim_.now();
  const Seconds delay = options_.start_at > now ? options_.start_at - now : 0.0;
  sim_.schedule_after(delay, [this] {
    active_ = true;
    next_chunk();
  });
}

void RebuildManager::next_chunk() {
  // Advance the scan cursor past chunks that do not touch the failed server:
  // their data is fully alive, so they cost neither traffic nor time.
  while (item_ < items_.size()) {
    Item* item = &items_[item_];
    if (cursor_ >= item->size) {
      ++item_;
      cursor_ = 0;
      continue;
    }
    const Bytes begin = cursor_;
    const Bytes len = std::min<Bytes>(options_.chunk, item->size - begin);
    cursor_ += len;

    Bytes lost = 0;
    for (const auto& sub : item->layout->map(begin, len)) {
      if (sub.server == options_.failed_server) lost += sub.size;
    }
    if (lost == 0) continue;

    const Seconds issue = sim_.now();
    // Reconstruction read (lost extents come from their replica homes), then
    // a re-replicated write restoring two live copies of the whole chunk.
    client_.io(
        *item->layout, IoOp::kRead, begin, len,
        [this, item, begin, len, lost, issue] {
          client_.io(
              *item->layout, IoOp::kWrite, begin, len,
              [this, lost, issue] {
                rebuilt_bytes_ += lost;
                ++chunks_;
                const Seconds now = sim_.now();
                const Seconds inflight = now - issue;
                interference_ += inflight;
                const obs::LabelSet labels;
                metrics_.add(m_bytes_, labels, static_cast<double>(lost));
                metrics_.add(m_chunks_, labels, 1.0);
                metrics_.add(m_interference_, labels, inflight);
                // Throttle: pace the scan by the configured bandwidth.
                const Seconds earliest =
                    issue + static_cast<double>(lost) / options_.bandwidth;
                if (earliest > now) {
                  sim_.schedule_after(earliest - now, [this] { next_chunk(); });
                } else {
                  next_chunk();
                }
              },
              obs::kNoId, item->replicas);
        },
        obs::kNoId, item->replicas);
    return;
  }

  active_ = false;
  done_ = true;
  finished_at_ = sim_.now();
  if (done_hook_) done_hook_(rebuilt_bytes_, finished_at_);
}

}  // namespace harl::mw
