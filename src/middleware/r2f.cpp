#include "src/middleware/r2f.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace harl::mw {

namespace {
constexpr char kHeader[] = "harl-r2f-v1";
}

RegionFileMap RegionFileMap::for_file(const std::string& logical_name,
                                      std::size_t region_count) {
  if (logical_name.empty()) throw std::invalid_argument("empty logical name");
  if (region_count == 0) throw std::invalid_argument("R2F needs >= 1 region");
  RegionFileMap map;
  map.logical_ = logical_name;
  map.physical_.reserve(region_count);
  for (std::size_t i = 0; i < region_count; ++i) {
    map.physical_.push_back(logical_name + ".r" + std::to_string(i));
  }
  return map;
}

RegionFileMap RegionFileMap::for_epoch(const std::string& logical_name,
                                       std::uint32_t epoch,
                                       std::size_t region_count) {
  if (epoch == 0) return for_file(logical_name, region_count);
  if (logical_name.empty()) throw std::invalid_argument("empty logical name");
  if (region_count == 0) throw std::invalid_argument("R2F needs >= 1 region");
  RegionFileMap map;
  map.logical_ = logical_name;
  map.physical_.reserve(region_count);
  const std::string stem = logical_name + ".e" + std::to_string(epoch) + ".r";
  for (std::size_t i = 0; i < region_count; ++i) {
    map.physical_.push_back(stem + std::to_string(i));
  }
  return map;
}

void RegionFileMap::save(std::ostream& os) const {
  os << kHeader << '\n' << logical_ << '\n';
  for (const auto& name : physical_) os << name << '\n';
}

RegionFileMap RegionFileMap::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("bad R2F header");
  }
  RegionFileMap map;
  if (!std::getline(is, map.logical_) || map.logical_.empty()) {
    throw std::runtime_error("R2F missing logical name");
  }
  while (std::getline(is, line)) {
    if (!line.empty()) map.physical_.push_back(line);
  }
  if (map.physical_.empty()) throw std::runtime_error("R2F has no regions");
  return map;
}

}  // namespace harl::mw
