// Region-to-file mapping (paper Section III-G).
//
// HARL's Placing Phase maps each logical file region onto a separate
// physical PFS file so that each region can be striped with its own sizes.
// The R2F table records the logical-region -> physical-file translation; it
// is stored next to the application (like the RST) and loaded at MPI_Init.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace harl::mw {

class RegionFileMap {
 public:
  RegionFileMap() = default;

  /// Canonical naming: "<logical>.r<k>" for region k.
  static RegionFileMap for_file(const std::string& logical_name,
                                std::size_t region_count);

  /// Epoch-qualified naming for adaptive re-layouts: epoch 0 keeps the
  /// canonical "<logical>.r<k>" names (an epoched install is backward
  /// compatible with the offline driver's), later epochs get
  /// "<logical>.e<e>.r<k>" so a migrated region never aliases the physical
  /// file of its predecessor.
  static RegionFileMap for_epoch(const std::string& logical_name,
                                 std::uint32_t epoch,
                                 std::size_t region_count);

  const std::string& logical_name() const { return logical_; }
  std::size_t region_count() const { return physical_.size(); }
  const std::string& physical(std::size_t region) const {
    return physical_.at(region);
  }

  /// Text serialization: header, logical name, then one physical name per line.
  void save(std::ostream& os) const;
  static RegionFileMap load(std::istream& is);

 private:
  std::string logical_;
  std::vector<std::string> physical_;
};

}  // namespace harl::mw
