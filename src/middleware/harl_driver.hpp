// The HARL middleware driver (paper Section III-G).
//
// In the paper, RST and R2F are stored in the application's directory,
// loaded when MPI_Init() runs and unloaded at MPI_Finalize(); the MPI-IO
// read/write paths then forward requests to the per-region physical files.
// This driver is that glue: it persists a Plan's RST + R2F next to the
// application, and at "init time" rebuilds the region layout and registers
// it (and the per-region physical file names) with the cluster's MDS.
#pragma once

#include <memory>
#include <string>

#include "src/core/planner.hpp"
#include "src/middleware/r2f.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/region_layout.hpp"

namespace harl::mw {

class HarlDriver {
 public:
  /// Persists `plan`'s RST and the derived R2F as
  /// `<directory>/<logical_name>.rst` / `.r2f`.
  static void save(const std::string& directory,
                   const std::string& logical_name, const core::Plan& plan);

  /// Loads previously-saved RST/R2F artifacts.
  static core::RegionStripeTable load_rst(const std::string& directory,
                                          const std::string& logical_name);
  static RegionFileMap load_r2f(const std::string& directory,
                                const std::string& logical_name);

  /// MPI_Init-time installation: builds the region layout from `rst` over
  /// the cluster's server split and registers the logical file (plus each
  /// physical region file) at the MDS.  Returns the layout for use by a
  /// ProgramRunner.
  static std::shared_ptr<pfs::RegionLayout> install(
      const core::RegionStripeTable& rst, const std::string& logical_name,
      pfs::Cluster& cluster);

  /// load_rst + install in one step.
  static std::shared_ptr<pfs::RegionLayout> load_and_install(
      const std::string& directory, const std::string& logical_name,
      pfs::Cluster& cluster);
};

}  // namespace harl::mw
