// The HARL middleware driver (paper Section III-G).
//
// In the paper, RST and R2F are stored in the application's directory,
// loaded when MPI_Init() runs and unloaded at MPI_Finalize(); the MPI-IO
// read/write paths then forward requests to the per-region physical files.
// This driver is that glue: it persists a Plan's RST + R2F next to the
// application, and at "init time" rebuilds the region layout and registers
// it (and the per-region physical file names) with the cluster's MDS.
//
// Two persistence forms are supported: the paper-shaped pair of text files
// (`<name>.rst` + `<name>.r2f`) and the versioned single-file Plan artifact
// (`<name>.plan`, see core/plan_artifact.hpp) which additionally carries the
// tier table and calibration fingerprint so Analysis and Placing can run as
// separate processes with stale-plan detection.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/plan_artifact.hpp"
#include "src/core/planner.hpp"
#include "src/middleware/r2f.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/region_layout.hpp"

namespace harl::mw {

class HarlDriver {
 public:
  /// Persists `plan`'s RST and the derived R2F as
  /// `<directory>/<logical_name>.rst` / `.r2f`.
  static void save(const std::string& directory,
                   const std::string& logical_name, const core::Plan& plan);

  /// Persists `plan` as the versioned binary artifact
  /// `<directory>/<logical_name>.plan`, with the R2F names embedded.
  static void save_plan(const std::string& directory,
                        const std::string& logical_name,
                        const core::Plan& plan);

  /// Loads previously-saved artifacts.
  static core::RegionStripeTable load_rst(const std::string& directory,
                                          const std::string& logical_name);
  static RegionFileMap load_r2f(const std::string& directory,
                                const std::string& logical_name);
  static core::PlanArtifact load_plan(const std::string& directory,
                                      const std::string& logical_name);

  /// MPI_Init-time installation: builds the region layout from `rst` over
  /// the cluster's tier topology and registers the logical file (plus each
  /// physical region file) at the MDS.  Returns the layout for use by a
  /// ProgramRunner.
  ///
  /// In epoch terms this is "install epoch 0": the offline plan is the first
  /// entry of the file's layout lineage (its physical names are exactly
  /// RegionFileMap::for_epoch(name, 0, n)), and an AdaptiveLayoutManager may
  /// later stack re-optimized epochs on top of it without renaming anything
  /// the offline driver placed.
  static std::shared_ptr<pfs::RegionLayout> install(
      const core::RegionStripeTable& rst, const std::string& logical_name,
      pfs::Cluster& cluster);

  /// The cluster's tier counts shaped to match `rst` (two-tier RSTs fall
  /// back to the (num_hservers, num_sservers) view when the cluster's tier
  /// list collapsed; throws on any other mismatch).  Shared by install and
  /// the adaptive manager so every epoch is built over the same tier shape.
  static std::vector<std::size_t> tier_counts_for(
      const core::RegionStripeTable& rst, const pfs::Cluster& cluster);

  /// Installs a loaded Plan artifact: validates its tier table against the
  /// cluster (throws std::runtime_error on mismatch), then installs its RST
  /// using the artifact's embedded R2F names when present.
  static std::shared_ptr<pfs::RegionLayout> install(
      const core::PlanArtifact& artifact, const std::string& logical_name,
      pfs::Cluster& cluster);

  /// load_rst + install in one step.
  static std::shared_ptr<pfs::RegionLayout> load_and_install(
      const std::string& directory, const std::string& logical_name,
      pfs::Cluster& cluster);
};

}  // namespace harl::mw
