#include "src/middleware/harl_driver.hpp"

#include <fstream>
#include <stdexcept>

namespace harl::mw {

namespace {

std::string rst_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".rst";
}
std::string r2f_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".r2f";
}

}  // namespace

void HarlDriver::save(const std::string& directory,
                      const std::string& logical_name, const core::Plan& plan) {
  {
    std::ofstream os(rst_path(directory, logical_name));
    if (!os) throw std::runtime_error("cannot write RST for " + logical_name);
    plan.rst.save(os);
  }
  {
    std::ofstream os(r2f_path(directory, logical_name));
    if (!os) throw std::runtime_error("cannot write R2F for " + logical_name);
    RegionFileMap::for_file(logical_name, plan.rst.size()).save(os);
  }
}

core::RegionStripeTable HarlDriver::load_rst(const std::string& directory,
                                             const std::string& logical_name) {
  std::ifstream is(rst_path(directory, logical_name));
  if (!is) throw std::runtime_error("cannot read RST for " + logical_name);
  return core::RegionStripeTable::load(is);
}

RegionFileMap HarlDriver::load_r2f(const std::string& directory,
                                   const std::string& logical_name) {
  std::ifstream is(r2f_path(directory, logical_name));
  if (!is) throw std::runtime_error("cannot read R2F for " + logical_name);
  return RegionFileMap::load(is);
}

std::shared_ptr<pfs::RegionLayout> HarlDriver::install(
    const core::RegionStripeTable& rst, const std::string& logical_name,
    pfs::Cluster& cluster) {
  auto layout =
      rst.to_layout(cluster.num_hservers(), cluster.num_sservers());
  cluster.mds().register_file(logical_name, layout);
  // Each region is its own physical file (R2F); register those names too so
  // per-region opens resolve, striped with that region's stripe pair alone.
  const auto r2f = RegionFileMap::for_file(logical_name, rst.size());
  for (std::size_t i = 0; i < rst.size(); ++i) {
    const auto& entry = rst.entry(i);
    cluster.mds().register_file(
        r2f.physical(i),
        pfs::make_two_tier_layout(cluster.num_hservers(), entry.stripes.h,
                                  cluster.num_sservers(), entry.stripes.s));
  }
  return layout;
}

std::shared_ptr<pfs::RegionLayout> HarlDriver::load_and_install(
    const std::string& directory, const std::string& logical_name,
    pfs::Cluster& cluster) {
  return install(load_rst(directory, logical_name), logical_name, cluster);
}

}  // namespace harl::mw
