#include "src/middleware/harl_driver.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

namespace harl::mw {

namespace {

std::string rst_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".rst";
}
std::string r2f_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".r2f";
}
std::string plan_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".plan";
}

/// Shared installation: register the logical file's region layout and each
/// per-region physical file, striped with that region's stripes alone.
std::shared_ptr<pfs::RegionLayout> install_with_names(
    const core::RegionStripeTable& rst, const std::string& logical_name,
    const std::vector<std::string>& physical_names, pfs::Cluster& cluster) {
  const std::vector<std::size_t> counts =
      HarlDriver::tier_counts_for(rst, cluster);
  auto layout = rst.to_layout(counts);
  cluster.mds().register_file(logical_name, layout);
  for (std::size_t i = 0; i < rst.size(); ++i) {
    cluster.mds().register_file(
        physical_names[i],
        pfs::make_tiered_layout(counts, rst.entry(i).stripes));
  }
  return layout;
}

std::vector<std::string> canonical_names(const std::string& logical_name,
                                         std::size_t region_count) {
  // Epoch-0 naming: identical to the historical "<logical>.r<k>" scheme.
  const auto r2f = RegionFileMap::for_epoch(logical_name, 0, region_count);
  std::vector<std::string> names;
  names.reserve(region_count);
  for (std::size_t i = 0; i < region_count; ++i) names.push_back(r2f.physical(i));
  return names;
}

}  // namespace

std::vector<std::size_t> HarlDriver::tier_counts_for(
    const core::RegionStripeTable& rst, const pfs::Cluster& cluster) {
  // Normally the cluster's own tier topology; a two-tier RST against a
  // cluster whose tier list collapsed (e.g. zero HServers configured) falls
  // back to the two-tier (num_hservers, num_sservers) view so absent tiers
  // keep their slot.
  std::vector<std::size_t> counts = cluster.tier_counts();
  if (counts.size() != rst.num_tiers()) {
    if (rst.num_tiers() == 2) {
      counts = {cluster.num_hservers(), cluster.num_sservers()};
    } else {
      throw std::runtime_error("RST tier count does not match cluster tiers");
    }
  }
  return counts;
}

void HarlDriver::save(const std::string& directory,
                      const std::string& logical_name, const core::Plan& plan) {
  {
    std::ofstream os(rst_path(directory, logical_name));
    if (!os) throw std::runtime_error("cannot write RST for " + logical_name);
    plan.rst.save(os);
  }
  {
    std::ofstream os(r2f_path(directory, logical_name));
    if (!os) throw std::runtime_error("cannot write R2F for " + logical_name);
    RegionFileMap::for_file(logical_name, plan.rst.size()).save(os);
  }
}

void HarlDriver::save_plan(const std::string& directory,
                           const std::string& logical_name,
                           const core::Plan& plan) {
  core::PlanArtifact artifact = core::PlanArtifact::from_plan(plan);
  artifact.region_files = canonical_names(logical_name, plan.rst.size());
  core::save_plan(artifact, plan_path(directory, logical_name));
}

core::RegionStripeTable HarlDriver::load_rst(const std::string& directory,
                                             const std::string& logical_name) {
  std::ifstream is(rst_path(directory, logical_name));
  if (!is) throw std::runtime_error("cannot read RST for " + logical_name);
  return core::RegionStripeTable::load(is);
}

RegionFileMap HarlDriver::load_r2f(const std::string& directory,
                                   const std::string& logical_name) {
  std::ifstream is(r2f_path(directory, logical_name));
  if (!is) throw std::runtime_error("cannot read R2F for " + logical_name);
  return RegionFileMap::load(is);
}

core::PlanArtifact HarlDriver::load_plan(const std::string& directory,
                                         const std::string& logical_name) {
  return core::load_plan(plan_path(directory, logical_name));
}

std::shared_ptr<pfs::RegionLayout> HarlDriver::install(
    const core::RegionStripeTable& rst, const std::string& logical_name,
    pfs::Cluster& cluster) {
  return install_with_names(rst, logical_name,
                            canonical_names(logical_name, rst.size()), cluster);
}

std::shared_ptr<pfs::RegionLayout> HarlDriver::install(
    const core::PlanArtifact& artifact, const std::string& logical_name,
    pfs::Cluster& cluster) {
  const std::vector<std::size_t> counts = tier_counts_for(artifact.rst, cluster);
  if (artifact.tier_counts != counts) {
    throw std::runtime_error(
        "plan artifact tier table does not match the cluster");
  }
  const std::vector<std::string> names =
      artifact.region_files.empty()
          ? canonical_names(logical_name, artifact.rst.size())
          : artifact.region_files;
  return install_with_names(artifact.rst, logical_name, names, cluster);
}

std::shared_ptr<pfs::RegionLayout> HarlDriver::load_and_install(
    const std::string& directory, const std::string& logical_name,
    pfs::Cluster& cluster) {
  return install(load_rst(directory, logical_name), logical_name, cluster);
}

}  // namespace harl::mw
