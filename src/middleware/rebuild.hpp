// Failure rebuild plane: re-materialize redundancy after a data server dies.
//
// A ClusterConfig::fail_server run kills one data server at a simulated
// instant.  Foreground reads of that server's share fail over to per-region
// replicas (pfs::Client's degraded path over a pfs::ReplicaMap); this module
// is the background half of the story — the storm that makes failures
// expensive in real systems.  From `start_at` on, the RebuildManager scans
// each registered file chunk by chunk, skipping chunks that do not touch the
// failed server, and reconstructs the touched ones:
//
//   1. a degraded read of the chunk — surviving extents from their primaries,
//      lost extents from their replica homes (the reconstruction read), then
//   2. a re-replicated write of the chunk — every extent refreshed primary +
//      replica, with the failed primary's share landing only on its replica
//      home — restoring two live copies for every byte of the chunk.
//
// Both legs run through the *real* simulated servers, NICs and the shared
// client-0 node link (the MigrationEngine honesty rule), so rebuild traffic
// measurably contends with foreground I/O; a bandwidth throttle paces chunks
// exactly like migration chunks.  The manager's private client is not
// attach_observer'd: rebuild I/O never pollutes request attribution or the
// adaptive advisor's window, but per-server counters and queue contention
// see every byte.
//
// Determinism: chunk order is a pure function of the registered files and
// the chunk size, and the start instant is simulated time — a rebuild-storm
// run is bit-identical at any PDES width.
//
// This header also hosts choose_replica_tiers(): replica placement is per
// *region* and should follow the same economics as primary placement, so the
// chooser prices each region's replica tier with the offline cost model's
// read profiles (pfs::ReplicaMap itself stays below core and cannot do
// this).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/cost_model.hpp"
#include "src/core/planner.hpp"
#include "src/obs/metrics.hpp"
#include "src/pfs/cluster.hpp"
#include "src/pfs/replication.hpp"

namespace harl::mw {

/// Per-region replica tiers for `plan`, chosen by the cost model: a region's
/// replica serves degraded reads, so it lands on the tier with the cheapest
/// modeled read of the region's probe size (the region's largest planned
/// stripe, 64 KiB when the region stripes nothing) — scaled by the tier's
/// mean device factor when the fleet is heterogeneous.  Tiers with fewer
/// than two servers cannot absorb a same-tier failure and are skipped; if no
/// tier qualifies the region falls back to tier 0 (ReplicaMap then chains
/// over the whole cluster).  Index = post-merge region id, ready for
/// pfs::ReplicaMap::tiered().
std::vector<std::uint32_t> choose_replica_tiers(const core::Plan& plan,
                                                const core::CostParams& params);

class RebuildManager {
 public:
  struct Options {
    std::size_t failed_server = 0;  ///< global index of the dead server
    Seconds start_at = 0.0;         ///< storm start (>= the failure instant)
    /// Rebuild throttle (bytes of scanned chunk per simulated second).
    double bandwidth = 256.0 * static_cast<double>(MiB);
    Bytes chunk = 4 * MiB;  ///< bytes reconstructed per round trip
  };

  RebuildManager(pfs::Cluster& cluster, Options options);

  /// Registers one file of the namespace for rebuild.  `replicas` (caller
  /// owned, must outlive the manager) is the file's replica placement; files
  /// without replicas have nothing to rebuild from and are rejected.  Call
  /// before arm().
  void add_file(std::shared_ptr<const pfs::Layout> layout, Bytes file_size,
                const pfs::ReplicaMap* replicas);

  /// Schedules the storm at start_at (immediately if already past).  The
  /// registered files are scanned in registration order.
  void arm();

  bool active() const { return active_; }
  bool done() const { return done_; }
  /// Failed-server bytes re-materialized (the lost share, not the scan).
  Bytes rebuilt_bytes() const { return rebuilt_bytes_; }
  std::uint64_t chunks() const { return chunks_; }
  /// Simulated seconds rebuild chunks were in flight — the window in which
  /// they contend with foreground I/O.
  Seconds interference() const { return interference_; }
  Seconds finished_at() const { return finished_at_; }

  /// Fired once when the last chunk lands: (lost bytes rebuilt, now).
  void set_done_hook(std::function<void(Bytes, Seconds)> hook) {
    done_hook_ = std::move(hook);
  }

  /// Rebuild metric families (rebuild.*).  Counters only, so merging into a
  /// recorder's registry is order-independent.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Item {
    std::shared_ptr<const pfs::Layout> layout;
    Bytes size = 0;
    const pfs::ReplicaMap* replicas = nullptr;
  };

  void next_chunk();

  sim::Simulator& sim_;
  pfs::Client client_;
  Options options_;

  std::vector<Item> items_;
  std::size_t item_ = 0;   ///< scan cursor: current file
  Bytes cursor_ = 0;       ///< scan cursor: offset within the current file

  bool armed_ = false;
  bool active_ = false;
  bool done_ = false;
  Bytes rebuilt_bytes_ = 0;
  std::uint64_t chunks_ = 0;
  Seconds interference_ = 0.0;
  Seconds finished_at_ = 0.0;
  std::function<void(Bytes, Seconds)> done_hook_;

  obs::MetricsRegistry metrics_;
  obs::MetricsRegistry::FamilyId m_bytes_;
  obs::MetricsRegistry::FamilyId m_chunks_;
  obs::MetricsRegistry::FamilyId m_interference_;
};

}  // namespace harl::mw
