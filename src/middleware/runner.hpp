// Executes rank programs against the simulated PFS.
//
// The runner is the simulated analogue of the MPI-IO layer: it opens the
// file at the MDS, drives each rank's action sequence through its node's PFS
// client, implements two-phase collective I/O (shuffle between compute
// nodes, then aggregated contiguous accesses by one aggregator per node),
// and optionally records every PFS-level request into a TraceCollector —
// exactly where the paper's IOSIG instrumentation sits.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/middleware/mpi_world.hpp"
#include "src/middleware/program.hpp"
#include "src/pfs/layout.hpp"
#include "src/trace/collector.hpp"

namespace harl::mw {

struct CollectiveOptions {
  /// Aggregator count for two-phase I/O; 0 = one per compute node (the
  /// ROMIO cb_nodes default).
  std::size_t aggregators = 0;
  /// Collective buffer size (ROMIO cb_buffer_size): each aggregator issues
  /// its file range in sequential rounds of at most this many bytes rather
  /// than as one giant request.  0 disables chunking.
  Bytes buffer_size = 16 * MiB;
};

/// How kListIo actions (independent non-contiguous I/O) reach the PFS —
/// the optimizations the paper's related work surveys.
enum class NoncontigStrategy {
  /// One PFS request per extent, issued sequentially (the unoptimized
  /// POSIX-style path).
  kNaive,
  /// List I/O [Ching et al.]: the extents travel as one request list and
  /// are serviced concurrently.
  kListIo,
  /// Data sieving [Thakur et al.]: access the covering extent in one large
  /// request (read-modify-write for writes) when the holes are small
  /// enough; falls back to list I/O otherwise.
  kDataSieving,
};

struct RunnerOptions {
  CollectiveOptions collective;
  /// Consult the MDS's region stripe table for every independent request
  /// before issuing it (paper Section III-F: "MDSs look up the RST table
  /// according to the request's offset and length").  Default off = the
  /// layout is cached at open time, as real clients do; turning it on makes
  /// RST size a measurable cost (bench_ablation_metadata).
  bool per_request_metadata = false;
  NoncontigStrategy noncontig = NoncontigStrategy::kListIo;
  /// Data sieving engages only when useful bytes fill at least this
  /// fraction of the covering extent (ROMIO applies a similar density
  /// heuristic via its buffer limits).
  double sieve_min_density = 0.5;
};

struct RunResult {
  Seconds makespan = 0.0;   ///< first issue to last completion
  Bytes bytes_read = 0;     ///< application-level bytes
  Bytes bytes_written = 0;

  double read_throughput() const {
    return makespan > 0.0 ? static_cast<double>(bytes_read) / makespan : 0.0;
  }
  double write_throughput() const {
    return makespan > 0.0 ? static_cast<double>(bytes_written) / makespan : 0.0;
  }
  double total_throughput() const {
    return makespan > 0.0
               ? static_cast<double>(bytes_read + bytes_written) / makespan
               : 0.0;
  }
};

class ProgramRunner {
 public:
  /// Registers `file_name` with `layout` at the cluster's MDS.  `collector`
  /// (optional) receives one record per PFS-level request.
  ProgramRunner(MpiWorld& world, std::string file_name,
                std::shared_ptr<const pfs::Layout> layout,
                trace::TraceCollector* collector = nullptr,
                RunnerOptions options = {});

  /// Convenience overload for callers that only tune collective I/O.
  ProgramRunner(MpiWorld& world, std::string file_name,
                std::shared_ptr<const pfs::Layout> layout,
                trace::TraceCollector* collector, CollectiveOptions collective)
      : ProgramRunner(world, std::move(file_name), std::move(layout),
                      collector, RunnerOptions{collective, false}) {}

  /// Runs one program per rank to completion (programs.size() must equal
  /// the world size) and returns the aggregate result.  May be called
  /// repeatedly; simulated time carries forward, makespan is per-call.
  RunResult run(const std::vector<RankProgram>& programs);

 private:
  MpiWorld& world_;
  std::string file_name_;
  std::shared_ptr<const pfs::Layout> layout_;
  trace::TraceCollector* collector_;
  RunnerOptions options_;
};

}  // namespace harl::mw
