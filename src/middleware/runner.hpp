// Executes rank programs against the simulated PFS.
//
// The runner is the simulated analogue of the MPI-IO layer: it opens the
// file at the MDS, drives each rank's action sequence through its node's PFS
// client, implements two-phase collective I/O (shuffle between compute
// nodes, then aggregated contiguous accesses by one aggregator per node),
// and optionally records every PFS-level request into a TraceCollector —
// exactly where the paper's IOSIG instrumentation sits.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/middleware/mpi_world.hpp"
#include "src/middleware/program.hpp"
#include "src/obs/sink.hpp"
#include "src/pfs/layout.hpp"
#include "src/trace/collector.hpp"

namespace harl::pfs {
class ReplicaMap;
}

namespace harl::mw {

struct CollectiveOptions {
  /// Aggregator count for two-phase I/O; 0 = one per compute node (the
  /// ROMIO cb_nodes default).
  std::size_t aggregators = 0;
  /// Collective buffer size (ROMIO cb_buffer_size): each aggregator issues
  /// its file range in sequential rounds of at most this many bytes rather
  /// than as one giant request.  0 disables chunking.
  Bytes buffer_size = 16 * MiB;
};

/// How kListIo actions (independent non-contiguous I/O) reach the PFS —
/// the optimizations the paper's related work surveys.
enum class NoncontigStrategy {
  /// One PFS request per extent, issued sequentially (the unoptimized
  /// POSIX-style path).
  kNaive,
  /// List I/O [Ching et al.]: the extents travel as one request list and
  /// are serviced concurrently.
  kListIo,
  /// Data sieving [Thakur et al.]: access the covering extent in one large
  /// request (read-modify-write for writes) when the holes are small
  /// enough; falls back to list I/O otherwise.
  kDataSieving,
};

struct RunnerOptions {
  CollectiveOptions collective;
  /// Consult the MDS's region stripe table for every independent request
  /// before issuing it (paper Section III-F: "MDSs look up the RST table
  /// according to the request's offset and length").  Default off = the
  /// layout is cached at open time, as real clients do; turning it on makes
  /// RST size a measurable cost (bench_ablation_metadata).
  bool per_request_metadata = false;
  NoncontigStrategy noncontig = NoncontigStrategy::kListIo;
  /// Data sieving engages only when useful bytes fill at least this
  /// fraction of the covering extent (ROMIO applies a similar density
  /// heuristic via its buffer limits).
  double sieve_min_density = 0.5;
  /// Namespace FileId: attributes this runner's requests to one file of a
  /// multi-file population (telemetry labels, trace fd).  obs::kNoId keeps
  /// the legacy single-file outputs byte-identical.
  std::uint32_t file = obs::kNoId;
  /// Replica placement for this file (owned by the caller, must outlive the
  /// runner).  When set, writes also land on each sub-request's replica and
  /// reads fail over to it once the primary's server has failed.
  const pfs::ReplicaMap* replicas = nullptr;
};

struct RunResult {
  Seconds makespan = 0.0;   ///< launch to simulator quiescence
  Bytes bytes_read = 0;     ///< application-level bytes
  Bytes bytes_written = 0;
  /// Simulated instant the launch's last rank finished.  Equals launch start
  /// + makespan for a solo run with no trailing background work; under a
  /// shared multi-file simulator run it is this file's own completion, while
  /// makespan spans the whole drain.
  Seconds completed_at = 0.0;

  double read_throughput() const {
    return makespan > 0.0 ? static_cast<double>(bytes_read) / makespan : 0.0;
  }
  double write_throughput() const {
    return makespan > 0.0 ? static_cast<double>(bytes_written) / makespan : 0.0;
  }
  double total_throughput() const {
    return makespan > 0.0
               ? static_cast<double>(bytes_read + bytes_written) / makespan
               : 0.0;
  }
};

namespace detail {
struct RunState;
}

class ProgramRunner {
 public:
  /// Registers `file_name` with `layout` at the cluster's MDS.  `collector`
  /// (optional) receives one record per PFS-level request.
  ProgramRunner(MpiWorld& world, std::string file_name,
                std::shared_ptr<const pfs::Layout> layout,
                trace::TraceCollector* collector = nullptr,
                RunnerOptions options = {});

  /// Convenience overload for callers that only tune collective I/O.
  ProgramRunner(MpiWorld& world, std::string file_name,
                std::shared_ptr<const pfs::Layout> layout,
                trace::TraceCollector* collector, CollectiveOptions collective)
      : ProgramRunner(world, std::move(file_name), std::move(layout),
                      collector, RunnerOptions{collective, false}) {}

  /// Runs one program per rank to completion (programs.size() must equal
  /// the world size) and returns the aggregate result.  May be called
  /// repeatedly; simulated time carries forward, makespan is per-call.
  RunResult run(const std::vector<RankProgram>& programs);

  /// A program set scheduled onto the shared simulator but not yet drained.
  /// Several runners — one per file of a namespace — can each launch() onto
  /// the same cluster, then a single Simulator::run() interleaves all their
  /// traffic; finish() harvests each file's result afterwards.
  struct Launch {
    std::shared_ptr<detail::RunState> state;
    Seconds start = 0.0;
  };

  /// Schedules the MPI_File_open fan-out and the rank programs (a copy is
  /// taken; the caller's vector need not outlive the launch).  No simulated
  /// time elapses until the caller runs the simulator.
  Launch launch(const std::vector<RankProgram>& programs);

  /// Harvests the result of a drained launch.  Throws std::logic_error if
  /// any rank has not finished (deadlock / simulator not run to quiescence).
  RunResult finish(const Launch& launch) const;

 private:
  MpiWorld& world_;
  std::string file_name_;
  std::shared_ptr<const pfs::Layout> layout_;
  trace::TraceCollector* collector_;
  RunnerOptions options_;
};

}  // namespace harl::mw
