// A simulated MPI world: ranks pinned to compute nodes.
//
// The paper runs MPI programs (IOR, BTIO) whose processes are spread over
// the cluster's compute nodes; each rank issues I/O through the PFS client
// of its node.  Ranks are assigned round-robin over nodes (16 processes on
// 8 nodes -> 2 per node), which is what makes the per-node NIC a shared,
// contended resource in the simulation.
#pragma once

#include <cstddef>

#include "src/pfs/cluster.hpp"

namespace harl::mw {

class MpiWorld {
 public:
  /// `nranks` processes over the cluster's compute nodes.
  MpiWorld(pfs::Cluster& cluster, std::size_t nranks);

  std::size_t size() const { return nranks_; }
  pfs::Cluster& cluster() { return cluster_; }

  /// Compute node hosting `rank` (round-robin assignment).
  std::size_t node_of(std::size_t rank) const;

  /// The PFS client (per-node) that `rank` issues I/O through.
  pfs::Client& client_of(std::size_t rank);

 private:
  pfs::Cluster& cluster_;
  std::size_t nranks_;
};

}  // namespace harl::mw
