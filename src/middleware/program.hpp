// Rank programs: the unit of work the simulated MPI world executes.
//
// A workload generator (IOR, BTIO, ...) compiles to one RankProgram per
// rank: a sequence of independent I/O, collective I/O, compute and barrier
// actions.  Collective actions synchronize by *sequence number* (a rank's
// k-th collective/barrier matches every other rank's k-th), which is exactly
// MPI's ordering rule for collective calls.
#pragma once

#include <stdexcept>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"

namespace harl::mw {

/// A contiguous logical-file byte range.
struct Extent {
  Bytes offset = 0;
  Bytes size = 0;

  friend bool operator==(const Extent&, const Extent&) = default;
};

struct IoAction {
  enum class Kind {
    kIo,            ///< independent read/write of one extent
    kListIo,        ///< independent non-contiguous I/O (multiple extents)
    kCollectiveIo,  ///< two-phase collective I/O of this rank's extents
    kCompute,       ///< local computation for `compute` seconds
    kBarrier,       ///< synchronization only
  };

  Kind kind = Kind::kIo;
  IoOp op = IoOp::kRead;
  std::vector<Extent> extents;
  Seconds compute = 0.0;

  static IoAction io(IoOp op, Bytes offset, Bytes size) {
    IoAction a;
    a.kind = Kind::kIo;
    a.op = op;
    a.extents = {Extent{offset, size}};
    return a;
  }

  /// Non-contiguous independent I/O: how the extents reach the PFS is the
  /// runner's NoncontigStrategy (naive per-extent, List I/O, data sieving).
  static IoAction list_io(IoOp op, std::vector<Extent> extents) {
    if (extents.empty()) {
      throw std::invalid_argument("list I/O needs at least one extent");
    }
    IoAction a;
    a.kind = Kind::kListIo;
    a.op = op;
    a.extents = std::move(extents);
    return a;
  }

  static IoAction collective(IoOp op, std::vector<Extent> extents) {
    IoAction a;
    a.kind = Kind::kCollectiveIo;
    a.op = op;
    a.extents = std::move(extents);
    return a;
  }

  static IoAction compute_for(Seconds duration) {
    if (duration < 0.0) throw std::invalid_argument("negative compute time");
    IoAction a;
    a.kind = Kind::kCompute;
    a.compute = duration;
    return a;
  }

  static IoAction barrier() {
    IoAction a;
    a.kind = Kind::kBarrier;
    return a;
  }
};

using RankProgram = std::vector<IoAction>;

/// Total bytes a program moves, by operation.
struct ProgramVolume {
  Bytes read = 0;
  Bytes write = 0;
};

inline ProgramVolume program_volume(const std::vector<RankProgram>& programs) {
  ProgramVolume v;
  for (const auto& prog : programs) {
    for (const auto& action : prog) {
      if (action.kind != IoAction::Kind::kIo &&
          action.kind != IoAction::Kind::kListIo &&
          action.kind != IoAction::Kind::kCollectiveIo) {
        continue;
      }
      for (const auto& e : action.extents) {
        (action.op == IoOp::kRead ? v.read : v.write) += e.size;
      }
    }
  }
  return v;
}

}  // namespace harl::mw
