#include "src/middleware/mpi_world.hpp"

#include <stdexcept>

namespace harl::mw {

MpiWorld::MpiWorld(pfs::Cluster& cluster, std::size_t nranks)
    : cluster_(cluster), nranks_(nranks) {
  if (nranks == 0) throw std::invalid_argument("MPI world needs >= 1 rank");
}

std::size_t MpiWorld::node_of(std::size_t rank) const {
  return rank % cluster_.num_clients();
}

pfs::Client& MpiWorld::client_of(std::size_t rank) {
  return cluster_.client(node_of(rank));
}

}  // namespace harl::mw
