#include "src/middleware/runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/common/interval.hpp"
#include "src/pfs/replication.hpp"
#include "src/sim/resource.hpp"

namespace harl::mw {

namespace detail {

/// Mutable execution state shared by all in-flight callbacks of one launch.
/// The runner's layout (shared_ptr member) and world outlive the simulator
/// drain; the programs are copied so a launch() caller's vector may die.
struct RunState {
  MpiWorld& world;
  std::vector<RankProgram> programs;
  const pfs::Layout& layout;
  trace::TraceCollector* collector;
  std::size_t num_aggregators;
  Bytes cb_buffer_size;
  bool per_request_metadata;
  NoncontigStrategy noncontig;
  double sieve_min_density;
  std::uint32_t file;
  const pfs::ReplicaMap* replicas;
  std::string file_name;

  std::vector<std::size_t> pc;        // per-rank program counter
  std::vector<std::size_t> sync_seq;  // per-rank sync points passed
  std::vector<char> rank_done;        // per-rank completion latch
  std::size_t ranks_done = 0;
  Seconds completed_at = 0.0;  // instant the last rank finished

  struct SyncPoint {
    std::size_t arrived = 0;
    std::vector<const IoAction*> actions;  // indexed by rank
  };
  std::map<std::size_t, SyncPoint> syncs;

  Bytes bytes_read = 0;
  Bytes bytes_written = 0;

  RunState(MpiWorld& w, std::vector<RankProgram> p, const pfs::Layout& l,
           trace::TraceCollector* c, const RunnerOptions& opts,
           std::string name)
      : world(w),
        programs(std::move(p)),
        layout(l),
        collector(c),
        num_aggregators(opts.collective.aggregators),
        cb_buffer_size(opts.collective.buffer_size),
        per_request_metadata(opts.per_request_metadata),
        noncontig(opts.noncontig),
        sieve_min_density(opts.sieve_min_density),
        file(opts.file),
        replicas(opts.replicas),
        file_name(std::move(name)),
        pc(programs.size(), 0),
        sync_seq(programs.size(), 0),
        rank_done(programs.size(), 0) {}

  sim::Simulator& sim() { return world.cluster().simulator(); }

  void account(IoOp op, Bytes size) {
    (op == IoOp::kRead ? bytes_read : bytes_written) += size;
  }

  void trace_request(std::uint32_t rank, IoOp op, Bytes offset, Bytes size,
                     Seconds t_start) {
    if (collector != nullptr) {
      // The FileId doubles as the trace fd, so multi-file traces keep their
      // per-file request streams separable (fd 0 = legacy single file).
      const std::uint32_t fd = file == obs::kNoId ? 0 : file;
      collector->record(rank, fd, op, offset, size, t_start, sim().now());
    }
  }
};

}  // namespace detail

namespace {

using detail::RunState;

void step(const std::shared_ptr<RunState>& st, std::size_t rank);

void advance(const std::shared_ptr<RunState>& st, std::size_t rank) {
  ++st->pc[rank];
  step(st, rank);
}

/// Naive non-contiguous path: one PFS request per extent, strictly in
/// sequence (the unoptimized POSIX loop).
void issue_list_naive(const std::shared_ptr<RunState>& st, std::size_t rank,
                      IoOp op, std::shared_ptr<std::vector<Extent>> extents,
                      std::size_t index) {
  if (index == extents->size()) {
    advance(st, rank);
    return;
  }
  const Extent e = (*extents)[index];
  const Seconds t0 = st->sim().now();
  st->world.client_of(rank).io(
      st->layout, op, e.offset, e.size,
      [st, rank, op, e, t0, extents, index] {
        st->trace_request(static_cast<std::uint32_t>(rank), op, e.offset,
                          e.size, t0);
        issue_list_naive(st, rank, op, extents, index + 1);
      },
      st->file, st->replicas);
}

/// List I/O path: the extent list travels as one request and its pieces are
/// serviced concurrently; the operation completes when the last piece does.
void issue_list_io(const std::shared_ptr<RunState>& st, std::size_t rank,
                   IoOp op, const std::vector<Extent>& extents) {
  auto join = std::make_shared<sim::JoinCounter>(
      extents.size(), [st, rank] { advance(st, rank); });
  for (const Extent& e : extents) {
    const Seconds t0 = st->sim().now();
    st->world.client_of(rank).io(
        st->layout, op, e.offset, e.size,
        [st, rank, op, e, t0, join] {
          st->trace_request(static_cast<std::uint32_t>(rank), op, e.offset,
                            e.size, t0);
          join->done();
        },
        st->file, st->replicas);
  }
}

/// Dispatches a kListIo action per the configured strategy.  Data sieving
/// trades extra transferred bytes (the holes, and a read-modify-write cycle
/// for writes) against issuing one large contiguous request.
void issue_noncontig(const std::shared_ptr<RunState>& st, std::size_t rank,
                     const IoAction& action) {
  const IoOp op = action.op;
  Bytes useful = 0;
  Bytes lo = ~static_cast<Bytes>(0);
  Bytes hi = 0;
  for (const Extent& e : action.extents) {
    useful += e.size;
    lo = std::min(lo, e.offset);
    hi = std::max(hi, e.offset + e.size);
  }
  st->account(op, useful);
  if (useful == 0) {
    st->sim().schedule_after(0.0, [st, rank] { advance(st, rank); });
    return;
  }

  const double density =
      static_cast<double>(useful) / static_cast<double>(hi - lo);
  const bool sieve = st->noncontig == NoncontigStrategy::kDataSieving &&
                     density >= st->sieve_min_density &&
                     action.extents.size() > 1;
  if (sieve) {
    const Bytes cover = hi - lo;
    const Seconds t0 = st->sim().now();
    if (op == IoOp::kRead) {
      st->world.client_of(rank).io(
          st->layout, IoOp::kRead, lo, cover,
          [st, rank, lo, cover, t0] {
            st->trace_request(static_cast<std::uint32_t>(rank), IoOp::kRead,
                              lo, cover, t0);
            advance(st, rank);
          },
          st->file, st->replicas);
    } else {
      // Read-modify-write: fetch the covering extent, then write it back.
      st->world.client_of(rank).io(
          st->layout, IoOp::kRead, lo, cover,
          [st, rank, lo, cover, t0] {
            st->trace_request(static_cast<std::uint32_t>(rank), IoOp::kRead,
                              lo, cover, t0);
            const Seconds t1 = st->sim().now();
            st->world.client_of(rank).io(
                st->layout, IoOp::kWrite, lo, cover,
                [st, rank, lo, cover, t1] {
                  st->trace_request(static_cast<std::uint32_t>(rank),
                                    IoOp::kWrite, lo, cover, t1);
                  advance(st, rank);
                },
                st->file, st->replicas);
          },
          st->file, st->replicas);
    }
    return;
  }

  if (st->noncontig == NoncontigStrategy::kNaive) {
    auto extents = std::make_shared<std::vector<Extent>>(action.extents);
    issue_list_naive(st, rank, op, std::move(extents), 0);
  } else {
    issue_list_io(st, rank, op, action.extents);
  }
}

/// Issues one aggregator's contiguous range as sequential rounds of at most
/// cb_buffer_size bytes (ROMIO collective buffering), tracing each round.
void issue_aggregator_rounds(const std::shared_ptr<RunState>& st,
                             std::size_t agg_rank, IoOp op, Bytes offset,
                             Bytes remaining,
                             const std::shared_ptr<sim::JoinCounter>& join) {
  const Bytes take = st->cb_buffer_size == 0
                         ? remaining
                         : std::min(remaining, st->cb_buffer_size);
  const Seconds t0 = st->sim().now();
  st->world.client_of(agg_rank)
      .io(st->layout, op, offset, take,
          [st, agg_rank, op, offset, take, remaining, join, t0] {
            st->trace_request(static_cast<std::uint32_t>(agg_rank), op, offset,
                              take, t0);
            if (remaining > take) {
              issue_aggregator_rounds(st, agg_rank, op, offset + take,
                                      remaining - take, join);
            } else {
              join->done();
            }
          },
          st->file, st->replicas);
}

/// Two-phase collective I/O over the actions gathered at one sync point.
void run_collective(const std::shared_ptr<RunState>& st,
                    const std::vector<const IoAction*>& actions) {
  const std::size_t nranks = st->programs.size();
  const IoOp op = actions.front()->op;
  for (const auto* a : actions) {
    if (a->op != op) {
      throw std::logic_error("collective ops disagree on read/write");
    }
  }

  // Aggregate file range across all ranks.
  Bytes lo = ~static_cast<Bytes>(0);
  Bytes hi = 0;
  Bytes app_bytes = 0;
  for (const auto* a : actions) {
    for (const auto& e : a->extents) {
      if (e.size == 0) continue;
      lo = std::min(lo, e.offset);
      hi = std::max(hi, e.offset + e.size);
      app_bytes += e.size;
    }
  }
  auto release_all = [st] {
    for (std::size_t r = 0; r < st->programs.size(); ++r) advance(st, r);
  };
  if (app_bytes == 0) {
    st->sim().schedule_after(0.0, release_all);
    return;
  }
  st->account(op, app_bytes);

  // One aggregator per compute node (ranks 0..A-1 land on distinct nodes
  // under round-robin placement), unless configured otherwise.
  const std::size_t A =
      std::min(st->num_aggregators != 0 ? st->num_aggregators
                                        : st->world.cluster().num_clients(),
               nranks);
  const Bytes span = hi - lo;
  const Bytes base = span / A;
  const Bytes rem = span % A;
  struct AggRange {
    std::size_t rank;
    Bytes offset;
    Bytes size;
  };
  std::vector<AggRange> ranges;
  Bytes cursor = lo;
  for (std::size_t a = 0; a < A; ++a) {
    const Bytes size = base + (a < rem ? 1 : 0);
    if (size > 0) ranges.push_back(AggRange{a, cursor, size});
    cursor += size;
  }

  // Shuffle volumes: bytes rank r contributes to / receives from each
  // aggregator range.
  std::vector<std::vector<Bytes>> volume(nranks,
                                         std::vector<Bytes>(ranges.size(), 0));
  for (std::size_t r = 0; r < nranks; ++r) {
    for (const auto& e : actions[r]->extents) {
      const ByteInterval ext = interval_of(e.offset, e.size);
      for (std::size_t a = 0; a < ranges.size(); ++a) {
        volume[r][a] +=
            intersect(ext, interval_of(ranges[a].offset, ranges[a].size))
                .length();
      }
    }
  }

  auto& network = st->world.cluster().network();

  auto do_phase2 = [st, ranges, op, release_all] {
    auto join = std::make_shared<sim::JoinCounter>(ranges.size(), release_all);
    for (const auto& range : ranges) {
      issue_aggregator_rounds(st, range.rank, op, range.offset, range.size,
                              join);
    }
  };

  auto do_shuffle = [st, volume, ranges, &network](std::function<void()> next) {
    std::size_t transfers = 0;
    for (std::size_t r = 0; r < volume.size(); ++r) {
      for (std::size_t a = 0; a < ranges.size(); ++a) {
        if (volume[r][a] > 0 &&
            st->world.node_of(r) != st->world.node_of(ranges[a].rank)) {
          ++transfers;
        }
      }
    }
    if (transfers == 0) {
      st->sim().schedule_after(0.0, std::move(next));
      return;
    }
    auto join = std::make_shared<sim::JoinCounter>(transfers, std::move(next));
    for (std::size_t r = 0; r < volume.size(); ++r) {
      for (std::size_t a = 0; a < ranges.size(); ++a) {
        if (volume[r][a] == 0) continue;
        const std::size_t src = st->world.node_of(r);
        const std::size_t dst = st->world.node_of(ranges[a].rank);
        if (src == dst) continue;
        network.client_transfer(src, dst, volume[r][a],
                                [join] { join->done(); });
      }
    }
  };

  if (op == IoOp::kWrite) {
    // Exchange data to aggregators, then aggregated writes.
    do_shuffle(do_phase2);
  } else {
    // Aggregated reads, then scatter to ranks.  Reuse the shuffle volumes
    // (direction reverses but the byte counts are identical).
    auto join = std::make_shared<sim::JoinCounter>(
        ranges.size(), [do_shuffle, release_all] { do_shuffle(release_all); });
    for (const auto& range : ranges) {
      issue_aggregator_rounds(st, range.rank, op, range.offset, range.size,
                              join);
    }
  }
}

void resolve_sync(const std::shared_ptr<RunState>& st, std::size_t seq) {
  auto node = st->syncs.extract(seq);
  const auto& actions = node.mapped().actions;

  const bool any_collective =
      std::any_of(actions.begin(), actions.end(), [](const IoAction* a) {
        return a->kind == IoAction::Kind::kCollectiveIo;
      });
  if (!any_collective) {
    // Pure barrier: release everyone on the next event-loop turn.
    st->sim().schedule_after(0.0, [st] {
      for (std::size_t r = 0; r < st->programs.size(); ++r) advance(st, r);
    });
    return;
  }
  for (const auto* a : actions) {
    if (a->kind != IoAction::Kind::kCollectiveIo) {
      throw std::logic_error("sync point mixes barrier and collective I/O");
    }
  }
  run_collective(st, actions);
}

void step(const std::shared_ptr<RunState>& st, std::size_t rank) {
  const RankProgram& prog = st->programs[rank];
  if (st->pc[rank] >= prog.size()) {  // rank finished
    if (!st->rank_done[rank]) {
      st->rank_done[rank] = 1;
      if (++st->ranks_done == st->programs.size()) {
        st->completed_at = st->sim().now();
      }
    }
    return;
  }
  const IoAction& action = prog[st->pc[rank]];

  switch (action.kind) {
    case IoAction::Kind::kCompute:
      st->sim().schedule_after(action.compute, [st, rank] { advance(st, rank); });
      return;

    case IoAction::Kind::kIo: {
      const Extent e = action.extents.at(0);
      const IoOp op = action.op;
      st->account(op, e.size);
      const Seconds t0 = st->sim().now();
      auto issue = [st, rank, op, e, t0] {
        st->world.client_of(rank).io(
            st->layout, op, e.offset, e.size,
            [st, rank, op, e, t0] {
              st->trace_request(static_cast<std::uint32_t>(rank), op, e.offset,
                                e.size, t0);
              advance(st, rank);
            },
            st->file, st->replicas);
      };
      if (st->per_request_metadata) {
        // Placement resolution: the MDS consults the RST for this request.
        st->world.cluster().mds().placement_lookup(
            st->file_name,
            [issue = std::move(issue)](std::shared_ptr<const pfs::Layout>) {
              issue();
            });
      } else {
        issue();
      }
      return;
    }

    case IoAction::Kind::kListIo: {
      if (st->per_request_metadata) {
        st->world.cluster().mds().placement_lookup(
            st->file_name,
            [st, rank, &action](std::shared_ptr<const pfs::Layout>) {
              issue_noncontig(st, rank, action);
            });
      } else {
        issue_noncontig(st, rank, action);
      }
      return;
    }

    case IoAction::Kind::kBarrier:
    case IoAction::Kind::kCollectiveIo: {
      const std::size_t seq = st->sync_seq[rank]++;
      auto& sp = st->syncs[seq];
      if (sp.actions.empty()) sp.actions.resize(st->programs.size(), nullptr);
      sp.actions[rank] = &action;
      if (++sp.arrived == st->programs.size()) resolve_sync(st, seq);
      return;
    }
  }
}

}  // namespace

ProgramRunner::ProgramRunner(MpiWorld& world, std::string file_name,
                             std::shared_ptr<const pfs::Layout> layout,
                             trace::TraceCollector* collector,
                             RunnerOptions options)
    : world_(world),
      file_name_(std::move(file_name)),
      layout_(std::move(layout)),
      collector_(collector),
      options_(options) {
  if (!layout_) throw std::invalid_argument("runner needs a layout");
  world_.cluster().mds().register_file(file_name_, layout_);
}

ProgramRunner::Launch ProgramRunner::launch(
    const std::vector<RankProgram>& programs) {
  if (programs.size() != world_.size()) {
    throw std::invalid_argument("one program per rank required");
  }
  auto& sim = world_.cluster().simulator();

  Launch launch;
  launch.start = sim.now();
  launch.state = std::make_shared<RunState>(world_, programs, *layout_,
                                            collector_, options_, file_name_);
  const auto& st = launch.state;

  // MPI_File_open: every compute node resolves the file at the MDS once,
  // then all ranks start.
  const std::size_t nodes = world_.cluster().num_clients();
  auto open_join = std::make_shared<sim::JoinCounter>(nodes, [st] {
    for (std::size_t r = 0; r < st->programs.size(); ++r) step(st, r);
  });
  for (std::size_t nodeidx = 0; nodeidx < nodes; ++nodeidx) {
    world_.cluster().mds().lookup(
        file_name_, [open_join](std::shared_ptr<const pfs::Layout>) {
          open_join->done();
        });
  }
  return launch;
}

RunResult ProgramRunner::finish(const Launch& launch) const {
  const auto& st = launch.state;
  if (!st) throw std::logic_error("finish() of an empty launch");

  // The advance past the final action leaves pc == size for every rank.
  for (std::size_t r = 0; r < st->programs.size(); ++r) {
    if (st->pc[r] < st->programs[r].size()) {
      throw std::logic_error("rank deadlocked: mismatched sync points?");
    }
  }

  RunResult result;
  result.makespan = world_.cluster().simulator().now() - launch.start;
  result.completed_at = st->completed_at;
  result.bytes_read = st->bytes_read;
  result.bytes_written = st->bytes_written;
  return result;
}

RunResult ProgramRunner::run(const std::vector<RankProgram>& programs) {
  Launch launch = this->launch(programs);
  world_.cluster().simulator().run();
  return finish(launch);
}

}  // namespace harl::mw
