#include "src/middleware/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/cost_model.hpp"
#include "src/middleware/harl_driver.hpp"
#include "src/storage/profiles.hpp"
#include "src/middleware/r2f.hpp"
#include "src/pfs/layout.hpp"

namespace harl::mw {

namespace {

std::vector<pfs::DataServer*> server_ptrs(pfs::Cluster& cluster) {
  std::vector<pfs::DataServer*> servers;
  servers.reserve(cluster.num_servers());
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    servers.push_back(&cluster.server(i));
  }
  return servers;
}

/// The advisor's view of the fleet under a cache reservation: the reserved
/// SSD-tier prefix belongs to the CacheManager, so per-window re-optimization
/// plans over the remaining servers (mirroring analyze_cached's reduced
/// sweep).  Without a reservation this is the identity.
core::CostParams advisor_params(core::CostParams params,
                                const std::vector<std::size_t>& reserved) {
  const std::size_t r = reserved.size() > 1 ? reserved[1] : 0;
  if (r == 0) return params;
  if (r >= params.N) {
    throw std::invalid_argument("cache reservation consumes every SServer");
  }
  params.N -= r;
  if (!params.sserver_factors.empty()) {
    params.sserver_factors.erase(
        params.sserver_factors.begin(),
        params.sserver_factors.begin() + static_cast<std::ptrdiff_t>(r));
    storage::canonicalize_device_factors(params.sserver_factors);
  }
  return params;
}

/// Effectively-infinite device factor for a failed server: any candidate
/// that touches the slot is priced out, so the member-prefix search excludes
/// it from every region of every new epoch.
constexpr double kFailedDeviceFactor = 1e6;

/// The advisor's view of the fleet after a server failure: the failed tier's
/// trailing slot (device factors are canonical ascending, so only the tail
/// can be prefix-excluded) carries kFailedDeviceFactor.
core::CostParams degraded_params(core::CostParams params, std::size_t tier) {
  auto& factors =
      tier == 0 ? params.hserver_factors : params.sserver_factors;
  const std::size_t count = tier == 0 ? params.M : params.N;
  if (count < 2) {
    throw std::invalid_argument(
        "cannot degrade a tier with fewer than two servers");
  }
  if (factors.empty()) factors.assign(count, 1.0);
  factors.back() = kFailedDeviceFactor;
  storage::canonicalize_device_factors(factors);
  return params;
}

}  // namespace

// --- MigrationEngine --------------------------------------------------------

MigrationEngine::MigrationEngine(pfs::Cluster& cluster,
                                 std::shared_ptr<pfs::EpochedLayout> layout)
    : sim_(cluster.simulator()),
      // Client-NIC id 0: migration shares compute node 0's link, so its
      // transfers contend with that node's foreground traffic too.
      client_(cluster.simulator(), cluster.network(), server_ptrs(cluster), 0),
      layout_(std::move(layout)) {
  if (layout_ == nullptr) {
    throw std::invalid_argument("migration engine needs an epoched layout");
  }
}

void MigrationEngine::start(std::vector<std::pair<Bytes, Bytes>> ranges,
                            std::uint32_t epoch, double bandwidth, Bytes chunk,
                            std::function<void(Bytes)> on_done) {
  if (active_) throw std::logic_error("a migration is already active");
  if (!(bandwidth > 0.0) || chunk == 0) {
    throw std::invalid_argument("migration needs bandwidth > 0 and chunk > 0");
  }
  pending_.clear();
  // Consumed back-to-front: reverse so copies proceed in ascending offset.
  for (auto it = ranges.rbegin(); it != ranges.rend(); ++it) {
    if (it->second > it->first) pending_.push_back(*it);
  }
  target_epoch_ = epoch;
  bandwidth_ = bandwidth;
  chunk_ = chunk;
  batch_bytes_ = 0;
  if (pending_.empty()) {
    if (on_done) on_done(0);
    return;
  }
  target_view_ = layout_->epoch_view(epoch);
  on_done_ = std::move(on_done);
  active_ = true;
  next_chunk();
}

void MigrationEngine::next_chunk() {
  if (pending_.empty()) {
    active_ = false;
    target_view_.reset();
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    if (done) done(batch_bytes_);
    return;
  }
  auto& range = pending_.back();
  const Bytes begin = range.first;
  Bytes len = std::min<Bytes>(chunk_, range.second - begin);
  // Clamp to the current ownership run so each chunk reads one source epoch.
  const Bytes run_end = layout_->owner_end(begin);
  if (run_end > begin) len = std::min(len, run_end - begin);
  range.first += len;
  if (range.first >= range.second) pending_.pop_back();

  const Seconds issue = sim_.now();
  // Read the chunk under its governing (source) epoch, write it into the
  // target epoch's objects, then flip ownership — both legs through the real
  // simulated servers and network.
  client_.io(*layout_, IoOp::kRead, begin, len, [this, begin, len, issue] {
    client_.io(
        *target_view_, IoOp::kWrite, begin, len, [this, begin, len, issue] {
          layout_->assign(begin, begin + len, target_epoch_);
          batch_bytes_ += len;
          migrated_bytes_ += len;
          ++chunks_copied_;
          const Seconds now = sim_.now();
          const Seconds inflight = now - issue;
          interference_ += inflight;
          if (chunk_hook_) chunk_hook_(target_epoch_, len, inflight, now);
          // Throttle: the next chunk starts no earlier than what the
          // configured background bandwidth allows for this one.
          const Seconds earliest =
              issue + static_cast<double>(len) / bandwidth_;
          if (earliest > now) {
            sim_.schedule_after(earliest - now, [this] { next_chunk(); });
          } else {
            next_chunk();
          }
        });
  });
}

// --- AdaptiveLayoutManager --------------------------------------------------

AdaptiveLayoutManager::AdaptiveLayoutManager(core::CostParams params,
                                             core::RegionStripeTable epoch0,
                                             AdaptiveOptions options,
                                             obs::Sink* downstream)
    : params_(std::move(params)),
      options_(std::move(options)),
      downstream_(downstream),
      advisor_(advisor_params(params_, options_.reserved), std::move(epoch0),
               options_.advisor) {
  if (options_.max_epochs == 0) {
    throw std::invalid_argument("max_epochs must be >= 1");
  }
  using Kind = obs::MetricsRegistry::Kind;
  m_epochs_ = metrics_.family("adaptive.epoch_installs", Kind::kCounter);
  m_windows_ = metrics_.family("adaptive.windows", Kind::kCounter);
  m_recs_ = metrics_.family("adaptive.recommendations", Kind::kCounter);
  m_deferred_ =
      metrics_.family("adaptive.recommendations_deferred", Kind::kCounter);
  m_evals_ = metrics_.family("adaptive.cost_evals", Kind::kCounter);
  m_evals_saved_ =
      metrics_.family("adaptive.cost_evals_saved", Kind::kCounter);
  m_migrated_ = metrics_.family("migration.migrated_bytes", Kind::kCounter);
  m_chunks_ = metrics_.family("migration.chunks", Kind::kCounter);
  m_interference_ =
      metrics_.family("migration.interference_s", Kind::kCounter);
  m_degraded_ = metrics_.family("adaptive.degraded_replans", Kind::kCounter);
}

std::shared_ptr<const pfs::Layout> AdaptiveLayoutManager::install(
    pfs::Cluster& cluster, const std::string& logical_name) {
  if (epoched_ != nullptr) throw std::logic_error("already installed");
  cluster_ = &cluster;
  logical_name_ = logical_name;
  const core::RegionStripeTable& rst = advisor_.current();
  tier_counts_ = HarlDriver::tier_counts_for(rst, cluster);
  epoched_ = std::make_shared<pfs::EpochedLayout>(
      rst.to_layout(tier_counts_, options_.reserved));
  cluster.mds().register_file(logical_name, epoched_);
  const auto r2f = RegionFileMap::for_epoch(logical_name, 0, rst.size());
  for (std::size_t i = 0; i < rst.size(); ++i) {
    cluster.mds().register_file(
        r2f.physical(i),
        pfs::make_tiered_layout(tier_counts_, rst.entry(i).stripes, {},
                                options_.reserved));
  }
  migration_ = std::make_unique<MigrationEngine>(cluster, epoched_);
  migration_->set_chunk_hook([this](std::uint32_t epoch, Bytes bytes,
                                    Seconds inflight, Seconds /*now*/) {
    const auto labels = obs::LabelSet{}.region(epoch);
    metrics_.add(m_migrated_, labels, static_cast<double>(bytes));
    metrics_.add(m_chunks_, labels, 1.0);
    metrics_.add(m_interference_, labels, inflight);
  });
  return epoched_;
}

// --- Sink forwarding ---------------------------------------------------------

std::uint32_t AdaptiveLayoutManager::track(std::string_view name,
                                           obs::TrackKind kind,
                                           std::uint32_t entity) {
  return downstream_ != nullptr ? downstream_->track(name, kind, entity)
                                : obs::kNoId;
}

std::uint32_t AdaptiveLayoutManager::register_server(std::uint32_t server,
                                                     std::uint32_t tier,
                                                     std::string_view name,
                                                     bool is_ssd) {
  return downstream_ != nullptr
             ? downstream_->register_server(server, tier, name, is_ssd)
             : obs::kNoId;
}

std::uint32_t AdaptiveLayoutManager::register_client(std::uint32_t client) {
  return downstream_ != nullptr ? downstream_->register_client(client)
                                : obs::kNoId;
}

void AdaptiveLayoutManager::resource_event(std::uint32_t track, Seconds arrival,
                                           Seconds start, Seconds finish) {
  if (downstream_ != nullptr) {
    downstream_->resource_event(track, arrival, start, finish);
  }
}

void AdaptiveLayoutManager::server_access(std::uint32_t server, IoOp op,
                                          std::uint32_t region, Bytes bytes,
                                          Bytes pieces, Seconds now) {
  if (downstream_ != nullptr) {
    downstream_->server_access(server, op, region, bytes, pieces, now);
  }
}

std::uint32_t AdaptiveLayoutManager::begin_request(std::uint32_t client,
                                                   IoOp op, Bytes offset,
                                                   Bytes size, Seconds now,
                                                   std::uint32_t file) {
  std::uint32_t id;
  if (!req_free_.empty()) {
    id = req_free_.back();
    req_free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(reqs_.size());
    reqs_.emplace_back();
  }
  PendingReq& r = reqs_[id];
  r.down = downstream_ != nullptr
               ? downstream_->begin_request(client, op, offset, size, now, file)
               : obs::kNoId;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.issue = now;
  r.client = client;
  r.file = file;
  return id;
}

std::uint32_t AdaptiveLayoutManager::begin_sub(std::uint32_t request,
                                               std::uint32_t server,
                                               std::uint32_t region,
                                               Bytes bytes, Seconds now) {
  if (downstream_ == nullptr || request >= reqs_.size()) return obs::kNoId;
  const std::uint32_t down = reqs_[request].down;
  if (down == obs::kNoId) return obs::kNoId;
  return downstream_->begin_sub(down, server, region, bytes, now);
}

void AdaptiveLayoutManager::sub_storage(std::uint32_t sub, Seconds arrival,
                                        Seconds start, Seconds startup,
                                        Seconds service) {
  if (downstream_ != nullptr && sub != obs::kNoId) {
    downstream_->sub_storage(sub, arrival, start, startup, service);
  }
}

void AdaptiveLayoutManager::sub_net_done(std::uint32_t sub, Seconds now) {
  if (downstream_ != nullptr && sub != obs::kNoId) {
    downstream_->sub_net_done(sub, now);
  }
}

void AdaptiveLayoutManager::end_request(std::uint32_t request, Seconds now) {
  if (request >= reqs_.size()) return;
  const PendingReq r = reqs_[request];
  req_free_.push_back(request);
  if (downstream_ != nullptr && r.down != obs::kNoId) {
    downstream_->end_request(r.down, now);
  }
  if (file_filter_ == obs::kNoId || r.file == file_filter_) {
    feed(r.client, r.op, r.offset, r.size, r.issue, now);
  }
}

void AdaptiveLayoutManager::adaptive_event(AdaptiveEvent event,
                                           std::uint32_t epoch, Bytes bytes,
                                           Seconds now) {
  if (downstream_ != nullptr) {
    downstream_->adaptive_event(event, epoch, bytes, now);
  }
}

void AdaptiveLayoutManager::cache_event(Bytes hit_bytes, Bytes miss_bytes,
                                        Seconds now) {
  // Must forward explicitly: the inherited no-op would swallow the event
  // before it reaches the sequencer/health monitor downstream.
  if (downstream_ != nullptr) {
    downstream_->cache_event(hit_bytes, miss_bytes, now);
  }
}

void AdaptiveLayoutManager::health_event(HealthEvent event,
                                         std::uint32_t server, double score,
                                         Seconds now) {
  if (downstream_ != nullptr) {
    downstream_->health_event(event, server, score, now);
  }
}

// --- the adaptation loop -----------------------------------------------------

void AdaptiveLayoutManager::feed(std::uint32_t client, IoOp op, Bytes offset,
                                 Bytes size, Seconds issue, Seconds now) {
  if (options_.fail && !degraded_applied_ && now >= options_.fail->at) {
    // The failure instant passed: rebuild the advisor against the degraded
    // fleet (current RST carried over), so every subsequent window's
    // re-optimization excludes the failed trailing slot of its tier.
    degraded_applied_ = true;
    windows_offset_ += advisor_.windows_analyzed();
    evals_offset_ += advisor_.cost_evals();
    evals_saved_offset_ += advisor_.cost_evals_saved();
    last_cost_evals_ = 0;
    last_cost_evals_saved_ = 0;
    advisor_ = core::OnlineAdvisor(
        degraded_params(advisor_params(params_, options_.reserved),
                        options_.fail->tier),
        advisor_.current(), options_.advisor);
    metrics_.add(m_degraded_, obs::LabelSet{}, 1.0);
  }
  trace::TraceRecord record;
  record.pid = client;
  record.rank = client;
  record.fd = 0;
  record.op = op;
  record.offset = offset;
  record.size = size;
  record.t_start = issue;
  record.t_end = now;
  const std::size_t windows_before = advisor_.windows_analyzed();
  auto rec = advisor_.observe(record);
  if (advisor_.windows_analyzed() != windows_before) {
    const auto no_labels = obs::LabelSet{};
    metrics_.add(m_windows_, no_labels, 1.0);
    metrics_.add(m_evals_, no_labels,
                 static_cast<double>(advisor_.cost_evals() - last_cost_evals_));
    metrics_.add(m_evals_saved_, no_labels,
                 static_cast<double>(advisor_.cost_evals_saved() -
                                     last_cost_evals_saved_));
    last_cost_evals_ = advisor_.cost_evals();
    last_cost_evals_saved_ = advisor_.cost_evals_saved();
  }
  if (rec) handle(*rec, now);
}

void AdaptiveLayoutManager::handle(
    const core::OnlineAdvisor::Recommendation& rec, Seconds now) {
  ++recommendations_;
  metrics_.add(m_recs_, obs::LabelSet{}, 1.0);
  if (epoched_ == nullptr) return;  // not installed: advisory only
  if (migration_->active() || epoched_->epoch_count() >= options_.max_epochs) {
    // One migration at a time; re-plans while it drains (or past the epoch
    // budget) are dropped rather than queued — the next window will
    // re-derive a fresher recommendation anyway.
    ++deferred_;
    metrics_.add(m_deferred_, obs::LabelSet{}, 1.0);
    return;
  }
  advisor_.adopt(rec);
  const std::uint32_t epoch = epoched_->add_epoch(
      rec.rst.to_layout(tier_counts_, options_.reserved));
  const auto r2f = RegionFileMap::for_epoch(logical_name_, epoch, rec.rst.size());
  for (std::size_t i = 0; i < rec.rst.size(); ++i) {
    cluster_->mds().register_file(
        r2f.physical(i),
        pfs::make_tiered_layout(tier_counts_, rec.rst.entry(i).stripes, {},
                                options_.reserved));
  }
  ++epochs_installed_;
  metrics_.add(m_epochs_, obs::LabelSet{}.region(epoch), 1.0);
  adaptive_event(AdaptiveEvent::kEpochInstalled, epoch, rec.affected_extent,
                 now);
  Bytes scheduled = 0;
  for (const auto& [b, e] : rec.changed_ranges) scheduled += e - b;
  adaptive_event(AdaptiveEvent::kMigrationStarted, epoch, scheduled, now);
  migration_->start(rec.changed_ranges, epoch, options_.migrate_bandwidth,
                    options_.migrate_chunk, [this, epoch](Bytes moved) {
                      adaptive_event(AdaptiveEvent::kMigrationFinished, epoch,
                                     moved, cluster_->simulator().now());
                    });
  if (epoch_hook_) epoch_hook_(epoch);
}

// --- results -----------------------------------------------------------------

AdaptiveLayoutManager::Summary AdaptiveLayoutManager::summary() const {
  Summary s;
  s.epochs_installed = epochs_installed_;
  s.windows_analyzed = windows_offset_ + advisor_.windows_analyzed();
  s.recommendations = recommendations_;
  s.recommendations_deferred = deferred_;
  if (migration_ != nullptr) {
    s.migrated_bytes = migration_->migrated_bytes();
    s.migration_chunks = migration_->chunks_copied();
    s.migration_interference = migration_->interference();
  }
  s.cost_evals = evals_offset_ + advisor_.cost_evals();
  s.cost_evals_saved = evals_saved_offset_ + advisor_.cost_evals_saved();
  return s;
}

core::Plan AdaptiveLayoutManager::latest_plan() const {
  core::Plan plan;
  plan.rst = advisor_.current();
  plan.tier_counts = tier_counts_;
  plan.calibration_fingerprint = core::params_fingerprint(params_);
  plan.regions_before_merge = plan.rst.size();
  plan.regions_after_merge = plan.rst.size();
  plan.cache = options_.cache_spec;
  return plan;
}

}  // namespace harl::mw
