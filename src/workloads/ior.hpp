// IOR-like synthetic workload generator.
//
// Mirrors how the paper runs IOR (Section IV-B): P processes share one file;
// each process owns the 1/P contiguous segment of the file and continuously
// issues fixed-size requests at random (or sequential) offsets within its
// segment.  Read and write phases are generated separately, exactly as IOR
// performs its write pass and read pass.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/middleware/program.hpp"

namespace harl::workloads {

/// How ranks carve up the shared file (IOR's two canonical modes).
enum class IorAccessPattern {
  /// Each rank owns one contiguous 1/P segment (the paper's setup).
  kSegmented,
  /// Blocks are interleaved round-robin by rank (IOR "strided"): rank r
  /// touches blocks r, r+P, r+2P, ...
  kInterleaved,
};

struct IorConfig {
  std::size_t processes = 16;
  Bytes request_size = 512 * KiB;
  Bytes file_size = 16 * GiB;
  /// Requests each process issues; 0 = cover its whole segment once.
  std::size_t requests_per_process = 0;
  /// Random request offsets within the rank's share (paper's mode);
  /// sequential otherwise.  Offsets are request-size aligned either way.
  bool random_offsets = true;
  IorAccessPattern pattern = IorAccessPattern::kSegmented;
  IoOp op = IoOp::kWrite;
  /// Issue via two-phase collective I/O instead of independent requests.
  bool collective = false;
  std::uint64_t seed = 7;
};

/// One program per rank implementing the configured IOR pass.
std::vector<mw::RankProgram> make_ior_programs(const IorConfig& config);

/// Total application bytes the pass moves.
Bytes ior_total_bytes(const IorConfig& config);

}  // namespace harl::workloads
