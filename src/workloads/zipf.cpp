#include "src/workloads/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace harl::workloads {

namespace {

void validate(const ZipfConfig& config) {
  if (config.processes == 0) throw std::invalid_argument("needs processes");
  if (config.request_size == 0) {
    throw std::invalid_argument("needs a request size");
  }
  if (config.file_size / config.request_size < 2) {
    throw std::invalid_argument("file must span at least two blocks");
  }
  if (config.file_size % config.request_size != 0) {
    throw std::invalid_argument("file size must be a multiple of the request");
  }
  if (config.file_size / config.request_size < config.processes) {
    throw std::invalid_argument("needs at least one block per process");
  }
  if (!(config.theta >= 0.0) || config.theta > 8.0) {
    throw std::invalid_argument("theta must be in [0, 8]");
  }
  if (config.read_phases == 0) {
    throw std::invalid_argument("needs >= 1 read phase");
  }
}

/// Exact inverse-CDF sampler: cumulative 1/(k+1)^theta table + binary search.
/// Block counts at our scales are a few thousand, so the O(n) table beats the
/// approximate rejection samplers on both clarity and determinism.
class ZipfSampler {
 public:
  ZipfSampler(Bytes blocks, double theta) : cdf_(blocks) {
    double sum = 0.0;
    for (Bytes k = 0; k < blocks; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  Bytes draw(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<Bytes>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Bytes zipf_block_count(const ZipfConfig& config) {
  return config.file_size / config.request_size;
}

std::vector<mw::RankProgram> make_zipf_write_programs(
    const ZipfConfig& config) {
  validate(config);
  const Bytes blocks = zipf_block_count(config);
  const Bytes per_rank = blocks / config.processes;
  std::vector<mw::RankProgram> programs(config.processes);
  for (std::size_t rank = 0; rank < config.processes; ++rank) {
    const Bytes first = static_cast<Bytes>(rank) * per_rank;
    // The last rank also covers the remainder blocks.
    const Bytes last =
        rank + 1 == config.processes ? blocks : first + per_rank;
    for (Bytes b = first; b < last; ++b) {
      programs[rank].push_back(mw::IoAction::io(
          IoOp::kWrite, b * config.request_size, config.request_size));
    }
    programs[rank].push_back(mw::IoAction::barrier());
  }
  return programs;
}

std::vector<mw::RankProgram> make_zipf_read_programs(const ZipfConfig& config) {
  validate(config);
  const Bytes blocks = zipf_block_count(config);
  const ZipfSampler sampler(blocks, config.theta);

  Rng seeder(config.seed);
  std::vector<Rng> rank_rngs;
  rank_rngs.reserve(config.processes);
  for (std::size_t r = 0; r < config.processes; ++r) {
    rank_rngs.push_back(seeder.fork());
  }

  std::vector<mw::RankProgram> programs(config.processes);
  for (std::size_t phase = 0; phase < config.read_phases; ++phase) {
    for (std::size_t rank = 0; rank < config.processes; ++rank) {
      for (std::size_t i = 0; i < config.reads_per_process; ++i) {
        const Bytes block = sampler.draw(rank_rngs[rank]);
        programs[rank].push_back(mw::IoAction::io(
            IoOp::kRead, block * config.request_size, config.request_size));
      }
      programs[rank].push_back(mw::IoAction::barrier());
    }
  }
  return programs;
}

Bytes zipf_total_bytes(const ZipfConfig& config) {
  validate(config);
  const Bytes reads = static_cast<Bytes>(config.read_phases) *
                      config.processes * config.reads_per_process *
                      config.request_size;
  return config.file_size + reads;
}

}  // namespace harl::workloads
