// Randomized workload/trace generation for property-based tests.
//
// Produces seeded, reproducible traces with controllable request-size
// distributions so parameterized tests can sweep the input space of the
// region divider, the cost model and the optimizer.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/units.hpp"
#include "src/middleware/program.hpp"
#include "src/trace/record.hpp"

namespace harl::workloads {

struct RandomWorkloadConfig {
  std::size_t requests = 1000;
  Bytes file_size = 1 * GiB;
  Bytes min_request = 4 * KiB;
  Bytes max_request = 2 * MiB;
  double write_fraction = 0.5;  ///< probability a request is a write
  Bytes align = 4 * KiB;        ///< offsets/sizes rounded to this (0 = byte)
  std::uint32_t ranks = 4;
  std::uint64_t seed = 1234;
};

/// A seeded random trace with offsets within [0, file_size).
std::vector<trace::TraceRecord> make_random_trace(
    const RandomWorkloadConfig& config);

/// The same requests as rank programs (round-robin over ranks, temporal
/// order), for end-to-end replay tests.
std::vector<mw::RankProgram> make_random_programs(
    const RandomWorkloadConfig& config);

}  // namespace harl::workloads
