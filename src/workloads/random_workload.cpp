#include "src/workloads/random_workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace harl::workloads {

namespace {

Bytes align_down(Bytes value, Bytes align) {
  return align > 1 ? value / align * align : value;
}

void validate(const RandomWorkloadConfig& c) {
  if (c.requests == 0) throw std::invalid_argument("needs requests");
  if (c.min_request == 0 || c.min_request > c.max_request) {
    throw std::invalid_argument("bad request size range");
  }
  if (c.max_request > c.file_size) {
    throw std::invalid_argument("max request exceeds file size");
  }
  if (c.write_fraction < 0.0 || c.write_fraction > 1.0) {
    throw std::invalid_argument("write_fraction must be in [0,1]");
  }
  if (c.ranks == 0) throw std::invalid_argument("needs ranks");
}

}  // namespace

std::vector<trace::TraceRecord> make_random_trace(
    const RandomWorkloadConfig& config) {
  validate(config);
  Rng rng(config.seed);
  std::vector<trace::TraceRecord> records;
  records.reserve(config.requests);
  for (std::size_t i = 0; i < config.requests; ++i) {
    trace::TraceRecord rec;
    Bytes size = rng.uniform_u64(config.min_request, config.max_request);
    size = std::max<Bytes>(align_down(size, config.align), config.min_request);
    Bytes offset = rng.uniform_u64(0, config.file_size - size);
    offset = align_down(offset, config.align);
    rec.op = rng.uniform01() < config.write_fraction ? IoOp::kWrite : IoOp::kRead;
    rec.offset = offset;
    rec.size = size;
    rec.rank = static_cast<std::uint32_t>(i % config.ranks);
    rec.pid = rec.rank;
    rec.fd = 0;
    rec.t_start = static_cast<double>(i) * 1e-3;
    rec.t_end = rec.t_start + 0.5e-3;
    records.push_back(rec);
  }
  return records;
}

std::vector<mw::RankProgram> make_random_programs(
    const RandomWorkloadConfig& config) {
  const auto trace = make_random_trace(config);
  std::vector<mw::RankProgram> programs(config.ranks);
  for (const auto& rec : trace) {
    programs[rec.rank].push_back(
        mw::IoAction::io(rec.op, rec.offset, rec.size));
  }
  return programs;
}

}  // namespace harl::workloads
