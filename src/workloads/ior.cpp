#include "src/workloads/ior.hpp"

#include <stdexcept>

#include "src/common/rng.hpp"

namespace harl::workloads {

namespace {

std::size_t default_request_count(const IorConfig& c) {
  const Bytes segment = c.file_size / c.processes;
  return static_cast<std::size_t>(segment / c.request_size);
}

}  // namespace

std::vector<mw::RankProgram> make_ior_programs(const IorConfig& config) {
  if (config.processes == 0) throw std::invalid_argument("IOR needs processes");
  if (config.request_size == 0) throw std::invalid_argument("zero request size");
  if (config.file_size / config.processes < config.request_size) {
    throw std::invalid_argument("segment smaller than one request");
  }

  const Bytes segment = config.file_size / config.processes;
  const Bytes slots = segment / config.request_size;
  const std::size_t per_process = config.requests_per_process != 0
                                      ? config.requests_per_process
                                      : default_request_count(config);

  Rng seeder(config.seed);
  std::vector<mw::RankProgram> programs(config.processes);
  for (std::size_t rank = 0; rank < config.processes; ++rank) {
    Rng rng = seeder.fork();
    const Bytes base = static_cast<Bytes>(rank) * segment;
    mw::RankProgram& prog = programs[rank];
    prog.reserve(per_process);
    for (std::size_t i = 0; i < per_process; ++i) {
      const Bytes slot =
          config.random_offsets
              ? rng.uniform_u64(0, slots - 1)
              : static_cast<Bytes>(i) % slots;
      // Segmented: slot within the rank's contiguous segment.  Interleaved:
      // the rank's slots stride through the whole file by the process count.
      const Bytes offset =
          config.pattern == IorAccessPattern::kSegmented
              ? base + slot * config.request_size
              : (slot * config.processes + rank) * config.request_size;
      if (config.collective) {
        prog.push_back(mw::IoAction::collective(
            config.op, {mw::Extent{offset, config.request_size}}));
      } else {
        prog.push_back(mw::IoAction::io(config.op, offset, config.request_size));
      }
    }
  }
  return programs;
}

Bytes ior_total_bytes(const IorConfig& config) {
  const std::size_t per_process = config.requests_per_process != 0
                                      ? config.requests_per_process
                                      : default_request_count(config);
  return static_cast<Bytes>(config.processes) * per_process *
         config.request_size;
}

}  // namespace harl::workloads
