#include "src/workloads/multiregion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace harl::workloads {

namespace {

void validate(const MultiRegionConfig& config) {
  if (config.processes == 0) throw std::invalid_argument("needs processes");
  if (config.regions.empty()) throw std::invalid_argument("needs regions");
  if (config.coverage <= 0.0 || config.coverage > 1.0) {
    throw std::invalid_argument("coverage must be in (0, 1]");
  }
  if (config.drift_phases == 0) {
    throw std::invalid_argument("needs >= 1 drift phase");
  }
  if (!(config.drift_factor > 0.0)) {
    throw std::invalid_argument("drift factor must be positive");
  }
}

/// Per-(phase, region) request shape shared by the generator and the byte
/// accounting.
struct PhaseShape {
  Bytes request_size = 0;
  Bytes slots = 0;
  std::size_t per_process = 0;
};

PhaseShape phase_shape(const MultiRegionConfig& config,
                       const MultiRegionConfig::Region& region,
                       std::size_t phase) {
  if (region.request_size == 0 || region.size == 0) {
    throw std::invalid_argument("region needs nonzero size and request size");
  }
  const Bytes segment = region.size / config.processes;
  if (segment < region.request_size) {
    throw std::invalid_argument("region segment smaller than one request");
  }
  PhaseShape shape;
  shape.request_size =
      multiregion_drifted_request(config, region, phase);
  shape.slots = segment / shape.request_size;
  shape.per_process = static_cast<std::size_t>(std::max<double>(
      1.0, config.coverage * static_cast<double>(shape.slots)));
  return shape;
}

}  // namespace

Bytes multiregion_drifted_request(const MultiRegionConfig& config,
                                  const MultiRegionConfig::Region& region,
                                  std::size_t phase) {
  const Bytes segment = region.size / config.processes;
  if (phase == 0 || config.drift_factor == 1.0) {
    return region.request_size;  // phase 0 is the classic workload, exactly
  }
  const double scaled =
      static_cast<double>(region.request_size) *
      std::pow(config.drift_factor, static_cast<double>(phase));
  constexpr Bytes kAlign = 4 * KiB;
  auto size = static_cast<Bytes>(std::min(
      scaled, static_cast<double>(std::numeric_limits<Bytes>::max() / 2)));
  size = (size / kAlign) * kAlign;
  size = std::max(size, kAlign);
  if (segment >= kAlign) size = std::min(size, (segment / kAlign) * kAlign);
  return size;
}

std::vector<mw::RankProgram> make_multiregion_programs(
    const MultiRegionConfig& config) {
  validate(config);

  Rng seeder(config.seed);
  std::vector<mw::RankProgram> programs(config.processes);
  std::vector<Rng> rank_rngs;
  rank_rngs.reserve(config.processes);
  for (std::size_t r = 0; r < config.processes; ++r) {
    rank_rngs.push_back(seeder.fork());
  }

  // Each drift phase replays the region sequence with scaled request sizes;
  // rank RNG streams continue across phases, so a single phase reproduces
  // the classic workload bit-for-bit.
  for (std::size_t phase = 0; phase < config.drift_phases; ++phase) {
    Bytes region_base = 0;
    for (const auto& region : config.regions) {
      const PhaseShape shape = phase_shape(config, region, phase);
      const Bytes segment = region.size / config.processes;

      for (std::size_t rank = 0; rank < config.processes; ++rank) {
        const Bytes base = region_base + static_cast<Bytes>(rank) * segment;
        for (std::size_t i = 0; i < shape.per_process; ++i) {
          const Bytes slot =
              config.random_offsets
                  ? rank_rngs[rank].uniform_u64(0, shape.slots - 1)
                  : static_cast<Bytes>(i) % shape.slots;
          programs[rank].push_back(mw::IoAction::io(
              config.op, base + slot * shape.request_size,
              shape.request_size));
        }
        // Distinct I/O phase per region: ranks sync before moving on.
        programs[rank].push_back(mw::IoAction::barrier());
      }
      region_base += region.size;
    }
  }
  return programs;
}

Bytes multiregion_file_size(const MultiRegionConfig& config) {
  Bytes total = 0;
  for (const auto& r : config.regions) total += r.size;
  return total;
}

Bytes multiregion_total_bytes(const MultiRegionConfig& config) {
  validate(config);
  Bytes total = 0;
  for (std::size_t phase = 0; phase < config.drift_phases; ++phase) {
    for (const auto& region : config.regions) {
      const PhaseShape shape = phase_shape(config, region, phase);
      total += static_cast<Bytes>(config.processes) * shape.per_process *
               shape.request_size;
    }
  }
  return total;
}

}  // namespace harl::workloads
