#include "src/workloads/multiregion.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace harl::workloads {

std::vector<mw::RankProgram> make_multiregion_programs(
    const MultiRegionConfig& config) {
  if (config.processes == 0) throw std::invalid_argument("needs processes");
  if (config.regions.empty()) throw std::invalid_argument("needs regions");
  if (config.coverage <= 0.0 || config.coverage > 1.0) {
    throw std::invalid_argument("coverage must be in (0, 1]");
  }

  Rng seeder(config.seed);
  std::vector<mw::RankProgram> programs(config.processes);
  std::vector<Rng> rank_rngs;
  rank_rngs.reserve(config.processes);
  for (std::size_t r = 0; r < config.processes; ++r) {
    rank_rngs.push_back(seeder.fork());
  }

  Bytes region_base = 0;
  for (const auto& region : config.regions) {
    if (region.request_size == 0 || region.size == 0) {
      throw std::invalid_argument("region needs nonzero size and request size");
    }
    const Bytes segment = region.size / config.processes;
    if (segment < region.request_size) {
      throw std::invalid_argument("region segment smaller than one request");
    }
    const Bytes slots = segment / region.request_size;
    const auto per_process = static_cast<std::size_t>(
        std::max<double>(1.0, config.coverage * static_cast<double>(slots)));

    for (std::size_t rank = 0; rank < config.processes; ++rank) {
      const Bytes base = region_base + static_cast<Bytes>(rank) * segment;
      for (std::size_t i = 0; i < per_process; ++i) {
        const Bytes slot = config.random_offsets
                               ? rank_rngs[rank].uniform_u64(0, slots - 1)
                               : static_cast<Bytes>(i) % slots;
        programs[rank].push_back(mw::IoAction::io(
            config.op, base + slot * region.request_size, region.request_size));
      }
      // Distinct I/O phase per region: ranks sync before moving on.
      programs[rank].push_back(mw::IoAction::barrier());
    }
    region_base += region.size;
  }
  return programs;
}

Bytes multiregion_file_size(const MultiRegionConfig& config) {
  Bytes total = 0;
  for (const auto& r : config.regions) total += r.size;
  return total;
}

Bytes multiregion_total_bytes(const MultiRegionConfig& config) {
  Bytes total = 0;
  for (const auto& region : config.regions) {
    const Bytes segment = region.size / config.processes;
    const Bytes slots = segment / region.request_size;
    const auto per_process = static_cast<std::size_t>(
        std::max<double>(1.0, config.coverage * static_cast<double>(slots)));
    total += static_cast<Bytes>(config.processes) * per_process *
             region.request_size;
  }
  return total;
}

}  // namespace harl::workloads
