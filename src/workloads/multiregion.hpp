// Non-uniform multi-region workload (paper Section IV-B.5).
//
// The paper modifies IOR to access a four-region data file (regions of
// 256 MB / 1 GB / 2 GB / 4 GB) with a different request size per region —
// the workload that motivates *region-level* layout.  Each region is
// accessed IOR-style: split into per-process segments, fixed-size requests
// at random offsets, one region after another (ranks synchronize between
// regions with a barrier, as distinct I/O phases).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/middleware/program.hpp"

namespace harl::workloads {

struct MultiRegionConfig {
  struct Region {
    Bytes size = 0;          ///< region length in the file
    Bytes request_size = 0;  ///< request size used within the region
  };

  /// Paper defaults: 256M/1G/2G/4G with request sizes spanning 128K..2M.
  std::vector<Region> regions = {
      {256 * MiB, 128 * KiB},
      {1 * GiB, 512 * KiB},
      {2 * GiB, 1 * MiB},
      {4 * GiB, 2 * MiB},
  };
  std::size_t processes = 16;
  IoOp op = IoOp::kWrite;
  /// Fraction of each region actually issued (1.0 = paper scale); lets CI
  /// runs keep the same shape at a smaller volume.
  double coverage = 1.0;
  bool random_offsets = true;
  std::uint64_t seed = 11;

  /// Workload drift (the adaptive-layout stressor): the whole region pass is
  /// repeated `drift_phases` times, with every region's request size scaled
  /// by drift_factor^phase (4K-aligned, clamped to [4K, per-rank segment]).
  /// The default single phase is byte-identical to the classic workload; a
  /// factor far from 1 makes any layout optimized for phase 0 stale by the
  /// last phase.
  std::size_t drift_phases = 1;
  double drift_factor = 1.0;
};

std::vector<mw::RankProgram> make_multiregion_programs(
    const MultiRegionConfig& config);

/// Total file extent covered by the configured regions.
Bytes multiregion_file_size(const MultiRegionConfig& config);

/// Total application bytes issued (all drift phases).
Bytes multiregion_total_bytes(const MultiRegionConfig& config);

/// Request size a region uses in drift phase `phase` (0-based): the base
/// size scaled by drift_factor^phase, rounded down to 4K alignment and
/// clamped to [4K, per-rank segment].
Bytes multiregion_drifted_request(const MultiRegionConfig& config,
                                  const MultiRegionConfig::Region& region,
                                  std::size_t phase);

}  // namespace harl::workloads
