#include "src/workloads/btio.hpp"

#include <cmath>
#include <stdexcept>

namespace harl::workloads {

namespace {

std::size_t integer_sqrt(std::size_t n) {
  auto root = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(n))));
  while (root * root > n) --root;
  while ((root + 1) * (root + 1) <= n) ++root;
  return root;
}

/// Block bounds of index `i` when `extent` points split over `parts` parts.
std::pair<Bytes, Bytes> block_bounds(std::size_t i, std::size_t parts,
                                     std::size_t extent) {
  const std::size_t base = extent / parts;
  const std::size_t rem = extent % parts;
  const std::size_t begin = i * base + std::min(i, rem);
  const std::size_t size = base + (i < rem ? 1 : 0);
  return {begin, begin + size};
}

/// This rank's extents within one solution dump, with contiguous runs merged.
std::vector<mw::Extent> dump_extents(const BtioConfig& c, std::size_t rank,
                                     Bytes dump_base) {
  const std::size_t p = integer_sqrt(c.processes);
  const std::size_t rx = rank % p;
  const std::size_t ry = rank / p;
  const auto [x0, x1] = block_bounds(rx, p, c.grid);
  const auto [y0, y1] = block_bounds(ry, p, c.grid);
  const Bytes G = c.grid;
  const Bytes cb = c.cell_bytes;

  std::vector<mw::Extent> extents;
  extents.reserve(static_cast<std::size_t>(G) * (y1 - y0));
  for (Bytes z = 0; z < G; ++z) {
    for (Bytes y = y0; y < y1; ++y) {
      const Bytes offset = dump_base + ((z * G + y) * G + x0) * cb;
      const Bytes size = (x1 - x0) * cb;
      if (!extents.empty() &&
          extents.back().offset + extents.back().size == offset) {
        extents.back().size += size;  // merge contiguous lines
      } else {
        extents.push_back(mw::Extent{offset, size});
      }
    }
  }
  return extents;
}

void validate(const BtioConfig& c) {
  const std::size_t p = integer_sqrt(c.processes);
  if (p * p != c.processes || c.processes == 0) {
    throw std::invalid_argument("BTIO requires a square number of processes");
  }
  if (c.grid < p) throw std::invalid_argument("grid smaller than process grid");
  if (c.time_steps <= 0 || c.write_interval <= 0) {
    throw std::invalid_argument("BTIO needs positive steps and interval");
  }
  if (c.cell_bytes == 0) throw std::invalid_argument("zero cell size");
}

}  // namespace

BtioConfig btio_paper_config(std::size_t processes) {
  BtioConfig c;
  c.processes = processes;
  c.grid = 81;  // 40 dumps x 81^3 x 40 B = 0.85 GB written; +read-back = 1.69 GB
  return c;
}

int btio_dump_count(const BtioConfig& config) {
  int dumps = config.time_steps / config.write_interval;
  if (config.max_dumps > 0) dumps = std::min(dumps, config.max_dumps);
  return dumps;
}

Bytes btio_file_size(const BtioConfig& config) {
  const Bytes G = config.grid;
  return static_cast<Bytes>(btio_dump_count(config)) * G * G * G *
         config.cell_bytes;
}

std::vector<mw::RankProgram> make_btio_programs(const BtioConfig& config) {
  validate(config);
  const int dumps = btio_dump_count(config);
  const Bytes G = config.grid;
  const Bytes dump_bytes = G * G * G * config.cell_bytes;

  std::vector<mw::RankProgram> programs(config.processes);
  for (std::size_t rank = 0; rank < config.processes; ++rank) {
    mw::RankProgram& prog = programs[rank];
    for (int d = 0; d < dumps; ++d) {
      if (config.compute_per_step > 0.0) {
        prog.push_back(mw::IoAction::compute_for(
            config.compute_per_step * config.write_interval));
      }
      prog.push_back(mw::IoAction::collective(
          IoOp::kWrite,
          dump_extents(config, rank, static_cast<Bytes>(d) * dump_bytes)));
    }
    if (config.read_back) {
      prog.push_back(mw::IoAction::barrier());
      for (int d = 0; d < dumps; ++d) {
        prog.push_back(mw::IoAction::collective(
            IoOp::kRead,
            dump_extents(config, rank, static_cast<Bytes>(d) * dump_bytes)));
      }
    }
  }
  return programs;
}

}  // namespace harl::workloads
