#include "src/workloads/replay.hpp"

#include <algorithm>
#include <stdexcept>

namespace harl::workloads {

std::vector<mw::RankProgram> make_replay_programs(
    std::span<const trace::TraceRecord> records, const ReplayOptions& options) {
  if (records.empty()) throw std::invalid_argument("cannot replay empty trace");

  std::uint32_t max_rank = 0;
  for (const auto& r : records) max_rank = std::max(max_rank, r.rank);
  const std::size_t ranks =
      options.ranks != 0 ? options.ranks : static_cast<std::size_t>(max_rank) + 1;
  if (ranks <= max_rank) {
    throw std::invalid_argument("trace contains ranks beyond the program set");
  }

  // Stable per-rank temporal order.
  std::vector<trace::TraceRecord> ordered(records.begin(), records.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const trace::TraceRecord& a, const trace::TraceRecord& b) {
                     return a.t_start < b.t_start;
                   });

  std::vector<mw::RankProgram> programs(ranks);
  std::vector<Seconds> last_end(ranks, 0.0);
  for (const auto& r : ordered) {
    if (options.preserve_gaps && r.t_start > last_end[r.rank]) {
      programs[r.rank].push_back(
          mw::IoAction::compute_for(r.t_start - last_end[r.rank]));
    }
    programs[r.rank].push_back(mw::IoAction::io(r.op, r.offset, r.size));
    last_end[r.rank] = std::max(last_end[r.rank], r.t_end);
  }
  return programs;
}

}  // namespace harl::workloads
