// BTIO-like workload (NAS Parallel Benchmarks BT-IO, paper Section IV-C).
//
// BT solves the 3-D compressible Navier-Stokes equations; the IO subtype
// ("full") appends the 5-component solution array to a shared file every
// `write_interval` time steps using collective MPI-IO, then reads the whole
// file back for verification.  The resulting I/O is read/write mixed,
// collective, and non-contiguous per rank: with a sqrt(P) x sqrt(P)
// decomposition over (x, y), each rank contributes one contiguous run per
// (z, y) line of its block to every dump.
//
// `grid` controls the class: 64 = class A, 102 = class B.  The paper reports
// "Class A ... writes and reads a total of 1.69 GB"; with the standard NAS
// geometry class A moves 2 x 0.42 GB, and grid = 81 is what moves 1.69 GB
// total — the bench uses that "paper" preset and EXPERIMENTS.md records the
// discrepancy.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/units.hpp"
#include "src/middleware/program.hpp"

namespace harl::workloads {

struct BtioConfig {
  std::size_t processes = 16;   ///< must be a perfect square (paper: 4/16/64)
  std::size_t grid = 64;        ///< points per dimension
  int time_steps = 200;         ///< NAS BT default
  int write_interval = 5;       ///< dump the solution every 5 steps
  int max_dumps = 0;            ///< cap on dumps (0 = no cap); CI scale-down
  Seconds compute_per_step = 0.0;  ///< simulated computation between steps
  bool read_back = true;        ///< "full" subtype verification pass
  Bytes cell_bytes = 40;        ///< 5 doubles per grid point
};

/// Preset matching the paper's reported 1.69 GB total I/O.
BtioConfig btio_paper_config(std::size_t processes);

/// One program per rank: interleaved compute + collective dump writes,
/// then (optionally) the collective read-back of every dump.
std::vector<mw::RankProgram> make_btio_programs(const BtioConfig& config);

/// Size of the output file (dumps * grid^3 * cell_bytes).
Bytes btio_file_size(const BtioConfig& config);

/// Number of solution dumps the configuration writes.
int btio_dump_count(const BtioConfig& config);

}  // namespace harl::workloads
