// Skewed re-read workload (Zipf popularity over file blocks).
//
// The cache-tier stressor: a sequential write pass seeds the file, then every
// rank issues reads whose block offsets follow a Zipf(theta) popularity
// distribution over the whole file — all ranks share the same hot set, so a
// small fraction of blocks absorbs most of the read traffic.  theta = 0 is
// uniform (no locality, caching cannot win); theta around 0.9-1.2 mimics the
// heavy reuse real analysis workloads show and is where a read cache on the
// fastest devices pays for its fill traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/middleware/program.hpp"

namespace harl::workloads {

struct ZipfConfig {
  Bytes file_size = 1 * GiB;
  Bytes request_size = 256 * KiB;  ///< block granularity of the popularity law
  std::size_t processes = 16;
  std::size_t reads_per_process = 256;  ///< per read phase
  /// Zipf exponent in [0, 8]: P(block k) proportional to 1/(k+1)^theta.
  double theta = 0.9;
  /// Read phases (barrier-separated); later phases re-draw from the same
  /// popularity law, so resident hot blocks keep hitting.
  std::size_t read_phases = 2;
  std::uint64_t seed = 23;
};

/// Write pass: each rank sequentially writes its file segment (seeds data).
std::vector<mw::RankProgram> make_zipf_write_programs(const ZipfConfig& config);

/// Read passes: Zipf-distributed whole-file block reads, one barrier between
/// phases.
std::vector<mw::RankProgram> make_zipf_read_programs(const ZipfConfig& config);

/// Number of popularity blocks (file_size / request_size).
Bytes zipf_block_count(const ZipfConfig& config);

/// Total application bytes issued across both passes.
Bytes zipf_total_bytes(const ZipfConfig& config);

}  // namespace harl::workloads
