// Trace replay: turns a collected I/O trace back into rank programs.
//
// The paper motivates HARL with applications whose I/O patterns repeat
// across runs (Section III-A); replay closes that loop in this codebase —
// a trace captured from any source (our collector, a converted IOSIG/LANL
// trace CSV) can be re-executed against the simulated PFS under any layout.
// Requests are grouped by their recorded rank and replayed in each rank's
// recorded temporal order; optional inter-arrival pacing reproduces compute
// gaps between consecutive operations of a rank.
#pragma once

#include <span>
#include <vector>

#include "src/middleware/program.hpp"
#include "src/trace/record.hpp"

namespace harl::workloads {

struct ReplayOptions {
  /// Reproduce think time: when a rank's next request started later than its
  /// previous one ended, insert a compute action for the gap.
  bool preserve_gaps = false;
  /// Ranks in the generated program set; 0 = max rank in the trace + 1.
  std::size_t ranks = 0;
};

/// One program per rank replaying `records`.  Records keep their per-rank
/// temporal order (sorted by t_start within each rank).
std::vector<mw::RankProgram> make_replay_programs(
    std::span<const trace::TraceRecord> records,
    const ReplayOptions& options = {});

}  // namespace harl::workloads
