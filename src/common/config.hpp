// Key=value configuration parsing for bench binaries and examples.
//
// The bench harness accepts overrides such as `--harl file_size=1G procs=32`
// so paper-scale and CI-scale runs share one binary.  Values are stored as
// strings and converted on access; byte-size values accept "64K"-style units.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/units.hpp"

namespace harl {

class Config {
 public:
  Config() = default;

  /// Parses entries of the form "key=value"; later duplicates win.
  /// Entries without '=' are rejected with std::invalid_argument.
  static Config from_args(const std::vector<std::string>& args);

  /// Parses a whitespace/comma separated "k=v k2=v2" string.
  static Config from_string(std::string_view text);

  void set(std::string key, std::string value);
  bool contains(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Accepts unit suffixes: "64K", "1G", plain bytes.
  Bytes get_size(const std::string& key, Bytes fallback) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace harl
