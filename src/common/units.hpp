// Byte-size and time units used throughout HARL.
//
// All file offsets/sizes are plain 64-bit byte counts (`Bytes`); all simulated
// durations are double-precision seconds (`Seconds`).  Helpers parse and
// format human-readable sizes ("64K", "2M") in the same style the paper's
// figures use (binary units: K = KiB).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace harl {

/// Byte count or byte offset within a file.
using Bytes = std::uint64_t;

/// Simulated wall-clock duration in seconds.
using Seconds = double;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

namespace literals {
constexpr Bytes operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v * GiB; }
}  // namespace literals

/// Parses a human-readable size such as "64K", "2M", "1G", "512" (bytes).
/// Accepts an optional "iB"/"B" suffix ("64KiB", "64KB" are both 64 * 1024).
/// Throws std::invalid_argument on malformed input or overflow.
Bytes parse_size(std::string_view text);

/// Formats a byte count the way the paper labels layouts: exact multiples of
/// a unit collapse ("65536" -> "64K"), otherwise falls back to bytes.
std::string format_size(Bytes bytes);

/// Formats a throughput value (bytes per simulated second) as "123.4 MB/s".
std::string format_throughput(double bytes_per_second);

}  // namespace harl
