#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace harl {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Join in the destructor body: members are destroyed in reverse
  // declaration order, so waiting for the jthread members' implicit join
  // would destroy queue_/mutex_/cv_ while workers still drain the queue
  // (parallel_for may leave already-satisfied driver tasks behind).
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Shared claim/completion state.  Workers that dequeue a driver after all
  // iterations are claimed touch only `next`, so the state (not `fn`) must
  // outlive the call — hence the shared_ptr; `fn` is only reached through a
  // successfully claimed index, and the caller does not return before every
  // claimed index has finished.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex m;
    std::condition_variable cv;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->fn = &fn;

  auto drive = [state] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      try {
        (*state->fn)(i);
      } catch (...) {
        std::lock_guard lock(state->m);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        std::lock_guard lock(state->m);  // pair with the waiter's check
        state->cv.notify_all();
      }
    }
  };

  // One helper driver per worker (capped by the iteration count); the caller
  // is the remaining driver and always makes progress on its own.
  const std::size_t helpers = std::min(thread_count(), n - 1);
  if (helpers > 0) {
    {
      std::lock_guard lock(mutex_);
      for (std::size_t i = 0; i < helpers; ++i) queue_.emplace_back(drive);
    }
    cv_.notify_all();
  }
  drive();

  std::unique_lock lock(state->m);
  state->cv.wait(lock,
                 [&] { return state->done.load(std::memory_order_acquire) ==
                              state->n; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace harl
