// Minimal leveled logging.
//
// The library never logs on hot paths; logging exists for the examples and
// benches to narrate multi-phase pipelines.  The level is a process-wide
// atomic (the one piece of mutable global state, as is conventional for
// logging); everything else in HARL takes its dependencies explicitly.
#pragma once

#include <sstream>
#include <string>

namespace harl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` to stderr if `level` >= the configured level.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace harl
