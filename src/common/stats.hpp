// Streaming and batch statistics.
//
// Algorithm 1 of the paper drives region splitting off the coefficient of
// variation (CV = population standard deviation / mean) of request sizes in a
// growing window; `RunningStats` provides exactly that, incrementally and in
// a numerically stable form (Welford), with O(1) removal-free restart.
// `LogHistogram` is the observability subsystem's distribution type:
// log-bucketed tails (p50/p95/p99 at bucket resolution, exact min/max/sum)
// that merge exactly across replicas and threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace harl {

/// Welford-style streaming mean/variance accumulator.
///
/// The paper's Algorithm 1 uses the *population* standard deviation
/// (divide by n, not n-1); `stddev()` matches that convention.
class RunningStats {
 public:
  void add(double x);

  /// Forgets all samples (Algorithm 1 line 12: "Restart with new CV").
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (sum of squared deviations / n); 0 when empty.
  double variance() const;
  double stddev() const;

  /// Coefficient of variation: stddev / mean; defined as 0 for an empty
  /// window or a zero mean (constant-size windows have CV 0).
  double cv() const;

  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population
  double cv = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes a full summary of `xs` in one pass.
Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].  `xs` need not be sorted;
/// a sorted copy is made internally.  Returns 0 for an empty sample.
double percentile(std::span<const double> xs, double p);

/// Log-bucketed histogram for latency/size distributions (observability).
///
/// Positive samples land in geometric buckets: each power of two is split
/// into 2^sub_bits equal-width sub-buckets, bounding the relative error of
/// any percentile by 1/2^sub_bits (3.2% at the default sub_bits = 5).
/// Zero and negative samples are counted separately (`non_positive`).
/// Count, sum, min and max are tracked exactly.  Buckets are sparse, so an
/// instance costs memory proportional to the spread actually observed, and
/// `merge()` is exact: merging two histograms yields the same buckets as
/// feeding both sample streams into one — the property that makes per-thread
/// and per-replica collection safe to aggregate in any order.
class LogHistogram {
 public:
  explicit LogHistogram(unsigned sub_bits = 5);

  void add(double x);
  void merge(const LogHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t non_positive() const { return non_positive_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const;

  /// Percentile estimate, p in [0, 100]: linear interpolation inside the
  /// containing bucket, clamped to the exact [min, max] envelope.  Counts
  /// non-positive samples as the value 0.  Returns 0 for an empty histogram.
  double percentile(double p) const;

  unsigned sub_bits() const { return sub_bits_; }

  /// Non-empty buckets in ascending value order (excludes non-positives).
  struct Bucket {
    double lo = 0.0;   ///< inclusive lower bound
    double hi = 0.0;   ///< exclusive upper bound
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets() const;

  /// True when the two histograms carry identical contents (used by the
  /// cross-thread merge-determinism tests).
  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

 private:
  std::int32_t bucket_index(double x) const;
  double bucket_low(std::int32_t index) const;

  unsigned sub_bits_ = 5;
  std::map<std::int32_t, std::uint64_t> counts_;  // ordered -> deterministic
  std::uint64_t count_ = 0;
  std::uint64_t non_positive_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Simple fixed-width histogram for diagnostics.
class Histogram {
 public:
  /// Buckets [lo, hi) split into `buckets` equal cells, plus under/overflow.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_at(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace harl
