// Streaming and batch statistics.
//
// Algorithm 1 of the paper drives region splitting off the coefficient of
// variation (CV = population standard deviation / mean) of request sizes in a
// growing window; `RunningStats` provides exactly that, incrementally and in
// a numerically stable form (Welford), with O(1) removal-free restart.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace harl {

/// Welford-style streaming mean/variance accumulator.
///
/// The paper's Algorithm 1 uses the *population* standard deviation
/// (divide by n, not n-1); `stddev()` matches that convention.
class RunningStats {
 public:
  void add(double x);

  /// Forgets all samples (Algorithm 1 line 12: "Restart with new CV").
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (sum of squared deviations / n); 0 when empty.
  double variance() const;
  double stddev() const;

  /// Coefficient of variation: stddev / mean; defined as 0 for an empty
  /// window or a zero mean (constant-size windows have CV 0).
  double cv() const;

  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population
  double cv = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes a full summary of `xs` in one pass.
Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].  `xs` need not be sorted;
/// a sorted copy is made internally.  Returns 0 for an empty sample.
double percentile(std::span<const double> xs, double p);

/// Simple fixed-width histogram for diagnostics.
class Histogram {
 public:
  /// Buckets [lo, hi) split into `buckets` equal cells, plus under/overflow.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_at(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace harl
