#include "src/common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace harl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_io_mutex);
  std::cerr << "[harl:" << level_name(level) << "] " << message << '\n';
}

}  // namespace harl
