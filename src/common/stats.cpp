#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace harl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  return std::max(0.0, m2_ / static_cast<double>(n_));
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

Summary summarize(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  Summary s;
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.cv = rs.cv();
  s.min = rs.min();
  s.max = rs.max();
  s.sum = rs.sum();
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LogHistogram::LogHistogram(unsigned sub_bits) : sub_bits_(sub_bits) {
  if (sub_bits > 12) {
    throw std::invalid_argument("LogHistogram sub_bits must be <= 12");
  }
}

std::int32_t LogHistogram::bucket_index(double x) const {
  // x = m * 2^e with m in [0.5, 1); split [2^(e-1), 2^e) into 2^sub_bits
  // equal cells.  The index is e * 2^sub_bits + cell, which orders buckets
  // by value and makes merge a plain per-key addition.
  int e = 0;
  const double m = std::frexp(x, &e);
  const auto sub = static_cast<std::int32_t>(1u << sub_bits_);
  auto cell = static_cast<std::int32_t>((m * 2.0 - 1.0) *
                                        static_cast<double>(sub));
  cell = std::min(std::max(cell, std::int32_t{0}), sub - 1);
  return static_cast<std::int32_t>(e) * sub + cell;
}

double LogHistogram::bucket_low(std::int32_t index) const {
  const auto sub = static_cast<std::int32_t>(1u << sub_bits_);
  // Floor division so negative exponents (sub-second latencies) round down.
  std::int32_t e = index / sub;
  std::int32_t cell = index % sub;
  if (cell < 0) {
    cell += sub;
    --e;
  }
  return std::ldexp(1.0 + static_cast<double>(cell) / static_cast<double>(sub),
                    e - 1);
}

void LogHistogram::add(double x) {
  if (!(x > 0.0)) {  // zero, negative, NaN
    ++non_positive_;
    ++count_;
    if (count_ == 1) {
      min_ = max_ = 0.0;
    } else {
      min_ = std::min(min_, 0.0);
      max_ = std::max(max_, 0.0);
    }
    return;
  }
  if (std::isinf(x)) x = std::numeric_limits<double>::max();
  ++counts_[bucket_index(x)];
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (other.sub_bits_ != sub_bits_) {
    throw std::invalid_argument("LogHistogram merge requires equal sub_bits");
  }
  for (const auto& [index, n] : other.counts_) counts_[index] += n;
  non_positive_ += other.non_positive_;
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

void LogHistogram::reset() { *this = LogHistogram{sub_bits_}; }

double LogHistogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double LogHistogram::percentile(double p) const {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile p out of [0,100]");
  }
  if (count_ == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count_);
  // Non-positive samples sit below every bucket at value 0.  Guard on their
  // presence: at p = 0 the rank is 0 and an all-positive histogram must fall
  // through to its first bucket (clamped to min), not report 0.
  double seen = static_cast<double>(non_positive_);
  if (non_positive_ > 0 && rank <= seen) return std::min(0.0, min_);
  for (const auto& [index, n] : counts_) {
    const double next = seen + static_cast<double>(n);
    if (rank <= next) {
      const double lo = bucket_low(index);
      const double hi = bucket_low(index + 1);
      const double frac = (rank - seen) / static_cast<double>(n);
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, min_), max_);
    }
    seen = next;
  }
  return max_;
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  out.reserve(counts_.size());
  for (const auto& [index, n] : counts_) {
    out.push_back(Bucket{bucket_low(index), bucket_low(index + 1), n});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(lo < hi) || buckets == 0) {
    throw std::invalid_argument("histogram requires lo < hi and buckets > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
  }
}

double Histogram::bucket_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_high(std::size_t i) const {
  return bucket_low(i + 1);
}

}  // namespace harl
