#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace harl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  return std::max(0.0, m2_ / static_cast<double>(n_));
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

Summary summarize(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  Summary s;
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.cv = rs.cv();
  s.min = rs.min();
  s.max = rs.max();
  s.sum = rs.sum();
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(lo < hi) || buckets == 0) {
    throw std::invalid_argument("histogram requires lo < hi and buckets > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
  }
}

double Histogram::bucket_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_high(std::size_t i) const {
  return bucket_low(i + 1);
}

}  // namespace harl
