// Fundamental I/O request vocabulary shared by every layer.
#pragma once

#include <string_view>

#include "src/common/units.hpp"

namespace harl {

/// Operation type of a file request (paper Table I, parameter `op`).
enum class IoOp { kRead, kWrite };

constexpr std::string_view to_string(IoOp op) {
  return op == IoOp::kRead ? "read" : "write";
}

/// One application-level file request against a logical file.
struct FileRequest {
  IoOp op = IoOp::kRead;
  Bytes offset = 0;  ///< byte offset within the logical file (paper `o`)
  Bytes size = 0;    ///< request length in bytes (paper `r`)
};

}  // namespace harl
