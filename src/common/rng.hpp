// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in HARL (device startup latencies, random layout
// baselines, workload offsets) flows through seedable generators so that every
// simulation and test is bit-reproducible.  We use xoshiro256** seeded via
// SplitMix64 — fast, high-quality, and independent of libstdc++'s unspecified
// distribution implementations.
#pragma once

#include <array>
#include <cstdint>

namespace harl {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repository-wide PRNG.  Satisfies the C++
/// UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace harl
