#include "src/common/rng.hpp"

#include <cassert>

namespace harl {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~static_cast<std::uint64_t>(0)) return next();
  // Rejection sampling to remove modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = ~static_cast<std::uint64_t>(0) - (~static_cast<std::uint64_t>(0) % bound + 1) % bound;
  std::uint64_t x = next();
  while (x > limit) x = next();
  return lo + x % bound;
}

Rng Rng::fork() {
  return Rng(next() ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace harl
