#include "src/common/config.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace harl {

Config Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("config entry must be key=value: " + arg);
    }
    cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return cfg;
}

Config Config::from_string(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!current.empty()) parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(std::move(current));
  return from_args(parts);
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key, std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto v = get(key);
  return v ? std::stoll(*v) : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = get(key);
  return v ? std::stod(*v) : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  std::string lowered = *v;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on") return true;
  if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off") return false;
  throw std::invalid_argument("not a boolean: " + *v);
}

Bytes Config::get_size(const std::string& key, Bytes fallback) const {
  auto v = get(key);
  return v ? parse_size(*v) : fallback;
}

}  // namespace harl
