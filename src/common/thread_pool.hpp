// A small fixed-size thread pool for embarrassingly-parallel work.
//
// Used by the Analysis-Phase planner (independent regions optimize
// concurrently), by the stripe-size optimizer (Algorithm 2 shards its
// candidate grid), and by the benchmark harness to evaluate independent
// layout candidates.  The discrete-event simulator itself is
// single-threaded and deterministic; the pool is only ever handed
// independent tasks, so there is no cross-task synchronization to reason
// about beyond the queue.
//
// parallel_for() is *work-helping*: the calling thread claims iterations
// alongside the workers, so a task running on the pool may itself call
// parallel_for() on the same pool without deadlock — in the worst case the
// nested caller executes every nested iteration itself.  This is what lets
// the planner parallelize over regions while each region's optimizer is
// free to shard its candidate axis on the same pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace harl {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// The caller participates (claims iterations itself), so nesting
  /// parallel_for inside a pool task cannot deadlock.  Iteration-to-thread
  /// assignment is nondeterministic; callers that need deterministic output
  /// must write results by index.  Exceptions from any invocation are
  /// rethrown after all iterations finish (the first one observed).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace harl
