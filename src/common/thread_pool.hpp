// A small fixed-size thread pool for embarrassingly-parallel work.
//
// Used by the stripe-size optimizer (Algorithm 2 shards its h-axis) and by
// the benchmark harness to evaluate independent layout candidates.  The
// discrete-event simulator itself is single-threaded and deterministic; the
// pool is only ever handed independent tasks, so there is no cross-task
// synchronization to reason about beyond the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace harl {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from any invocation are rethrown (the first one observed).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace harl
