// Half-open byte intervals [begin, end).
//
// File requests, regions, stripes and sub-requests are all byte ranges; this
// tiny value type keeps the arithmetic in one audited place.
#pragma once

#include <algorithm>
#include <cassert>
#include <compare>

#include "src/common/units.hpp"

namespace harl {

/// A half-open byte range [begin, end).  Empty when begin == end.
struct ByteInterval {
  Bytes begin = 0;
  Bytes end = 0;

  constexpr Bytes length() const { return end - begin; }
  constexpr bool empty() const { return begin >= end; }
  constexpr bool contains(Bytes offset) const {
    return offset >= begin && offset < end;
  }
  constexpr bool contains(const ByteInterval& other) const {
    return other.empty() || (other.begin >= begin && other.end <= end);
  }
  constexpr bool overlaps(const ByteInterval& other) const {
    return begin < other.end && other.begin < end;
  }

  friend constexpr auto operator<=>(const ByteInterval&, const ByteInterval&) = default;
};

/// Creates the interval [offset, offset + size).
constexpr ByteInterval interval_of(Bytes offset, Bytes size) {
  return ByteInterval{offset, offset + size};
}

/// Intersection; empty interval ({x, x}) when disjoint.
constexpr ByteInterval intersect(const ByteInterval& a, const ByteInterval& b) {
  const Bytes lo = std::max(a.begin, b.begin);
  const Bytes hi = std::min(a.end, b.end);
  return lo < hi ? ByteInterval{lo, hi} : ByteInterval{lo, lo};
}

}  // namespace harl
