#include "src/common/units.hpp"

#include <cctype>
#include <charconv>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace harl {

namespace {

Bytes unit_multiplier(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'K': return KiB;
    case 'M': return MiB;
    case 'G': return GiB;
    case 'T': return 1024 * GiB;
    default:
      throw std::invalid_argument(std::string("unknown size unit: ") + c);
  }
}

}  // namespace

Bytes parse_size(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("empty size string");

  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) {
    throw std::invalid_argument("malformed size: " + std::string(text));
  }

  std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  // Strip a trailing "B" or "iB" ("KiB", "KB", "B").
  if (!suffix.empty() &&
      (suffix.back() == 'B' || suffix.back() == 'b')) {
    suffix.remove_suffix(1);
    if (!suffix.empty() && (suffix.back() == 'i' || suffix.back() == 'I')) {
      suffix.remove_suffix(1);
    }
  }

  Bytes mult = 1;
  if (!suffix.empty()) {
    if (suffix.size() != 1) {
      throw std::invalid_argument("malformed size suffix: " + std::string(text));
    }
    mult = unit_multiplier(suffix.front());
  }

  if (mult != 0 && value > std::numeric_limits<Bytes>::max() / mult) {
    throw std::invalid_argument("size overflows 64 bits: " + std::string(text));
  }
  return value * mult;
}

std::string format_size(Bytes bytes) {
  if (bytes >= GiB && bytes % GiB == 0) return std::to_string(bytes / GiB) + "G";
  if (bytes >= MiB && bytes % MiB == 0) return std::to_string(bytes / MiB) + "M";
  if (bytes >= KiB && bytes % KiB == 0) return std::to_string(bytes / KiB) + "K";
  return std::to_string(bytes);
}

std::string format_throughput(double bytes_per_second) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << bytes_per_second / static_cast<double>(MiB) << " MB/s";
  return os.str();
}

}  // namespace harl
