#include "src/trace/analysis.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/common/units.hpp"

namespace harl::trace {

WorkloadStats characterize(std::span<const TraceRecord> records) {
  WorkloadStats stats;
  if (records.empty()) return stats;

  std::vector<double> all;
  std::vector<double> reads;
  std::vector<double> writes;
  all.reserve(records.size());
  stats.min_offset = records.front().offset;

  for (const auto& r : records) {
    ++stats.total_requests;
    all.push_back(static_cast<double>(r.size));
    stats.min_offset = std::min(stats.min_offset, r.offset);
    stats.max_end = std::max(stats.max_end, r.offset + r.size);
    if (r.op == IoOp::kRead) {
      ++stats.read_requests;
      stats.read_bytes += r.size;
      reads.push_back(static_cast<double>(r.size));
    } else {
      ++stats.write_requests;
      stats.write_bytes += r.size;
      writes.push_back(static_cast<double>(r.size));
    }
  }
  stats.request_size = summarize(all);
  stats.read_request_size = summarize(reads);
  stats.write_request_size = summarize(writes);
  return stats;
}

std::vector<IoPhase> io_phases(std::span<const TraceRecord> records) {
  std::vector<IoPhase> phases;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (phases.empty() || phases.back().op != records[i].op) {
      phases.push_back(IoPhase{records[i].op, i, 0, 0});
    }
    ++phases.back().count;
    phases.back().bytes += records[i].size;
  }
  return phases;
}

std::string describe(const WorkloadStats& stats) {
  std::ostringstream os;
  os << "requests: " << stats.total_requests << " (" << stats.read_requests
     << " reads, " << stats.write_requests << " writes)\n";
  os << "bytes: read " << format_size(stats.read_bytes) << ", write "
     << format_size(stats.write_bytes) << "\n";
  os << "request size: mean " << static_cast<Bytes>(stats.request_size.mean)
     << " B, cv " << stats.request_size.cv << ", min "
     << static_cast<Bytes>(stats.request_size.min) << " B, max "
     << static_cast<Bytes>(stats.request_size.max) << " B\n";
  os << "touched extent: [" << stats.min_offset << ", " << stats.max_end
     << ")";
  return os.str();
}

}  // namespace harl::trace
