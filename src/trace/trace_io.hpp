// Trace (de)serialization.
//
// Two formats:
//  * CSV — human-inspectable, one record per line, with a header; this is
//    the interchange format the examples write.
//  * Binary — fixed-width little-endian records behind a magic/version
//    header; used for large traces.
// Both round-trip exactly (timestamps are stored as IEEE doubles).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/trace/record.hpp"

namespace harl::trace {

/// Writes records as CSV with header
/// `pid,rank,fd,op,offset,size,t_start,t_end`.
void write_csv(std::ostream& os, const std::vector<TraceRecord>& records);

/// Parses CSV produced by write_csv.  Throws std::runtime_error on malformed
/// input (wrong header, wrong field count, unknown op).
std::vector<TraceRecord> read_csv(std::istream& is);

/// Writes the binary format (magic "HARLTRC1", u64 count, packed records).
void write_binary(std::ostream& os, const std::vector<TraceRecord>& records);

/// Reads the binary format; throws std::runtime_error on a bad magic or a
/// truncated stream.
std::vector<TraceRecord> read_binary(std::istream& is);

/// File-path conveniences (format chosen by extension: ".csv" vs anything
/// else = binary).
void save_trace(const std::string& path, const std::vector<TraceRecord>& records);
std::vector<TraceRecord> load_trace(const std::string& path);

}  // namespace harl::trace
