#include "src/trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace harl::trace {

namespace {

constexpr char kCsvHeader[] = "pid,rank,fd,op,offset,size,t_start,t_end";
constexpr char kMagic[8] = {'H', 'A', 'R', 'L', 'T', 'R', 'C', '1'};

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T take(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("truncated binary trace");
  return v;
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << kCsvHeader << '\n';
  os.precision(17);
  for (const auto& r : records) {
    os << r.pid << ',' << r.rank << ',' << r.fd << ',' << to_string(r.op)
       << ',' << r.offset << ',' << r.size << ',' << r.t_start << ','
       << r.t_end << '\n';
  }
}

std::vector<TraceRecord> read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kCsvHeader) {
    throw std::runtime_error("bad trace CSV header");
  }
  std::vector<TraceRecord> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != 8) {
      throw std::runtime_error("trace CSV line has wrong field count: " + line);
    }
    TraceRecord r;
    r.pid = static_cast<std::uint32_t>(std::stoul(fields[0]));
    r.rank = static_cast<std::uint32_t>(std::stoul(fields[1]));
    r.fd = static_cast<std::uint32_t>(std::stoul(fields[2]));
    if (fields[3] == "read") {
      r.op = IoOp::kRead;
    } else if (fields[3] == "write") {
      r.op = IoOp::kWrite;
    } else {
      throw std::runtime_error("unknown op in trace CSV: " + fields[3]);
    }
    r.offset = std::stoull(fields[4]);
    r.size = std::stoull(fields[5]);
    r.t_start = std::stod(fields[6]);
    r.t_end = std::stod(fields[7]);
    out.push_back(r);
  }
  return out;
}

void write_binary(std::ostream& os, const std::vector<TraceRecord>& records) {
  os.write(kMagic, sizeof(kMagic));
  put<std::uint64_t>(os, records.size());
  for (const auto& r : records) {
    put(os, r.pid);
    put(os, r.rank);
    put(os, r.fd);
    put<std::uint8_t>(os, r.op == IoOp::kRead ? 0 : 1);
    put(os, r.offset);
    put(os, r.size);
    put(os, r.t_start);
    put(os, r.t_end);
  }
}

std::vector<TraceRecord> read_binary(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  if (!is || std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad binary trace magic");
  }
  const auto count = take<std::uint64_t>(is);
  std::vector<TraceRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.pid = take<std::uint32_t>(is);
    r.rank = take<std::uint32_t>(is);
    r.fd = take<std::uint32_t>(is);
    r.op = take<std::uint8_t>(is) == 0 ? IoOp::kRead : IoOp::kWrite;
    r.offset = take<Bytes>(is);
    r.size = take<Bytes>(is);
    r.t_start = take<double>(is);
    r.t_end = take<double>(is);
    out.push_back(r);
  }
  return out;
}

void save_trace(const std::string& path, const std::vector<TraceRecord>& records) {
  const bool csv = path.size() >= 4 && path.substr(path.size() - 4) == ".csv";
  std::ofstream os(path, csv ? std::ios::out : std::ios::out | std::ios::binary);
  if (!os) throw std::runtime_error("cannot open trace file for write: " + path);
  if (csv) {
    write_csv(os, records);
  } else {
    write_binary(os, records);
  }
}

std::vector<TraceRecord> load_trace(const std::string& path) {
  const bool csv = path.size() >= 4 && path.substr(path.size() - 4) == ".csv";
  std::ifstream is(path, csv ? std::ios::in : std::ios::in | std::ios::binary);
  if (!is) throw std::runtime_error("cannot open trace file for read: " + path);
  return csv ? read_csv(is) : read_binary(is);
}

}  // namespace harl::trace
