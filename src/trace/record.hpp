// Trace records in the shape IOSIG produces.
//
// The paper's Tracing Phase captures, per file operation: process ID, MPI
// rank, file descriptor, operation type, offset, request size and timestamps
// (Section III-B).  HARL's Analysis Phase consumes these records sorted by
// ascending offset.
#pragma once

#include <cstdint>

#include "src/common/io.hpp"
#include "src/common/units.hpp"

namespace harl::trace {

struct TraceRecord {
  std::uint32_t pid = 0;   ///< simulated OS process id
  std::uint32_t rank = 0;  ///< MPI rank
  std::uint32_t fd = 0;    ///< file descriptor / logical file id
  IoOp op = IoOp::kRead;
  Bytes offset = 0;
  Bytes size = 0;
  Seconds t_start = 0.0;   ///< simulated issue time
  Seconds t_end = 0.0;     ///< simulated completion time

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Ordering used by the Analysis Phase: ascending offset, ties by start time
/// then rank, so sorting is total and deterministic.
struct ByOffset {
  bool operator()(const TraceRecord& a, const TraceRecord& b) const {
    if (a.offset != b.offset) return a.offset < b.offset;
    if (a.t_start != b.t_start) return a.t_start < b.t_start;
    return a.rank < b.rank;
  }
};

}  // namespace harl::trace
