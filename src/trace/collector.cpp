#include "src/trace/collector.hpp"

#include <algorithm>

namespace harl::trace {

void TraceCollector::record(std::uint32_t rank, std::uint32_t fd, IoOp op,
                            Bytes offset, Bytes size, Seconds t_start,
                            Seconds t_end) {
  TraceRecord rec;
  rec.pid = rank;  // the simulated world runs one process per rank
  rec.rank = rank;
  rec.fd = fd;
  rec.op = op;
  rec.offset = offset;
  rec.size = size;
  rec.t_start = t_start;
  rec.t_end = t_end;
  records_.push_back(rec);
}

std::vector<TraceRecord> TraceCollector::sorted_by_offset() const {
  std::vector<TraceRecord> out = records_;
  std::sort(out.begin(), out.end(), ByOffset{});
  return out;
}

std::vector<TraceRecord> TraceCollector::sorted_by_offset(std::uint32_t fd) const {
  std::vector<TraceRecord> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (r.fd == fd) out.push_back(r);
  }
  std::sort(out.begin(), out.end(), ByOffset{});
  return out;
}

}  // namespace harl::trace
