// Workload characterization over collected traces.
//
// Summaries feed the examples and EXPERIMENTS.md narratives; `io_phases`
// provides the op-type phase view the paper's motivation cites ("request
// types can be read in one I/O phase but write in another").
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/trace/record.hpp"

namespace harl::trace {

/// Aggregate statistics of a trace (per op and combined).
struct WorkloadStats {
  std::size_t total_requests = 0;
  std::size_t read_requests = 0;
  std::size_t write_requests = 0;
  Bytes read_bytes = 0;
  Bytes write_bytes = 0;
  Summary request_size;        ///< over all requests
  Summary read_request_size;   ///< reads only
  Summary write_request_size;  ///< writes only
  Bytes min_offset = 0;
  Bytes max_end = 0;  ///< max(offset + size): the touched extent of the file
};

WorkloadStats characterize(std::span<const TraceRecord> records);

/// A maximal run of consecutive (in time order) records with the same op.
struct IoPhase {
  IoOp op = IoOp::kRead;
  std::size_t first = 0;  ///< index into the input span
  std::size_t count = 0;
  Bytes bytes = 0;
};

/// Splits a temporally-ordered trace into read/write phases.
std::vector<IoPhase> io_phases(std::span<const TraceRecord> records);

/// Human-readable multi-line description of a workload (for examples).
std::string describe(const WorkloadStats& stats);

}  // namespace harl::trace
