// IOSIG-like run-time trace collector.
//
// Attached to the middleware, it records every MPI-IO level file operation
// during an application's first execution (the paper's Tracing Phase).  The
// collector itself is passive storage; `sorted_by_offset()` applies the
// ascending-offset ordering the region-division algorithm expects.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/trace/record.hpp"

namespace harl::trace {

class TraceCollector {
 public:
  /// Appends one completed operation.
  void record(const TraceRecord& rec) { records_.push_back(rec); }

  /// Convenience: record an operation with explicit fields.
  void record(std::uint32_t rank, std::uint32_t fd, IoOp op, Bytes offset,
              Bytes size, Seconds t_start, Seconds t_end);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Records in capture (temporal) order.
  std::span<const TraceRecord> records() const { return records_; }

  /// Copy sorted ascending by offset (Section III-B: "the collector sorts
  /// all file read and write requests in ascending order of their offsets").
  std::vector<TraceRecord> sorted_by_offset() const;

  /// Copy containing only records for file `fd`, sorted by offset.
  std::vector<TraceRecord> sorted_by_offset(std::uint32_t fd) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace harl::trace
