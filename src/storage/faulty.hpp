// Fault-injection device decorator.
//
// Wraps another StorageDevice and degrades it: a constant slowdown factor
// (an ageing or failing drive, a rebuilding RAID member) plus optional
// periodic hiccups (firmware housekeeping, thermal throttling windows).
// Used by tests and experiments to check how layouts behave when one server
// of a tier stops keeping up.
#pragma once

#include <memory>

#include "src/storage/device.hpp"

namespace harl::storage {

class FaultyDevice final : public StorageDevice {
 public:
  struct Faults {
    double slowdown = 1.0;     ///< multiplies every service time (>= 1)
    int hiccup_every = 0;      ///< every Nth access stalls (0 = never)
    Seconds hiccup_delay = 0.0;
  };

  FaultyDevice(std::unique_ptr<StorageDevice> inner, Faults faults);

  Seconds service_time(IoOp op, Bytes offset, Bytes size) override;
  Seconds last_startup() const override { return last_startup_; }
  const TierProfile& profile() const override { return inner_->profile(); }
  void reset() override;

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t hiccups() const { return hiccups_; }

 private:
  std::unique_ptr<StorageDevice> inner_;
  Faults faults_;
  std::uint64_t accesses_ = 0;
  std::uint64_t hiccups_ = 0;
  Seconds last_startup_ = 0.0;
};

}  // namespace harl::storage
