// Storage tier parameter sets (paper Table I, "Storage Parameters").
//
// A `TierProfile` carries, per operation type, the uniform startup-latency
// window [alpha_min, alpha_max] and the per-byte transfer time beta.  The
// paper gives HServers one (read==write) profile and SServers asymmetric
// read/write profiles; we keep both operations explicit for every tier so the
// model generalizes to the multi-tier extension.
//
// The preset constants are *calibrated* to 2009-era devices behind Gigabit
// Ethernet so the simulated system reproduces the paper's observed ratios
// (e.g. HServers ~3.5x slower than SServers under the default 64 KiB layout,
// Fig. 1a).  They are defaults, not baked-in: every component takes a profile.
#pragma once

#include <string>

#include "src/common/io.hpp"
#include "src/common/units.hpp"

namespace harl::storage {

/// Startup window and transfer rate for one operation direction.
struct OpProfile {
  Seconds startup_min = 0.0;   ///< alpha^min
  Seconds startup_max = 0.0;   ///< alpha^max
  Seconds per_byte = 0.0;      ///< beta, seconds per byte

  /// Mean startup of a single access: midpoint of the uniform window.
  Seconds startup_mean() const { return 0.5 * (startup_min + startup_max); }
};

/// Full performance profile of a storage tier.
struct TierProfile {
  std::string name;
  OpProfile read;
  OpProfile write;

  const OpProfile& op(IoOp o) const { return o == IoOp::kRead ? read : write; }
};

/// 7200-rpm SATA HDD (HServer default): multi-millisecond positioning,
/// ~100 MB/s media rate, read ~= write.
TierProfile hdd_profile();

/// PCIe x4 SSD (SServer default): tens-of-microsecond startup, read faster
/// than write (garbage collection / wear-leveling overhead on writes).
TierProfile pcie_ssd_profile();

/// SATA SSD: between HDD and PCIe SSD; used by the multi-tier extension.
TierProfile sata_ssd_profile();

/// Modern NVMe drive; used by the multi-tier extension experiments.
TierProfile nvme_ssd_profile();

}  // namespace harl::storage
