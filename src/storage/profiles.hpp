// Storage tier parameter sets (paper Table I, "Storage Parameters").
//
// A `TierProfile` carries, per operation type, the uniform startup-latency
// window [alpha_min, alpha_max] and the per-byte transfer time beta.  The
// paper gives HServers one (read==write) profile and SServers asymmetric
// read/write profiles; we keep both operations explicit for every tier so the
// model generalizes to the multi-tier extension.
//
// The preset constants are *calibrated* to 2009-era devices behind Gigabit
// Ethernet so the simulated system reproduces the paper's observed ratios
// (e.g. HServers ~3.5x slower than SServers under the default 64 KiB layout,
// Fig. 1a).  They are defaults, not baked-in: every component takes a profile.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/common/io.hpp"
#include "src/common/units.hpp"

namespace harl::storage {

/// Startup window and transfer rate for one operation direction.
struct OpProfile {
  Seconds startup_min = 0.0;   ///< alpha^min
  Seconds startup_max = 0.0;   ///< alpha^max
  Seconds per_byte = 0.0;      ///< beta, seconds per byte

  /// Mean startup of a single access: midpoint of the uniform window.
  Seconds startup_mean() const { return 0.5 * (startup_min + startup_max); }
};

/// Full performance profile of a storage tier.
struct TierProfile {
  std::string name;
  OpProfile read;
  OpProfile write;

  const OpProfile& op(IoOp o) const { return o == IoOp::kRead ? read : write; }
};

/// One concrete server's device: a tier profile degraded (or improved) by a
/// per-device speed factor.  The factor is a *time multiplier* — 1.0 is a
/// fresh device matching the tier profile, 2.0 takes twice as long per
/// access (an aged SSD, a worn disk).  A tier whose members all carry factor
/// 1.0 is exactly the homogeneous tier the paper models.
struct DeviceProfile {
  std::string name;           ///< e.g. "sserver1"
  double speed_factor = 1.0;  ///< time multiplier vs the tier profile
  TierProfile profile;        ///< the already-scaled per-op parameters
};

/// The tier profile with every time parameter (startup window and per-byte
/// time) multiplied by `speed_factor`.  scaled_profile(p, 1.0) is bit-equal
/// to p (IEEE multiplication by 1.0 is exact for finite values).
TierProfile scaled_profile(const TierProfile& p, double speed_factor);

/// Builds the device profile of one tier member.
DeviceProfile make_device_profile(const TierProfile& tier, std::size_t index,
                                  double speed_factor);

/// Canonicalizes a per-device factor vector in place: sorts ascending
/// (fastest member first — the slot order the planner's member-prefix
/// candidates and the cluster's server construction both use) and clears
/// the vector entirely when every factor is 1.0, so the homogeneous case is
/// always represented by the empty vector.
void canonicalize_device_factors(std::vector<double>& factors);

/// The worst (largest) factor among the first `members` devices of a
/// canonical (ascending) factor vector; 1.0 for an empty vector or zero
/// members.
double worst_device_factor(std::span<const double> factors,
                           std::size_t members);

/// The mean factor among the first `members` devices of a canonical
/// (ascending) factor vector; 1.0 for an empty vector or zero members.
/// The throughput (busy-time) analogue of worst_device_factor: a bandwidth
/// bound cares about aggregate service rate, not the straggler.
double mean_device_factor(std::span<const double> factors,
                          std::size_t members);

/// 7200-rpm SATA HDD (HServer default): multi-millisecond positioning,
/// ~100 MB/s media rate, read ~= write.
TierProfile hdd_profile();

/// PCIe x4 SSD (SServer default): tens-of-microsecond startup, read faster
/// than write (garbage collection / wear-leveling overhead on writes).
TierProfile pcie_ssd_profile();

/// SATA SSD: between HDD and PCIe SSD; used by the multi-tier extension.
TierProfile sata_ssd_profile();

/// Modern NVMe drive; used by the multi-tier extension experiments.
TierProfile nvme_ssd_profile();

}  // namespace harl::storage
