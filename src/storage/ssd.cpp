#include "src/storage/ssd.hpp"

#include <utility>

namespace harl::storage {

SsdDevice::SsdDevice(TierProfile profile, std::uint64_t seed, GcModel gc)
    : profile_(std::move(profile)), seed_(seed), gc_(gc), rng_(seed) {}

Seconds SsdDevice::service_time(IoOp op, Bytes /*offset*/, Bytes size) {
  const OpProfile& p = profile_.op(op);
  Seconds startup = rng_.uniform(p.startup_min, p.startup_max);
  Seconds t = startup + static_cast<double>(size) * p.per_byte;
  if (op == IoOp::kWrite) {
    bytes_written_ += size;
    if (gc_.interval > 0) {
      gc_debt_ += size;
      while (gc_debt_ >= gc_.interval) {
        gc_debt_ -= gc_.interval;
        t += gc_.stall;
        startup += gc_.stall;  // GC stalls delay the first byte like a seek
      }
    }
  }
  last_startup_ = startup;
  return t;
}

void SsdDevice::reset() {
  rng_ = Rng(seed_);
  bytes_written_ = 0;
  gc_debt_ = 0;
  last_startup_ = 0.0;
}

}  // namespace harl::storage
