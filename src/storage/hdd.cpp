#include "src/storage/hdd.hpp"

#include <stdexcept>
#include <utility>

namespace harl::storage {

HddDevice::HddDevice(TierProfile profile, std::uint64_t seed,
                     double sequential_factor)
    : profile_(std::move(profile)),
      seed_(seed),
      sequential_factor_(sequential_factor),
      rng_(seed) {
  if (sequential_factor < 0.0 || sequential_factor > 1.0) {
    throw std::invalid_argument("sequential_factor must be in [0,1]");
  }
}

Seconds HddDevice::service_time(IoOp op, Bytes offset, Bytes size) {
  const OpProfile& p = profile_.op(op);
  Seconds startup = rng_.uniform(p.startup_min, p.startup_max);
  if (offset == last_end_) startup *= sequential_factor_;
  last_end_ = offset + size;
  last_startup_ = startup;
  return startup + static_cast<double>(size) * p.per_byte;
}

void HddDevice::reset() {
  rng_ = Rng(seed_);
  last_end_ = ~static_cast<Bytes>(0);
  last_startup_ = 0.0;
}

}  // namespace harl::storage
