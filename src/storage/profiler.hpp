// Device parameter estimation (the paper's Analysis-Phase calibration).
//
// The paper measures alpha (startup) and beta (per-byte transfer) for each
// server class by running repeated read/write tests on one server and
// averaging "thousands of times (the number is configurable)".  This profiler
// does the same against a StorageDevice: it samples service times at two
// access sizes, fits beta from the mean slope, and recovers the startup
// window from the residual extremes.  The fitted TierProfile feeds the cost
// model, so model parameters are *measured* rather than copied from presets.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/storage/device.hpp"

namespace harl::storage {

struct ProfilerOptions {
  Bytes small_size = 4 * KiB;    ///< first probe size
  Bytes large_size = 1 * MiB;    ///< second probe size
  int samples_per_size = 2000;   ///< accesses per (op, size) pair
  Bytes span = 4 * GiB;          ///< offsets drawn uniformly from [0, span)
  std::uint64_t seed = 42;       ///< offset-stream seed
  /// false (default): probe a single sequential stream per size, the way the
  /// paper calibrates against one otherwise-idle file server — an HDD then
  /// shows its (small) sequential startup.  true: random offsets, exposing
  /// the full positioning window (what contended multi-client access sees).
  bool random_offsets = false;
};

/// Fits a TierProfile from observed service times.  The device is reset()
/// before and after probing so profiling does not perturb later simulation.
TierProfile profile_device(StorageDevice& device, const ProfilerOptions& opts = {});

}  // namespace harl::storage
