#include "src/storage/profiles.hpp"

#include <algorithm>

namespace harl::storage {

namespace {

OpProfile scaled_op(const OpProfile& p, double f) {
  return OpProfile{p.startup_min * f, p.startup_max * f, p.per_byte * f};
}

}  // namespace

TierProfile scaled_profile(const TierProfile& p, double speed_factor) {
  TierProfile out;
  out.name = p.name;
  out.read = scaled_op(p.read, speed_factor);
  out.write = scaled_op(p.write, speed_factor);
  return out;
}

DeviceProfile make_device_profile(const TierProfile& tier, std::size_t index,
                                  double speed_factor) {
  DeviceProfile d;
  d.name = tier.name + std::to_string(index);
  d.speed_factor = speed_factor;
  d.profile = scaled_profile(tier, speed_factor);
  return d;
}

void canonicalize_device_factors(std::vector<double>& factors) {
  std::sort(factors.begin(), factors.end());
  if (std::all_of(factors.begin(), factors.end(),
                  [](double f) { return f == 1.0; })) {
    factors.clear();
  }
}

double worst_device_factor(std::span<const double> factors,
                           std::size_t members) {
  if (factors.empty() || members == 0) return 1.0;
  return factors[std::min(members, factors.size()) - 1];
}

double mean_device_factor(std::span<const double> factors,
                          std::size_t members) {
  if (factors.empty() || members == 0) return 1.0;
  const std::size_t n = std::min(members, factors.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += factors[i];
  return sum / static_cast<double>(n);
}

namespace {
constexpr double mbps(double megabytes_per_second) {
  // Seconds per byte for a given MB/s media rate.
  return 1.0 / (megabytes_per_second * 1024.0 * 1024.0);
}
constexpr Seconds us(double microseconds) { return microseconds * 1e-6; }
constexpr Seconds ms(double milliseconds) { return milliseconds * 1e-3; }
}  // namespace

TierProfile hdd_profile() {
  TierProfile p;
  p.name = "hdd";
  // Effective server-level behaviour of a 2009-era 250 GB SATA drive under
  // a PFS server stack (filesystem + kernel + OrangeFS overhead): sustained
  // rate far below the raw media rate, positioning from track-to-track up to
  // short-stroke seeks.  Calibrated so the default 64 KiB layout reproduces
  // the paper's Fig. 1a imbalance (HServers ~3.5x SServer I/O time).
  // Single-stream sequential access (how the paper measures its model
  // parameters) sees only the sequential fraction of the startup window.
  p.read = OpProfile{ms(0.15), ms(0.9), mbps(35.0)};
  p.write = OpProfile{ms(0.18), ms(1.0), mbps(32.0)};
  return p;
}

TierProfile pcie_ssd_profile() {
  TierProfile p;
  p.name = "pcie_ssd";
  p.read = OpProfile{us(25.0), us(120.0), mbps(520.0)};
  // Writes pay for garbage collection and wear leveling: larger, more
  // variable startup and a lower sustained rate (paper Section III-D).
  p.write = OpProfile{us(60.0), us(350.0), mbps(330.0)};
  return p;
}

TierProfile sata_ssd_profile() {
  TierProfile p;
  p.name = "sata_ssd";
  p.read = OpProfile{us(60.0), us(200.0), mbps(250.0)};
  p.write = OpProfile{us(90.0), us(450.0), mbps(180.0)};
  return p;
}

TierProfile nvme_ssd_profile() {
  TierProfile p;
  p.name = "nvme_ssd";
  p.read = OpProfile{us(10.0), us(60.0), mbps(1800.0)};
  p.write = OpProfile{us(20.0), us(150.0), mbps(1200.0)};
  return p;
}

}  // namespace harl::storage
