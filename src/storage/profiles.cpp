#include "src/storage/profiles.hpp"

namespace harl::storage {

namespace {
constexpr double mbps(double megabytes_per_second) {
  // Seconds per byte for a given MB/s media rate.
  return 1.0 / (megabytes_per_second * 1024.0 * 1024.0);
}
constexpr Seconds us(double microseconds) { return microseconds * 1e-6; }
constexpr Seconds ms(double milliseconds) { return milliseconds * 1e-3; }
}  // namespace

TierProfile hdd_profile() {
  TierProfile p;
  p.name = "hdd";
  // Effective server-level behaviour of a 2009-era 250 GB SATA drive under
  // a PFS server stack (filesystem + kernel + OrangeFS overhead): sustained
  // rate far below the raw media rate, positioning from track-to-track up to
  // short-stroke seeks.  Calibrated so the default 64 KiB layout reproduces
  // the paper's Fig. 1a imbalance (HServers ~3.5x SServer I/O time).
  // Single-stream sequential access (how the paper measures its model
  // parameters) sees only the sequential fraction of the startup window.
  p.read = OpProfile{ms(0.15), ms(0.9), mbps(35.0)};
  p.write = OpProfile{ms(0.18), ms(1.0), mbps(32.0)};
  return p;
}

TierProfile pcie_ssd_profile() {
  TierProfile p;
  p.name = "pcie_ssd";
  p.read = OpProfile{us(25.0), us(120.0), mbps(520.0)};
  // Writes pay for garbage collection and wear leveling: larger, more
  // variable startup and a lower sustained rate (paper Section III-D).
  p.write = OpProfile{us(60.0), us(350.0), mbps(330.0)};
  return p;
}

TierProfile sata_ssd_profile() {
  TierProfile p;
  p.name = "sata_ssd";
  p.read = OpProfile{us(60.0), us(200.0), mbps(250.0)};
  p.write = OpProfile{us(90.0), us(450.0), mbps(180.0)};
  return p;
}

TierProfile nvme_ssd_profile() {
  TierProfile p;
  p.name = "nvme_ssd";
  p.read = OpProfile{us(10.0), us(60.0), mbps(1800.0)};
  p.write = OpProfile{us(20.0), us(150.0), mbps(1200.0)};
  return p;
}

}  // namespace harl::storage
