#include "src/storage/profiler.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/common/stats.hpp"

namespace harl::storage {

namespace {

OpProfile fit_op(StorageDevice& device, IoOp op, const ProfilerOptions& opts,
                 Rng& rng) {
  const Bytes sizes[2] = {opts.small_size, opts.large_size};
  double mean_time[2] = {0.0, 0.0};
  std::vector<double> all_times[2];

  for (int which = 0; which < 2; ++which) {
    RunningStats rs;
    all_times[which].reserve(static_cast<std::size_t>(opts.samples_per_size));
    Bytes sequential_cursor = 0;
    // Warm-up: the very first access after a reset has no positioning
    // history and would smear a full seek into the fitted startup window.
    device.service_time(op, sequential_cursor, sizes[which]);
    sequential_cursor += sizes[which];
    for (int i = 0; i < opts.samples_per_size; ++i) {
      Bytes offset = 0;
      if (opts.random_offsets) {
        // Random offsets defeat the HDD sequential discount, exposing the
        // full positioning window.
        const Bytes slots = std::max<Bytes>(1, opts.span / sizes[which]);
        offset = rng.uniform_u64(0, slots - 1) * sizes[which];
      } else {
        // Single sequential stream, as in the paper's one-server calibration.
        offset = sequential_cursor;
        sequential_cursor += sizes[which];
      }
      const Seconds t = device.service_time(op, offset, sizes[which]);
      rs.add(t);
      all_times[which].push_back(t);
    }
    mean_time[which] = rs.mean();
  }

  OpProfile fitted;
  const double span_bytes =
      static_cast<double>(sizes[1]) - static_cast<double>(sizes[0]);
  fitted.per_byte = std::max(0.0, (mean_time[1] - mean_time[0]) / span_bytes);

  double lo = 1e30;
  double hi = 0.0;
  for (int which = 0; which < 2; ++which) {
    for (double t : all_times[which]) {
      const double residual =
          t - fitted.per_byte * static_cast<double>(sizes[which]);
      lo = std::min(lo, residual);
      hi = std::max(hi, residual);
    }
  }
  fitted.startup_min = std::max(0.0, lo);
  fitted.startup_max = std::max(fitted.startup_min, hi);
  return fitted;
}

}  // namespace

TierProfile profile_device(StorageDevice& device, const ProfilerOptions& opts) {
  if (opts.small_size >= opts.large_size) {
    throw std::invalid_argument("profiler needs small_size < large_size");
  }
  if (opts.samples_per_size < 2) {
    throw std::invalid_argument("profiler needs >= 2 samples per size");
  }
  device.reset();
  Rng rng(opts.seed);
  TierProfile fitted;
  fitted.name = device.profile().name + "/measured";
  fitted.read = fit_op(device, IoOp::kRead, opts, rng);
  fitted.write = fit_op(device, IoOp::kWrite, opts, rng);
  device.reset();
  return fitted;
}

}  // namespace harl::storage
