// Abstract storage device model.
//
// A device converts one server-local access (op, server-local offset, size)
// into a service time.  Implementations may be stateful (HDD head position,
// SSD garbage-collection debt) and stochastic (seeded per device), which is
// what distinguishes the *simulated* service time from the cost model's
// *expected* service time in src/core/cost_model.hpp.
#pragma once

#include "src/common/io.hpp"
#include "src/common/units.hpp"
#include "src/storage/profiles.hpp"

namespace harl::storage {

class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  /// Service time of one access.  Advances internal state (head position,
  /// GC debt, RNG stream).
  virtual Seconds service_time(IoOp op, Bytes offset, Bytes size) = 0;

  /// Startup component (the paper's T_S: seek/flash-issue latency plus any
  /// stall) of the most recent service_time() call — observability splits
  /// each access into startup vs transfer.  0 for models without one.
  virtual Seconds last_startup() const { return 0.0; }

  /// The nominal parameter profile this device was built from.
  virtual const TierProfile& profile() const = 0;

  /// Restores construction-time state (including the RNG stream), so two
  /// identically-seeded devices replay identical service-time sequences.
  virtual void reset() = 0;
};

}  // namespace harl::storage
