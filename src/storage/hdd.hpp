// Rotating-disk device model (HServer).
//
// Service time = startup + size * beta.  Startup is drawn uniformly from
// [alpha_min, alpha_max] (matching the cost model's assumption) unless the
// access is sequential with the previous one, in which case only a small
// fraction of the window applies — striped round-robin access patterns do
// retain per-server sequentiality, and this is what keeps measured HDD
// startup below the raw average-seek figure.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/storage/device.hpp"

namespace harl::storage {

class HddDevice final : public StorageDevice {
 public:
  /// `sequential_factor` scales the sampled startup when an access starts
  /// exactly where the previous one ended (0 = free, 1 = full seek).
  HddDevice(TierProfile profile, std::uint64_t seed,
            double sequential_factor = 0.55);

  Seconds service_time(IoOp op, Bytes offset, Bytes size) override;
  Seconds last_startup() const override { return last_startup_; }
  const TierProfile& profile() const override { return profile_; }
  void reset() override;

 private:
  TierProfile profile_;
  std::uint64_t seed_;
  double sequential_factor_;
  Rng rng_;
  Bytes last_end_ = ~static_cast<Bytes>(0);  // "nowhere": first access seeks
  Seconds last_startup_ = 0.0;
};

}  // namespace harl::storage
