// Flash SSD device model (SServer).
//
// Reads and writes use separate startup windows and transfer rates (writes
// pay for garbage collection and wear leveling, paper Section III-D).  An
// optional coarse GC model adds a stall after every `gc_interval` bytes
// written, modelling periodic background cleanup kicking in under sustained
// write load.
#pragma once

#include <cstdint>
#include <utility>

#include "src/common/rng.hpp"
#include "src/storage/device.hpp"

namespace harl::storage {

class SsdDevice final : public StorageDevice {
 public:
  struct GcModel {
    Bytes interval = 0;       ///< bytes written between stalls; 0 disables GC
    Seconds stall = 0.0;      ///< extra time charged when a stall triggers
  };

  SsdDevice(TierProfile profile, std::uint64_t seed, GcModel gc);
  SsdDevice(TierProfile profile, std::uint64_t seed)
      : SsdDevice(std::move(profile), seed, GcModel{}) {}

  Seconds service_time(IoOp op, Bytes offset, Bytes size) override;
  Seconds last_startup() const override { return last_startup_; }
  const TierProfile& profile() const override { return profile_; }
  void reset() override;

  /// Bytes written since construction/reset (drives the GC model and the
  /// space-accounting diagnostics in src/pfs/space.hpp).
  Bytes bytes_written() const { return bytes_written_; }

 private:
  TierProfile profile_;
  std::uint64_t seed_;
  GcModel gc_;
  Rng rng_;
  Bytes bytes_written_ = 0;
  Bytes gc_debt_ = 0;
  Seconds last_startup_ = 0.0;
};

}  // namespace harl::storage
