// Chunk-granular read-cache directory (HACache direction, PAPERS.md).
//
// CacheTier is the *policy* half of the cache layer: a deterministic
// directory mapping chunk keys to {absent, filling, resident} states with
// LRU or segmented-LRU (probation/protected) eviction under a byte budget.
// It knows nothing about the simulator — pfs::CacheManager drives it from
// the live data path, and core::analyze_cached replays a trace through a
// private instance to estimate per-region hit rates offline.  Keeping the
// structure pure is what makes the planner's expectation and the runtime's
// behaviour the *same* policy by construction.
//
// Entries are exactly one chunk each; a fill in flight pins its entry
// (kFilling entries are never eviction victims), and invalidation of a
// filling entry poisons the fill: the later fill_complete() finds the key
// absent and reports the fill discarded.  All bookkeeping is intrusive
// (prev/next keys inside the directory map), so no per-operation
// allocation beyond the map node itself.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/units.hpp"

namespace harl::storage {

/// Eviction policy of the read-cache directory.
enum class CachePolicy : std::uint8_t {
  kLru,   ///< single recency list
  kSlru,  ///< segmented LRU: probation + protected (hit in probation promotes)
};

/// Parses "lru" / "slru".  Throws std::invalid_argument otherwise.
CachePolicy parse_cache_policy(std::string_view text);
const char* to_string(CachePolicy policy);

class CacheTier {
 public:
  struct Config {
    Bytes capacity = 0;   ///< total cache budget in bytes
    Bytes chunk = MiB;    ///< chunk granularity; every entry is one chunk
    CachePolicy policy = CachePolicy::kLru;
    /// SLRU only: share of slots reserved for the protected segment.
    double protected_fraction = 0.8;
  };

  enum class State : std::uint8_t { kAbsent, kFilling, kResident };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< absent + filling lookups
    std::uint64_t admissions = 0;  ///< fills issued (kAbsent -> kFilling)
    std::uint64_t evictions = 0;   ///< resident entries dropped for room
    std::uint64_t invalidations = 0;
    std::uint64_t fills_completed = 0;
    std::uint64_t fills_discarded = 0;  ///< invalidated while the fill flew
    Bytes hit_bytes = 0;
    Bytes miss_bytes = 0;
  };

  explicit CacheTier(Config config);

  /// Number of chunk slots the budget affords (capacity / chunk).
  std::size_t slots() const { return slots_; }
  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  /// One foreground read touching `key`.  Counts a hit only for resident
  /// entries (a chunk still filling cannot serve the read) and refreshes
  /// recency on hit.
  State lookup(std::uint64_t key);

  /// Peek without counting or touching recency (tests / estimator).
  State state(std::uint64_t key) const;

  /// Starts caching a missed chunk: marks it kFilling and evicts resident
  /// entries into `evicted` until there is room.  Returns false (and admits
  /// nothing) when the budget is zero, the key is already present, or every
  /// current entry is a pinned in-flight fill.
  bool admit(std::uint64_t key, std::vector<std::uint64_t>& evicted);

  /// The fill for `key` landed on the cache device.  Returns true when the
  /// chunk became resident; false when an invalidation raced the fill and
  /// the filled bytes must be discarded.
  bool fill_complete(std::uint64_t key);

  /// Records that a superseded in-flight fill landed and its bytes were
  /// dropped without consulting the directory — used when the key was
  /// re-admitted with a fresh fill after the stale one launched, so
  /// fill_complete(key) would wrongly complete the *new* fill.
  void discard_fill() { ++stats_.fills_discarded; }

  /// A foreground write overlapped `key`: drop it (resident) or poison the
  /// in-flight fill (filling).  Returns true when an entry existed.
  bool invalidate(std::uint64_t key);

  /// Drops every entry without counting evictions — used when a device
  /// re-split re-maps every slot's (device, address) pair, making all
  /// resident data unreachable at its old coordinates.
  void clear();

  std::size_t size() const { return entries_.size(); }
  std::size_t resident() const { return resident_; }
  std::size_t filling() const { return size() - resident_; }

 private:
  static constexpr std::uint64_t kNullKey = ~std::uint64_t{0};
  enum Segment : std::uint8_t { kProbation = 0, kProtected = 1 };

  struct Entry {
    State state = State::kFilling;
    std::uint8_t segment = kProbation;
    std::uint64_t prev = kNullKey;
    std::uint64_t next = kNullKey;
  };
  struct List {
    std::uint64_t head = kNullKey;
    std::uint64_t tail = kNullKey;
    std::size_t size = 0;
  };

  void unlink(std::uint64_t key, Entry& entry);
  void push_front(Segment segment, std::uint64_t key, Entry& entry);
  void touch(std::uint64_t key, Entry& entry);
  /// Evicts the coldest *resident* entry; returns its key or kNullKey when
  /// everything left is a pinned fill.
  std::uint64_t evict_one();
  void erase(std::uint64_t key, Entry& entry);

  Config config_;
  std::size_t slots_ = 0;
  std::size_t protected_slots_ = 0;
  Stats stats_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  List lists_[2];
  std::size_t resident_ = 0;
};

}  // namespace harl::storage
