#include "src/storage/cache_tier.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace harl::storage {

CachePolicy parse_cache_policy(std::string_view text) {
  if (text == "lru") return CachePolicy::kLru;
  if (text == "slru") return CachePolicy::kSlru;
  throw std::invalid_argument("unknown cache policy '" + std::string(text) +
                              "' (expected lru or slru)");
}

const char* to_string(CachePolicy policy) {
  return policy == CachePolicy::kLru ? "lru" : "slru";
}

CacheTier::CacheTier(Config config) : config_(config) {
  if (config_.chunk == 0) throw std::invalid_argument("cache chunk must be > 0");
  slots_ = static_cast<std::size_t>(config_.capacity / config_.chunk);
  if (config_.policy == CachePolicy::kSlru) {
    protected_slots_ = static_cast<std::size_t>(
        std::floor(static_cast<double>(slots_) * config_.protected_fraction));
  }
  entries_.reserve(slots_);
}

void CacheTier::unlink(std::uint64_t key, Entry& entry) {
  List& list = lists_[entry.segment];
  if (entry.prev != kNullKey) {
    entries_[entry.prev].next = entry.next;
  } else {
    list.head = entry.next;
  }
  if (entry.next != kNullKey) {
    entries_[entry.next].prev = entry.prev;
  } else {
    list.tail = entry.prev;
  }
  entry.prev = entry.next = kNullKey;
  --list.size;
  (void)key;
}

void CacheTier::push_front(Segment segment, std::uint64_t key, Entry& entry) {
  List& list = lists_[segment];
  entry.segment = segment;
  entry.prev = kNullKey;
  entry.next = list.head;
  if (list.head != kNullKey) entries_[list.head].prev = key;
  list.head = key;
  if (list.tail == kNullKey) list.tail = key;
  ++list.size;
}

void CacheTier::touch(std::uint64_t key, Entry& entry) {
  if (config_.policy == CachePolicy::kLru || protected_slots_ == 0) {
    unlink(key, entry);
    push_front(kProbation, key, entry);
    return;
  }
  // SLRU: a probation hit earns promotion; a protected hit refreshes.  The
  // protected segment sheds its own tail back to probation when it overflows,
  // so one-touch scans cannot flush the reuse set.
  unlink(key, entry);
  push_front(kProtected, key, entry);
  while (lists_[kProtected].size > protected_slots_) {
    const std::uint64_t demoted = lists_[kProtected].tail;
    Entry& victim = entries_[demoted];
    unlink(demoted, victim);
    push_front(kProbation, demoted, victim);
  }
}

CacheTier::State CacheTier::lookup(std::uint64_t key) {
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.state == State::kResident) {
    ++stats_.hits;
    stats_.hit_bytes += config_.chunk;
    touch(key, it->second);
    return State::kResident;
  }
  ++stats_.misses;
  stats_.miss_bytes += config_.chunk;
  return it == entries_.end() ? State::kAbsent : State::kFilling;
}

CacheTier::State CacheTier::state(std::uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? State::kAbsent : it->second.state;
}

std::uint64_t CacheTier::evict_one() {
  // Coldest first: probation tail, then protected tail; skip pinned fills.
  for (int segment : {kProbation, kProtected}) {
    for (std::uint64_t key = lists_[segment].tail; key != kNullKey;) {
      Entry& entry = entries_[key];
      if (entry.state == State::kResident) {
        erase(key, entry);
        ++stats_.evictions;
        return key;
      }
      key = entry.prev;
    }
  }
  return kNullKey;
}

void CacheTier::erase(std::uint64_t key, Entry& entry) {
  if (entry.state == State::kResident) --resident_;
  unlink(key, entry);
  entries_.erase(key);
}

bool CacheTier::admit(std::uint64_t key, std::vector<std::uint64_t>& evicted) {
  if (slots_ == 0) return false;
  if (entries_.count(key) != 0) return false;
  while (entries_.size() >= slots_) {
    const std::uint64_t victim = evict_one();
    if (victim == kNullKey) return false;  // every slot is a pinned fill
    evicted.push_back(victim);
  }
  Entry entry;
  entry.state = State::kFilling;
  auto [it, inserted] = entries_.emplace(key, entry);
  push_front(kProbation, key, it->second);
  ++stats_.admissions;
  return true;
}

bool CacheTier::fill_complete(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.state != State::kFilling) {
    ++stats_.fills_discarded;
    return false;
  }
  it->second.state = State::kResident;
  ++resident_;
  ++stats_.fills_completed;
  return true;
}

bool CacheTier::invalidate(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  ++stats_.invalidations;
  erase(key, it->second);
  return true;
}

void CacheTier::clear() {
  entries_.clear();
  lists_[kProbation] = List{};
  lists_[kProtected] = List{};
  resident_ = 0;
}

}  // namespace harl::storage
