#include "src/storage/faulty.hpp"

#include <stdexcept>
#include <utility>

namespace harl::storage {

FaultyDevice::FaultyDevice(std::unique_ptr<StorageDevice> inner, Faults faults)
    : inner_(std::move(inner)), faults_(faults) {
  if (!inner_) throw std::invalid_argument("FaultyDevice needs a device");
  if (faults_.slowdown < 1.0) {
    throw std::invalid_argument("slowdown must be >= 1");
  }
  if (faults_.hiccup_every < 0 || faults_.hiccup_delay < 0.0) {
    throw std::invalid_argument("invalid hiccup configuration");
  }
}

Seconds FaultyDevice::service_time(IoOp op, Bytes offset, Bytes size) {
  ++accesses_;
  Seconds t = inner_->service_time(op, offset, size) * faults_.slowdown;
  Seconds startup = inner_->last_startup() * faults_.slowdown;
  if (faults_.hiccup_every > 0 &&
      accesses_ % static_cast<std::uint64_t>(faults_.hiccup_every) == 0) {
    t += faults_.hiccup_delay;
    startup += faults_.hiccup_delay;
    ++hiccups_;
  }
  last_startup_ = startup;
  return t;
}

void FaultyDevice::reset() {
  inner_->reset();
  accesses_ = 0;
  hiccups_ = 0;
  last_startup_ = 0.0;
}

}  // namespace harl::storage
