#!/usr/bin/env python3
"""Summarize and validate harl_sim observability output.

Usage:
  obs_report.py METRICS.json [--trace TRACE.json] [--check] [--quiet]
  obs_report.py --timeseries TS.json [--require-health] [--html DASH.html]

METRICS.json is the file written by `harl_sim metrics-out=...`; TRACE.json is
the Chrome trace-event file from `trace-out=...`; TS.json is the telemetry
plane dump from `timeseries-out=...` (windowed per-server time series plus
the straggler/SLO health monitor summary, DESIGN.md §15).

Default mode prints, per scheme: the per-server I/O-time breakdown (disk busy
+ server-NIC busy, the paper's Fig. 1a quantity) with utilization, the
measured request decomposition (T_X / T_S / T_T medians per tier), and the
cost-model relative-error distribution per region.

--check validates instead of summarizing:
  * metrics: schemes present; busy/jobs/utilization sane; histogram
    bucket counts consistent with totals; counters non-negative; adaptive
    runs (adaptive.* / migration.* families) internally consistent —
    epoch installs never exceed recommendations, and installed epochs
    imply migration traffic (bytes, chunks, interference).
  * cache runs (cache.* families): the directory counters reconcile —
    lookups == hits + misses, admissions == fills_completed +
    fills_discarded (the run drains, so every issued fill either landed
    or was poisoned), hit/miss byte totals consistent with the lookup
    counts, and fill traffic present whenever fills completed.
  * devices (heterogeneous fleets only): per-server device blocks carry
    consecutive server indices, positive speed factors in canonical
    (ascending-per-tier) order, and non-negative busy times; when both a
    fixed-stripe scheme and the offline HARL scheme are present, HARL's
    relative busy-time spread across the devices it actually drives on
    each aged tier must not exceed the fixed layout's — the device-aware
    planner either levels aged tiers or excludes the stragglers outright
    (idle devices don't count as imbalance), blind round-robin striping
    does neither.
  * trace: valid Chrome trace JSON; complete ("X") spans on each track are
    disjoint and sorted, so span nesting is monotone per track; every async
    "b" has a matching "e" with end >= begin; instants carry timestamps.
  * timeseries (--timeseries): column arrays all share the window count,
    window indices strictly increase, per-window busy never exceeds the
    window width, utilization == busy/interval, and latency quantiles are
    monotone (p50 <= p95 <= p99) wherever the window saw jobs.
  * health (--timeseries): per-server scores/counters sane, SLO attainment
    never exceeds totals, recover counts never exceed flag counts.
--require-adaptive additionally fails unless at least one scheme carries
adaptive epoch metrics (used by the CI adaptive smoke step).
--require-health additionally fails unless at least one scheme flagged a
straggler AND (when an SLO is armed) the flagged servers' attainment is
strictly below every healthy server's — i.e. the regression localizes to
the injected straggler (used by the CI telemetry smoke step).
--require-tenant additionally fails unless at least one scheme's health
block carries a per-tenant SLO attainment table ("tenants", written by
namespace population runs with files >= 1 and an SLO) whose counters
reconcile (used by the CI rebuild-storm smoke step).
--html writes a self-contained SVG dashboard (no JavaScript) of the
per-server utilization / p99 latency / queue-depth timelines.
Exit code 0 when every check passes, 1 otherwise; malformed input (empty,
truncated, or wrong-shape JSON) is a clear FAIL, never a traceback.
"""

import argparse
import json
import sys
from collections import defaultdict

ANSI_OK = True


def fail(msg):
    print(f"obs_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def load_doc(path):
    """Loads a report file and insists on the top-level envelope shape.

    Truncated or empty files die inside load_json; this catches valid JSON
    of the wrong shape (null, a list, a bare number) so every malformed
    input is a clear FAIL instead of an AttributeError traceback.
    """
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top-level JSON must be an object, got "
             f"{type(doc).__name__}")
    return doc


def scheme_list(doc, path):
    schemes = doc.get("schemes")
    if not isinstance(schemes, list) or not schemes:
        fail(f"{path}: no schemes array")
    for i, scheme in enumerate(schemes):
        if not isinstance(scheme, dict):
            fail(f"{path}: schemes[{i}] is not an object")
    return schemes


# --- metrics ----------------------------------------------------------------

def counter_total(report, name):
    """Sum of a counter family's series values, or None if absent."""
    series = [s for s in report.get("metrics", [])
              if s.get("name") == name and s.get("type") == "counter"]
    if not series:
        return None
    return sum(s.get("value", 0.0) for s in series)


def check_adaptive(label, report):
    """Consistency of the adaptive.* / migration.* counter families."""
    windows = counter_total(report, "adaptive.windows")
    if windows is None:
        return False  # not an adaptive run
    recs = counter_total(report, "adaptive.recommendations") or 0.0
    epochs = counter_total(report, "adaptive.epoch_installs") or 0.0
    deferred = counter_total(report, "adaptive.recommendations_deferred") or 0.0
    migrated = counter_total(report, "migration.migrated_bytes") or 0.0
    chunks = counter_total(report, "migration.chunks") or 0.0
    interference = counter_total(report, "migration.interference_s") or 0.0
    if epochs + deferred > recs + 1e-9:
        fail(f"metrics[{label}]: {epochs} epochs + {deferred} deferred exceed "
             f"{recs} recommendations")
    if recs > windows + 1e-9:
        fail(f"metrics[{label}]: more recommendations ({recs}) than analysis "
             f"windows ({windows})")
    if epochs > 0 and (migrated <= 0 or chunks <= 0):
        fail(f"metrics[{label}]: {epochs} epoch(s) installed but no migration "
             f"traffic recorded")
    if epochs == 0 and migrated > 0:
        fail(f"metrics[{label}]: migration bytes without any installed epoch")
    if interference < -1e-12:
        fail(f"metrics[{label}]: negative migration interference")
    evals = counter_total(report, "adaptive.cost_evals") or 0.0
    if windows > 0 and evals <= 0:
        fail(f"metrics[{label}]: analysis windows ran but zero cost "
             f"evaluations recorded")
    return True


def check_cache(label, report):
    """Reconciliation of the cache.* counter families (read-cache runs)."""
    lookups = counter_total(report, "cache.lookups")
    if lookups is None:
        return False  # not a cache-enabled run
    hits = counter_total(report, "cache.hits") or 0.0
    misses = counter_total(report, "cache.misses") or 0.0
    admissions = counter_total(report, "cache.admissions") or 0.0
    completed = counter_total(report, "cache.fills_completed") or 0.0
    discarded = counter_total(report, "cache.fills_discarded") or 0.0
    evictions = counter_total(report, "cache.evictions") or 0.0
    hit_bytes = counter_total(report, "cache.hit_bytes") or 0.0
    miss_bytes = counter_total(report, "cache.miss_bytes") or 0.0
    fill_bytes = counter_total(report, "cache.fill_bytes") or 0.0
    if abs(hits + misses - lookups) > 1e-6:
        fail(f"metrics[{label}]: cache lookups {lookups} != hits {hits} + "
             f"misses {misses}")
    # The measured run drains before stats are read, so every admission's
    # fill either landed or was poisoned by an invalidate/re-split.
    if abs(completed + discarded - admissions) > 1e-6:
        fail(f"metrics[{label}]: cache admissions {admissions} != "
             f"fills_completed {completed} + fills_discarded {discarded}")
    if hits > 0 and hit_bytes <= 0:
        fail(f"metrics[{label}]: {hits} cache hits but zero hit bytes")
    if misses > 0 and miss_bytes <= 0:
        fail(f"metrics[{label}]: {misses} cache misses but zero miss bytes")
    if completed > 0 and fill_bytes <= 0:
        fail(f"metrics[{label}]: {completed} fills completed but zero fill "
             f"traffic")
    if evictions > admissions:
        fail(f"metrics[{label}]: more cache evictions ({evictions}) than "
             f"admissions ({admissions})")
    return True


def is_fixed_label(label):
    """Fixed-stripe scheme labels look like a size ("64K", "1M")."""
    return (len(label) >= 2 and label[-1] in "KMG"
            and label[:-1].isdigit())


def check_devices(doc):
    """Validate per-scheme devices blocks; cross-check busy-time spread."""
    # label -> {tier: relative busy spread over that aged tier}
    spreads = {}
    for scheme in doc.get("schemes", []):
        label = scheme.get("label", "?")
        devices = scheme.get("devices")
        if devices is None:
            continue
        if not isinstance(devices, list) or not devices:
            fail(f"metrics[{label}]: devices block present but empty")
        by_tier = defaultdict(list)  # tier -> [(factor, busy_s)]
        for i, dev in enumerate(devices):
            for key in ("server", "tier", "name", "factor", "busy_s"):
                if key not in dev:
                    fail(f"metrics[{label}]: devices[{i}] missing {key!r}")
            if dev["server"] != i:
                fail(f"metrics[{label}]: devices[{i}] has server index "
                     f"{dev['server']} (must be consecutive)")
            if dev["factor"] <= 0:
                fail(f"metrics[{label}]: devices[{i}] has non-positive "
                     f"speed factor {dev['factor']}")
            if dev["busy_s"] < -1e-12:
                fail(f"metrics[{label}]: devices[{i}] has negative busy "
                     f"time")
            by_tier[dev["tier"]].append((dev["factor"], dev["busy_s"]))
        if all(f == 1.0 for rows in by_tier.values() for f, _ in rows):
            fail(f"metrics[{label}]: devices block present but every "
                 f"factor is 1.0 (homogeneous fleets must omit it)")
        tier_spreads = {}
        for tier, rows in by_tier.items():
            factors = [f for f, _ in rows]
            if factors != sorted(factors):
                fail(f"metrics[{label}]: tier {tier} device factors "
                     f"{factors} not in canonical ascending order")
            if len(set(factors)) > 1:
                # A device-aware plan may exclude aged stragglers from the
                # stripe entirely; an idle device is the planner's answer,
                # not an imbalance, so spread counts participants only.
                busy = [b for _, b in rows if b > 1e-12]
                if len(busy) >= 2:
                    mean = sum(busy) / len(busy)
                    if mean > 0:
                        tier_spreads[tier] = (max(busy) - min(busy)) / mean
        spreads[label] = tier_spreads
    if not spreads:
        return 0
    # Utilization-spread cross-check: across the devices it drives, the
    # device-aware offline HARL scheme levels aged tiers relative to
    # blind fixed striping.
    fixed = next((spreads[lbl] for lbl in spreads if is_fixed_label(lbl)),
                 None)
    harl = spreads.get("HARL")
    if fixed is not None and harl is not None:
        for tier, harl_spread in harl.items():
            fixed_spread = fixed.get(tier)
            if fixed_spread is None or fixed_spread <= 0:
                continue
            if harl_spread > fixed_spread * 1.02:
                fail(f"devices: HARL busy-time spread {harl_spread:.3f} "
                     f"over its participants on aged tier {tier} exceeds "
                     f"fixed striping's {fixed_spread:.3f} — device-aware "
                     f"planning should level the devices it drives")
    return len(spreads)


def check_metrics(doc, path="metrics"):
    schemes = scheme_list(doc, path)
    adaptive_schemes = 0
    cache_schemes = 0
    for scheme in schemes:
        label = scheme.get("label", "?")
        report = scheme.get("report")
        if not isinstance(report, dict):
            fail(f"metrics[{label}]: missing report")
        horizon = report.get("horizon_s", 0.0)
        if horizon < 0:
            fail(f"metrics[{label}]: negative horizon")
        if report.get("requests_completed", 0) < 0:
            fail(f"metrics[{label}]: negative request count")
        for res in report.get("resources", []):
            name = res.get("name", "?")
            if res.get("busy_s", 0.0) < -1e-12:
                fail(f"metrics[{label}]/{name}: negative busy time")
            if res.get("queue_delay_s", 0.0) < -1e-12:
                fail(f"metrics[{label}]/{name}: negative queue delay")
            util = res.get("utilization", 0.0)
            if not (0.0 <= util <= 1.0 + 1e-9):
                fail(f"metrics[{label}]/{name}: utilization {util} not in [0,1]")
            tl = res.get("busy_timeline", {})
            width = tl.get("bucket_s", 0.0)
            if width <= 0:
                fail(f"metrics[{label}]/{name}: non-positive timeline bucket")
            for v in tl.get("busy_s", []):
                if v < -1e-12 or v > width * (1 + 1e-9):
                    fail(f"metrics[{label}]/{name}: timeline bucket busy {v} "
                         f"outside [0, {width}]")
        for series in report.get("metrics", []):
            if series.get("type") == "counter":
                if series.get("value", 0.0) < -1e-12:
                    fail(f"metrics[{label}]/{series.get('name')}: negative "
                         f"counter")
                continue
            if series.get("type") not in ("histogram", "sketch"):
                continue
            count = series.get("count", 0)
            bucket_total = sum(b[2] for b in series.get("buckets", []))
            if bucket_total > count:
                fail(f"metrics[{label}]/{series.get('name')}: bucket counts "
                     f"{bucket_total} exceed total {count}")
            if count > 0 and series.get("min", 0) > series.get("max", 0):
                fail(f"metrics[{label}]/{series.get('name')}: min > max")
            if series.get("type") == "sketch" and count > 0:
                # Mergeable quantile sketch: the reported quantiles come
                # from one monotone CDF walk, so they must be monotone too.
                qs = [series.get(q, 0.0)
                      for q in ("p50", "p95", "p99", "p999")]
                if any(b < a - 1e-12 for a, b in zip(qs, qs[1:])):
                    fail(f"metrics[{label}]/{series.get('name')}: sketch "
                         f"quantiles not monotone: {qs}")
                if (qs[0] < series.get("min", 0.0) - 1e-12
                        or qs[-1] > series.get("max", 0.0) + 1e-12):
                    fail(f"metrics[{label}]/{series.get('name')}: sketch "
                         f"quantiles outside [min, max]")
        engine = scheme.get("engine")
        if engine is not None:
            # PDES health block (present when the run used sim-threads>0):
            # a conservative executor must never deliver an event into a
            # closed window, on any machine, at any worker count.
            if not isinstance(engine, dict):
                fail(f"metrics[{label}]: engine block is not an object")
            if engine.get("sim_threads", 0) < 1:
                fail(f"metrics[{label}]: engine block with sim_threads < 1")
            for key in ("mailbox_enqueues", "window_stalls",
                        "lookahead_violations"):
                if engine.get(key, 0) < 0:
                    fail(f"metrics[{label}]: negative engine counter {key}")
            if engine.get("lookahead_violations", 0) != 0:
                fail(f"metrics[{label}]: {engine['lookahead_violations']} "
                     f"lookahead violations — PDES delivered into a closed "
                     f"window")
        if check_adaptive(label, report):
            adaptive_schemes += 1
        if check_cache(label, report):
            cache_schemes += 1
    return len(schemes), adaptive_schemes, cache_schemes


def server_breakdown(report):
    """Per server entity: disk busy + server-NIC busy (Fig. 1a I/O time)."""
    servers = {}
    for res in report.get("resources", []):
        kind = res.get("kind")
        entity = res.get("entity")
        if entity is None or kind not in ("server_disk", "server_nic"):
            continue
        row = servers.setdefault(entity, {
            "name": None, "tier": None, "is_ssd": False,
            "disk_s": 0.0, "nic_s": 0.0, "jobs": 0, "depth_max": 0,
        })
        if kind == "server_disk":
            row["name"] = res.get("name")
            row["tier"] = res.get("tier")
            row["is_ssd"] = bool(res.get("is_ssd"))
            row["disk_s"] = res.get("busy_s", 0.0)
            row["jobs"] = res.get("jobs", 0)
            row["depth_max"] = res.get("depth_max", 0)
        else:
            row["nic_s"] = res.get("busy_s", 0.0)
    return dict(sorted(servers.items()))


def histogram_rows(report, name):
    return [s for s in report.get("metrics", []) if s.get("name") == name]


def label_str(labels):
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def summarize(doc):
    for scheme in doc["schemes"]:
        report = scheme["report"]
        horizon = report.get("horizon_s", 0.0)
        print(f"== {scheme.get('label', '?')} "
              f"({scheme.get('layout', '')}, {scheme.get('regions', 1)} "
              f"region(s)) ==")
        print(f"horizon {horizon:.4f}s, "
              f"{report.get('requests_completed', 0)} requests, "
              f"{report.get('trace_events_recorded', 0)} trace events "
              f"({report.get('trace_events_dropped', 0)} dropped)")

        servers = server_breakdown(report)
        if servers:
            print("  per-server I/O time (disk + server NIC, Fig. 1a):")
            for entity, row in servers.items():
                io_time = row["disk_s"] + row["nic_s"]
                util = io_time / horizon if horizon > 0 else 0.0
                bar = "#" * int(round(40 * min(util, 1.0)))
                print(f"    s{entity:<2} {row['name'] or '?':<12} "
                      f"{io_time:9.4f}s (disk {row['disk_s']:.4f} + nic "
                      f"{row['nic_s']:.4f}) util {util:5.1%} "
                      f"depth<= {row['depth_max']:<4} {bar}")
            hs = [r["disk_s"] + r["nic_s"]
                  for r in servers.values() if not r["is_ssd"]]
            ss = [r["disk_s"] + r["nic_s"]
                  for r in servers.values() if r["is_ssd"]]
            if hs and ss:
                print(f"    HServer mean {sum(hs) / len(hs):.4f}s vs "
                      f"SServer mean {sum(ss) / len(ss):.4f}s "
                      f"(imbalance x{(sum(hs) / len(hs)) / (sum(ss) / len(ss)):.2f})"
                      if sum(ss) > 0 else "")

        comp = {}
        for name in ("request.t_x", "request.t_s", "request.t_t",
                     "request.queue_wait"):
            for series in histogram_rows(report, name):
                key = label_str(series.get("labels", {}))
                comp.setdefault(key, {})[name.split(".")[1]] = series
        if comp:
            print("  request decomposition (per sub-request, medians):")
            for key, parts in sorted(comp.items()):
                cells = []
                for part in ("t_x", "t_s", "t_t", "queue_wait"):
                    s = parts.get(part)
                    cells.append(f"{part}={s['p50'] * 1e3:8.3f}ms"
                                 if s and s.get("count") else f"{part}=      --")
                print(f"    [{key}] " + " ".join(cells))

        windows = counter_total(report, "adaptive.windows")
        if windows is not None:
            epochs = counter_total(report, "adaptive.epoch_installs") or 0
            migrated = counter_total(report, "migration.migrated_bytes") or 0
            print(f"  adaptive re-layout: {int(windows)} window(s) analyzed, "
                  f"{int(counter_total(report, 'adaptive.recommendations') or 0)} "
                  f"recommendation(s), {int(epochs)} epoch swap(s), "
                  f"{migrated / (1024 * 1024):.1f} MB migrated in "
                  f"{int(counter_total(report, 'migration.chunks') or 0)} "
                  f"chunk(s) "
                  f"({counter_total(report, 'migration.interference_s') or 0:.3f}s "
                  f"in flight)")

        cache_lookups = counter_total(report, "cache.lookups")
        if cache_lookups:
            hits = counter_total(report, "cache.hits") or 0
            print(f"  read cache: {int(cache_lookups)} lookups, "
                  f"{hits / cache_lookups:.1%} hits, "
                  f"{int(counter_total(report, 'cache.fills_completed') or 0)} "
                  f"fill(s) "
                  f"({(counter_total(report, 'cache.fill_bytes') or 0) / (1024 * 1024):.1f} MB), "
                  f"{int(counter_total(report, 'cache.evictions') or 0)} "
                  f"eviction(s), "
                  f"{int(counter_total(report, 'cache.invalidations') or 0)} "
                  f"invalidation(s)")

        errors = histogram_rows(report, "model.rel_error")
        if errors:
            print("  cost-model relative error |predicted-measured|/measured:")
            for series in errors:
                print(f"    [{label_str(series.get('labels', {}))}] "
                      f"n={series['count']} p50={series['p50']:.3f} "
                      f"p95={series['p95']:.3f} max={series['max']:.3f}")
        print()


# --- timeseries / health ----------------------------------------------------

TS_COLUMNS = ("jobs", "busy_s", "utilization", "depth_max",
              "lat_mean_s", "lat_p50_s", "lat_p95_s", "lat_p99_s")


def check_timeseries_block(label, ts):
    if not isinstance(ts, dict):
        fail(f"timeseries[{label}]: block is not an object")
    interval = ts.get("interval_s", 0.0)
    if not isinstance(interval, (int, float)) or interval <= 0:
        fail(f"timeseries[{label}]: non-positive interval {interval!r}")
    n = ts.get("windows")
    index = ts.get("window_index")
    if not isinstance(index, list) or len(index) != n:
        fail(f"timeseries[{label}]: window_index length != windows ({n})")
    if any(b <= a for a, b in zip(index, index[1:])):
        fail(f"timeseries[{label}]: window_index not strictly increasing")
    if ts.get("dropped_windows", 0) < 0:
        fail(f"timeseries[{label}]: negative dropped_windows")
    cache = ts.get("cache", {})
    for key in ("hit_bytes", "miss_bytes"):
        col = cache.get(key)
        if not isinstance(col, list) or len(col) != n:
            fail(f"timeseries[{label}]: cache.{key} length != windows")
        if any(v < 0 for v in col):
            fail(f"timeseries[{label}]: negative cache.{key}")
    servers = ts.get("servers")
    if not isinstance(servers, list):
        fail(f"timeseries[{label}]: no servers array")
    for srv in servers:
        sid = srv.get("server", "?")
        for key in TS_COLUMNS:
            col = srv.get(key)
            if not isinstance(col, list) or len(col) != n:
                fail(f"timeseries[{label}]/s{sid}: column {key} length "
                     f"!= windows ({n})")
        for w in range(n):
            busy = srv["busy_s"][w]
            # One FIFO disk per server: a window can never hold more busy
            # time than its own width.
            if busy < -1e-12 or busy > interval * (1 + 1e-9):
                fail(f"timeseries[{label}]/s{sid}: window {index[w]} busy "
                     f"{busy} outside [0, {interval}]")
            if abs(srv["utilization"][w] - busy / interval) > 1e-9:
                fail(f"timeseries[{label}]/s{sid}: window {index[w]} "
                     f"utilization != busy / interval")
            jobs = srv["jobs"][w]
            if jobs < 0 or srv["depth_max"][w] < 0:
                fail(f"timeseries[{label}]/s{sid}: negative jobs/depth")
            if jobs > 0:
                qs = [srv[k][w]
                      for k in ("lat_p50_s", "lat_p95_s", "lat_p99_s")]
                if any(b < a - 1e-12 for a, b in zip(qs, qs[1:])):
                    fail(f"timeseries[{label}]/s{sid}: window {index[w]} "
                         f"latency quantiles not monotone: {qs}")
                if srv["lat_mean_s"][w] < 0:
                    fail(f"timeseries[{label}]/s{sid}: negative latency")
    return len(servers)


def check_health_block(label, health):
    """Sanity of the monitor summary; returns the flagged server ids."""
    if not isinstance(health, dict):
        fail(f"health[{label}]: block is not an object")
    reqs = health.get("requests", {})
    for op in ("read", "write"):
        total = reqs.get(f"{op}_total", 0)
        met = reqs.get(f"{op}_met", 0)
        if total < 0 or met < 0 or met > total:
            fail(f"health[{label}]: {op} SLO attainment {met}/{total} "
                 f"inconsistent")
    servers = health.get("servers")
    if not isinstance(servers, list):
        fail(f"health[{label}]: no servers array")
    flagged = []
    for srv in servers:
        sid = srv.get("server", "?")
        if srv.get("score", 0.0) < 0:
            fail(f"health[{label}]/s{sid}: negative score")
        flags = srv.get("flag_count", 0)
        recovers = srv.get("recover_count", 0)
        if flags < 0 or recovers < 0 or recovers > flags:
            fail(f"health[{label}]/s{sid}: {recovers} recoveries for "
                 f"{flags} flag(s)")
        if srv.get("flagged") and flags == 0:
            fail(f"health[{label}]/s{sid}: flagged without a flag event")
        if srv.get("slo_subs_met", 0) > srv.get("slo_subs_total", 0):
            fail(f"health[{label}]/s{sid}: SLO met exceeds total")
        if srv.get("flagged"):
            flagged.append(sid)
    return flagged


def check_require_health(label, health, flagged):
    """The CI telemetry gate: a straggler was flagged, and when an SLO is
    armed the attainment regression localizes to the flagged server(s)."""
    if not flagged:
        return False
    if health.get("slo_s", 0.0) > 0:
        def attainment(srv):
            total = srv.get("slo_subs_total", 0)
            return srv.get("slo_subs_met", 0) / total if total > 0 else None

        bad, good = [], []
        for srv in health.get("servers", []):
            a = attainment(srv)
            if a is None:
                continue
            (bad if srv.get("server") in flagged else good).append(a)
        if bad and good and max(bad) >= min(good):
            fail(f"health[{label}]: flagged server SLO attainment "
                 f"{max(bad):.3f} not below every healthy server's "
                 f"(min {min(good):.3f}) — regression does not localize")
    return True


def check_tenants_block(label, health):
    """Per-tenant SLO attainment table of a namespace run; returns the
    tenant count (0 when the block is absent — single-file runs)."""
    tenants = health.get("tenants")
    if tenants is None:
        return 0
    if not isinstance(tenants, list) or not tenants:
        fail(f"health[{label}]: tenants block present but empty")
    for t in tenants:
        tid = t.get("tenant", "?")
        total = t.get("total", 0)
        met = t.get("met", 0)
        if total < 0 or met < 0 or met > total:
            fail(f"health[{label}]/t{tid}: tenant SLO {met}/{total} "
                 f"inconsistent")
        attainment = t.get("attainment", None)
        if attainment is None or not 0.0 <= attainment <= 1.0:
            fail(f"health[{label}]/t{tid}: attainment {attainment} "
                 f"outside [0, 1]")
        if total > 0 and abs(attainment - met / total) > 1e-9:
            fail(f"health[{label}]/t{tid}: attainment {attainment} does not "
                 f"match {met}/{total}")
    return len(tenants)


def check_timeseries(doc, path, require_health, require_tenant=False):
    schemes = scheme_list(doc, path)
    n_flagged_schemes = 0
    n_tenant_schemes = 0
    for scheme in schemes:
        label = scheme.get("label", "?")
        check_timeseries_block(label, scheme.get("timeseries"))
        flagged = check_health_block(label, scheme.get("health"))
        if check_require_health(label, scheme.get("health"), flagged):
            n_flagged_schemes += 1
        if check_tenants_block(label, scheme.get("health")) > 0:
            n_tenant_schemes += 1
    if require_health and n_flagged_schemes == 0:
        fail(f"{path}: no scheme flagged a straggler "
             f"(--require-health)")
    if require_tenant and n_tenant_schemes == 0:
        fail(f"{path}: no scheme carries per-tenant SLO attainment "
             f"(--require-tenant needs a population run with an SLO)")
    return len(schemes), n_flagged_schemes


def summarize_timeseries(doc):
    for scheme in doc["schemes"]:
        ts = scheme["timeseries"]
        health = scheme["health"]
        print(f"== {scheme.get('label', '?')} telemetry ==")
        print(f"  {ts['windows']} window(s) x {ts['interval_s']}s "
              f"({ts['dropped_windows']} dropped), "
              f"{len(ts['servers'])} server(s)")
        for srv in health.get("servers", []):
            state = "FLAGGED" if srv.get("flagged") else "ok"
            total = srv.get("slo_subs_total", 0)
            slo = (f", SLO {srv.get('slo_subs_met', 0)}/{total}"
                   if total else "")
            print(f"    s{srv['server']:<3} score {srv['score']:6.2f} "
                  f"[{state}] flags {srv['flag_count']} "
                  f"recoveries {srv['recover_count']}{slo}")
        print()


# --- HTML dashboard ----------------------------------------------------------

SVG_W, SVG_H, SVG_PAD = 640, 160, 28
PALETTE = ("#4363d8", "#3cb44b", "#e6194b", "#f58231", "#911eb4",
           "#46f0f0", "#f032e6", "#9a6324", "#808000", "#000075")


def svg_chart(title, windows, series, y_label):
    """One inline SVG: a polyline per server over the window axis."""
    top = max((max(vals) for _, vals, _ in series if vals), default=0.0)
    top = top if top > 0 else 1.0
    n = max(len(windows), 2)

    def x(i):
        return SVG_PAD + (SVG_W - 2 * SVG_PAD) * i / (n - 1)

    def y(v):
        return SVG_H - SVG_PAD - (SVG_H - 2 * SVG_PAD) * v / top

    parts = [f'<svg viewBox="0 0 {SVG_W} {SVG_H}" width="{SVG_W}" '
             f'height="{SVG_H}" role="img">',
             f'<text x="{SVG_PAD}" y="14" class="t">{title}</text>',
             f'<text x="{SVG_PAD}" y="{SVG_H - 8}" class="a">window '
             f'{windows[0]}..{windows[-1]} · y-max {top:.4g} {y_label}'
             f'</text>',
             f'<rect x="{SVG_PAD}" y="{SVG_PAD - 8}" '
             f'width="{SVG_W - 2 * SVG_PAD}" '
             f'height="{SVG_H - 2 * SVG_PAD - 8}" class="f"/>']
    for name, vals, color in series:
        pts = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(vals))
        parts.append(f'<polyline points="{pts}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5">'
                     f'<title>{name}</title></polyline>')
    parts.append("</svg>")
    return "".join(parts)


def write_html(doc, path):
    """Self-contained dashboard: no JavaScript, no external assets."""
    out = ["<!DOCTYPE html><html><head><meta charset='utf-8'>",
           "<title>harl telemetry dashboard</title><style>",
           "body{font:14px sans-serif;margin:24px;background:#fafafa}",
           ".t{font:bold 13px sans-serif}.a{font:11px sans-serif;"
           "fill:#666}",
           ".f{fill:#fff;stroke:#ddd}",
           "td,th{padding:2px 10px;text-align:right;"
           "border-bottom:1px solid #eee}",
           ".flag{color:#c00;font-weight:bold}",
           "</style></head><body><h1>harl telemetry dashboard</h1>"]
    for scheme in doc.get("schemes", []):
        label = scheme.get("label", "?")
        ts = scheme.get("timeseries", {})
        health = scheme.get("health", {})
        windows = ts.get("window_index", [])
        servers = ts.get("servers", [])
        flagged = {s.get("server") for s in health.get("servers", [])
                   if s.get("flagged")}
        out.append(f"<h2>{label}</h2>")
        out.append(f"<p>{ts.get('windows', 0)} window(s) × "
                   f"{ts.get('interval_s', 0)} s, "
                   f"{ts.get('dropped_windows', 0)} dropped; flagged "
                   f"stragglers: "
                   f"{sorted(flagged) if flagged else 'none'}</p>")
        if windows and servers:
            def color(i, sid):
                return "#c00" if sid in flagged \
                    else PALETTE[i % len(PALETTE)]

            for title, key, unit in (
                    ("utilization", "utilization", ""),
                    ("p99 service latency", "lat_p99_s", "s"),
                    ("max queue depth", "depth_max", "jobs")):
                series = [(f"s{srv.get('server')}", srv.get(key, []),
                           color(i, srv.get("server")))
                          for i, srv in enumerate(servers)]
                out.append(svg_chart(f"{label}: {title}", windows, series,
                                     unit))
        rows = health.get("servers", [])
        if rows:
            out.append("<table><tr><th>server</th><th>score</th>"
                       "<th>state</th><th>flags</th><th>recoveries</th>"
                       "<th>SLO subs met/total</th></tr>")
            for srv in rows:
                state = ("<span class='flag'>FLAGGED</span>"
                         if srv.get("flagged") else "ok")
                out.append(
                    f"<tr><td>s{srv.get('server')}</td>"
                    f"<td>{srv.get('score', 0):.2f}</td><td>{state}</td>"
                    f"<td>{srv.get('flag_count', 0)}</td>"
                    f"<td>{srv.get('recover_count', 0)}</td>"
                    f"<td>{srv.get('slo_subs_met', 0)}/"
                    f"{srv.get('slo_subs_total', 0)}</td></tr>")
            out.append("</table>")
    out.append("</body></html>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(out))


# --- trace ------------------------------------------------------------------

def check_trace(doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("trace: no traceEvents array")
    spans = defaultdict(list)       # (pid, tid) -> [(ts, dur)]
    asyncs = defaultdict(list)      # (pid, cat, id, name) -> [(ph, ts)]
    counts = defaultdict(int)
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph is None or "pid" not in e:
            fail(f"trace[{i}]: event without ph/pid")
        counts[ph] += 1
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"trace[{i}]: bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur", 0)
            if dur < 0:
                fail(f"trace[{i}]: negative dur")
            spans[(e["pid"], e.get("tid"))].append((ts, dur))
        elif ph in ("b", "e"):
            asyncs[(e["pid"], e.get("cat"), e.get("id"), e.get("name"))] \
                .append((ph, ts))
        elif ph != "i":
            fail(f"trace[{i}]: unexpected phase {ph!r}")

    # Complete spans on one track come from a FIFO resource: they must be
    # sorted by start and disjoint (allowing float round-off), which is what
    # makes per-track nesting monotone.
    for (pid, tid), track in spans.items():
        prev_end = -1.0
        prev_ts = -1.0
        for ts, dur in track:
            if ts < prev_ts:
                fail(f"trace pid={pid} tid={tid}: X spans out of order "
                     f"({ts} after {prev_ts})")
            if ts < prev_end - 1e-6:
                fail(f"trace pid={pid} tid={tid}: X spans overlap "
                     f"(start {ts} < previous end {prev_end})")
            prev_ts = ts
            prev_end = max(prev_end, ts + dur)

    for key, pair_events in asyncs.items():
        begins = [ts for ph, ts in pair_events if ph == "b"]
        ends = [ts for ph, ts in pair_events if ph == "e"]
        if len(begins) != 1 or len(ends) != 1:
            fail(f"trace async {key}: expected one b/e pair, got "
                 f"{len(begins)}b/{len(ends)}e")
        if ends[0] < begins[0] - 1e-9:
            fail(f"trace async {key}: ends before it begins")
    return counts


def main():
    parser = argparse.ArgumentParser(
        description="Summarize/validate harl_sim observability output")
    parser.add_argument("metrics", nargs="?",
                        help="metrics-out JSON file")
    parser.add_argument("--trace", help="trace-out Chrome trace JSON file")
    parser.add_argument("--timeseries",
                        help="timeseries-out telemetry JSON file")
    parser.add_argument("--check", action="store_true",
                        help="validate files instead of summarizing")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the OK lines in --check mode")
    parser.add_argument("--require-adaptive", action="store_true",
                        help="fail unless >=1 scheme has adaptive epoch "
                             "metrics")
    parser.add_argument("--require-cache", action="store_true",
                        help="fail unless >=1 scheme has read-cache metrics")
    parser.add_argument("--require-health", action="store_true",
                        help="fail unless >=1 scheme flagged a straggler "
                             "with a localized SLO regression")
    parser.add_argument("--require-tenant", action="store_true",
                        help="fail unless >=1 scheme carries a per-tenant "
                             "SLO attainment table (population runs)")
    parser.add_argument("--html",
                        help="write a self-contained SVG dashboard of the "
                             "--timeseries file to this path")
    args = parser.parse_args()
    if args.metrics is None and args.timeseries is None:
        parser.error("need a METRICS.json argument and/or --timeseries")
    if (args.require_health or args.require_tenant or args.html) \
            and args.timeseries is None:
        parser.error("--require-health/--require-tenant/--html need "
                     "--timeseries")

    n_schemes = n_adaptive = n_cache = n_devices = 0
    metrics_doc = None
    if args.metrics is not None:
        metrics_doc = load_doc(args.metrics)
        n_schemes, n_adaptive, n_cache = check_metrics(metrics_doc)
        n_devices = check_devices(metrics_doc)
        if args.require_adaptive and n_adaptive == 0:
            fail(f"{args.metrics}: no scheme carries adaptive epoch metrics "
                 f"(adaptive.* families)")
        if args.require_cache and n_cache == 0:
            fail(f"{args.metrics}: no scheme carries read-cache metrics "
                 f"(cache.* families)")
    trace_counts = None
    if args.trace:
        trace_counts = check_trace(load_doc(args.trace))
    ts_doc = None
    n_ts = n_health = 0
    if args.timeseries is not None:
        ts_doc = load_doc(args.timeseries)
        n_ts, n_health = check_timeseries(ts_doc, args.timeseries,
                                          args.require_health,
                                          args.require_tenant)
        if args.html:
            write_html(ts_doc, args.html)

    if args.check:
        if not args.quiet:
            if metrics_doc is not None:
                print(f"obs_report: OK: {args.metrics}: {n_schemes} "
                      f"scheme(s) valid ({n_adaptive} adaptive, {n_cache} "
                      f"cached, {n_devices} with device blocks)")
            if trace_counts is not None:
                total = sum(trace_counts.values())
                detail = ", ".join(f"{k}:{v}" for k, v in
                                   sorted(trace_counts.items()))
                print(f"obs_report: OK: {args.trace}: {total} events "
                      f"({detail}); spans nested per track, async pairs "
                      f"matched")
            if ts_doc is not None:
                print(f"obs_report: OK: {args.timeseries}: {n_ts} "
                      f"scheme(s) valid ({n_health} with flagged "
                      f"straggler(s))")
        return 0

    if metrics_doc is not None:
        summarize(metrics_doc)
    if ts_doc is not None:
        summarize_timeseries(ts_doc)
    if trace_counts is not None:
        total = sum(trace_counts.values())
        print(f"trace: {total} events "
              + ", ".join(f"{k}:{v}" for k, v in sorted(trace_counts.items())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
