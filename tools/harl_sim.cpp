// harl_sim — config-driven experiment runner.
//
// Runs one workload x layout-scheme grid on the simulated hybrid PFS and
// prints the comparison table.  All parameters are key=value arguments:
//
//   ./build/tools/harl_sim workload=ior request=512K procs=16 file=4G
//        requests=64 schemes=64K,256K,harl          (one command line)
//
// Keys (defaults in parentheses):
//   workload   ior | multiregion | btio            (ior)
//   procs      process count                       (16)
//   request    IOR request size                    (512K)
//   file       IOR file size                       (4G)
//   requests   IOR requests per process, 0 = full  (64)
//   coverage   multiregion coverage fraction       (0.1)
//   grid       BTIO grid points per dimension      (48)
//   dumps      BTIO max dumps, 0 = all             (4)
//   hservers   HDD server count                    (6)
//   sservers   SSD server count                    (2)
//   clients    compute nodes                       (8)
//   schemes    comma list: <size> | randN | harl | harl-file | segment
//              (64K,256K,harl)
//   seed       workload seed                       (7)
//   threads    worker threads, 0 = serial          (0)
//              parallelizes the planner's analysis AND the per-scheme
//              measured runs; tables are bit-identical at any width
//   stats      1 = print per-scheme event-engine counters (0)
//   save-plan  path; write the first analysis-based scheme's Plan
//              artifact (binary, or CSV if the path ends in .csv)
//   load-plan  path; Placing Phase only — append a scheme built from a
//              previously saved Plan artifact, skipping trace + analysis
//   metrics-out  path; per-scheme observability report JSON (per-server
//                utilization/queue timelines, T_X/T_S/T_T histograms)
//   trace-out    path; combined Chrome trace-event JSON of every scheme's
//                measured run (one pid per scheme; load in Perfetto)
//   trace-events ring-buffer capacity for trace events, 0 = unbounded
//   timeseries-out  path; windowed per-server telemetry + health summary
//   health       1 = arm the straggler/SLO health monitor
//   files        namespace population size, 0 = single-file mode
//   tenants      tenant count for population runs
//   zipf-tenant-theta  Zipf skew of files-per-tenant shares
//   replicas     per-region replica placement for population files
//   fail-server  global server index to kill mid-run (-1 = none)
//   fail-at      failure instant in simulated seconds
//
// `harl_sim help` prints this key table — generated from the same option
// table that validates arguments, so help and parser cannot drift.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/plan_artifact.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/population.hpp"
#include "src/harness/table.hpp"

using namespace harl;

namespace {

/// Every recognized key=value option.  This single table generates the help
/// text AND rejects unknown keys, so the two cannot drift apart (there is a
/// test greping `harl_sim help` for each key).
struct OptionSpec {
  const char* key;
  /// First line is the summary (defaults in parentheses); further lines are
  /// indented continuations.
  const char* help;
};

constexpr OptionSpec kOptions[] = {
    {"workload", "ior | multiregion | btio | zipf     (ior)"},
    {"procs", "process count                       (16)"},
    {"request", "IOR request size                    (512K)"},
    {"file", "IOR file size                       (4G)"},
    {"requests", "IOR requests per process, 0 = full  (64)"},
    {"coverage", "multiregion coverage fraction       (0.1)"},
    {"drift",
     "multiregion drift phases            (1)\n"
     "each phase replays the regions with request sizes scaled\n"
     "by drift-factor^phase (1 = classic static workload)"},
    {"drift-factor", "per-phase request-size scale factor (1.0)"},
    {"zipf-theta",
     "zipf skew exponent, 0 = uniform     (0.9)\n"
     "block popularity ~ 1/rank^theta over the whole file;\n"
     "all ranks share the hot set (read-cache stressor)"},
    {"zipf-reads", "zipf reads per process per phase    (256)"},
    {"zipf-phases", "zipf barrier-separated read phases  (2)"},
    {"grid", "BTIO grid points per dimension      (48)"},
    {"dumps", "BTIO max dumps, 0 = all             (4)"},
    {"hservers", "HDD server count                    (6)"},
    {"sservers", "SSD server count                    (2)"},
    {"clients", "compute nodes                       (8)"},
    {"device-spread",
     "age the second half of the SSD tier by this time\n"
     "factor (1.0 = homogeneous fleet); the planner sees the\n"
     "per-device speeds unless device-blind=1 (1.0)"},
    {"aging",
     "explicit per-device speed factors, e.g.\n"
     "aging=hserver=1:1:2,sserver=1:4 (one colon list per\n"
     "tier, one factor per server; overrides device-spread)"},
    {"device-blind",
     "1 = calibrate tier profiles only, hiding per-device\n"
     "aging from the planner (the tier-blind ablation arm) (0)"},
    {"schemes",
     "comma list: <size> | randN | harl | harl-adaptive |\n"
     "harl-file | segment                 (64K,256K,harl)"},
    {"adapt",
     "1 = append the harl-adaptive scheme: epoch 0 is the\n"
     "offline plan, then live window re-optimization swaps\n"
     "epochs and migrates changed ranges mid-run (0)"},
    {"adapt-window", "adaptive advisor requests per window (1024)"},
    {"adapt-min-gain",
     "min relative model-cost gain before an epoch swap (0.1)"},
    {"migrate-bw",
     "migration throttle, bytes/s of copied data (256M);\n"
     "background copies share the real servers and network"},
    {"cache-budget",
     "read-cache capacity in bytes over the fastest SSD\n"
     "devices, 0 = no cache (0); unless cache-blind=1 the\n"
     "Analysis Phase weighs reserving those devices as a\n"
     "chunk cache against striping over them"},
    {"cache-devices",
     "most SSD devices the read cache may claim      (1)"},
    {"cache-chunk", "read-cache chunk granularity        (1M)"},
    {"cache-policy", "read-cache eviction: lru | slru     (lru)"},
    {"cache-blind",
     "1 = run the cache but keep the planner blind to it:\n"
     "regions still stripe over the cache devices and the\n"
     "two roles contend (the bolted-on ablation arm) (0)"},
    {"seed", "workload seed                       (7)"},
    {"threads",
     "worker threads, 0 = serial          (0)\n"
     "parallelizes the planner's analysis AND the per-scheme\n"
     "measured runs; tables are bit-identical at any width"},
    {"sim-threads",
     "PDES workers per simulated run, 0 = sequential engine (0)\n"
     "shards one run's event loop across server/NIC logical\n"
     "processes (conservative windows, lookahead = min network\n"
     "latency / per-stripe overhead); every output is\n"
     "byte-identical at any width, including 0.  Composes with\n"
     "threads= (across-run x within-run parallelism)"},
    {"stats", "1 = print per-scheme event-engine counters (0)"},
    {"save-plan",
     "path; write the first analysis-based scheme's Plan\n"
     "artifact (binary, or CSV if the path ends in .csv)"},
    {"load-plan",
     "path; Placing Phase only — append a scheme built from a\n"
     "previously saved Plan artifact, skipping trace + analysis"},
    {"metrics-out",
     "path; per-scheme observability report JSON: per-server\n"
     "utilization and queue-depth timelines (Fig. 1a), T_X/T_S/T_T\n"
     "attribution histograms, cost-model error per region"},
    {"trace-out",
     "path; combined Chrome trace-event JSON of every scheme's\n"
     "measured run, one pid per scheme (load in Perfetto or\n"
     "chrome://tracing; validate with tools/obs_report.py --check)"},
    {"trace-events",
     "flight-recorder ring-buffer capacity, 0 = unbounded (0);\n"
     "when full, the oldest trace events are dropped"},
    {"timeseries-out",
     "path; per-scheme telemetry JSON: windowed per-server\n"
     "time series (columnar) plus the health monitor summary;\n"
     "arms the telemetry plane (DESIGN.md §15)"},
    {"timeseries-interval",
     "telemetry window width in simulated seconds (0.1 when\n"
     "timeseries-out or health=1 arms the plane, else off)"},
    {"health",
     "1 = arm the straggler/SLO health monitor even without\n"
     "timeseries-out (scores land in metrics-out / trace-out) (0)"},
    {"slo-ms",
     "request/sub-request SLO deadline in milliseconds, 0 = no\n"
     "SLO tracking (0); attainment is reported per op and per\n"
     "server (the per-server view localizes a straggler)"},
    {"gc-pause-ms",
     "periodic GC-pause duration in milliseconds on one server,\n"
     "0 = off (0); a deterministic straggler injector — service\n"
     "times inflate by gc-factor during the pause window"},
    {"gc-period", "GC-pause cycle length in seconds       (0.5)"},
    {"gc-factor", "service multiplier during a GC pause   (8.0)"},
    {"gc-server",
     "global server index to inject GC pauses on, -1 = the\n"
     "first SSD server (-1)"},
    {"files",
     "namespace population size, 0 = classic single-file mode (0)\n"
     "files >= 1 runs every scheme as a multi-file namespace: N\n"
     "files with rotating workload shapes, each planned and\n"
     "placed independently, all launched concurrently on ONE\n"
     "shared cluster (file= and request= default to 32M / 256K\n"
     "per file in this mode)"},
    {"tenants", "tenant count for population runs       (2)"},
    {"zipf-tenant-theta",
     "Zipf skew of files-per-tenant shares, 0 = uniform (0.8);\n"
     "tenant 0 is the hot tenant and owns proportionally more\n"
     "of the namespace"},
    {"replicas",
     "1 = per-region replica placement for population files (1)\n"
     "plan schemes pick each region's replica tier by modeled\n"
     "cost, other schemes use chained declustering; required\n"
     "for failure runs (degraded reads need a live copy)"},
    {"fail-server",
     "global server index to kill mid-run, -1 = none (-1);\n"
     "population mode only — foreground reads fail over to\n"
     "replicas and a throttled rebuild storm re-materializes\n"
     "the lost copies over the surviving servers"},
    {"fail-at", "failure instant in simulated seconds   (0.0)"},
};

std::string usage() {
  std::ostringstream out;
  out << "harl_sim — config-driven experiment runner.\n\n"
      << "All parameters are key=value arguments (defaults in parentheses):\n";
  for (const OptionSpec& opt : kOptions) {
    std::istringstream lines(opt.help);
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      if (first) {
        const std::string key(opt.key);
        out << "  " << key
            << std::string(key.size() < 13 ? 13 - key.size() : 1, ' ') << line
            << "\n";
        first = false;
      } else {
        out << std::string(15, ' ') << line << "\n";
      }
    }
  }
  out << "\nSeparate Analysis and Placing processes:\n"
      << "  harl_sim schemes=harl save-plan=ior.plan     # analyze + save\n"
      << "  harl_sim schemes=64K load-plan=ior.plan      # place from the "
         "artifact\n"
      << "\nObservability (flight recorder):\n"
      << "  harl_sim schemes=64K,harl metrics-out=m.json trace-out=t.json\n"
      << "  python3 tools/obs_report.py m.json --trace t.json --check\n"
      << "\nTelemetry plane (straggler timeline):\n"
      << "  harl_sim schemes=harl timeseries-out=ts.json health=1 "
         "slo-ms=5 gc-pause-ms=20\n"
      << "  python3 tools/obs_report.py --timeseries ts.json "
         "--require-health --html dash.html\n";
  return out.str();
}

/// Rejects keys that no OptionSpec covers (typos like thread=4 would
/// otherwise be silently ignored).
void validate_keys(const Config& cfg) {
  for (const auto& [key, value] : cfg.entries()) {
    bool known = false;
    for (const OptionSpec& opt : kOptions) {
      if (key == opt.key) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string valid;
      for (const OptionSpec& opt : kOptions) {
        if (!valid.empty()) valid += ", ";
        valid += opt.key;
      }
      throw std::invalid_argument("unknown option '" + key +
                                  "'; valid keys: " + valid);
    }
  }
}

void write_json_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream ss(text);
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

std::vector<std::string> split_on(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream ss(text);
  while (std::getline(ss, token, sep)) out.push_back(token);
  return out;
}

/// Applies device-spread= / aging= to the cluster config.  device-spread=F
/// ages the second half of the SSD tier by F; aging= gives explicit
/// per-server factor lists per tier name.
void apply_device_config(const Config& cfg, pfs::ClusterConfig& cluster) {
  const double spread = cfg.get_double("device-spread", 1.0);
  if (spread < 1.0) {
    throw std::invalid_argument("device-spread must be >= 1.0");
  }
  if (spread > 1.0) {
    const std::size_t aged = cluster.num_sservers / 2;
    cluster.ssd_factors.assign(cluster.num_sservers, 1.0);
    for (std::size_t i = cluster.num_sservers - aged;
         i < cluster.num_sservers; ++i) {
      cluster.ssd_factors[i] = spread;
    }
  }
  const std::string aging = cfg.get_or("aging", "");
  if (aging.empty()) return;
  cluster.hdd_factors.clear();
  cluster.ssd_factors.clear();
  for (const auto& clause : split_commas(aging)) {
    const auto eq = clause.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("aging clause needs tier=f0:f1:...: " +
                                  clause);
    }
    const std::string tier = clause.substr(0, eq);
    std::vector<double> factors;
    for (const auto& f : split_on(clause.substr(eq + 1), ':')) {
      factors.push_back(std::stod(f));
    }
    if (tier == "hserver") {
      cluster.hdd_factors = std::move(factors);
    } else if (tier == "sserver") {
      cluster.ssd_factors = std::move(factors);
    } else {
      throw std::invalid_argument("aging tier must be hserver or sserver: " +
                                  tier);
    }
  }
}

harness::LayoutScheme parse_scheme(const std::string& token) {
  if (token == "harl") return harness::LayoutScheme::harl();
  if (token == "harl-adaptive") return harness::LayoutScheme::harl_adaptive();
  if (token == "harl-file") return harness::LayoutScheme::file_level_harl();
  if (token == "segment") return harness::LayoutScheme::segment_level();
  if (token.rfind("rand", 0) == 0) {
    return harness::LayoutScheme::random_stripes(
        std::stoull(token.substr(4)));
  }
  return harness::LayoutScheme::fixed(parse_size(token));
}

harness::WorkloadBundle make_bundle(const Config& cfg) {
  const std::string kind = cfg.get_or("workload", "ior");
  if (kind == "ior") {
    workloads::IorConfig ior;
    ior.processes = static_cast<std::size_t>(cfg.get_int("procs", 16));
    ior.request_size = cfg.get_size("request", 512 * KiB);
    ior.file_size = cfg.get_size("file", 4 * GiB);
    ior.requests_per_process =
        static_cast<std::size_t>(cfg.get_int("requests", 64));
    ior.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
    return harness::ior_bundle(ior);
  }
  if (kind == "multiregion") {
    workloads::MultiRegionConfig mr;
    mr.processes = static_cast<std::size_t>(cfg.get_int("procs", 16));
    mr.coverage = cfg.get_double("coverage", 0.1);
    mr.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
    mr.drift_phases = static_cast<std::size_t>(cfg.get_int("drift", 1));
    mr.drift_factor = cfg.get_double("drift-factor", 1.0);
    return harness::multiregion_bundle(mr);
  }
  if (kind == "zipf") {
    workloads::ZipfConfig zipf;
    zipf.processes = static_cast<std::size_t>(cfg.get_int("procs", 16));
    zipf.file_size = cfg.get_size("file", 1 * GiB);
    zipf.request_size = cfg.get_size("request", 256 * KiB);
    zipf.reads_per_process =
        static_cast<std::size_t>(cfg.get_int("zipf-reads", 256));
    zipf.theta = cfg.get_double("zipf-theta", 0.9);
    zipf.read_phases =
        static_cast<std::size_t>(cfg.get_int("zipf-phases", 2));
    zipf.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
    return harness::zipf_bundle(zipf);
  }
  if (kind == "btio") {
    workloads::BtioConfig btio;
    btio.processes = static_cast<std::size_t>(cfg.get_int("procs", 16));
    btio.grid = static_cast<std::size_t>(cfg.get_int("grid", 48));
    btio.max_dumps = static_cast<int>(cfg.get_int("dumps", 4));
    return harness::btio_bundle(btio);
  }
  throw std::invalid_argument("unknown workload: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const auto& a : args) {
      if (a == "help" || a == "-h" || a == "--help") {
        std::cout << usage();
        return 0;
      }
    }
    const Config cfg = Config::from_args(args);
    validate_keys(cfg);

    harness::ExperimentOptions options;
    options.cluster.num_hservers =
        static_cast<std::size_t>(cfg.get_int("hservers", 6));
    options.cluster.num_sservers =
        static_cast<std::size_t>(cfg.get_int("sservers", 2));
    options.cluster.num_clients =
        static_cast<std::size_t>(cfg.get_int("clients", 8));
    apply_device_config(cfg, options.cluster);
    options.calibration.device_blind = cfg.get_int("device-blind", 0) != 0;

    // Optional parallelism: one pool drives both the planner's
    // region-parallel analysis and the harness's per-scheme measured runs
    // (nested use is safe — parallel_for is work-helping).  The pool must
    // outlive the experiment, which keeps pointers to it via the options.
    std::unique_ptr<ThreadPool> pool;
    const long long threads = cfg.get_int("threads", 0);
    if (threads < 0 || threads > 1024) {
      throw std::invalid_argument("threads must be in [0, 1024]");
    }
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
      options.planner.pool = pool.get();
      options.pool = pool.get();
    }

    const long long sim_threads = cfg.get_int("sim-threads", 0);
    if (sim_threads < 0 || sim_threads > 1024) {
      throw std::invalid_argument("sim-threads must be in [0, 1024]");
    }
    options.sim_threads = static_cast<unsigned>(sim_threads);

    // Adaptive (harl-adaptive scheme) tuning.  The advisor reuses the
    // planner options — including the shared pool — so per-window
    // re-optimizations are as fast as the offline Analysis Phase.
    options.adaptive.advisor.window =
        static_cast<std::size_t>(cfg.get_int("adapt-window", 1024));
    options.adaptive.advisor.min_gain = cfg.get_double("adapt-min-gain", 0.1);
    options.adaptive.advisor.planner = options.planner;
    options.adaptive.migrate_bandwidth =
        static_cast<double>(cfg.get_size("migrate-bw", 256 * MiB));

    // Read-cache tier: budget 0 keeps every code path (planner, runtime,
    // output) byte-identical to a cache-less build.
    options.cache.budget = cfg.get_size("cache-budget", 0);
    options.cache.chunk = cfg.get_size("cache-chunk", MiB);
    options.cache.devices =
        static_cast<std::size_t>(cfg.get_int("cache-devices", 1));
    options.cache.policy =
        storage::parse_cache_policy(cfg.get_or("cache-policy", "lru"));
    options.cache.blind = cfg.get_int("cache-blind", 0) != 0;

    const std::string metrics_out = cfg.get_or("metrics-out", "");
    const std::string trace_out = cfg.get_or("trace-out", "");
    if (!metrics_out.empty() || !trace_out.empty()) {
      options.observe = true;
      options.recorder.trace = !trace_out.empty();
      options.recorder.max_trace_events =
          static_cast<std::size_t>(cfg.get_int("trace-events", 0));
    }

    // Telemetry plane: timeseries-out or health=1 arms the HealthMonitor
    // (which forces observe); the default 0.1 s window suits the short
    // simulated makespans of the bundled workloads.
    const std::string timeseries_out = cfg.get_or("timeseries-out", "");
    const bool health = cfg.get_int("health", 0) != 0;
    double ts_interval = cfg.get_double("timeseries-interval", 0.0);
    if ((!timeseries_out.empty() || health) && ts_interval <= 0.0) {
      ts_interval = 0.1;
    }
    if (ts_interval < 0.0) {
      throw std::invalid_argument("timeseries-interval must be >= 0");
    }
    options.telemetry.interval = ts_interval;
    const double slo_ms = cfg.get_double("slo-ms", 0.0);
    if (slo_ms < 0.0) throw std::invalid_argument("slo-ms must be >= 0");
    options.telemetry.slo = slo_ms / 1000.0;

    // Deterministic straggler injection: periodic per-server GC pauses.
    const double gc_pause_ms = cfg.get_double("gc-pause-ms", 0.0);
    if (gc_pause_ms < 0.0) {
      throw std::invalid_argument("gc-pause-ms must be >= 0");
    }
    options.cluster.gc_pause.duration = gc_pause_ms / 1000.0;
    options.cluster.gc_pause.period = cfg.get_double("gc-period", 0.5);
    options.cluster.gc_pause.factor = cfg.get_double("gc-factor", 8.0);
    options.cluster.gc_pause.server = cfg.get_int("gc-server", -1);

    // Failure/rebuild storm (population mode only: degraded reads need the
    // per-file replicas a population run places).
    options.cluster.fail_server = cfg.get_int("fail-server", -1);
    options.cluster.fail_at = cfg.get_double("fail-at", 0.0);
    const long long n_files = cfg.get_int("files", 0);
    if (n_files < 0 || n_files > 4096) {
      throw std::invalid_argument("files must be in [0, 4096]");
    }
    if (options.cluster.fail_server >= 0 && n_files == 0) {
      throw std::invalid_argument(
          "fail-server needs a population run (files >= 1)");
    }

    std::vector<harness::LayoutScheme> schemes;
    for (const auto& token :
         split_commas(cfg.get_or("schemes", "64K,256K,harl"))) {
      schemes.push_back(parse_scheme(token));
    }
    if (cfg.get_int("adapt", 0) != 0) {
      bool present = false;
      for (const auto& s : schemes) {
        present |= s.kind == harness::SchemeKind::kHarlAdaptive;
      }
      if (!present) schemes.push_back(harness::LayoutScheme::harl_adaptive());
    }
    const std::string load_plan_path = cfg.get_or("load-plan", "");
    if (!load_plan_path.empty()) {
      schemes.push_back(harness::LayoutScheme::from_plan_file(load_plan_path));
    }

    if (n_files > 0) {
      // Namespace population mode: N files, T tenants, one shared cluster
      // per scheme.  save-plan/load-plan are single-file concepts.
      if (!cfg.get_or("save-plan", "").empty() || !load_plan_path.empty()) {
        throw std::invalid_argument(
            "save-plan/load-plan are single-file only (files=0)");
      }
      harness::PopulationSpec spec;
      spec.files = static_cast<std::size_t>(n_files);
      spec.tenants = static_cast<std::size_t>(cfg.get_int("tenants", 2));
      spec.tenant_theta = cfg.get_double("zipf-tenant-theta", 0.8);
      spec.processes = static_cast<std::size_t>(cfg.get_int("procs", 8));
      spec.file_size = cfg.get_size("file", 32 * MiB);
      spec.request_size = cfg.get_size("request", 256 * KiB);
      spec.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
      const auto population = harness::make_population(spec);

      harness::PopulationRunOptions popts;
      popts.replicate = cfg.get_int("replicas", 1) != 0;
      popts.rebuild_bandwidth =
          static_cast<double>(cfg.get_size("migrate-bw", 256 * MiB));

      harness::Experiment experiment(options);
      std::vector<harness::PopulationResult> pr(schemes.size());
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        pr[i] =
            harness::run_population(experiment, population, schemes[i], popts);
      }

      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto& r = pr[i];
        std::cout << "== " << schemes[i].label() << ": " << spec.files
                  << " file(s), " << spec.tenants << " tenant(s) ==\n";
        harness::Table table(
            {"file", "tenant", "layout", "regions", "MB/s", "epochs"});
        for (const auto& f : r.files) {
          table.add_row({
              f.name,
              std::to_string(f.tenant),
              f.layout_description,
              std::to_string(f.region_count),
              harness::cell(f.total.throughput() / (1024.0 * 1024.0), 1),
              std::to_string(f.adaptive_epochs),
          });
        }
        table.print(std::cout);
        std::cout << "aggregate "
                  << harness::cell(r.total.throughput() / (1024.0 * 1024.0), 1)
                  << " MB/s over "
                  << harness::cell(r.total.makespan, 4) << " s\n";
        if (options.cluster.fail_server >= 0) {
          std::cout << "failure: server " << options.cluster.fail_server
                    << " at " << harness::cell(options.cluster.fail_at, 4)
                    << " s — " << r.degraded_reads << " degraded read(s), "
                    << r.replica_writes << " replica write leg(s); rebuild "
                    << harness::cell(static_cast<double>(r.rebuilt_bytes) /
                                         (1024.0 * 1024.0),
                                     1)
                    << " MB in " << r.rebuild_chunks << " chunk(s), ";
          if (r.rebuild_done) {
            std::cout << "done at " << harness::cell(r.rebuild_finished_at, 4)
                      << " s";
          } else {
            std::cout << "still draining";
          }
          std::cout << "; adaptive replan="
                    << (r.degraded_replan ? "yes" : "no") << "\n";
        }
        if (!r.tenant_slo.empty()) {
          std::cout << "tenant SLO attainment:";
          for (std::size_t t = 0; t < r.tenant_slo.size(); ++t) {
            std::cout << " t" << t << "="
                      << harness::cell(100.0 * r.tenant_slo[t], 1) << "%";
          }
          std::cout << "\n";
        }
        if (r.cache.has_value()) {
          const auto& c = *r.cache;
          const double hit_rate =
              c.tier.lookups > 0 ? 100.0 * static_cast<double>(c.tier.hits) /
                                       static_cast<double>(c.tier.lookups)
                                 : 0.0;
          std::cout << "shared cache: " << c.tier.lookups << " lookup(s), "
                    << harness::cell(hit_rate, 1) << "% hit, "
                    << c.tier.evictions << " eviction(s), "
                    << c.tier.invalidations << " invalidation(s)\n";
        }
        if (i + 1 < schemes.size()) std::cout << "\n";
      }

      if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out) throw std::runtime_error("cannot write " + trace_out);
        out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
        bool first = true;
        for (std::size_t i = 0; i < pr.size(); ++i) {
          if (pr[i].obs) {
            pr[i].obs->append_trace_events(out,
                                           static_cast<std::uint32_t>(i + 1),
                                           schemes[i].label(), first);
          }
        }
        out << "\n]}\n";
        std::cout << "wrote trace to " << trace_out << "\n";
      }

      if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        if (!out) throw std::runtime_error("cannot write " + metrics_out);
        out << "{\n  \"schemes\": [";
        bool first = true;
        for (std::size_t i = 0; i < pr.size(); ++i) {
          const auto& r = pr[i];
          if (!r.obs) continue;
          if (!first) out << ",";
          first = false;
          out << "\n    {\"label\": ";
          write_json_escaped(out, schemes[i].label());
          out << ", \"makespan_s\": " << r.total.makespan
              << ", \"total_bytes\": " << r.total.bytes << ", \"files\": [";
          for (std::size_t f = 0; f < r.files.size(); ++f) {
            const auto& fr = r.files[f];
            if (f > 0) out << ", ";
            out << "{\"file\": " << fr.id << ", \"tenant\": " << fr.tenant
                << ", \"name\": ";
            write_json_escaped(out, fr.name);
            out << ", \"regions\": " << fr.region_count
                << ", \"makespan_s\": " << fr.total.makespan
                << ", \"bytes\": " << fr.total.bytes
                << ", \"epochs\": " << fr.adaptive_epochs << "}";
          }
          out << "]";
          if (options.cluster.fail_server >= 0) {
            out << ", \"failure\": {\"server\": "
                << options.cluster.fail_server
                << ", \"at_s\": " << options.cluster.fail_at
                << ", \"degraded_reads\": " << r.degraded_reads
                << ", \"replica_writes\": " << r.replica_writes
                << ", \"rebuilt_bytes\": " << r.rebuilt_bytes
                << ", \"rebuild_chunks\": " << r.rebuild_chunks
                << ", \"rebuild_interference_s\": " << r.rebuild_interference
                << ", \"rebuild_finished_s\": " << r.rebuild_finished_at
                << ", \"rebuild_done\": "
                << (r.rebuild_done ? "true" : "false")
                << ", \"degraded_replan\": "
                << (r.degraded_replan ? "true" : "false") << "}";
          }
          if (!r.tenant_slo.empty()) {
            out << ", \"tenant_slo\": [";
            for (std::size_t t = 0; t < r.tenant_slo.size(); ++t) {
              if (t > 0) out << ", ";
              out << r.tenant_slo[t];
            }
            out << "]";
          }
          out << ", \"report\": ";
          r.obs->write_metrics_json(out, 4);
          out << "}";
        }
        out << "\n  ]\n}\n";
        std::cout << "wrote metrics to " << metrics_out << "\n";
      }

      if (!timeseries_out.empty()) {
        std::ofstream out(timeseries_out);
        if (!out) throw std::runtime_error("cannot write " + timeseries_out);
        out << "{\n  \"schemes\": [";
        bool first = true;
        for (std::size_t i = 0; i < pr.size(); ++i) {
          if (!pr[i].health) continue;
          if (!first) out << ",";
          first = false;
          out << "\n    {\"label\": ";
          write_json_escaped(out, schemes[i].label());
          out << ",\n     \"timeseries\": ";
          pr[i].health->timeseries().write_json(out, 5);
          out << ",\n     \"health\": ";
          pr[i].health->write_json(out, 5);
          out << "}";
        }
        out << "\n  ]\n}\n";
        std::cout << "wrote timeseries to " << timeseries_out << "\n";
      }
      return 0;
    }

    harness::Experiment experiment(options);
    const auto bundle = make_bundle(cfg);
    const auto results = experiment.run_all(bundle, schemes);

    const std::string save_plan_path = cfg.get_or("save-plan", "");
    if (!save_plan_path.empty()) {
      const harness::SchemeResult* analyzed = nullptr;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (schemes[i].needs_analysis() && results[i].plan.has_value()) {
          analyzed = &results[i];
          break;
        }
      }
      if (analyzed == nullptr) {
        throw std::invalid_argument(
            "save-plan needs at least one analysis-based scheme (e.g. harl)");
      }
      core::save_plan(core::PlanArtifact::from_plan(*analyzed->plan),
                      save_plan_path);
      std::cout << "saved " << analyzed->label << " plan ("
                << analyzed->region_count << " region(s)) to "
                << save_plan_path << "\n";
    }

    if (!trace_out.empty()) {
      // One combined Chrome trace: each scheme's measured run is a process
      // (pid = scheme index + 1), each simulated resource a thread.
      std::ofstream out(trace_out);
      if (!out) throw std::runtime_error("cannot write " + trace_out);
      out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
      bool first = true;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].obs) {
          results[i].obs->append_trace_events(
              out, static_cast<std::uint32_t>(i + 1), results[i].label, first);
        }
      }
      out << "\n]}\n";
      std::cout << "wrote trace to " << trace_out << "\n";
    }

    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) throw std::runtime_error("cannot write " + metrics_out);
      // Per-server device descriptors (canonical tier view); the devices
      // block is emitted only for heterogeneous fleets so homogeneous
      // metrics files stay byte-identical to the pre-device-model format.
      const auto device_tiers = options.cluster.effective_tiers();
      bool any_aged = false;
      for (const auto& t : device_tiers) any_aged |= !t.device_factors.empty();
      out << "{\n  \"schemes\": [";
      bool first = true;
      for (const auto& r : results) {
        if (!r.obs) continue;
        if (!first) out << ",";
        first = false;
        out << "\n    {\"label\": ";
        write_json_escaped(out, r.label);
        out << ", \"layout\": ";
        write_json_escaped(out, r.layout_description);
        out << ", \"regions\": " << r.region_count
            << ", \"makespan_s\": " << r.total.makespan
            << ", \"total_bytes\": " << r.total.bytes;
        if (any_aged) {
          out << ", \"devices\": [";
          std::size_t global = 0;
          bool dev_first = true;
          for (std::size_t ti = 0; ti < device_tiers.size(); ++ti) {
            const auto& t = device_tiers[ti];
            for (std::size_t i = 0; i < t.count; ++i, ++global) {
              if (!dev_first) out << ", ";
              dev_first = false;
              out << "{\"server\": " << global << ", \"tier\": " << ti
                  << ", \"name\": ";
              write_json_escaped(out, t.name + std::to_string(i));
              out << ", \"factor\": "
                  << (t.device_factors.empty() ? 1.0 : t.device_factors[i])
                  << ", \"busy_s\": "
                  << (global < r.server_io_time.size()
                          ? r.server_io_time[global]
                          : 0.0)
                  << "}";
            }
          }
          out << "]";
        }
        if (r.cache.has_value()) {
          // Read-cache counters (obs_report.py --check validates the
          // reconciliation: lookups == hits + misses, completed + discarded
          // fills == admissions).  Emitted only for cache-enabled runs so
          // cache-less metrics files stay byte-identical.
          const auto& c = *r.cache;
          out << ", \"cache\": {\"lookups\": " << c.tier.lookups
              << ", \"hits\": " << c.tier.hits
              << ", \"misses\": " << c.tier.misses
              << ", \"admissions\": " << c.tier.admissions
              << ", \"evictions\": " << c.tier.evictions
              << ", \"invalidations\": " << c.tier.invalidations
              << ", \"fills_completed\": " << c.tier.fills_completed
              << ", \"fills_discarded\": " << c.tier.fills_discarded
              << ", \"hit_bytes\": " << c.hit_read_bytes
              << ", \"miss_bytes\": " << c.miss_read_bytes
              << ", \"fill_bytes\": " << c.fill_bytes
              << ", \"active_devices\": " << c.active_devices
              << ", \"resplits\": " << c.resplits
              << ", \"clears\": " << c.clears << "}";
        }
        if (options.sim_threads > 0) {
          // PDES health of the measured run (obs_report.py --check asserts
          // lookahead_violations == 0).
          out << ", \"engine\": {\"sim_threads\": " << options.sim_threads
              << ", \"mailbox_enqueues\": " << r.sim_stats.mailbox_enqueues
              << ", \"window_stalls\": " << r.sim_stats.window_stalls
              << ", \"lookahead_violations\": "
              << r.sim_stats.lookahead_violations << "}";
        }
        out << ", \"report\": ";
        r.obs->write_metrics_json(out, 4);
        out << "}";
      }
      out << "\n  ]\n}\n";
      std::cout << "wrote metrics to " << metrics_out << "\n";
    }

    if (!timeseries_out.empty()) {
      // Telemetry plane dump: per scheme, the columnar windowed time series
      // and the health monitor's summary (obs_report.py --timeseries /
      // --require-health validate both).
      std::ofstream out(timeseries_out);
      if (!out) throw std::runtime_error("cannot write " + timeseries_out);
      out << "{\n  \"schemes\": [";
      bool first = true;
      for (const auto& r : results) {
        if (!r.health) continue;
        if (!first) out << ",";
        first = false;
        out << "\n    {\"label\": ";
        write_json_escaped(out, r.label);
        out << ",\n     \"timeseries\": ";
        r.health->timeseries().write_json(out, 5);
        out << ",\n     \"health\": ";
        r.health->write_json(out, 5);
        out << "}";
      }
      out << "\n  ]\n}\n";
      std::cout << "wrote timeseries to " << timeseries_out << "\n";
    }

    harness::Table table({"layout", "read MB/s", "write MB/s", "total MB/s",
                          "regions", "detail"});
    for (const auto& r : results) {
      table.add_row({
          r.label,
          harness::cell(r.read.throughput() / (1024.0 * 1024.0), 1),
          harness::cell(r.write.throughput() / (1024.0 * 1024.0), 1),
          harness::cell(r.total.throughput() / (1024.0 * 1024.0), 1),
          std::to_string(r.region_count),
          r.layout_description,
      });
    }
    table.print(std::cout);

    bool any_adaptive = false;
    for (const auto& r : results) any_adaptive |= r.adaptive.has_value();
    if (any_adaptive) {
      // What the adaptive run(s) actually did: epoch swaps, deferred
      // recommendations, and the migration traffic the makespan paid for.
      std::cout << "\n== adaptive re-layout ==\n";
      harness::Table adaptive_table({"layout", "epochs", "windows", "recs",
                                     "deferred", "migrated MB",
                                     "interference s", "evals saved"});
      for (const auto& r : results) {
        if (!r.adaptive.has_value()) continue;
        const auto& a = *r.adaptive;
        adaptive_table.add_row({
            r.label,
            std::to_string(a.epochs_installed),
            std::to_string(a.windows_analyzed),
            std::to_string(a.recommendations),
            std::to_string(a.recommendations_deferred),
            harness::cell(static_cast<double>(a.migrated_bytes) /
                              (1024.0 * 1024.0),
                          1),
            harness::cell(a.migration_interference, 3),
            std::to_string(a.cost_evals_saved),
        });
      }
      adaptive_table.print(std::cout);
    }

    bool any_cache = false;
    for (const auto& r : results) any_cache |= r.cache.has_value();
    if (any_cache) {
      // What the read cache did per measured run: hit rate over chunk
      // lookups, promotion traffic, and the write-invalidate churn.
      std::cout << "\n== read cache ==\n";
      harness::Table cache_table({"layout", "devices", "lookups", "hit%",
                                  "fills", "discarded", "evicted", "inval",
                                  "fill MB", "resplits"});
      for (const auto& r : results) {
        if (!r.cache.has_value()) continue;
        const auto& c = *r.cache;
        const double hit_rate =
            c.tier.lookups > 0 ? 100.0 * static_cast<double>(c.tier.hits) /
                                     static_cast<double>(c.tier.lookups)
                               : 0.0;
        cache_table.add_row({
            r.label,
            std::to_string(c.active_devices),
            std::to_string(c.tier.lookups),
            harness::cell(hit_rate, 1),
            std::to_string(c.tier.fills_completed),
            std::to_string(c.tier.fills_discarded),
            std::to_string(c.tier.evictions),
            std::to_string(c.tier.invalidations),
            harness::cell(static_cast<double>(c.fill_bytes) /
                              (1024.0 * 1024.0),
                          1),
            std::to_string(c.resplits),
        });
      }
      cache_table.print(std::cout);
    }

    if (cfg.get_int("stats", 0) != 0) {
      // Engine counters of each scheme's measured run: how the event core
      // behaved (dispatch volume, queue shape, arena allocation behaviour).
      std::cout << "\n== event engine (measured runs) ==\n";
      harness::Table stats_table({"layout", "events", "peak queue", "now-lane",
                                  "ascending", "pool hit%", "chunks",
                                  "inline", "spilled", "mailbox", "stalls",
                                  "la-viol"});
      for (const auto& r : results) {
        const auto& s = r.sim_stats;
        const std::uint64_t slots = s.pool_hits + s.pool_misses;
        const double hit_rate =
            slots > 0 ? 100.0 * static_cast<double>(s.pool_hits) /
                            static_cast<double>(slots)
                      : 0.0;
        stats_table.add_row({
            r.label,
            std::to_string(s.events_dispatched),
            std::to_string(s.peak_queue_depth),
            std::to_string(s.now_lane_events),
            std::to_string(s.ascending_events),
            harness::cell(hit_rate, 1),
            std::to_string(s.pool_chunks),
            std::to_string(s.inline_callbacks),
            std::to_string(s.heap_callbacks),
            std::to_string(s.mailbox_enqueues),
            std::to_string(s.window_stalls),
            std::to_string(s.lookahead_violations),
        });
      }
      stats_table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "harl_sim: " << e.what() << "\n";
    return 1;
  }
}
