#!/usr/bin/env python3
"""Summarize bench_micro_simulator output and gate engine regressions.

Reads the google-benchmark JSON produced by

    ./build/bench/bench_micro_simulator \
        --benchmark_out=results.json --benchmark_out_format=json

and writes BENCH_sim.json with the engine's headline numbers: the event
dispatch rate (BM_EventDispatch, the raw schedule+dispatch loop), the
zero-delay now-lane rate, and allocations per event at steady state.

When a baseline file (bench/bench_sim_baseline.json) is given, the script
exits non-zero if the dispatch rate fell more than `max_rate_regression`
below the recorded baseline or if allocations per event exceeded the
recorded ceiling — the CI smoke check for the allocation-free simulator
core.

Usage:
    tools/bench_sim_report.py results.json \
        [--baseline bench/bench_sim_baseline.json] [--out BENCH_sim.json]
"""

import argparse
import json
import sys


def find_benchmark(results, name):
    for entry in results.get("benchmarks", []):
        if entry.get("name") == name:
            return entry
    raise KeyError(f"benchmark {name!r} not found in results")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="bench_micro_simulator JSON output")
    parser.add_argument("--baseline", help="recorded baseline JSON to gate on")
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="summary output path (default: BENCH_sim.json)")
    args = parser.parse_args()

    with open(args.results, encoding="utf-8") as f:
        results = json.load(f)

    dispatch = find_benchmark(results, "BM_EventDispatch/100000")
    dispatch_small = find_benchmark(results, "BM_EventDispatch/1000")
    zero_delay = find_benchmark(results, "BM_EventDispatchZeroDelay/100000")

    summary = {
        "schema": "harl-bench-sim/1",
        "benchmark": "bench_micro_simulator",
        "dispatch_rate_per_s": dispatch["items_per_second"],
        "dispatch_rate_small_per_s": dispatch_small["items_per_second"],
        "zero_delay_rate_per_s": zero_delay["items_per_second"],
        "allocs_per_event": dispatch["allocs_per_event"],
        "zero_delay_allocs_per_event": zero_delay["allocs_per_event"],
    }

    failures = []
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        summary["baseline_dispatch_rate_per_s"] = baseline["dispatch_rate_per_s"]
        summary["speedup_vs_baseline"] = (
            summary["dispatch_rate_per_s"] / baseline["dispatch_rate_per_s"])
        if "pre_pr_dispatch_rate_per_s" in baseline:
            summary["pre_pr_dispatch_rate_per_s"] = (
                baseline["pre_pr_dispatch_rate_per_s"])
            summary["speedup_vs_pre_pr"] = (
                summary["dispatch_rate_per_s"]
                / baseline["pre_pr_dispatch_rate_per_s"])

        max_regression = baseline.get("max_rate_regression", 0.30)
        floor = baseline["dispatch_rate_per_s"] * (1.0 - max_regression)
        if summary["dispatch_rate_per_s"] < floor:
            failures.append(
                f"dispatch rate {summary['dispatch_rate_per_s']:.0f}/s is more "
                f"than {max_regression:.0%} below the recorded baseline "
                f"{baseline['dispatch_rate_per_s']:.0f}/s")
        ceiling = baseline.get("allocs_per_event_ceiling")
        if ceiling is not None and summary["allocs_per_event"] > ceiling:
            failures.append(
                f"allocs/event {summary['allocs_per_event']:.5f} exceeds the "
                f"recorded ceiling {ceiling}")

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")

    print(f"wrote {args.out}:")
    print(json.dumps(summary, indent=2))
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
