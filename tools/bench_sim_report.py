#!/usr/bin/env python3
"""Summarize bench_micro_simulator output and gate engine regressions.

Reads the google-benchmark JSON produced by

    ./build/bench/bench_micro_simulator \
        --benchmark_out=results.json --benchmark_out_format=json

and writes BENCH_sim.json with the engine's headline numbers: the event
dispatch rate (BM_EventDispatch, the raw schedule+dispatch loop), the
zero-delay now-lane rate, allocations per event at steady state, the
lane/pool/spill counter breakdown (where events were routed, not just how
fast), and the observability overhead pair — BM_FifoResourceChain vs
BM_FifoResourceChainObs, i.e. the same job chain with the flight recorder
detached vs attached.

When a baseline file (bench/bench_sim_baseline.json) is given, the script
exits non-zero if the dispatch rate fell more than `max_rate_regression`
below the recorded baseline, if allocations per event exceeded the
recorded ceiling, or if the obs-disabled dispatch rate fell more than
`max_obs_disabled_regression` (5%) below the recorded
`obs_disabled_dispatch_rate_per_s` reference — the CI smoke check for the
allocation-free simulator core and for "observability compiled in but
disabled costs (almost) nothing".

With --hetero, additionally reads a bench_ablation_hetero JSON and gates
the aged-fleet sweep: device-aware HARL vs tier-blind HARL at each aged-SSD
speed spread.  At 1x the two planners must coincide (the homogeneous fleet
is byte-identical by construction); at 2x device-aware must stay within 2%
of tier-blind (the conservative worst-member charge can slightly under-use
a mildly aged tier); at 4x device-aware must beat tier-blind by >= 5%
(member restriction excludes the heavily aged devices).

With --cache, additionally reads a bench_ablation_cache JSON and gates the
read-cache tier: at 4x HDD aging, cache-on read throughput must be
>= 1.15x cache-off under the fixed 64K deployment layout (measured ~2.4x);
the cache-budget=0 arm must be byte-identical to cache-off (same printed
read and write rates — enabled() is false, so the cache path must be
unreachable); and the cache-aware HARL arm must beat cache-off reads by
>= 1.05x with a replayed-vs-achieved hit rate of at least 50% (the
planner's reservation actually fired).

Usage:
    tools/bench_sim_report.py results.json \
        [--baseline bench/bench_sim_baseline.json] [--out BENCH_sim.json] \
        [--hetero hetero_results.json] [--cache cache_results.json]
"""

import argparse
import json
import sys


def find_benchmark(results, name):
    # With --benchmark_repetitions the file holds one entry per repetition
    # plus aggregates; prefer the median so the guards compare like to like.
    entries = results.get("benchmarks", [])
    for entry in entries:
        if entry.get("name") == f"{name}_median":
            return entry
    for entry in entries:
        if entry.get("name") == name:
            return entry
    raise KeyError(f"benchmark {name!r} not found in results")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="bench_micro_simulator JSON output")
    parser.add_argument("--baseline", help="recorded baseline JSON to gate on")
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="summary output path (default: BENCH_sim.json)")
    parser.add_argument("--hetero",
                        help="bench_ablation_hetero JSON; gates the aged-SSD "
                             "sweep (device-aware vs tier-blind HARL)")
    parser.add_argument("--cache",
                        help="bench_ablation_cache JSON; gates the read-cache "
                             "tier (cache-on vs cache-off at 4x aging, "
                             "zero-budget identity, aware reservation)")
    args = parser.parse_args()

    with open(args.results, encoding="utf-8") as f:
        results = json.load(f)

    dispatch = find_benchmark(results, "BM_EventDispatch/100000")
    dispatch_small = find_benchmark(results, "BM_EventDispatch/1000")
    zero_delay = find_benchmark(results, "BM_EventDispatchZeroDelay/100000")

    summary = {
        "schema": "harl-bench-sim/2",
        "benchmark": "bench_micro_simulator",
        "dispatch_rate_per_s": dispatch["items_per_second"],
        "dispatch_rate_small_per_s": dispatch_small["items_per_second"],
        "zero_delay_rate_per_s": zero_delay["items_per_second"],
        "allocs_per_event": dispatch["allocs_per_event"],
        "zero_delay_allocs_per_event": zero_delay["allocs_per_event"],
    }

    # Engine lane/pool/spill counters: a regression that reroutes events from
    # the O(1) lanes to the heap can keep the headline rate plausible while
    # destroying the design — the fractions make that visible in CI history.
    for counter in ("now_lane_fraction", "ascending_fraction",
                    "pool_hit_rate", "inline_callback_fraction",
                    "peak_queue_depth", "pool_chunks"):
        if counter in dispatch:
            summary[f"dispatch_{counter}"] = dispatch[counter]
        if counter in zero_delay:
            summary[f"zero_delay_{counter}"] = zero_delay[counter]

    # Observability overhead: the same FIFO job chain with the flight
    # recorder detached (plain) vs attached (obs).  Paired within one binary
    # run, so machine noise mostly cancels.
    try:
        fifo = find_benchmark(results, "BM_FifoResourceChain/10000")
        fifo_obs = find_benchmark(results, "BM_FifoResourceChainObs/10000")
        summary["fifo_rate_per_s"] = fifo["items_per_second"]
        summary["fifo_obs_rate_per_s"] = fifo_obs["items_per_second"]
        summary["obs_enabled_overhead"] = (
            1.0 - fifo_obs["items_per_second"] / fifo["items_per_second"])
    except KeyError:
        pass

    # Namespace data path: the same open-loop replay over 1 vs 8 files with
    # chained replication attached.  The ratio bounds what file-id threading
    # plus the replica write legs cost per request; absent in results files
    # recorded before the multi-file benchmark existed.
    try:
        single = find_benchmark(results, "BM_MultiFileDispatch/1")
        multi = find_benchmark(results, "BM_MultiFileDispatch/8")
        summary["multi_file"] = {
            "single_file_dispatch_rate_per_s": single["items_per_second"],
            "multi_file_dispatch_rate_per_s": multi["items_per_second"],
            "multi_over_single": (multi["items_per_second"]
                                  / single["items_per_second"]),
        }
    except KeyError:
        pass

    failures = []

    # Conservative-PDES strong scaling: the same cluster replay at 0
    # (sequential engine) / 1 / 2 / 4 / 8 sim workers.  The headline is the
    # 8-worker speedup over the sequential engine; the per-width table and
    # the 1-worker ratio (pure protocol overhead, no parallelism) go into
    # the summary for CI history.  lookahead_violations is a correctness
    # gate at every width: a conservative executor must never deliver into
    # a closed window, regardless of how many cores the machine has.
    try:
        pdes = {
            width: find_benchmark(results,
                                  f"BM_PdesScaling/{width}/real_time")
            for width in (0, 1, 2, 4, 8)
        }
    except KeyError:
        pdes = None
    if pdes is not None:
        summary["pdes_rate_per_s"] = {
            str(width): entry["items_per_second"]
            for width, entry in pdes.items()
        }
        seq_rate = pdes[0]["items_per_second"]
        summary["pdes_speedup_at_8_threads"] = (
            pdes[8]["items_per_second"] / seq_rate)
        summary["pdes_overhead_at_1_thread"] = (
            pdes[1]["items_per_second"] / seq_rate)
        for width, entry in pdes.items():
            violations = entry.get("lookahead_violations", 0.0)
            if violations:
                failures.append(
                    f"BM_PdesScaling/{width} reported {violations:.0f} "
                    f"lookahead violations — the conservative window "
                    f"protocol delivered an event into a closed window")

    num_cpus = results.get("context", {}).get("num_cpus", 0)
    summary["num_cpus"] = num_cpus

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        summary["baseline_dispatch_rate_per_s"] = baseline["dispatch_rate_per_s"]
        summary["speedup_vs_baseline"] = (
            summary["dispatch_rate_per_s"] / baseline["dispatch_rate_per_s"])
        if "pre_pr_dispatch_rate_per_s" in baseline:
            summary["pre_pr_dispatch_rate_per_s"] = (
                baseline["pre_pr_dispatch_rate_per_s"])
            summary["speedup_vs_pre_pr"] = (
                summary["dispatch_rate_per_s"]
                / baseline["pre_pr_dispatch_rate_per_s"])

        max_regression = baseline.get("max_rate_regression", 0.30)
        floor = baseline["dispatch_rate_per_s"] * (1.0 - max_regression)
        if summary["dispatch_rate_per_s"] < floor:
            failures.append(
                f"dispatch rate {summary['dispatch_rate_per_s']:.0f}/s is more "
                f"than {max_regression:.0%} below the recorded baseline "
                f"{baseline['dispatch_rate_per_s']:.0f}/s")
        ceiling = baseline.get("allocs_per_event_ceiling")
        if ceiling is not None and summary["allocs_per_event"] > ceiling:
            failures.append(
                f"allocs/event {summary['allocs_per_event']:.5f} exceeds the "
                f"recorded ceiling {ceiling}")

        # Overhead guard: with src/obs compiled in but no observer attached,
        # BM_EventDispatch must stay within max_obs_disabled_regression (5%)
        # of the recorded obs-era reference.  Compare medians to medians: run
        # the benchmark with --benchmark_repetitions and feed this script the
        # aggregate, or accept single-run noise on quiet machines only.
        obs_ref = baseline.get("obs_disabled_dispatch_rate_per_s")
        if obs_ref is not None:
            max_obs_regression = baseline.get(
                "max_obs_disabled_regression", 0.05)
            summary["obs_disabled_reference_rate_per_s"] = obs_ref
            summary["obs_disabled_rate_vs_reference"] = (
                summary["dispatch_rate_per_s"] / obs_ref)
            if (summary["dispatch_rate_per_s"]
                    < obs_ref * (1.0 - max_obs_regression)):
                failures.append(
                    f"obs-disabled dispatch rate "
                    f"{summary['dispatch_rate_per_s']:.0f}/s is more than "
                    f"{max_obs_regression:.0%} below the recorded reference "
                    f"{obs_ref:.0f}/s")

        # PDES scaling gate: on an 8-core (or wider) machine, sharding one
        # run across 8 sim workers must beat the sequential engine by the
        # recorded factor.  Skipped on narrower machines — there the extra
        # widths are oversubscribed and measure futex round-trips, not the
        # executor (the violation gate above still applies everywhere).
        min_speedup = baseline.get("min_pdes_speedup_at_8_threads")
        if (min_speedup is not None and pdes is not None
                and "pdes_speedup_at_8_threads" in summary):
            if num_cpus >= 8:
                summary["pdes_speedup_gate"] = "enforced"
                if summary["pdes_speedup_at_8_threads"] < min_speedup:
                    failures.append(
                        f"PDES speedup at 8 threads "
                        f"{summary['pdes_speedup_at_8_threads']:.2f}x is "
                        f"below the required {min_speedup:.2f}x")
            else:
                summary["pdes_speedup_gate"] = (
                    f"skipped ({num_cpus} cpus < 8)")

    if args.hetero:
        with open(args.hetero, encoding="utf-8") as f:
            hetero = json.load(f)
        totals = {}
        for entry in hetero.get("benchmarks", []):
            name = entry.get("name", "")
            if "/aged" in name and "sim_total_MBps" in entry:
                totals[name.split("/iterations")[0]] = entry["sim_total_MBps"]

        def total(spread, arm):
            key = f"ablation_hetero/aged{spread}x/{arm}"
            if key not in totals:
                raise KeyError(f"benchmark {key!r} not found in hetero "
                               f"results")
            return totals[key]

        hetero_summary = {}
        # (spread, floor on aware/blind): 1x must coincide exactly (modulo
        # fp printing, hence 0.999); 2x is a non-inferiority bound; 4x is
        # the win the device model exists for.
        for spread, floor in ((1, 0.999), (2, 0.98), (4, 1.05)):
            aware = total(spread, "HARL")
            blind = total(spread, "HARL-blind")
            fixed = total(spread, "64K")
            ratio = aware / blind
            hetero_summary[f"aged{spread}x"] = {
                "device_aware_MBps": aware,
                "tier_blind_MBps": blind,
                "fixed_64K_MBps": fixed,
                "aware_over_blind": ratio,
                "aware_over_fixed": aware / fixed,
                "required_aware_over_blind": floor,
            }
            if ratio < floor:
                failures.append(
                    f"aged{spread}x: device-aware HARL at {aware:.1f} MB/s "
                    f"is {ratio:.3f}x of tier-blind {blind:.1f} MB/s "
                    f"(required >= {floor})")
            if aware / fixed < 1.2:
                failures.append(
                    f"aged{spread}x: device-aware HARL at {aware:.1f} MB/s "
                    f"is below 1.2x fixed 64K striping {fixed:.1f} MB/s")
        summary["hetero"] = hetero_summary

    if args.cache:
        with open(args.cache, encoding="utf-8") as f:
            cache = json.load(f)
        arms = {}
        for entry in cache.get("benchmarks", []):
            name = entry.get("name", "")
            if name.startswith("ablation_cache/"):
                arms[name.split("/iterations")[0]] = entry

        def arm(tag, label):
            key = f"ablation_cache/{tag}/{label}"
            if key not in arms:
                raise KeyError(f"benchmark {key!r} not found in cache "
                               f"results")
            return arms[key]

        # Headline gate: at 4x HDD aging the cache is the only escape from
        # the aged tier under the fixed deployment layout.
        off4 = arm("aged4x", "off")
        on4 = arm("aged4x", "cache")
        zero4 = arm("aged4x", "cache0")
        ratio4 = on4["sim_read_MBps"] / off4["sim_read_MBps"]
        cache_summary = {
            "aged4x": {
                "off_read_MBps": off4["sim_read_MBps"],
                "cache_read_MBps": on4["sim_read_MBps"],
                "cache_over_off_read": ratio4,
                "cache_hit_rate": on4.get("sim_cache_hit_rate"),
                "required_cache_over_off_read": 1.15,
            },
        }
        if ratio4 < 1.15:
            failures.append(
                f"aged4x: cache-on read {on4['sim_read_MBps']:.1f} MB/s is "
                f"only {ratio4:.3f}x of cache-off "
                f"{off4['sim_read_MBps']:.1f} MB/s (required >= 1.15)")

        # Zero-budget identity: bit-identical runs print bit-identical rates.
        for column in ("sim_read_MBps", "sim_write_MBps"):
            if zero4[column] != off4[column]:
                failures.append(
                    f"aged4x: cache-budget=0 arm {column} "
                    f"{zero4[column]!r} differs from cache-off "
                    f"{off4[column]!r} — the disabled cache touched the "
                    f"data path")
        cache_summary["aged4x"]["zero_budget_identity"] = (
            zero4["sim_read_MBps"] == off4["sim_read_MBps"]
            and zero4["sim_write_MBps"] == off4["sim_write_MBps"])

        # Cache-aware planning: the reservation must fire (hit rate) and pay
        # (read non-inferiority with margin; writes legitimately lose members
        # to the reservation, so only reads gate).
        off_aware = arm("aware3s", "off")
        aware = arm("aware3s", "aware")
        aware_ratio = aware["sim_read_MBps"] / off_aware["sim_read_MBps"]
        aware_hits = aware.get("sim_cache_hit_rate", 0.0)
        cache_summary["aware3s"] = {
            "off_read_MBps": off_aware["sim_read_MBps"],
            "aware_read_MBps": aware["sim_read_MBps"],
            "aware_over_off_read": aware_ratio,
            "aware_hit_rate": aware_hits,
            "required_aware_over_off_read": 1.05,
            "required_hit_rate": 0.5,
        }
        if aware_ratio < 1.05:
            failures.append(
                f"aware3s: cache-aware read {aware['sim_read_MBps']:.1f} "
                f"MB/s is only {aware_ratio:.3f}x of cache-off "
                f"{off_aware['sim_read_MBps']:.1f} MB/s (required >= 1.05)")
        if aware_hits < 0.5:
            failures.append(
                f"aware3s: achieved hit rate {aware_hits:.3f} is below 0.5 "
                f"— the planner's reservation did not fire or the replay "
                f"estimate diverged from the run")
        summary["cache"] = cache_summary

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")

    print(f"wrote {args.out}:")
    print(json.dumps(summary, indent=2))
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
