// harl_trace — trace file utility.
//
//   harl_trace stats   <trace>            workload characterization
//   harl_trace convert <in> <out>         CSV <-> binary (by extension)
//   harl_trace regions <trace> [k=v ...]  run Algorithm 1 and print regions
//                                         (threshold=1.0 chunk=64M)
//   harl_trace divide  <trace> [k=v ...]  Algorithm 1 diagnostics: the
//                                         threshold-tuning rounds, the split
//                                         points with their CV jumps, and the
//                                         final boundaries; csv=<path> dumps
//                                         the full per-request CV trajectory
//                                         (threshold=1.0 chunk=64M)
//   harl_trace gen     <out> [k=v ...]    generate a synthetic trace
//                                         (requests=1000 file=1G min=4K
//                                          max=2M writes=0.5 seed=1234)
//   harl_trace analyze <trace> save-plan=<out> [k=v ...]
//                                         full Analysis Phase: calibrate,
//                                         divide, optimize, save the Plan
//                                         artifact (hservers=6 sservers=2
//                                          threshold=1.0 chunk=64M threads=0)
//   harl_trace plan    <artifact>         inspect a saved Plan artifact
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/plan_artifact.hpp"
#include "src/core/planner.hpp"
#include "src/core/region_divider.hpp"
#include "src/harness/calibration.hpp"
#include "src/harness/table.hpp"
#include "src/trace/analysis.hpp"
#include "src/trace/trace_io.hpp"
#include "src/workloads/random_workload.hpp"

using namespace harl;

namespace {

int cmd_stats(const std::string& path) {
  const auto records = trace::load_trace(path);
  std::cout << trace::describe(trace::characterize(records)) << "\n";
  const auto phases = trace::io_phases(records);
  std::cout << "I/O phases: " << phases.size() << "\n";
  for (std::size_t i = 0; i < phases.size() && i < 8; ++i) {
    std::cout << "  phase " << i << ": " << to_string(phases[i].op) << " x"
              << phases[i].count << " (" << format_size(phases[i].bytes)
              << ")\n";
  }
  if (phases.size() > 8) std::cout << "  ...\n";
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  const auto records = trace::load_trace(in);
  trace::save_trace(out, records);
  std::cout << "wrote " << records.size() << " records to " << out << "\n";
  return 0;
}

int cmd_regions(const std::string& path, const Config& cfg) {
  auto records = trace::load_trace(path);
  std::sort(records.begin(), records.end(), trace::ByOffset{});
  core::DividerOptions opts;
  opts.threshold = cfg.get_double("threshold", 1.0);
  opts.fixed_region_size = cfg.get_size("chunk", 64 * MiB);
  const auto division = core::divide_regions(records, opts);
  std::cout << division.regions.size() << " region(s), threshold "
            << division.threshold_used * 100.0 << "% after "
            << division.tuning_rounds << " tuning round(s)\n";
  harness::Table table({"region", "offset", "end", "avg request", "requests"});
  for (std::size_t i = 0; i < division.regions.size(); ++i) {
    const auto& r = division.regions[i];
    table.add_row({std::to_string(i), format_size(r.offset),
                   format_size(r.end),
                   format_size(static_cast<Bytes>(r.avg_request)),
                   std::to_string(r.request_count())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_divide(const std::string& path, const Config& cfg) {
  auto records = trace::load_trace(path);
  std::sort(records.begin(), records.end(), trace::ByOffset{});
  core::DividerOptions opts;
  opts.threshold = cfg.get_double("threshold", 1.0);
  opts.fixed_region_size = cfg.get_size("chunk", 64 * MiB);

  std::vector<core::StreamingDivider::CvSample> trajectory;
  std::vector<core::TuningRound> rounds;
  const auto division =
      core::divide_regions_traced(records, opts, &trajectory, &rounds);

  std::cout << records.size() << " request(s) -> "
            << division.regions.size() << " region(s), threshold "
            << division.threshold_used * 100.0 << "% after "
            << division.tuning_rounds << " tuning round(s)\n";

  if (rounds.size() > 1) {
    std::cout << "\nthreshold tuning (region-count cap from chunk="
              << format_size(opts.fixed_region_size) << "):\n";
    harness::Table tuning({"round", "threshold %", "regions"});
    for (const auto& r : rounds) {
      tuning.add_row({std::to_string(r.round),
                      harness::cell(r.threshold * 100.0, 1),
                      std::to_string(r.regions)});
    }
    tuning.print(std::cout);
  }

  std::cout << "\nsplit points (CV jump > "
            << division.threshold_used * 100.0 << "%):\n";
  harness::Table splits({"request", "offset", "size", "window CV",
                         "rel change %"});
  for (const auto& s : trajectory) {
    if (!s.split) continue;
    splits.add_row({std::to_string(s.index), format_size(s.offset),
                    format_size(s.size), harness::cell(s.cv, 4),
                    harness::cell(s.relative_change * 100.0, 1)});
  }
  splits.print(std::cout);

  std::cout << "\nregion boundaries:\n";
  harness::Table table({"region", "offset", "end", "avg request", "requests"});
  for (std::size_t i = 0; i < division.regions.size(); ++i) {
    const auto& r = division.regions[i];
    table.add_row({std::to_string(i), format_size(r.offset),
                   format_size(r.end),
                   format_size(static_cast<Bytes>(r.avg_request)),
                   std::to_string(r.request_count())});
  }
  table.print(std::cout);

  const std::string csv = cfg.get_or("csv", "");
  if (!csv.empty()) {
    std::ofstream out(csv);
    if (!out) throw std::runtime_error("cannot write " + csv);
    out << "index,offset,size,cv,relative_change,split\n";
    out.precision(17);
    for (const auto& s : trajectory) {
      out << s.index << "," << s.offset << "," << s.size << "," << s.cv << ","
          << s.relative_change << "," << (s.split ? 1 : 0) << "\n";
    }
    std::cout << "\nwrote " << trajectory.size()
              << " CV trajectory sample(s) to " << csv << "\n";
  }
  return 0;
}

int cmd_analyze(const std::string& in, const Config& cfg) {
  const std::string out = cfg.get_or("save-plan", "");
  if (out.empty()) {
    throw std::invalid_argument("analyze requires save-plan=<path>");
  }
  auto records = trace::load_trace(in);
  std::sort(records.begin(), records.end(), trace::ByOffset{});

  pfs::ClusterConfig cluster;
  cluster.num_hservers = static_cast<std::size_t>(cfg.get_int("hservers", 6));
  cluster.num_sservers = static_cast<std::size_t>(cfg.get_int("sservers", 2));
  const core::CostParams params = harness::calibrate(cluster, {});

  core::PlannerOptions opts;
  opts.divider.threshold = cfg.get_double("threshold", 1.0);
  opts.divider.fixed_region_size = cfg.get_size("chunk", 64 * MiB);
  std::unique_ptr<ThreadPool> pool;
  const long long threads = cfg.get_int("threads", 0);
  if (threads < 0 || threads > 1024) {
    throw std::invalid_argument("threads must be in [0, 1024]");
  }
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
    opts.pool = pool.get();
  }

  const core::Plan plan = core::analyze(records, params, opts);
  core::save_plan(core::PlanArtifact::from_plan(plan), out);
  std::cout << "analyzed " << records.size() << " records -> "
            << plan.rst.size() << " region(s), model cost "
            << plan.total_model_cost() << " s; saved plan to " << out << "\n";
  return 0;
}

int cmd_plan(const std::string& path) {
  const core::PlanArtifact artifact = core::load_plan(path);
  std::cout << "plan artifact " << path << "\n";
  std::cout << "calibration fingerprint: " << artifact.calibration_fingerprint
            << "\n";
  std::cout << "tiers:";
  for (std::size_t c : artifact.tier_counts) std::cout << " " << c;
  std::cout << " (server counts per tier)\n";
  harness::Table table({"region", "offset", "stripes", "file"});
  for (std::size_t i = 0; i < artifact.rst.size(); ++i) {
    const core::RstEntry& e = artifact.rst.entry(i);
    std::string stripes;
    for (std::size_t j = 0; j < e.stripes.size(); ++j) {
      if (j > 0) stripes += ",";
      stripes += format_size(e.stripes[j]);
    }
    table.add_row({std::to_string(i), format_size(e.offset), stripes,
                   i < artifact.region_files.size() ? artifact.region_files[i]
                                                    : "-"});
  }
  table.print(std::cout);
  return 0;
}

int cmd_gen(const std::string& out, const Config& cfg) {
  workloads::RandomWorkloadConfig wcfg;
  wcfg.requests = static_cast<std::size_t>(cfg.get_int("requests", 1000));
  wcfg.file_size = cfg.get_size("file", 1 * GiB);
  wcfg.min_request = cfg.get_size("min", 4 * KiB);
  wcfg.max_request = cfg.get_size("max", 2 * MiB);
  wcfg.write_fraction = cfg.get_double("writes", 0.5);
  wcfg.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1234));
  const auto records = workloads::make_random_trace(wcfg);
  trace::save_trace(out, records);
  std::cout << "generated " << records.size() << " records to " << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() >= 2 && args[0] == "stats") return cmd_stats(args[1]);
    if (args.size() >= 3 && args[0] == "convert") {
      return cmd_convert(args[1], args[2]);
    }
    if (args.size() >= 2 && args[0] == "regions") {
      return cmd_regions(args[1], Config::from_args({args.begin() + 2,
                                                     args.end()}));
    }
    if (args.size() >= 2 && args[0] == "divide") {
      return cmd_divide(args[1], Config::from_args({args.begin() + 2,
                                                    args.end()}));
    }
    if (args.size() >= 2 && args[0] == "gen") {
      return cmd_gen(args[1],
                     Config::from_args({args.begin() + 2, args.end()}));
    }
    if (args.size() >= 2 && args[0] == "analyze") {
      return cmd_analyze(args[1],
                         Config::from_args({args.begin() + 2, args.end()}));
    }
    if (args.size() >= 2 && args[0] == "plan") return cmd_plan(args[1]);
    std::cerr << "usage: harl_trace "
                 "stats|convert|regions|divide|gen|analyze|plan "
                 "... (see header comment)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "harl_trace: " << e.what() << "\n";
    return 1;
  }
}
