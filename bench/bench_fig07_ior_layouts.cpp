// Paper Fig. 7: IOR read and write throughput (16 processes, 512 KiB
// requests, 16 GiB shared file) across layout schemes: fixed stripes
// (16K..2M), randomly-chosen stripes, and HARL.  The paper reports HARL
// picking {32K, 160K} for reads and {36K, 148K} for writes, improving
// 73.4% / 176.7% over the 64K default.
#include "bench/bench_common.hpp"

namespace harl::bench {
namespace {

std::vector<harness::SchemeResult> run() {
  harness::Experiment exp(default_options());
  const auto bundle = harness::ior_bundle(default_ior());
  auto results = exp.run_all(bundle, full_lineup());
  print_scheme_table(std::cout,
                     "Fig. 7: IOR throughput by layout (16 procs, 512K "
                     "requests)",
                     results);
  for (const auto& r : results) {
    if (r.label == "HARL") {
      std::cout << "HARL chose " << r.layout_description
                << " (paper: {32K,160K} reads / {36K,148K} writes)\n";
    }
  }
  return results;
}

}  // namespace
}  // namespace harl::bench

int main(int argc, char** argv) {
  return harl::bench::figure_bench_main(argc, argv, "fig07",
                                        harl::bench::run);
}
