// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper: it runs the
// full pipeline (trace -> analysis -> placement -> measured run) on the
// simulated hybrid PFS and prints the same rows/series the paper plots,
// plus google-benchmark entries so the runs appear in machine-readable
// benchmark output.
//
// Scale control: the HARL_BENCH_SCALE environment variable selects
//   "ci"    (default) — minutes-long full suite, reduced request counts;
//   "paper" — the paper's workload sizes (16 GiB IOR file, full coverage).
//
// Parallelism: a `threads=N` argument (or the HARL_BENCH_THREADS
// environment variable) runs the planner's analysis and the per-scheme
// measured runs on an N-thread pool.  Tables are bit-identical at any
// width — parallelism only changes wall time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/table.hpp"

namespace harl::bench {

/// The pool shared by the figure benches, sized by `threads=N` /
/// HARL_BENCH_THREADS (created on first use; nullptr when serial).
ThreadPool* bench_pool();

inline bool paper_scale() {
  const char* v = std::getenv("HARL_BENCH_SCALE");
  return v != nullptr && std::string(v) == "paper";
}

/// Baseline experiment options used across figures (paper testbed shape).
inline harness::ExperimentOptions default_options() {
  harness::ExperimentOptions opts;
  // Calibration sampling is cheap; keep it identical across scales so the
  // planner decisions match between ci and paper runs.
  opts.calibration.samples_per_size = 1000;
  opts.calibration.beta_samples = 1000;
  // Same pool for analysis-phase regions and harness-level scheme fan-out
  // (nested parallel_for on one pool is safe — it is work-helping).
  opts.planner.pool = bench_pool();
  opts.pool = bench_pool();
  return opts;
}

/// The paper's IOR setup (Section IV-B): 16 processes, 512 KiB requests,
/// 16 GiB shared file, random offsets.  At ci scale the per-process request
/// count is capped; the file size (and therefore the offset space) stays.
inline workloads::IorConfig default_ior() {
  workloads::IorConfig ior;
  ior.processes = 16;
  ior.request_size = 512 * KiB;
  ior.file_size = 16 * GiB;
  ior.requests_per_process = paper_scale() ? 0 : 96;  // 0 = full segment
  return ior;
}

/// The fixed-stripe sweep the paper's figures use ("#K" legends).
inline std::vector<harness::LayoutScheme> fixed_sweep() {
  return {
      harness::LayoutScheme::fixed(16 * KiB),
      harness::LayoutScheme::fixed(64 * KiB),
      harness::LayoutScheme::fixed(256 * KiB),
      harness::LayoutScheme::fixed(1 * MiB),
      harness::LayoutScheme::fixed(2 * MiB),
  };
}

/// Fixed sweep + two random-stripe baselines + HARL (Fig. 7/11/12 lineup).
inline std::vector<harness::LayoutScheme> full_lineup() {
  auto schemes = fixed_sweep();
  schemes.push_back(harness::LayoutScheme::random_stripes(1));
  schemes.push_back(harness::LayoutScheme::random_stripes(2));
  schemes.push_back(harness::LayoutScheme::harl());
  return schemes;
}

/// MB/s formatting for table cells.
inline std::string mbps(double bytes_per_second) {
  return harness::cell(bytes_per_second / (1024.0 * 1024.0), 1);
}

/// Prints a scheme-comparison table with read/write columns and the
/// improvement of each scheme relative to the named baseline.
void print_scheme_table(std::ostream& os, const std::string& title,
                        const std::vector<harness::SchemeResult>& results,
                        const std::string& baseline_label = "64K");

/// Registers one google-benchmark entry per result so figure numbers also
/// land in machine-readable benchmark output (counters sim_read_MBps /
/// sim_write_MBps / sim_total_MBps).  Call before RunSpecifiedBenchmarks().
void register_sim_results(const std::string& prefix,
                          const std::vector<harness::SchemeResult>& results);

/// Standard main body for figure benches: strips a `threads=N` argument
/// (sizing bench_pool), runs `produce` (which prints its tables and returns
/// results to register), then the benchmark runner.
int figure_bench_main(
    int argc, char** argv, const std::string& prefix,
    const std::function<std::vector<harness::SchemeResult>()>& produce);

}  // namespace harl::bench
